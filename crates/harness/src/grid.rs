//! Declarative sweep plans: a parameter grid × N replications expanded
//! into fully-specified trials with deterministic per-trial RNG streams.
//!
//! The expansion order is the row-major cartesian product of the axes in
//! declaration order (policy, preset, servers, cores, utilization, τ,
//! fault plan), with replications innermost. Trial seeds are derived
//! from the plan seed and the trial's grid coordinates alone — never
//! from scheduling order — so a sweep is bitwise-reproducible at any
//! thread count.

use std::fmt;

use holdcsim::config::{PolicyKind, SimConfig};
use holdcsim::experiments::delay_timer_farm;
use holdcsim_des::rng::SimRng;
use holdcsim_des::time::SimDuration;
use holdcsim_obs::ObsConfig;
use holdcsim_workload::presets::WorkloadPreset;

/// Hard cap on the number of trials one plan may expand to.
pub const MAX_TRIALS: u128 = 1 << 20;

/// Why a plan could not be expanded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GridError {
    /// An axis has no values, so the product grid is empty.
    EmptyAxis(&'static str),
    /// The cartesian product exceeds [`MAX_TRIALS`].
    TooLarge {
        /// The would-be trial count.
        size: u128,
    },
}

impl fmt::Display for GridError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GridError::EmptyAxis(name) => write!(f, "sweep axis `{name}` is empty"),
            GridError::TooLarge { size } => {
                write!(f, "sweep expands to {size} trials (max {MAX_TRIALS})")
            }
        }
    }
}

impl std::error::Error for GridError {}

/// One point of the parameter grid (everything but the replicate index).
#[derive(Debug, Clone, PartialEq)]
pub struct TrialPoint {
    /// Placement policy.
    pub policy: PolicyKind,
    /// Workload preset.
    pub preset: WorkloadPreset,
    /// Farm size.
    pub servers: usize,
    /// Cores per server.
    pub cores: u32,
    /// Target utilization ρ.
    pub rho: f64,
    /// Delay timer τ in seconds; `None` runs the Active-Idle farm
    /// (no sleeping, no provisioning controller).
    pub tau_s: Option<f64>,
    /// Fault-plan spec for this arm (already validated by
    /// [`SweepPlan::fault_specs`]); `None` runs fault-free.
    pub faults: Option<String>,
}

impl TrialPoint {
    /// A compact `key=value` label for progress lines and artifacts.
    pub fn label(&self) -> String {
        let tau = match self.tau_s {
            Some(t) => format!("{t}"),
            None => "active-idle".to_string(),
        };
        let mut label = format!(
            "policy={:?} preset={} servers={} cores={} rho={} tau={}",
            self.policy, self.preset, self.servers, self.cores, self.rho, tau
        );
        if let Some(f) = &self.faults {
            label.push_str(&format!(" faults={f}"));
        }
        label
    }
}

/// A fully-specified trial: grid point × replicate, with the derived seed.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialSpec {
    /// Position in the expanded trial list.
    pub index: usize,
    /// Index of [`Self::point`] in the plan's point list.
    pub point_index: usize,
    /// Replicate number within the point, `0..replications`.
    pub replicate: u32,
    /// The per-trial simulation seed (derived, deterministic).
    pub seed: u64,
    /// The grid point.
    pub point: TrialPoint,
    /// Simulated horizon.
    pub duration: SimDuration,
}

impl TrialSpec {
    /// Builds the simulation configuration for this trial.
    pub fn config(&self) -> SimConfig {
        let p = &self.point;
        let mut cfg = match p.tau_s {
            Some(tau) => delay_timer_farm(
                p.preset,
                p.rho,
                p.servers,
                p.cores,
                tau,
                self.duration,
                self.seed,
            )
            .with_policy(p.policy),
            None => SimConfig::server_farm(
                p.servers,
                p.cores,
                p.rho,
                p.preset.template(),
                self.duration,
            )
            .with_seed(self.seed)
            .with_policy(p.policy),
        };
        if let Some(spec) = &p.faults {
            cfg.faults = Some(holdcsim_faults::load_plan(spec).expect("validated fault spec"));
        }
        cfg
    }
}

/// A declarative sweep: axes × replications over a fixed horizon.
///
/// Build one with the fluent setters, then hand it to
/// [`crate::exec::run_plan`]:
///
/// ```
/// use holdcsim::config::PolicyKind;
/// use holdcsim_des::time::SimDuration;
/// use holdcsim_harness::grid::SweepPlan;
///
/// let plan = SweepPlan::new("taus")
///     .policies(&[PolicyKind::PackFirst, PolicyKind::LeastLoaded])
///     .utilizations(&[0.1, 0.3])
///     .taus_s(&[0.4, 1.6])
///     .replications(3);
/// assert_eq!(plan.size().unwrap(), 2 * 2 * 2 * 3);
/// ```
#[derive(Debug, Clone)]
pub struct SweepPlan {
    /// Plan name (artifact prefix).
    pub name: String,
    /// Root seed; every trial stream is derived from it.
    pub seed: u64,
    /// Replications per grid point.
    pub replications: u32,
    /// Simulated horizon per trial.
    pub duration: SimDuration,
    /// Placement-policy axis.
    pub policies: Vec<PolicyKind>,
    /// Workload-preset axis.
    pub presets: Vec<WorkloadPreset>,
    /// Farm-size axis.
    pub servers: Vec<usize>,
    /// Cores-per-server axis.
    pub cores: Vec<u32>,
    /// Utilization axis.
    pub utilizations: Vec<f64>,
    /// Delay-timer axis (`None` entries are Active-Idle arms).
    pub taus: Vec<Option<f64>>,
    /// Fault-plan axis (`None` entries are fault-free arms).
    pub faults: Vec<Option<String>>,
    /// Observability applied to every trial (default: everything off).
    pub obs: ObsConfig,
}

impl SweepPlan {
    /// A single-point plan: PackFirst, web search, 8×4 at ρ=0.3,
    /// Active-Idle, one replication of 30 simulated seconds.
    pub fn new(name: &str) -> Self {
        SweepPlan {
            name: name.to_string(),
            seed: 42,
            replications: 1,
            duration: SimDuration::from_secs(30),
            policies: vec![PolicyKind::PackFirst],
            presets: vec![WorkloadPreset::WebSearch],
            servers: vec![8],
            cores: vec![4],
            utilizations: vec![0.3],
            taus: vec![None],
            faults: vec![None],
            obs: ObsConfig::default(),
        }
    }

    /// Sets the observability configuration applied to every trial.
    pub fn obs(mut self, obs: ObsConfig) -> Self {
        self.obs = obs;
        self
    }

    /// Sets the root seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the replication count.
    pub fn replications(mut self, n: u32) -> Self {
        self.replications = n;
        self
    }

    /// Sets the simulated horizon.
    pub fn duration(mut self, d: SimDuration) -> Self {
        self.duration = d;
        self
    }

    /// Sets the policy axis.
    pub fn policies(mut self, ps: &[PolicyKind]) -> Self {
        self.policies = ps.to_vec();
        self
    }

    /// Sets the workload axis.
    pub fn presets(mut self, ps: &[WorkloadPreset]) -> Self {
        self.presets = ps.to_vec();
        self
    }

    /// Sets the farm-size axis.
    pub fn servers(mut self, s: &[usize]) -> Self {
        self.servers = s.to_vec();
        self
    }

    /// Sets the cores-per-server axis.
    pub fn cores(mut self, c: &[u32]) -> Self {
        self.cores = c.to_vec();
        self
    }

    /// Sets the utilization axis.
    pub fn utilizations(mut self, rhos: &[f64]) -> Self {
        self.utilizations = rhos.to_vec();
        self
    }

    /// Sets the delay-timer axis (every entry a concrete τ).
    pub fn taus_s(mut self, taus: &[f64]) -> Self {
        self.taus = taus.iter().map(|&t| Some(t)).collect();
        self
    }

    /// Sets the delay-timer axis with explicit `None` (Active-Idle) arms.
    pub fn taus_opt(mut self, taus: &[Option<f64>]) -> Self {
        self.taus = taus.to_vec();
        self
    }

    /// Sets the fault-plan axis. `None` entries are fault-free arms;
    /// `Some` entries are plan specs (validate them with
    /// `holdcsim_faults::load_plan` before building the plan — trial
    /// expansion assumes each spec parses).
    pub fn fault_specs(mut self, specs: &[Option<String>]) -> Self {
        self.faults = specs.to_vec();
        self
    }

    /// The trial count this plan expands to, with an overflow guard.
    pub fn size(&self) -> Result<usize, GridError> {
        let axes: [(&'static str, usize); 8] = [
            ("policies", self.policies.len()),
            ("presets", self.presets.len()),
            ("servers", self.servers.len()),
            ("cores", self.cores.len()),
            ("utilizations", self.utilizations.len()),
            ("taus", self.taus.len()),
            ("faults", self.faults.len()),
            ("replications", self.replications as usize),
        ];
        let mut size: u128 = 1;
        for (name, len) in axes {
            if len == 0 {
                return Err(GridError::EmptyAxis(name));
            }
            size = size.saturating_mul(len as u128);
        }
        if size > MAX_TRIALS {
            return Err(GridError::TooLarge { size });
        }
        Ok(size as usize)
    }

    /// The grid points in expansion order (replications excluded).
    pub fn points(&self) -> Result<Vec<TrialPoint>, GridError> {
        let n = self.size()?;
        let mut out = Vec::with_capacity(n / self.replications as usize);
        for &policy in &self.policies {
            for &preset in &self.presets {
                for &servers in &self.servers {
                    for &cores in &self.cores {
                        for &rho in &self.utilizations {
                            for &tau_s in &self.taus {
                                for faults in &self.faults {
                                    out.push(TrialPoint {
                                        policy,
                                        preset,
                                        servers,
                                        cores,
                                        rho,
                                        tau_s,
                                        faults: faults.clone(),
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok(out)
    }

    /// Expands the full trial list: every point × every replicate, each
    /// with its derived seed.
    pub fn trials(&self) -> Result<Vec<TrialSpec>, GridError> {
        let points = self.points()?;
        let root = SimRng::seed_from(self.seed);
        let mut out = Vec::with_capacity(points.len() * self.replications as usize);
        for (point_index, point) in points.into_iter().enumerate() {
            for replicate in 0..self.replications {
                let seed = root
                    .substream_path(&[point_index as u64, replicate as u64])
                    .next_u64();
                out.push(TrialSpec {
                    index: out.len(),
                    point_index,
                    replicate,
                    seed,
                    point: point.clone(),
                    duration: self.duration,
                });
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_point_plan_expands_to_replications() {
        let plan = SweepPlan::new("one").replications(4);
        assert_eq!(plan.size().unwrap(), 4);
        let trials = plan.trials().unwrap();
        assert_eq!(trials.len(), 4);
        assert!(trials.iter().all(|t| t.point_index == 0));
        assert_eq!(
            trials.iter().map(|t| t.replicate).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
        // Replicates get distinct derived seeds.
        let mut seeds: Vec<u64> = trials.iter().map(|t| t.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 4);
    }

    #[test]
    fn empty_axis_is_an_error() {
        let plan = SweepPlan::new("empty").utilizations(&[]);
        assert_eq!(plan.size(), Err(GridError::EmptyAxis("utilizations")));
        assert!(plan.trials().is_err());
    }

    #[test]
    fn zero_replications_is_an_error() {
        let plan = SweepPlan::new("noreps").replications(0);
        assert_eq!(plan.size(), Err(GridError::EmptyAxis("replications")));
    }

    #[test]
    fn cartesian_overflow_is_guarded() {
        let many: Vec<f64> = (0..4096).map(|i| i as f64 / 4096.0).collect();
        let plan = SweepPlan::new("huge")
            .utilizations(&many)
            .taus_s(&many)
            .replications(u32::MAX);
        match plan.size() {
            Err(GridError::TooLarge { size }) => assert!(size > MAX_TRIALS),
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn expansion_order_is_row_major_and_stable() {
        let plan = SweepPlan::new("grid")
            .policies(&[PolicyKind::PackFirst, PolicyKind::LeastLoaded])
            .utilizations(&[0.1, 0.6]);
        let pts = plan.points().unwrap();
        assert_eq!(pts.len(), 4);
        assert_eq!(pts[0].policy, PolicyKind::PackFirst);
        assert_eq!(pts[0].rho, 0.1);
        assert_eq!(pts[1].rho, 0.6);
        assert_eq!(pts[2].policy, PolicyKind::LeastLoaded);
        // Expansion is a pure function of the plan.
        assert_eq!(plan.trials().unwrap(), plan.trials().unwrap());
    }

    #[test]
    fn trial_seeds_depend_only_on_coordinates() {
        // Adding a point leaves earlier points' replicate seeds intact
        // only when coordinates match; what matters is: the same
        // (plan seed, point_index, replicate) always derives the same
        // trial seed.
        let a = SweepPlan::new("a").replications(2).trials().unwrap();
        let b = SweepPlan::new("renamed").replications(2).trials().unwrap();
        assert_eq!(a[1].seed, b[1].seed);
        let c = SweepPlan::new("a")
            .seed(7)
            .replications(2)
            .trials()
            .unwrap();
        assert_ne!(a[1].seed, c[1].seed);
    }

    #[test]
    fn fault_axis_expands_and_reaches_config() {
        let plan = SweepPlan::new("faulty")
            .fault_specs(&[None, Some("crash@2s:0; recover@4s:0".to_string())]);
        assert_eq!(plan.size().unwrap(), 2);
        let trials = plan.trials().unwrap();
        // Fault-free arm keeps the pre-axis label byte-for-byte.
        assert_eq!(
            trials[0].point.label(),
            "policy=PackFirst preset=Web Search servers=8 cores=4 rho=0.3 tau=active-idle"
        );
        assert!(trials[1]
            .point
            .label()
            .ends_with(" faults=crash@2s:0; recover@4s:0"));
        assert!(trials[0].config().faults.is_none());
        let plan = trials[1].config().faults.expect("fault arm carries a plan");
        assert_eq!(plan.events.len(), 2);
    }

    #[test]
    fn config_reflects_point() {
        let mut plan = SweepPlan::new("cfg");
        plan.taus = vec![Some(0.5)];
        let trials = plan.trials().unwrap();
        let cfg = trials[0].config();
        assert_eq!(cfg.server_count, 8);
        assert_eq!(cfg.cores_per_server, 4);
        assert_eq!(cfg.seed, trials[0].seed);
        assert!(cfg.controller.is_some(), "delay-timer arm runs provisioned");
    }
}
