//! Work-stealing parallel trial execution.
//!
//! Trials are pulled from a shared atomic counter by a scoped thread
//! pool (no external dependency) and results are stored by trial index,
//! so the output — and everything aggregated from it — is bitwise
//! identical regardless of how many workers ran or how work interleaved.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use holdcsim::config::SimConfig;
use holdcsim::report::SimReport;
use holdcsim::sim::Simulation;
use holdcsim_obs::ObsArtifacts;

use crate::agg::{aggregate, PointSummary, TrialMetrics, TrialOutcome};
use crate::grid::{GridError, SweepPlan, TrialPoint};

/// The machine's available parallelism (≥ 1).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs every config and returns the reports in input order.
///
/// The parallel primitive under [`run_plan`], also usable directly for
/// irregular experiments (e.g. Fig. 6's three policy arms) that don't fit
/// a rectangular grid. With `progress`, one line per finished trial is
/// written to stderr.
pub fn run_configs(
    configs: Vec<SimConfig>,
    threads: usize,
    progress: Option<&str>,
) -> Vec<SimReport> {
    run_configs_obs(configs, threads, progress)
        .into_iter()
        .map(|(report, _)| report)
        .collect()
}

/// [`run_configs`], but also returning each trial's observability
/// artifacts (empty unless the config's [`SimConfig::obs`] turns a
/// capability on).
pub fn run_configs_obs(
    configs: Vec<SimConfig>,
    threads: usize,
    progress: Option<&str>,
) -> Vec<(SimReport, ObsArtifacts)> {
    let n = configs.len();
    if n == 0 {
        return Vec::new();
    }
    let jobs: Vec<Mutex<Option<SimConfig>>> =
        configs.into_iter().map(|c| Mutex::new(Some(c))).collect();
    let slots: Vec<Mutex<Option<(SimReport, ObsArtifacts)>>> =
        (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let done = AtomicUsize::new(0);
    let workers = threads.clamp(1, n);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let cfg = jobs[i]
                    .lock()
                    .expect("job lock")
                    .take()
                    .expect("job taken once");
                let outcome = Simulation::new(cfg).run_with_obs();
                *slots[i].lock().expect("slot lock") = Some(outcome);
                let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
                if let Some(label) = progress {
                    eprintln!("[{label}] trial {finished}/{n} done");
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("slot poisoned")
                .expect("all trials ran")
        })
        .collect()
}

/// The full outcome of a sweep: per-trial metrics plus per-point
/// cross-replication summaries.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// The plan's name.
    pub name: String,
    /// The plan's root seed.
    pub seed: u64,
    /// The grid points in expansion order.
    pub points: Vec<TrialPoint>,
    /// Every trial, in expansion order.
    pub trials: Vec<TrialOutcome>,
    /// One aggregate per grid point.
    pub summaries: Vec<PointSummary>,
    /// Per-trial observability artifacts, in expansion order (all empty
    /// when the plan's [`SweepPlan::obs`] is off).
    pub obs: Vec<ObsArtifacts>,
}

/// Expands `plan` and runs all its trials on `threads` workers.
///
/// Per-trial seeds come from the plan's grid coordinates (see
/// [`SweepPlan::trials`]) and results are keyed by trial index, so the
/// returned [`SweepResult`] is identical at every thread count.
pub fn run_plan(
    plan: &SweepPlan,
    threads: usize,
    progress: bool,
) -> Result<SweepResult, GridError> {
    let trials = plan.trials()?;
    let points = plan.points()?;
    let configs: Vec<SimConfig> = trials
        .iter()
        .map(|t| {
            let mut cfg = t.config();
            cfg.obs = plan.obs;
            cfg
        })
        .collect();
    let label = progress.then(|| plan.name.clone());
    let results = run_configs_obs(configs, threads, label.as_deref());
    let mut reports = Vec::with_capacity(results.len());
    let mut obs = Vec::with_capacity(results.len());
    for (report, arts) in results {
        reports.push(report);
        obs.push(arts);
    }
    let outcomes: Vec<TrialOutcome> = trials
        .into_iter()
        .zip(reports.iter())
        .map(|(spec, report)| TrialOutcome {
            spec,
            metrics: TrialMetrics::from_report(report),
        })
        .collect();
    let summaries = aggregate(&points, &outcomes);
    Ok(SweepResult {
        name: plan.name.clone(),
        seed: plan.seed,
        points,
        trials: outcomes,
        summaries,
        obs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifacts::{summary_csv, trials_jsonl};
    use holdcsim_des::time::SimDuration;

    fn tiny_plan() -> SweepPlan {
        SweepPlan::new("determinism")
            .utilizations(&[0.1, 0.4])
            .replications(3)
            .duration(SimDuration::from_secs(5))
    }

    #[test]
    fn run_configs_preserves_input_order() {
        use holdcsim_workload::presets::WorkloadPreset;
        // Give every config a distinct horizon so any reordering (e.g.
        // storing results by completion order instead of by slot index)
        // is detectable in the output.
        let durations: Vec<SimDuration> = (1..=6).map(SimDuration::from_secs).collect();
        let configs: Vec<SimConfig> = durations
            .iter()
            .map(|&d| SimConfig::server_farm(2, 2, 0.2, WorkloadPreset::WebSearch.template(), d))
            .collect();
        let reports = run_configs(configs, 3, None);
        assert_eq!(reports.len(), durations.len());
        for (d, r) in durations.iter().zip(&reports) {
            assert_eq!(r.duration, *d);
        }
    }

    #[test]
    fn sweep_is_bitwise_identical_across_thread_counts() {
        let plan = tiny_plan();
        let serial = run_plan(&plan, 1, false).unwrap();
        let parallel = run_plan(&plan, 4, false).unwrap();
        // Identical per-trial metrics, bit for bit…
        assert_eq!(serial.trials, parallel.trials);
        // …identical aggregates…
        assert_eq!(serial.summaries, parallel.summaries);
        // …and identical rendered artifacts.
        assert_eq!(trials_jsonl(&serial), trials_jsonl(&parallel));
        assert_eq!(summary_csv(&serial), summary_csv(&parallel));
    }

    #[test]
    fn replications_differ_but_aggregate_counts_them_all() {
        let result = run_plan(&tiny_plan(), 4, false).unwrap();
        assert_eq!(result.trials.len(), 6);
        assert_eq!(result.summaries.len(), 2);
        for s in &result.summaries {
            assert_eq!(s.replications, 3);
        }
        // Different replicate seeds actually produce different runs.
        let a = &result.trials[0].metrics;
        let b = &result.trials[1].metrics;
        assert_ne!(a, b);
    }
}
