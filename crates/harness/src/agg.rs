//! Cross-replication aggregation: per-trial metric extraction and
//! mean / standard deviation / 95 % confidence intervals per grid point.

use holdcsim::report::SimReport;

use crate::grid::{TrialPoint, TrialSpec};

/// The scalar metrics extracted from one trial's [`SimReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct TrialMetrics {
    values: Vec<f64>,
}

/// Metric names, aligned with [`TrialMetrics::values`].
pub const METRIC_NAMES: &[&str] = &[
    "energy_j",
    "cpu_energy_j",
    "dram_energy_j",
    "platform_energy_j",
    "mean_power_w",
    "latency_mean_s",
    "latency_p50_s",
    "latency_p90_s",
    "latency_p95_s",
    "latency_p99_s",
    "latency_max_s",
    "jobs_completed",
    "utilization",
    "residency_active",
    "residency_wakeup",
    "residency_idle",
    "residency_shallow",
    "residency_deep",
];

impl TrialMetrics {
    /// Extracts the metric vector from a finished report.
    pub fn from_report(r: &SimReport) -> Self {
        let n = r.servers.len().max(1) as f64;
        let mut bands = [0.0f64; 5];
        for s in &r.servers {
            bands[0] += s.residency.0 / n;
            bands[1] += s.residency.1 / n;
            bands[2] += s.residency.2 / n;
            bands[3] += s.residency.3 / n;
            bands[4] += s.residency.4 / n;
        }
        let values = vec![
            r.server_energy_j(),
            r.cpu_energy_j(),
            r.dram_energy_j(),
            r.platform_energy_j(),
            r.mean_server_power_w(),
            r.latency.mean,
            r.latency.p50,
            r.latency.p90,
            r.latency.p95,
            r.latency.p99,
            r.latency.max,
            r.jobs_completed as f64,
            r.mean_utilization(),
            bands[0],
            bands[1],
            bands[2],
            bands[3],
            bands[4],
        ];
        debug_assert_eq!(values.len(), METRIC_NAMES.len());
        TrialMetrics { values }
    }

    /// The metric values, aligned with [`METRIC_NAMES`].
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Looks a metric up by name.
    pub fn get(&self, name: &str) -> Option<f64> {
        METRIC_NAMES
            .iter()
            .position(|&n| n == name)
            .map(|i| self.values[i])
    }
}

/// One finished trial: its spec plus extracted metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialOutcome {
    /// The trial that ran.
    pub spec: TrialSpec,
    /// Its scalar metrics.
    pub metrics: TrialMetrics,
}

/// Mean / spread / confidence summary of one metric across replications.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricSummary {
    /// Samples aggregated.
    pub n: u64,
    /// Sample mean.
    pub mean: f64,
    /// Sample (n−1) standard deviation; 0 for a single sample.
    pub std_dev: f64,
    /// Half-width of the 95 % confidence interval on the mean
    /// (Student-t); 0 for a single sample.
    pub ci95_half: f64,
}

/// Two-sided 97.5 % Student-t critical value for `df` degrees of freedom
/// (normal approximation beyond 30).
fn t_critical_975(df: u64) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    match df {
        0 => f64::NAN,
        1..=30 => TABLE[df as usize - 1],
        _ => 1.96,
    }
}

/// Summarizes one metric's samples (mean, sample stddev, 95 % CI).
pub fn summarize(xs: &[f64]) -> MetricSummary {
    let n = xs.len() as u64;
    if n == 0 {
        return MetricSummary {
            n: 0,
            mean: f64::NAN,
            std_dev: f64::NAN,
            ci95_half: f64::NAN,
        };
    }
    let mean = xs.iter().sum::<f64>() / n as f64;
    if n == 1 {
        return MetricSummary {
            n,
            mean,
            std_dev: 0.0,
            ci95_half: 0.0,
        };
    }
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64;
    let std_dev = var.sqrt();
    let ci95_half = t_critical_975(n - 1) * std_dev / (n as f64).sqrt();
    MetricSummary {
        n,
        mean,
        std_dev,
        ci95_half,
    }
}

/// Aggregated outcome of one grid point across its replications.
#[derive(Debug, Clone, PartialEq)]
pub struct PointSummary {
    /// Index of the point in the plan's point list.
    pub point_index: usize,
    /// The grid point.
    pub point: TrialPoint,
    /// Replications aggregated.
    pub replications: u64,
    /// One summary per entry of [`METRIC_NAMES`].
    pub metrics: Vec<MetricSummary>,
}

impl PointSummary {
    /// Looks a metric summary up by name.
    pub fn get(&self, name: &str) -> Option<MetricSummary> {
        METRIC_NAMES
            .iter()
            .position(|&n| n == name)
            .map(|i| self.metrics[i])
    }
}

/// Groups trials by grid point (in point order — replication order within
/// a point is fixed by the expansion, so aggregation is deterministic at
/// any thread count) and summarizes every metric.
pub fn aggregate(points: &[TrialPoint], trials: &[TrialOutcome]) -> Vec<PointSummary> {
    // One grouping pass (trials need not be contiguous per point, though
    // plan expansion emits them that way) keeps this O(trials), not
    // O(points × trials) — it runs after every sweep, at any scale.
    let mut members: Vec<Vec<&TrialOutcome>> = vec![Vec::new(); points.len()];
    for t in trials {
        members[t.spec.point_index].push(t);
    }
    points
        .iter()
        .enumerate()
        .map(|(pi, point)| {
            let group = &members[pi];
            let metrics = (0..METRIC_NAMES.len())
                .map(|mi| {
                    let xs: Vec<f64> = group.iter().map(|t| t.metrics.values()[mi]).collect();
                    summarize(&xs)
                })
                .collect();
            PointSummary {
                point_index: pi,
                point: point.clone(),
                replications: group.len() as u64,
                metrics,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarize_known_inputs() {
        // xs = [2, 4, 4, 4, 5, 5, 7, 9]: mean 5, sample var 32/7.
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let s = summarize(&xs);
        assert_eq!(s.n, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        let expect_sd = (32.0f64 / 7.0).sqrt();
        assert!((s.std_dev - expect_sd).abs() < 1e-12);
        // t(0.975, df=7) = 2.365.
        let expect_ci = 2.365 * expect_sd / 8.0f64.sqrt();
        assert!(
            (s.ci95_half - expect_ci).abs() < 1e-9,
            "{} vs {}",
            s.ci95_half,
            expect_ci
        );
    }

    #[test]
    fn summarize_single_sample_has_zero_spread() {
        let s = summarize(&[3.25]);
        assert_eq!(s.n, 1);
        assert_eq!(s.mean, 3.25);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.ci95_half, 0.0);
    }

    #[test]
    fn summarize_empty_is_nan() {
        let s = summarize(&[]);
        assert_eq!(s.n, 0);
        assert!(s.mean.is_nan());
    }

    #[test]
    fn t_table_endpoints() {
        assert!((t_critical_975(1) - 12.706).abs() < 1e-9);
        assert!((t_critical_975(30) - 2.042).abs() < 1e-9);
        assert!((t_critical_975(31) - 1.96).abs() < 1e-9);
        assert!(t_critical_975(0).is_nan());
    }

    #[test]
    fn ci_shrinks_with_more_replications() {
        let few = summarize(&[1.0, 2.0, 3.0]);
        let many: Vec<f64> = (0..30).map(|i| 1.0 + (i % 3) as f64).collect();
        let more = summarize(&many);
        assert!(more.ci95_half < few.ci95_half);
    }
}
