//! The `bench-scale` harness: the Table I scalability configuration swept
//! across farm sizes, measured in wall-clock events/second and written to
//! `BENCH_scalability.json` so every PR leaves a performance trajectory
//! the next one has to beat.
//!
//! The grid points run the same configuration as
//! [`holdcsim::experiments::scalability`]: a server-only farm of
//! 4-core servers at ρ = 0.3 under the Web-Search preset with round-robin
//! dispatch — the event-rate stress case (no network events to hide
//! behind, one arrival + one completion per job).

use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};

use holdcsim::experiments::{
    net_scalability, scalability, NetScalabilityPoint, ScalabilityPoint, NET_SCALABILITY_BYTES,
    NET_SCALABILITY_FANOUT, NET_SCALABILITY_RHO, SCALABILITY_CORES, SCALABILITY_POLICY,
    SCALABILITY_PRESET, SCALABILITY_RHO,
};
use holdcsim::export::JsonObj;
use holdcsim_des::time::SimDuration;
use holdcsim_network::flow::FlowSolverKind;

/// The default farm sizes of the recorded baseline.
pub const DEFAULT_SIZES: &[usize] = &[16, 128, 1024];

/// The default simulated horizon per grid point.
pub const DEFAULT_DURATION: SimDuration = SimDuration::from_secs(2);

/// The default farm sizes of the network-heavy grid (fat trees of
/// k = 4 and k = 8).
pub const DEFAULT_NET_SIZES: &[usize] = &[16, 128];

/// The default simulated horizon per network-heavy point (network events
/// are ~three orders of magnitude denser than the server-only grid's).
pub const DEFAULT_NET_DURATION: SimDuration = SimDuration::from_millis(200);

/// Configuration for one bench-scale run.
#[derive(Debug, Clone)]
pub struct BenchScaleConfig {
    /// Farm sizes to sweep.
    pub sizes: Vec<usize>,
    /// Simulated horizon per size.
    pub duration: SimDuration,
    /// Farm sizes of the network-heavy grid (empty = skip the network
    /// arms).
    pub net_sizes: Vec<usize>,
    /// Simulated horizon per network-heavy point.
    pub net_duration: SimDuration,
    /// Fair-share solver arms of the flow comm model: the default runs
    /// the incremental production solver and the reference solver
    /// interleaved (A/B on the same grid) and asserts they complete the
    /// same flows.
    pub flow_solvers: Vec<FlowSolverKind>,
    /// Root seed.
    pub seed: u64,
    /// Repetitions per size; the *best* wall-clock time is kept, the
    /// standard way to suppress scheduler noise in throughput baselines.
    pub repeats: usize,
    /// Output path of the JSON baseline.
    pub out: PathBuf,
}

impl Default for BenchScaleConfig {
    fn default() -> Self {
        BenchScaleConfig {
            sizes: DEFAULT_SIZES.to_vec(),
            duration: DEFAULT_DURATION,
            net_sizes: DEFAULT_NET_SIZES.to_vec(),
            net_duration: DEFAULT_NET_DURATION,
            flow_solvers: vec![FlowSolverKind::Incremental, FlowSolverKind::Reference],
            seed: 42,
            repeats: 3,
            out: PathBuf::from("BENCH_scalability.json"),
        }
    }
}

/// Renders the `BENCH_scalability.json` document for `points` (the
/// server-only grid) and `net_points` (the network-heavy grid).
///
/// Schema (one object; see README "Performance baseline" for the field
/// glossary):
///
/// ```json
/// {
///   "bench": "scalability",
///   "config": {"cores_per_server": 4, "rho": 0.3, "preset": "web-search",
///              "policy": "round-robin", "sim_duration_s": 2.0,
///              "seed": 42, "repeats": 3,
///              "network": {"rho": 0.3, "fanout": 8, "edge_bytes": 65536,
///                          "sim_duration_s": 0.2}},
///   "points": [
///     {"servers": 16, "events": 15169, "jobs": 7583,
///      "wall_s": 0.004, "events_per_s": 3490224.0},
///     ...
///   ],
///   "network_points": [
///     {"servers": 16, "comm": "flow", "events": 120000, "jobs": 800,
///      "wall_s": 0.05, "events_per_s": 2400000.0},
///     ...
///   ]
/// }
/// ```
pub fn render_json(
    cfg: &BenchScaleConfig,
    points: &[ScalabilityPoint],
    net_points: &[NetScalabilityPoint],
) -> String {
    // The config block mirrors the actual Table I constants so the
    // committed baseline can never drift from what was measured.
    let policy = match SCALABILITY_POLICY {
        holdcsim::config::PolicyKind::RoundRobin => "round-robin",
        holdcsim::config::PolicyKind::LeastLoaded => "least-loaded",
        holdcsim::config::PolicyKind::PackFirst => "pack-first",
        holdcsim::config::PolicyKind::Random => "random",
        holdcsim::config::PolicyKind::NetworkAware => "network-aware",
    };
    let network = JsonObj::new()
        .num("rho", NET_SCALABILITY_RHO)
        .int("fanout", u64::from(NET_SCALABILITY_FANOUT))
        .int("edge_bytes", NET_SCALABILITY_BYTES)
        .num("sim_duration_s", cfg.net_duration.as_secs_f64())
        .finish();
    let config = JsonObj::new()
        .int("cores_per_server", u64::from(SCALABILITY_CORES))
        .num("rho", SCALABILITY_RHO)
        .str(
            "preset",
            &format!("{SCALABILITY_PRESET}")
                .to_lowercase()
                .replace(' ', "-"),
        )
        .str("policy", policy)
        .num("sim_duration_s", cfg.duration.as_secs_f64())
        .int("seed", cfg.seed)
        .int("repeats", cfg.repeats as u64)
        .raw("network", &network)
        .finish();
    let mut rows = String::from("[");
    for (i, p) in points.iter().enumerate() {
        if i > 0 {
            rows.push(',');
        }
        let row = JsonObj::new()
            .int("servers", p.servers as u64)
            .int("events", p.events)
            .int("jobs", p.jobs)
            .num("wall_s", p.wall_s)
            .num("events_per_s", p.events_per_s)
            .finish();
        let _ = write!(rows, "{row}");
    }
    rows.push(']');
    let mut net_rows = String::from("[");
    for (i, p) in net_points.iter().enumerate() {
        if i > 0 {
            net_rows.push(',');
        }
        let row = JsonObj::new()
            .int("servers", p.servers as u64)
            .str("comm", p.comm)
            .int("events", p.events)
            .int("jobs", p.jobs)
            .int("flows", p.flows)
            .num("wall_s", p.wall_s)
            .num("events_per_s", p.events_per_s)
            .finish();
        let _ = write!(net_rows, "{row}");
    }
    net_rows.push(']');
    let doc = JsonObj::new()
        .str("bench", "scalability")
        .raw("config", &config)
        .raw("points", &rows)
        .raw("network_points", &net_rows)
        .finish();
    format!("{doc}\n")
}

/// Runs the sweep, keeping the best wall-clock repetition per grid point.
pub fn measure(cfg: &BenchScaleConfig) -> (Vec<ScalabilityPoint>, Vec<NetScalabilityPoint>) {
    let mut best: Vec<ScalabilityPoint> = Vec::with_capacity(cfg.sizes.len());
    let mut net_best: Vec<NetScalabilityPoint> = Vec::new();
    for rep in 0..cfg.repeats.max(1) {
        let pts = scalability(&cfg.sizes, cfg.duration, cfg.seed);
        let net_pts = net_scalability(
            &cfg.net_sizes,
            cfg.net_duration,
            cfg.seed,
            &cfg.flow_solvers,
        );
        if rep == 0 {
            best = pts;
            net_best = net_pts;
            continue;
        }
        for (b, p) in best.iter_mut().zip(pts) {
            debug_assert_eq!(b.events, p.events, "same seed, same event count");
            if p.wall_s < b.wall_s {
                *b = p;
            }
        }
        for (b, p) in net_best.iter_mut().zip(net_pts) {
            debug_assert_eq!(b.events, p.events, "same seed, same event count");
            if p.wall_s < b.wall_s {
                *b = p;
            }
        }
    }
    (best, net_best)
}

/// Runs bench-scale and writes the baseline file; returns its path.
pub fn run_bench_scale(cfg: &BenchScaleConfig) -> io::Result<PathBuf> {
    eprintln!(
        "[bench-scale] sizes {:?} ({} each), network sizes {:?} ({} each), {} repeats",
        cfg.sizes, cfg.duration, cfg.net_sizes, cfg.net_duration, cfg.repeats
    );
    let (points, net_points) = measure(cfg);
    for p in &points {
        eprintln!(
            "[bench-scale] {:>6} servers: {:>9} events in {:.3} s -> {:.0} events/s",
            p.servers, p.events, p.wall_s, p.events_per_s
        );
    }
    for p in &net_points {
        eprintln!(
            "[bench-scale] {:>6} servers ({:>6}): {:>9} events in {:.3} s -> {:.0} events/s",
            p.servers, p.comm, p.events, p.wall_s, p.events_per_s
        );
    }
    write_baseline(&cfg.out, cfg, &points, &net_points)?;
    Ok(cfg.out.clone())
}

/// Writes the rendered baseline to `path`.
pub fn write_baseline(
    path: &Path,
    cfg: &BenchScaleConfig,
    points: &[ScalabilityPoint],
    net_points: &[NetScalabilityPoint],
) -> io::Result<()> {
    std::fs::write(path, render_json(cfg, points, net_points))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> BenchScaleConfig {
        BenchScaleConfig {
            sizes: vec![4],
            duration: SimDuration::from_millis(50),
            net_sizes: vec![4],
            net_duration: SimDuration::from_millis(20),
            flow_solvers: vec![FlowSolverKind::Incremental, FlowSolverKind::Reference],
            seed: 7,
            repeats: 2,
            out: std::env::temp_dir().join(format!("BENCH_test_{}.json", std::process::id())),
        }
    }

    #[test]
    fn measure_keeps_event_counts_stable() {
        let cfg = tiny();
        let (pts, net_pts) = measure(&cfg);
        assert_eq!(pts.len(), 1);
        assert!(pts[0].events > 0);
        assert!(pts[0].events_per_s > 0.0);
        // Two flow solver arms and one packet arm per network size.
        assert_eq!(net_pts.len(), 3);
        assert_eq!(
            (net_pts[0].comm, net_pts[1].comm, net_pts[2].comm),
            ("flow", "flow-ref", "packet")
        );
        assert!(net_pts.iter().all(|p| p.events > 0));
        // The A/B arms completed the very same flows (also asserted
        // inside `net_scalability`, which would have panicked).
        assert_eq!(net_pts[0].flows, net_pts[1].flows);
        assert!(net_pts[0].flows > 0, "transfers really flowed");
        assert!(
            net_pts[2].events > net_pts[0].events,
            "packetized transfers generate more events than flows"
        );
    }

    #[test]
    fn json_has_schema_fields() {
        let cfg = tiny();
        let (pts, net_pts) = measure(&cfg);
        let json = render_json(&cfg, &pts, &net_pts);
        for key in [
            "\"bench\":\"scalability\"",
            "\"config\":",
            "\"network\":",
            "\"fanout\":",
            "\"edge_bytes\":",
            "\"points\":",
            "\"network_points\":",
            "\"servers\":4",
            "\"comm\":\"flow\"",
            "\"comm\":\"flow-ref\"",
            "\"comm\":\"packet\"",
            "\"flows\":",
            "\"events\":",
            "\"events_per_s\":",
            "\"wall_s\":",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn writes_baseline_file() {
        let cfg = tiny();
        let path = run_bench_scale(&cfg).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("\"bench\":\"scalability\""));
        let _ = std::fs::remove_file(path);
    }
}
