//! The `bench-scale` harness: the Table I scalability configuration swept
//! across farm sizes, measured in wall-clock events/second and written to
//! `BENCH_scalability.json` so every PR leaves a performance trajectory
//! the next one has to beat.
//!
//! The grid points run the same configuration as
//! [`holdcsim::experiments::scalability`]: a server-only farm of
//! 4-core servers at ρ = 0.3 under the Web-Search preset with round-robin
//! dispatch — the event-rate stress case (no network events to hide
//! behind, one arrival + one completion per job).

use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};
use std::time::Instant;

use holdcsim::config::{ClusterConfig, CommModel, SimConfig, WanConfig};
use holdcsim::experiments::{
    net_incast, net_scalability, net_scalability_config, scalability, NetScalabilityPoint,
    ScalabilityPoint, NET_SCALABILITY_BYTES, NET_SCALABILITY_FANOUT, NET_SCALABILITY_RHO,
    SCALABILITY_CORES, SCALABILITY_POLICY, SCALABILITY_PRESET, SCALABILITY_RHO,
};
use holdcsim::export::JsonObj;
use holdcsim::sim::Simulation;
use holdcsim_cluster::Federation;
use holdcsim_des::time::SimDuration;
use holdcsim_faults::FaultPlan;
use holdcsim_network::flow::FlowSolverKind;
use holdcsim_obs::FingerprintConfig;
use holdcsim_sched::geo::GeoPolicy;

/// The default farm sizes of the recorded baseline.
pub const DEFAULT_SIZES: &[usize] = &[16, 128, 1024];

/// The default simulated horizon per grid point.
pub const DEFAULT_DURATION: SimDuration = SimDuration::from_secs(2);

/// The default farm sizes of the network-heavy grid (fat trees of
/// k = 4 and k = 8).
pub const DEFAULT_NET_SIZES: &[usize] = &[16, 128];

/// The default simulated horizon per network-heavy point (network events
/// are ~three orders of magnitude denser than the server-only grid's).
pub const DEFAULT_NET_DURATION: SimDuration = SimDuration::from_millis(200);

/// The default federation site counts of the multi-datacenter grid (the
/// 4-site point is the worker-count A/B acceptance case).
pub const DEFAULT_CLUSTERS: &[usize] = &[2, 4];

/// The default worker count of the federation grid's parallel arm.
pub const DEFAULT_FED_WORKERS: usize = 4;

/// The default per-site farm size of the multi-datacenter grid.
pub const DEFAULT_CLUSTER_SERVERS: usize = 16;

/// WAN link rate of the federation grid (10 Gb/s inter-cluster trunks).
pub const CLUSTER_WAN_BPS: u64 = 10_000_000_000;

/// WAN one-way latency of the federation grid.
pub const CLUSTER_WAN_LATENCY: SimDuration = SimDuration::from_millis(5);

/// Configuration for one bench-scale run.
#[derive(Debug, Clone)]
pub struct BenchScaleConfig {
    /// Farm sizes to sweep.
    pub sizes: Vec<usize>,
    /// Simulated horizon per size.
    pub duration: SimDuration,
    /// Farm sizes of the network-heavy grid (empty = skip the network
    /// arms).
    pub net_sizes: Vec<usize>,
    /// Simulated horizon per network-heavy point.
    pub net_duration: SimDuration,
    /// Site counts of the multi-datacenter federation grid (empty =
    /// skip the federation arms).
    pub clusters: Vec<usize>,
    /// Servers per site in the federation grid.
    pub cluster_servers: usize,
    /// Simulated horizon per federation point.
    pub cluster_duration: SimDuration,
    /// Window-pool workers of the federation grid's parallel arm (the
    /// serial reference arm always runs alongside it, interleaved A/B).
    pub fed_workers: usize,
    /// Fair-share solver arms of the flow comm model: the default runs
    /// the incremental production solver, the reference solver, and the
    /// cohort-cell solver interleaved (A/B/C on the same grid) and
    /// asserts they complete the same flows. The same arms drive the
    /// incast stress grid.
    pub flow_solvers: Vec<FlowSolverKind>,
    /// Re-run the network grid with determinism fingerprinting on and
    /// report the observability overhead per point.
    pub obs_overhead: bool,
    /// Re-run the Table I grid under a fault plan and record
    /// availability and clean-vs-affected tail latency per size.
    /// `Some("default")` uses a canned crash-storm scaled to each farm;
    /// any other value is a plan spec or file. `None` skips the arm
    /// (`fault_points` stays an empty array).
    pub faults: Option<String>,
    /// Root seed.
    pub seed: u64,
    /// Repetitions per size; the *best* wall-clock time is kept, the
    /// standard way to suppress scheduler noise in throughput baselines.
    pub repeats: usize,
    /// Output path of the JSON baseline.
    pub out: PathBuf,
}

impl Default for BenchScaleConfig {
    fn default() -> Self {
        BenchScaleConfig {
            sizes: DEFAULT_SIZES.to_vec(),
            duration: DEFAULT_DURATION,
            net_sizes: DEFAULT_NET_SIZES.to_vec(),
            net_duration: DEFAULT_NET_DURATION,
            clusters: DEFAULT_CLUSTERS.to_vec(),
            cluster_servers: DEFAULT_CLUSTER_SERVERS,
            cluster_duration: DEFAULT_NET_DURATION,
            fed_workers: DEFAULT_FED_WORKERS,
            flow_solvers: vec![
                FlowSolverKind::Incremental,
                FlowSolverKind::Reference,
                FlowSolverKind::Cohort,
            ],
            obs_overhead: false,
            faults: Some("default".to_string()),
            seed: 42,
            repeats: 3,
            out: PathBuf::from("BENCH_scalability.json"),
        }
    }
}

/// One observability-overhead measurement: a network grid point re-run
/// with determinism fingerprinting on (the always-on-capable capability a
/// debugging workflow would leave enabled).
#[derive(Debug, Clone, Copy)]
pub struct ObsOverheadPoint {
    /// Simulated servers.
    pub servers: usize,
    /// Communication model of this arm (`"flow"` or `"packet"`).
    pub comm: &'static str,
    /// Engine events processed.
    pub events: u64,
    /// Wall-clock seconds.
    pub wall_s: f64,
    /// Events per wall-clock second.
    pub events_per_s: f64,
}

/// Runs the network-heavy grid with fingerprinting on: the same fabric as
/// `net_scalability` (incremental flow solver and packet arms), measured
/// so the `obs_points` section can be compared against `network_points`
/// for the overhead gate.
pub fn obs_scalability(sizes: &[usize], duration: SimDuration, seed: u64) -> Vec<ObsOverheadPoint> {
    let packet = CommModel::Packet {
        mtu: 1_500,
        buffer_bytes: 1 << 20,
    };
    let mut points = Vec::with_capacity(sizes.len() * 2);
    for &servers in sizes {
        for (comm, label) in [(CommModel::Flow, "flow"), (packet, "packet")] {
            let mut cfg = net_scalability_config(servers, comm, duration, seed);
            cfg.obs.fingerprint = Some(FingerprintConfig::default());
            let (report, _arts) = Simulation::new(cfg).run_with_obs();
            points.push(ObsOverheadPoint {
                servers,
                comm: label,
                events: report.events_processed,
                wall_s: report.wall_s,
                events_per_s: report.events_per_sec(),
            });
        }
    }
    points
}

/// One fault-grid measurement: the Table I configuration re-run under a
/// fault plan, so the baseline tracks both the event-rate cost of the
/// fault machinery and the availability / tail-latency signal it reports.
#[derive(Debug, Clone, Copy)]
pub struct FaultScalabilityPoint {
    /// Simulated servers.
    pub servers: usize,
    /// Engine events processed.
    pub events: u64,
    /// Wall-clock seconds.
    pub wall_s: f64,
    /// Events per wall-clock second.
    pub events_per_s: f64,
    /// Server availability over the horizon.
    pub availability: f64,
    /// p99 sojourn of jobs never touched by a fault.
    pub clean_p99_s: f64,
    /// p99 sojourn of jobs that survived at least one retry.
    pub affected_p99_s: f64,
    /// Distinct jobs that saw at least one retry.
    pub jobs_retried: u64,
    /// Jobs abandoned after exhausting the retry budget.
    pub jobs_abandoned: u64,
}

/// The canned `--faults default` plan for a farm of `servers`: a crash
/// wave over the first half of the horizon (one crash per eighth of the
/// farm, capped at 8, each down a tenth of the run) plus one MTBF arm,
/// under the default retry policy. Pure arithmetic on (servers,
/// duration), so the same grid point always gets the same plan.
pub fn default_fault_spec(servers: usize, duration: SimDuration) -> String {
    let d_ms = duration.as_secs_f64() * 1e3;
    let crashes = (servers / 8).clamp(1, 8);
    let step_ms = d_ms * 0.5 / crashes as f64;
    let down_ms = d_ms * 0.1;
    let mut spec = String::new();
    for i in 0..crashes {
        let sid = i * servers / crashes;
        let at = d_ms * 0.1 + i as f64 * step_ms;
        let _ = write!(
            spec,
            "crash@{at:.3}ms:{sid}; recover@{:.3}ms:{sid}; ",
            at + down_ms
        );
    }
    let _ = write!(
        spec,
        "mtbf:server={},mtbf={:.3}ms,mttr={:.3}ms",
        servers / 2,
        d_ms * 0.4,
        d_ms * 0.05
    );
    spec
}

/// Runs the Table I grid under `spec` (`"default"` = [`default_fault_spec`]
/// per size) and measures throughput plus the resilience headline numbers.
#[allow(clippy::disallowed_methods)] // events/s vs wall-clock is the subject
pub fn fault_scalability(
    sizes: &[usize],
    duration: SimDuration,
    seed: u64,
    spec: &str,
) -> Vec<FaultScalabilityPoint> {
    let mut points = Vec::with_capacity(sizes.len());
    for &servers in sizes {
        let plan = if spec == "default" {
            FaultPlan::parse(&default_fault_spec(servers, duration))
                .expect("canned fault spec parses")
        } else {
            holdcsim_faults::load_plan(spec).expect("fault spec validated by the CLI")
        };
        let mut cfg = SimConfig::server_farm(
            servers,
            SCALABILITY_CORES,
            SCALABILITY_RHO,
            SCALABILITY_PRESET.template(),
            duration,
        )
        .with_seed(seed)
        .with_policy(SCALABILITY_POLICY);
        cfg.faults = Some(plan);
        let report = Simulation::new(cfg).run();
        let r = report
            .resilience
            .as_ref()
            .expect("fault runs always report resilience");
        points.push(FaultScalabilityPoint {
            servers,
            events: report.events_processed,
            wall_s: report.wall_s,
            events_per_s: report.events_per_sec(),
            availability: r.availability,
            clean_p99_s: r.clean.p99,
            affected_p99_s: r.affected.p99,
            jobs_retried: r.jobs_retried,
            jobs_abandoned: r.jobs_abandoned,
        });
    }
    points
}

/// One federation scalability measurement.
#[derive(Debug, Clone, Copy)]
pub struct FedScalabilityPoint {
    /// Federation sites.
    pub sites: usize,
    /// Servers per site.
    pub servers_per_site: usize,
    /// Site-fabric communication model of this arm (`"flow"` or
    /// `"packet"`).
    pub comm: &'static str,
    /// Engine events processed across all sites.
    pub events: u64,
    /// Jobs completed across the federation.
    pub jobs: u64,
    /// Jobs forwarded over the WAN.
    pub forwarded: u64,
    /// Worker threads of the parallel arm.
    pub fed_workers: usize,
    /// Wall-clock seconds of the parallel (window-pool) arm.
    pub wall_s: f64,
    /// Events per wall-clock second (parallel arm).
    pub events_per_s: f64,
    /// Wall-clock seconds of the serial reference arm on the same grid
    /// point (interleaved A/B; byte-identical report asserted).
    pub serial_wall_s: f64,
    /// `serial_wall_s / wall_s` — the conservative-window speedup.
    pub speedup: f64,
}

/// The federation configuration of one grid point: `sites` copies of the
/// network scalability fabric behind a full-mesh 10 Gb/s / 5 ms WAN,
/// load-balanced dispatch, and a skewed affinity mix (site 0 serves a
/// double share) so cross-site forwarding genuinely exercises the WAN.
pub fn fed_cluster_config(
    sites: usize,
    servers_per_site: usize,
    comm: CommModel,
    duration: SimDuration,
    seed: u64,
) -> ClusterConfig {
    let base = net_scalability_config(servers_per_site, comm, duration, seed);
    let mut cc = ClusterConfig::uniform(
        base,
        sites,
        WanConfig::full_mesh(sites, CLUSTER_WAN_BPS, CLUSTER_WAN_LATENCY),
    )
    .with_geo(GeoPolicy::LoadBalanced)
    .with_seed(seed);
    cc.job_bytes = NET_SCALABILITY_BYTES;
    cc.sites[0].affinity = Some(2.0);
    cc
}

/// The multi-datacenter companion to `net_scalability`: the same fabric
/// federated at each site count, once per communication model, measured
/// in federation-wide events per wall-clock second. Every grid point is
/// an interleaved A/B — serial reference arm first, then the
/// conservative-window parallel arm with `fed_workers` pooled threads —
/// with the two reports asserted byte-identical before either timing is
/// recorded.
#[allow(clippy::disallowed_methods)] // events/s vs wall-clock is the subject
pub fn fed_scalability(
    site_counts: &[usize],
    servers_per_site: usize,
    duration: SimDuration,
    seed: u64,
    fed_workers: usize,
) -> Vec<FedScalabilityPoint> {
    let packet = CommModel::Packet {
        mtu: 1_500,
        buffer_bytes: 1 << 20,
    };
    let mut points = Vec::with_capacity(site_counts.len() * 2);
    for &sites in site_counts {
        for (comm, label) in [(CommModel::Flow, "flow"), (packet, "packet")] {
            let cc = fed_cluster_config(sites, servers_per_site, comm, duration, seed);
            let t0 = Instant::now();
            let serial = Federation::new(&cc).run_serial();
            let serial_wall = t0.elapsed().as_secs_f64();
            let t1 = Instant::now();
            let report = Federation::new(&cc).run_with_workers(fed_workers);
            let wall = t1.elapsed().as_secs_f64();
            assert_eq!(
                serial.to_json(),
                report.to_json(),
                "the parallel federation arm diverged from serial \
                 ({sites} sites, {label}, {fed_workers} workers)"
            );
            points.push(FedScalabilityPoint {
                sites,
                servers_per_site,
                comm: label,
                events: report.events_processed,
                jobs: report.jobs_completed(),
                forwarded: report.jobs_forwarded(),
                fed_workers,
                wall_s: wall,
                events_per_s: report.events_processed as f64 / wall.max(1e-9),
                serial_wall_s: serial_wall,
                speedup: serial_wall / wall.max(1e-9),
            });
        }
    }
    points
}

/// Renders the `BENCH_scalability.json` document for `points` (the
/// server-only grid) and `net_points` (the network-heavy grid).
///
/// Schema (one object; see README "Performance baseline" for the field
/// glossary):
///
/// ```json
/// {
///   "bench": "scalability",
///   "config": {"cores_per_server": 4, "rho": 0.3, "preset": "web-search",
///              "policy": "round-robin", "sim_duration_s": 2.0,
///              "seed": 42, "repeats": 3,
///              "network": {"rho": 0.3, "fanout": 8, "edge_bytes": 65536,
///                          "sim_duration_s": 0.2}},
///   "points": [
///     {"servers": 16, "events": 15169, "jobs": 7583,
///      "wall_s": 0.004, "events_per_s": 3490224.0},
///     ...
///   ],
///   "network_points": [
///     {"servers": 16, "comm": "flow", "events": 120000, "jobs": 800,
///      "wall_s": 0.05, "events_per_s": 2400000.0},
///     ...
///   ],
///   "federation_points": [
///     {"sites": 2, "servers_per_site": 16, "comm": "flow",
///      "events": 240000, "jobs": 1500, "forwarded": 300,
///      "fed_workers": 4, "wall_s": 0.1, "events_per_s": 2400000.0,
///      "serial_wall_s": 0.3, "speedup": 3.0},
///     ...
///   ],
///   "fault_points": [
///     {"servers": 16, "events": 15300, "wall_s": 0.005,
///      "events_per_s": 3060000.0, "availability": 0.96,
///      "clean_p99_s": 0.02, "affected_p99_s": 0.15,
///      "jobs_retried": 40, "jobs_abandoned": 0},
///     ...
///   ]
/// }
/// ```
///
/// Federation rows are serial-vs-parallel A/B pairs measured on the same
/// grid point: `wall_s`/`events_per_s` time the `fed_workers`-thread
/// window-pool arm, `serial_wall_s` the thread-free reference arm, and
/// `speedup` is their ratio (best repeats kept independently per arm).
pub fn render_json(
    cfg: &BenchScaleConfig,
    points: &[ScalabilityPoint],
    net_points: &[NetScalabilityPoint],
    fed_points: &[FedScalabilityPoint],
    obs_points: &[ObsOverheadPoint],
    fault_points: &[FaultScalabilityPoint],
) -> String {
    // The config block mirrors the actual Table I constants so the
    // committed baseline can never drift from what was measured.
    let policy = match SCALABILITY_POLICY {
        holdcsim::config::PolicyKind::RoundRobin => "round-robin",
        holdcsim::config::PolicyKind::LeastLoaded => "least-loaded",
        holdcsim::config::PolicyKind::PackFirst => "pack-first",
        holdcsim::config::PolicyKind::Random => "random",
        holdcsim::config::PolicyKind::NetworkAware => "network-aware",
    };
    let network = JsonObj::new()
        .num("rho", NET_SCALABILITY_RHO)
        .int("fanout", u64::from(NET_SCALABILITY_FANOUT))
        .int("edge_bytes", NET_SCALABILITY_BYTES)
        .num("sim_duration_s", cfg.net_duration.as_secs_f64())
        .finish();
    let federation = JsonObj::new()
        .int("servers_per_site", cfg.cluster_servers as u64)
        .int("wan_bps", CLUSTER_WAN_BPS)
        .num("wan_latency_s", CLUSTER_WAN_LATENCY.as_secs_f64())
        .str("geo", "load-balanced")
        .num("sim_duration_s", cfg.cluster_duration.as_secs_f64())
        .int("fed_workers", cfg.fed_workers as u64)
        .finish();
    let config = JsonObj::new()
        .int("cores_per_server", u64::from(SCALABILITY_CORES))
        .num("rho", SCALABILITY_RHO)
        .str(
            "preset",
            &format!("{SCALABILITY_PRESET}")
                .to_lowercase()
                .replace(' ', "-"),
        )
        .str("policy", policy)
        .num("sim_duration_s", cfg.duration.as_secs_f64())
        .int("seed", cfg.seed)
        .int("repeats", cfg.repeats as u64)
        .raw("network", &network)
        .raw("federation", &federation)
        .finish();
    let mut rows = String::from("[");
    for (i, p) in points.iter().enumerate() {
        if i > 0 {
            rows.push(',');
        }
        let row = JsonObj::new()
            .int("servers", p.servers as u64)
            .int("events", p.events)
            .int("jobs", p.jobs)
            .num("wall_s", p.wall_s)
            .num("events_per_s", p.events_per_s)
            .finish();
        let _ = write!(rows, "{row}");
    }
    rows.push(']');
    let mut net_rows = String::from("[");
    for (i, p) in net_points.iter().enumerate() {
        if i > 0 {
            net_rows.push(',');
        }
        let row = JsonObj::new()
            .int("servers", p.servers as u64)
            .str("comm", p.comm)
            .int("events", p.events)
            .int("jobs", p.jobs)
            .int("flows", p.flows)
            .num("wall_s", p.wall_s)
            .num("events_per_s", p.events_per_s)
            .finish();
        let _ = write!(net_rows, "{row}");
    }
    net_rows.push(']');
    let mut fed_rows = String::from("[");
    for (i, p) in fed_points.iter().enumerate() {
        if i > 0 {
            fed_rows.push(',');
        }
        let row = JsonObj::new()
            .int("sites", p.sites as u64)
            .int("servers_per_site", p.servers_per_site as u64)
            .str("comm", p.comm)
            .int("events", p.events)
            .int("jobs", p.jobs)
            .int("forwarded", p.forwarded)
            .int("fed_workers", p.fed_workers as u64)
            .num("wall_s", p.wall_s)
            .num("events_per_s", p.events_per_s)
            .num("serial_wall_s", p.serial_wall_s)
            .num("speedup", p.speedup)
            .finish();
        let _ = write!(fed_rows, "{row}");
    }
    fed_rows.push(']');
    let mut obs_rows = String::from("[");
    for (i, p) in obs_points.iter().enumerate() {
        if i > 0 {
            obs_rows.push(',');
        }
        // Overhead relative to the matching obs-off network point (the
        // incremental `flow` arm or `packet`), when that arm was run.
        let base = net_points
            .iter()
            .find(|n| n.servers == p.servers && n.comm == p.comm);
        let mut row = JsonObj::new()
            .int("servers", p.servers as u64)
            .str("comm", p.comm)
            .int("events", p.events)
            .num("wall_s", p.wall_s)
            .num("events_per_s", p.events_per_s);
        if let Some(b) = base {
            row = row.num(
                "overhead_pct",
                (b.events_per_s / p.events_per_s.max(1e-9) - 1.0) * 100.0,
            );
        }
        let _ = write!(obs_rows, "{}", row.finish());
    }
    obs_rows.push(']');
    // `fault_points` is always present (empty when the arm is skipped)
    // so downstream schema greps never depend on the config.
    let mut fault_rows = String::from("[");
    for (i, p) in fault_points.iter().enumerate() {
        if i > 0 {
            fault_rows.push(',');
        }
        let row = JsonObj::new()
            .int("servers", p.servers as u64)
            .int("events", p.events)
            .num("wall_s", p.wall_s)
            .num("events_per_s", p.events_per_s)
            .num("availability", p.availability)
            .num("clean_p99_s", p.clean_p99_s)
            .num("affected_p99_s", p.affected_p99_s)
            .int("jobs_retried", p.jobs_retried)
            .int("jobs_abandoned", p.jobs_abandoned)
            .finish();
        let _ = write!(fault_rows, "{row}");
    }
    fault_rows.push(']');
    let doc = JsonObj::new()
        .str("bench", "scalability")
        .raw("config", &config)
        .raw("points", &rows)
        .raw("network_points", &net_rows)
        .raw("federation_points", &fed_rows)
        .raw("obs_points", &obs_rows)
        .raw("fault_points", &fault_rows)
        .finish();
    format!("{doc}\n")
}

/// Runs the sweep, keeping the best wall-clock repetition per grid point.
#[allow(clippy::type_complexity)]
pub fn measure(
    cfg: &BenchScaleConfig,
) -> (
    Vec<ScalabilityPoint>,
    Vec<NetScalabilityPoint>,
    Vec<FedScalabilityPoint>,
    Vec<ObsOverheadPoint>,
    Vec<FaultScalabilityPoint>,
) {
    let mut best: Vec<ScalabilityPoint> = Vec::with_capacity(cfg.sizes.len());
    let mut net_best: Vec<NetScalabilityPoint> = Vec::new();
    let mut fed_best: Vec<FedScalabilityPoint> = Vec::new();
    let mut obs_best: Vec<ObsOverheadPoint> = Vec::new();
    let mut fault_best: Vec<FaultScalabilityPoint> = Vec::new();
    for rep in 0..cfg.repeats.max(1) {
        let pts = scalability(&cfg.sizes, cfg.duration, cfg.seed);
        let mut net_pts = net_scalability(
            &cfg.net_sizes,
            cfg.net_duration,
            cfg.seed,
            &cfg.flow_solvers,
        );
        net_pts.extend(net_incast(
            &cfg.net_sizes,
            cfg.net_duration,
            cfg.seed,
            &cfg.flow_solvers,
        ));
        let fed_pts = fed_scalability(
            &cfg.clusters,
            cfg.cluster_servers,
            cfg.cluster_duration,
            cfg.seed,
            cfg.fed_workers,
        );
        let obs_pts = if cfg.obs_overhead {
            obs_scalability(&cfg.net_sizes, cfg.net_duration, cfg.seed)
        } else {
            Vec::new()
        };
        let fault_pts = match &cfg.faults {
            Some(spec) => fault_scalability(&cfg.sizes, cfg.duration, cfg.seed, spec),
            None => Vec::new(),
        };
        if rep == 0 {
            best = pts;
            net_best = net_pts;
            fed_best = fed_pts;
            obs_best = obs_pts;
            fault_best = fault_pts;
            continue;
        }
        for (b, p) in best.iter_mut().zip(pts) {
            debug_assert_eq!(b.events, p.events, "same seed, same event count");
            if p.wall_s < b.wall_s {
                *b = p;
            }
        }
        for (b, p) in net_best.iter_mut().zip(net_pts) {
            debug_assert_eq!(b.events, p.events, "same seed, same event count");
            if p.wall_s < b.wall_s {
                *b = p;
            }
        }
        for (b, p) in fed_best.iter_mut().zip(fed_pts) {
            debug_assert_eq!(b.events, p.events, "same seed, same event count");
            // The A/B arms are best-kept independently so scheduler noise
            // in one repeat's serial leg can't inflate the speedup.
            if p.wall_s < b.wall_s {
                b.wall_s = p.wall_s;
                b.events_per_s = p.events_per_s;
            }
            if p.serial_wall_s < b.serial_wall_s {
                b.serial_wall_s = p.serial_wall_s;
            }
            b.speedup = b.serial_wall_s / b.wall_s.max(1e-9);
        }
        for (b, p) in obs_best.iter_mut().zip(obs_pts) {
            debug_assert_eq!(b.events, p.events, "same seed, same event count");
            if p.wall_s < b.wall_s {
                *b = p;
            }
        }
        for (b, p) in fault_best.iter_mut().zip(fault_pts) {
            debug_assert_eq!(b.events, p.events, "same seed, same event count");
            if p.wall_s < b.wall_s {
                *b = p;
            }
        }
    }
    (best, net_best, fed_best, obs_best, fault_best)
}

/// Runs bench-scale and writes the baseline file; returns its path.
pub fn run_bench_scale(cfg: &BenchScaleConfig) -> io::Result<PathBuf> {
    eprintln!(
        "[bench-scale] sizes {:?} ({} each), network sizes {:?} ({} each), \
         clusters {:?} ({} servers/site, {} each), {} repeats",
        cfg.sizes,
        cfg.duration,
        cfg.net_sizes,
        cfg.net_duration,
        cfg.clusters,
        cfg.cluster_servers,
        cfg.cluster_duration,
        cfg.repeats
    );
    let (points, net_points, fed_points, obs_points, fault_points) = measure(cfg);
    for p in &points {
        eprintln!(
            "[bench-scale] {:>6} servers: {:>9} events in {:.3} s -> {:.0} events/s",
            p.servers, p.events, p.wall_s, p.events_per_s
        );
    }
    for p in &net_points {
        eprintln!(
            "[bench-scale] {:>6} servers ({:>6}): {:>9} events in {:.3} s -> {:.0} events/s",
            p.servers, p.comm, p.events, p.wall_s, p.events_per_s
        );
    }
    for p in &fed_points {
        eprintln!(
            "[bench-scale] {:>2} sites x {} ({:>6}): {:>9} events ({} fwd) in {:.3} s -> {:.0} events/s \
             ({} workers, serial {:.3} s, {:.2}x)",
            p.sites,
            p.servers_per_site,
            p.comm,
            p.events,
            p.forwarded,
            p.wall_s,
            p.events_per_s,
            p.fed_workers,
            p.serial_wall_s,
            p.speedup
        );
    }
    for p in &obs_points {
        let base = net_points
            .iter()
            .find(|n| n.servers == p.servers && n.comm == p.comm);
        let overhead = base
            .map(|b| {
                format!(
                    " ({:+.1}%)",
                    (b.events_per_s / p.events_per_s.max(1e-9) - 1.0) * 100.0
                )
            })
            .unwrap_or_default();
        eprintln!(
            "[bench-scale] {:>6} servers ({:>6}, +fp): {:>9} events in {:.3} s -> {:.0} events/s{overhead}",
            p.servers, p.comm, p.events, p.wall_s, p.events_per_s
        );
    }
    for p in &fault_points {
        eprintln!(
            "[bench-scale] {:>6} servers (faults): {:>9} events in {:.3} s -> {:.0} events/s \
             ({:.4}% avail, clean p99 {:.1} ms, affected p99 {:.1} ms, {} retried, {} abandoned)",
            p.servers,
            p.events,
            p.wall_s,
            p.events_per_s,
            p.availability * 100.0,
            p.clean_p99_s * 1e3,
            p.affected_p99_s * 1e3,
            p.jobs_retried,
            p.jobs_abandoned
        );
    }
    write_baseline(
        &cfg.out,
        cfg,
        &points,
        &net_points,
        &fed_points,
        &obs_points,
        &fault_points,
    )?;
    Ok(cfg.out.clone())
}

/// Writes the rendered baseline to `path`.
pub fn write_baseline(
    path: &Path,
    cfg: &BenchScaleConfig,
    points: &[ScalabilityPoint],
    net_points: &[NetScalabilityPoint],
    fed_points: &[FedScalabilityPoint],
    obs_points: &[ObsOverheadPoint],
    fault_points: &[FaultScalabilityPoint],
) -> io::Result<()> {
    std::fs::write(
        path,
        render_json(
            cfg,
            points,
            net_points,
            fed_points,
            obs_points,
            fault_points,
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> BenchScaleConfig {
        BenchScaleConfig {
            sizes: vec![4],
            duration: SimDuration::from_millis(50),
            net_sizes: vec![4],
            net_duration: SimDuration::from_millis(20),
            clusters: vec![2],
            cluster_servers: 4,
            cluster_duration: SimDuration::from_millis(20),
            fed_workers: 2,
            flow_solvers: vec![
                FlowSolverKind::Incremental,
                FlowSolverKind::Reference,
                FlowSolverKind::Cohort,
            ],
            obs_overhead: true,
            faults: Some("default".to_string()),
            seed: 7,
            repeats: 2,
            out: std::env::temp_dir().join(format!("BENCH_test_{}.json", std::process::id())),
        }
    }

    #[test]
    fn measure_keeps_event_counts_stable() {
        let cfg = tiny();
        let (pts, net_pts, fed_pts, obs_pts, fault_pts) = measure(&cfg);
        assert_eq!(pts.len(), 1);
        assert!(pts[0].events > 0);
        assert!(pts[0].events_per_s > 0.0);
        // Three flow solver arms and one packet arm per network size,
        // plus the three-arm incast stress grid.
        assert_eq!(net_pts.len(), 7);
        assert_eq!(
            net_pts.iter().map(|p| p.comm).collect::<Vec<_>>(),
            [
                "flow",
                "flow-ref",
                "flow-cohort",
                "packet",
                "incast",
                "incast-ref",
                "incast-cohort"
            ]
        );
        assert!(net_pts.iter().all(|p| p.events > 0));
        // The A/B/C arms completed the very same flows (also asserted
        // inside `net_scalability`, which would have panicked).
        assert_eq!(net_pts[0].flows, net_pts[1].flows);
        assert_eq!(net_pts[0].flows, net_pts[2].flows);
        assert_eq!(net_pts[4].flows, net_pts[6].flows);
        assert!(net_pts[0].flows > 0, "transfers really flowed");
        assert!(net_pts[4].flows > 0, "incast transfers really flowed");
        assert!(
            net_pts[3].events > net_pts[0].events,
            "packetized transfers generate more events than flows"
        );
        // One flow and one packet federation arm per site count, each an
        // A/B pair carrying both walls and their ratio.
        assert_eq!(fed_pts.len(), 2);
        assert_eq!((fed_pts[0].comm, fed_pts[1].comm), ("flow", "packet"));
        assert!(fed_pts.iter().all(|p| p.events > 0 && p.sites == 2));
        assert!(fed_pts.iter().all(|p| p.fed_workers == 2));
        assert!(fed_pts
            .iter()
            .all(|p| p.serial_wall_s > 0.0 && p.speedup > 0.0));
        // One fingerprinting arm per network point, same event stream.
        assert_eq!(obs_pts.len(), 2);
        assert_eq!((obs_pts[0].comm, obs_pts[1].comm), ("flow", "packet"));
        assert_eq!(obs_pts[0].events, net_pts[0].events);
        assert_eq!(obs_pts[1].events, net_pts[3].events);
        // One fault arm per size; the canned storm really injects.
        assert_eq!(fault_pts.len(), 1);
        assert!(fault_pts[0].events > 0);
        assert!(fault_pts[0].availability > 0.0 && fault_pts[0].availability < 1.0);
    }

    #[test]
    fn faultless_config_renders_empty_fault_points() {
        let mut cfg = tiny();
        cfg.faults = None;
        cfg.repeats = 1;
        let fault_pts = match &cfg.faults {
            Some(spec) => fault_scalability(&cfg.sizes, cfg.duration, cfg.seed, spec),
            None => Vec::new(),
        };
        let json = render_json(&cfg, &[], &[], &[], &[], &fault_pts);
        assert!(json.contains("\"fault_points\":[]"));
    }

    #[test]
    fn json_has_schema_fields() {
        let cfg = tiny();
        let (pts, net_pts, fed_pts, obs_pts, fault_pts) = measure(&cfg);
        let json = render_json(&cfg, &pts, &net_pts, &fed_pts, &obs_pts, &fault_pts);
        for key in [
            "\"bench\":\"scalability\"",
            "\"config\":",
            "\"network\":",
            "\"fanout\":",
            "\"edge_bytes\":",
            "\"federation\":",
            "\"wan_bps\":",
            "\"points\":",
            "\"network_points\":",
            "\"federation_points\":",
            "\"servers\":4",
            "\"comm\":\"flow\"",
            "\"comm\":\"flow-ref\"",
            "\"comm\":\"packet\"",
            "\"flows\":",
            "\"sites\":2",
            "\"servers_per_site\":4",
            "\"forwarded\":",
            "\"fed_workers\":2",
            "\"serial_wall_s\":",
            "\"speedup\":",
            "\"events\":",
            "\"events_per_s\":",
            "\"wall_s\":",
            "\"obs_points\":",
            "\"overhead_pct\":",
            "\"fault_points\":",
            "\"availability\":",
            "\"clean_p99_s\":",
            "\"affected_p99_s\":",
            "\"jobs_retried\":",
            "\"jobs_abandoned\":",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn writes_baseline_file() {
        let cfg = tiny();
        let path = run_bench_scale(&cfg).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("\"bench\":\"scalability\""));
        let _ = std::fs::remove_file(path);
    }
}
