//! The `bench-scale` harness: the Table I scalability configuration swept
//! across farm sizes, measured in wall-clock events/second and written to
//! `BENCH_scalability.json` so every PR leaves a performance trajectory
//! the next one has to beat.
//!
//! The grid points run the same configuration as
//! [`holdcsim::experiments::scalability`]: a server-only farm of
//! 4-core servers at ρ = 0.3 under the Web-Search preset with round-robin
//! dispatch — the event-rate stress case (no network events to hide
//! behind, one arrival + one completion per job).

use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};

use holdcsim::experiments::{
    scalability, ScalabilityPoint, SCALABILITY_CORES, SCALABILITY_POLICY, SCALABILITY_PRESET,
    SCALABILITY_RHO,
};
use holdcsim::export::JsonObj;
use holdcsim_des::time::SimDuration;

/// The default farm sizes of the recorded baseline.
pub const DEFAULT_SIZES: &[usize] = &[16, 128, 1024];

/// The default simulated horizon per grid point.
pub const DEFAULT_DURATION: SimDuration = SimDuration::from_secs(2);

/// Configuration for one bench-scale run.
#[derive(Debug, Clone)]
pub struct BenchScaleConfig {
    /// Farm sizes to sweep.
    pub sizes: Vec<usize>,
    /// Simulated horizon per size.
    pub duration: SimDuration,
    /// Root seed.
    pub seed: u64,
    /// Repetitions per size; the *best* wall-clock time is kept, the
    /// standard way to suppress scheduler noise in throughput baselines.
    pub repeats: usize,
    /// Output path of the JSON baseline.
    pub out: PathBuf,
}

impl Default for BenchScaleConfig {
    fn default() -> Self {
        BenchScaleConfig {
            sizes: DEFAULT_SIZES.to_vec(),
            duration: DEFAULT_DURATION,
            seed: 42,
            repeats: 3,
            out: PathBuf::from("BENCH_scalability.json"),
        }
    }
}

/// Renders the `BENCH_scalability.json` document for `points`.
///
/// Schema (one object):
///
/// ```json
/// {
///   "bench": "scalability",
///   "config": {"cores_per_server": 4, "rho": 0.3, "preset": "web-search",
///              "policy": "round-robin", "sim_duration_s": 2.0,
///              "seed": 42, "repeats": 3},
///   "points": [
///     {"servers": 16, "events": 15169, "jobs": 7583,
///      "wall_s": 0.004, "events_per_s": 3490224.0},
///     ...
///   ]
/// }
/// ```
pub fn render_json(cfg: &BenchScaleConfig, points: &[ScalabilityPoint]) -> String {
    // The config block mirrors the actual Table I constants so the
    // committed baseline can never drift from what was measured.
    let policy = match SCALABILITY_POLICY {
        holdcsim::config::PolicyKind::RoundRobin => "round-robin",
        holdcsim::config::PolicyKind::LeastLoaded => "least-loaded",
        holdcsim::config::PolicyKind::PackFirst => "pack-first",
        holdcsim::config::PolicyKind::Random => "random",
        holdcsim::config::PolicyKind::NetworkAware => "network-aware",
    };
    let config = JsonObj::new()
        .int("cores_per_server", u64::from(SCALABILITY_CORES))
        .num("rho", SCALABILITY_RHO)
        .str(
            "preset",
            &format!("{SCALABILITY_PRESET}")
                .to_lowercase()
                .replace(' ', "-"),
        )
        .str("policy", policy)
        .num("sim_duration_s", cfg.duration.as_secs_f64())
        .int("seed", cfg.seed)
        .int("repeats", cfg.repeats as u64)
        .finish();
    let mut rows = String::from("[");
    for (i, p) in points.iter().enumerate() {
        if i > 0 {
            rows.push(',');
        }
        let row = JsonObj::new()
            .int("servers", p.servers as u64)
            .int("events", p.events)
            .int("jobs", p.jobs)
            .num("wall_s", p.wall_s)
            .num("events_per_s", p.events_per_s)
            .finish();
        let _ = write!(rows, "{row}");
    }
    rows.push(']');
    let doc = JsonObj::new()
        .str("bench", "scalability")
        .raw("config", &config)
        .raw("points", &rows)
        .finish();
    format!("{doc}\n")
}

/// Runs the sweep, keeping the best wall-clock repetition per size.
pub fn measure(cfg: &BenchScaleConfig) -> Vec<ScalabilityPoint> {
    let mut best: Vec<ScalabilityPoint> = Vec::with_capacity(cfg.sizes.len());
    for rep in 0..cfg.repeats.max(1) {
        let pts = scalability(&cfg.sizes, cfg.duration, cfg.seed);
        if rep == 0 {
            best = pts;
            continue;
        }
        for (b, p) in best.iter_mut().zip(pts) {
            debug_assert_eq!(b.events, p.events, "same seed, same event count");
            if p.wall_s < b.wall_s {
                *b = p;
            }
        }
    }
    best
}

/// Runs bench-scale and writes the baseline file; returns its path.
pub fn run_bench_scale(cfg: &BenchScaleConfig) -> io::Result<PathBuf> {
    eprintln!(
        "[bench-scale] sizes {:?}, {} simulated per size, {} repeats",
        cfg.sizes, cfg.duration, cfg.repeats
    );
    let points = measure(cfg);
    for p in &points {
        eprintln!(
            "[bench-scale] {:>6} servers: {:>9} events in {:.3} s -> {:.0} events/s",
            p.servers, p.events, p.wall_s, p.events_per_s
        );
    }
    write_baseline(&cfg.out, cfg, &points)?;
    Ok(cfg.out.clone())
}

/// Writes the rendered baseline to `path`.
pub fn write_baseline(
    path: &Path,
    cfg: &BenchScaleConfig,
    points: &[ScalabilityPoint],
) -> io::Result<()> {
    std::fs::write(path, render_json(cfg, points))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> BenchScaleConfig {
        BenchScaleConfig {
            sizes: vec![4],
            duration: SimDuration::from_millis(50),
            seed: 7,
            repeats: 2,
            out: std::env::temp_dir().join(format!("BENCH_test_{}.json", std::process::id())),
        }
    }

    #[test]
    fn measure_keeps_event_counts_stable() {
        let cfg = tiny();
        let pts = measure(&cfg);
        assert_eq!(pts.len(), 1);
        assert!(pts[0].events > 0);
        assert!(pts[0].events_per_s > 0.0);
    }

    #[test]
    fn json_has_schema_fields() {
        let cfg = tiny();
        let pts = measure(&cfg);
        let json = render_json(&cfg, &pts);
        for key in [
            "\"bench\":\"scalability\"",
            "\"config\":",
            "\"points\":",
            "\"servers\":4",
            "\"events\":",
            "\"events_per_s\":",
            "\"wall_s\":",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn writes_baseline_file() {
        let cfg = tiny();
        let path = run_bench_scale(&cfg).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("\"bench\":\"scalability\""));
        let _ = std::fs::remove_file(path);
    }
}
