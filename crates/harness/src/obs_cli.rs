//! Shared CLI plumbing for the observability flags (`--trace`,
//! `--metrics`, `--fingerprint`, `--profile`) exposed by the `run`,
//! `federate`, and `sweep` subcommands.
//!
//! Parsing turns the flag map into an [`ObsConfig`] plus output paths;
//! [`ObsCli::emit`] writes whatever artifacts a finished run produced.
//! Multi-run surfaces (federation sites, sweep trials) pass a tag that is
//! spliced into each file name before the extension, so one `--fingerprint
//! fp.json` flag fans out to `fp.site0.json`, `fp.site1.json`, …

// Flag maps are `--key value` lookups, never iterated (lint D001); the
// harness layer also sits outside the deterministic sim state entirely.
#[allow(clippy::disallowed_types)]
use std::collections::HashMap;
use std::path::{Path, PathBuf};

use holdcsim_des::time::SimDuration;
use holdcsim_obs::{
    FingerprintConfig, MetricsConfig, MetricsData, ObsArtifacts, ObsConfig, ProfileConfig,
    TraceConfig,
};

/// Output format for `--trace`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceFormat {
    /// One JSON object per line (the default).
    Jsonl,
    /// Chrome trace-event JSON, loadable in Perfetto / `chrome://tracing`.
    Chrome,
}

/// The parsed observability flags: capability config plus output routing.
#[derive(Debug, Clone)]
pub struct ObsCli {
    /// The capability switches handed to the simulator.
    pub cfg: ObsConfig,
    /// `--trace FILE` destination.
    pub trace_path: Option<PathBuf>,
    /// `--trace-format jsonl|chrome`.
    pub trace_format: TraceFormat,
    /// `--metrics FILE` destination.
    pub metrics_path: Option<PathBuf>,
    /// `--fingerprint FILE` destination.
    pub fingerprint_path: Option<PathBuf>,
    /// `--profile` (table goes to stdout, no file).
    pub profile: bool,
}

impl ObsCli {
    /// The option keys every obs-aware subcommand accepts (for
    /// `parse_opts` allow-lists).
    pub const OPTS: [&'static str; 9] = [
        "trace",
        "trace-format",
        "trace-limit",
        "metrics",
        "metrics-period",
        "fingerprint",
        "fingerprint-every",
        "profile",
        "profile-sample",
    ];

    /// Builds the observability configuration from a parsed `--key value`
    /// map. Modifier flags without their base flag (e.g. `--trace-limit`
    /// without `--trace`) are rejected.
    #[allow(clippy::disallowed_types)] // keyed flag lookups; never iterated
    pub fn from_opts(opts: &HashMap<String, String>) -> Result<Self, String> {
        fn num<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, String> {
            s.parse().map_err(|_| format!("invalid {what}: `{s}`"))
        }
        let mut cfg = ObsConfig::default();
        let trace_path = opts.get("trace").map(PathBuf::from);
        if trace_path.is_some() {
            let mut tc = TraceConfig::default();
            if let Some(s) = opts.get("trace-limit") {
                tc.limit = num(s, "trace limit")?;
            }
            cfg.trace = Some(tc);
        } else if opts.contains_key("trace-limit") || opts.contains_key("trace-format") {
            return Err("`--trace-limit`/`--trace-format` need `--trace FILE`".into());
        }
        let trace_format = match opts.get("trace-format").map(String::as_str) {
            None | Some("jsonl") => TraceFormat::Jsonl,
            Some("chrome") => TraceFormat::Chrome,
            Some(other) => return Err(format!("unknown trace format `{other}`")),
        };
        let metrics_path = opts.get("metrics").map(PathBuf::from);
        if metrics_path.is_some() {
            let mut mc = MetricsConfig::default();
            if let Some(s) = opts.get("metrics-period") {
                mc.period = SimDuration::from_secs_f64(num(s, "metrics period")?);
            }
            cfg.metrics = Some(mc);
        } else if opts.contains_key("metrics-period") {
            return Err("`--metrics-period` needs `--metrics FILE`".into());
        }
        let fingerprint_path = opts.get("fingerprint").map(PathBuf::from);
        if fingerprint_path.is_some() {
            let mut fc = FingerprintConfig::default();
            if let Some(s) = opts.get("fingerprint-every") {
                fc.every = num(s, "fingerprint cadence")?;
            }
            cfg.fingerprint = Some(fc);
        } else if opts.contains_key("fingerprint-every") {
            return Err("`--fingerprint-every` needs `--fingerprint FILE`".into());
        }
        let profile = opts.contains_key("profile");
        if profile {
            let mut pc = ProfileConfig::default();
            if let Some(s) = opts.get("profile-sample") {
                pc.sample = num(s, "profile sample rate")?;
            }
            cfg.profile = Some(pc);
        } else if opts.contains_key("profile-sample") {
            return Err("`--profile-sample` needs `--profile`".into());
        }
        Ok(ObsCli {
            cfg,
            trace_path,
            trace_format,
            metrics_path,
            fingerprint_path,
            profile,
        })
    }

    /// `true` when no flag was given (nothing to write).
    pub fn is_off(&self) -> bool {
        self.cfg.is_off()
    }

    /// Writes the artifacts of one finished run: trace/metrics/fingerprint
    /// files (with `tag` spliced before the extension when given) plus the
    /// profile table on stdout. Written paths are logged to stderr.
    pub fn emit(&self, arts: &ObsArtifacts, tag: Option<&str>) -> Result<(), String> {
        let mut written: Vec<PathBuf> = Vec::new();
        if let Some(path) = &self.trace_path {
            let content = match self.trace_format {
                TraceFormat::Jsonl => arts.trace_jsonl(),
                TraceFormat::Chrome => arts.trace_chrome(),
            };
            if let Some(content) = content {
                written.push(write_tagged(path, tag, &content)?);
            }
        }
        if let Some(path) = &self.metrics_path {
            if let Some(content) = arts.metrics_jsonl() {
                written.push(write_tagged(path, tag, &content)?);
            }
        }
        if let Some(path) = &self.fingerprint_path {
            if let Some(content) = arts.fingerprint_file() {
                written.push(write_tagged(path, tag, &content)?);
            }
        }
        for p in &written {
            eprintln!("[obs] wrote {}", p.display());
        }
        if let Some(table) = arts.profile_table() {
            print!("{table}");
        }
        Ok(())
    }

    /// Writes a coordinator-level metrics series (e.g. the federation's
    /// WAN probes) under the `--metrics` path with `tag` spliced in.
    pub fn emit_extra_metrics(&self, data: &MetricsData, tag: &str) -> Result<(), String> {
        if let Some(path) = &self.metrics_path {
            let p = write_tagged(path, Some(tag), &data.render_jsonl(None))?;
            eprintln!("[obs] wrote {}", p.display());
        }
        Ok(())
    }
}

/// Splices `tag` into `path` before the extension (`fp.json` + `site0` →
/// `fp.site0.json`) and writes `content` there.
fn write_tagged(path: &Path, tag: Option<&str>, content: &str) -> Result<PathBuf, String> {
    let p = match tag {
        None => path.to_path_buf(),
        Some(t) => match path.extension().and_then(|e| e.to_str()) {
            Some(ext) => path.with_extension(format!("{t}.{ext}")),
            None => path.with_extension(t),
        },
    };
    std::fs::write(&p, content).map_err(|e| format!("writing {}: {e}", p.display()))?;
    Ok(p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[allow(clippy::disallowed_types)] // test helper building a flag map
    fn opts(pairs: &[(&str, &str)]) -> HashMap<String, String> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect()
    }

    #[test]
    fn empty_opts_turn_everything_off() {
        let cli = ObsCli::from_opts(&opts(&[])).unwrap();
        assert!(cli.is_off());
        assert!(!cli.profile);
    }

    #[test]
    fn flags_populate_the_config() {
        let cli = ObsCli::from_opts(&opts(&[
            ("trace", "t.json"),
            ("trace-format", "chrome"),
            ("trace-limit", "100"),
            ("metrics", "m.jsonl"),
            ("metrics-period", "0.5"),
            ("fingerprint", "fp.json"),
            ("fingerprint-every", "1000"),
            ("profile", "true"),
            ("profile-sample", "16"),
        ]))
        .unwrap();
        assert_eq!(cli.trace_format, TraceFormat::Chrome);
        assert_eq!(cli.cfg.trace.unwrap().limit, 100);
        assert_eq!(
            cli.cfg.metrics.unwrap().period,
            SimDuration::from_secs_f64(0.5)
        );
        assert_eq!(cli.cfg.fingerprint.unwrap().every, 1000);
        assert_eq!(cli.cfg.profile.unwrap().sample, 16);
    }

    #[test]
    fn modifier_without_base_flag_is_rejected() {
        assert!(ObsCli::from_opts(&opts(&[("trace-limit", "9")])).is_err());
        assert!(ObsCli::from_opts(&opts(&[("metrics-period", "1")])).is_err());
        assert!(ObsCli::from_opts(&opts(&[("fingerprint-every", "2")])).is_err());
        assert!(ObsCli::from_opts(&opts(&[("profile-sample", "8")])).is_err());
    }

    #[test]
    fn tags_are_spliced_before_the_extension() {
        let dir = std::env::temp_dir().join("holdcsim_obs_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("fp.json");
        let p = write_tagged(&base, Some("site1"), "x").unwrap();
        assert!(p.ends_with("fp.site1.json"));
        assert_eq!(std::fs::read_to_string(&p).unwrap(), "x");
        let bare = write_tagged(&dir.join("fp"), Some("site2"), "y").unwrap();
        assert!(bare.ends_with("fp.site2"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
