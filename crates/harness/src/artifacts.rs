//! Structured sweep artifacts: per-trial JSONL and per-point summary
//! CSV/JSONL, rendered with `holdcsim::export`'s JSON builder and written
//! under an output directory.

use std::io;
use std::path::{Path, PathBuf};

use holdcsim::export::{json_f64, JsonObj};

use crate::agg::METRIC_NAMES;
use crate::exec::SweepResult;
use crate::grid::TrialPoint;

fn point_fields(obj: JsonObj, p: &TrialPoint) -> JsonObj {
    let obj = obj
        .str("policy", &format!("{:?}", p.policy))
        .str("preset", &p.preset.to_string())
        .int("servers", p.servers as u64)
        .int("cores", p.cores as u64)
        .num("rho", p.rho);
    match p.tau_s {
        Some(t) => obj.num("tau_s", t),
        None => obj.raw("tau_s", "null"),
    }
}

/// One JSON object per trial (point coordinates, replicate, seed, every
/// metric by name), newline-delimited.
pub fn trials_jsonl(result: &SweepResult) -> String {
    let mut out = String::new();
    for t in &result.trials {
        let mut obj = JsonObj::new()
            .str("sweep", &result.name)
            .int("trial", t.spec.index as u64)
            .int("point", t.spec.point_index as u64)
            .int("replicate", t.spec.replicate as u64)
            .int("seed", t.spec.seed)
            .num("duration_s", t.spec.duration.as_secs_f64());
        obj = point_fields(obj, &t.spec.point);
        for (name, value) in METRIC_NAMES.iter().zip(t.metrics.values()) {
            obj = obj.num(name, *value);
        }
        out.push_str(&obj.finish());
        out.push('\n');
    }
    out
}

/// One JSON object per grid point with `{mean, std_dev, ci95_half}` per
/// metric, newline-delimited.
pub fn summary_jsonl(result: &SweepResult) -> String {
    let mut out = String::new();
    for s in &result.summaries {
        let mut obj = JsonObj::new()
            .str("sweep", &result.name)
            .int("point", s.point_index as u64)
            .int("replications", s.replications);
        obj = point_fields(obj, &s.point);
        for (name, m) in METRIC_NAMES.iter().zip(&s.metrics) {
            let nested = JsonObj::new()
                .num("mean", m.mean)
                .num("std_dev", m.std_dev)
                .num("ci95_half", m.ci95_half)
                .finish();
            obj = obj.raw(name, &nested);
        }
        out.push_str(&obj.finish());
        out.push('\n');
    }
    out
}

/// The per-point summary as CSV: point coordinates, then
/// `mean/std/ci95` columns for every metric.
pub fn summary_csv(result: &SweepResult) -> String {
    let mut out = String::from("point,policy,preset,servers,cores,rho,tau_s,replications");
    for name in METRIC_NAMES {
        out.push_str(&format!(",{name}_mean,{name}_std,{name}_ci95"));
    }
    out.push('\n');
    for s in &result.summaries {
        let tau = match s.point.tau_s {
            Some(t) => format!("{t}"),
            None => String::new(),
        };
        out.push_str(&format!(
            "{},{:?},{},{},{},{},{},{}",
            s.point_index,
            s.point.policy,
            s.point.preset,
            s.point.servers,
            s.point.cores,
            s.point.rho,
            tau,
            s.replications,
        ));
        for m in &s.metrics {
            out.push_str(&format!(
                ",{},{},{}",
                json_f64(m.mean),
                json_f64(m.std_dev),
                json_f64(m.ci95_half)
            ));
        }
        out.push('\n');
    }
    out
}

/// Writes `trials.jsonl`, `summary.jsonl`, and `summary.csv` under
/// `dir/<sweep-name>/`, creating directories as needed. Returns the
/// written paths.
pub fn write_artifacts(dir: &Path, result: &SweepResult) -> io::Result<Vec<PathBuf>> {
    let base = dir.join(&result.name);
    std::fs::create_dir_all(&base)?;
    let files = [
        ("trials.jsonl", trials_jsonl(result)),
        ("summary.jsonl", summary_jsonl(result)),
        ("summary.csv", summary_csv(result)),
    ];
    let mut paths = Vec::with_capacity(files.len());
    for (name, content) in files {
        let path = base.join(name);
        std::fs::write(&path, content)?;
        paths.push(path);
    }
    Ok(paths)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::run_plan;
    use crate::grid::SweepPlan;
    use holdcsim_des::time::SimDuration;

    fn small_result() -> SweepResult {
        let plan = SweepPlan::new("artifacts-test")
            .utilizations(&[0.2])
            .replications(2)
            .duration(SimDuration::from_secs(3));
        run_plan(&plan, 2, false).unwrap()
    }

    #[test]
    fn jsonl_has_one_line_per_trial_and_parses_shallowly() {
        let r = small_result();
        let jsonl = trials_jsonl(&r);
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), r.trials.len());
        for l in lines {
            assert!(l.starts_with('{') && l.ends_with('}'), "not an object: {l}");
            assert!(l.contains("\"energy_j\":"));
            assert!(l.contains("\"seed\":"));
        }
    }

    #[test]
    fn summary_csv_is_rectangular() {
        let r = small_result();
        let csv = summary_csv(&r);
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        let cols = header.split(',').count();
        assert_eq!(cols, 8 + 3 * METRIC_NAMES.len());
        let mut rows = 0;
        for l in lines {
            assert_eq!(l.split(',').count(), cols, "ragged row: {l}");
            rows += 1;
        }
        assert_eq!(rows, r.summaries.len());
    }

    #[test]
    fn write_artifacts_creates_all_files() {
        let r = small_result();
        let dir = std::env::temp_dir().join(format!("holdcsim-artifacts-{}", std::process::id()));
        let paths = write_artifacts(&dir, &r).unwrap();
        assert_eq!(paths.len(), 3);
        for p in &paths {
            assert!(p.exists(), "{p:?} missing");
            assert!(std::fs::metadata(p).unwrap().len() > 0);
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
