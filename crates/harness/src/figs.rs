//! Paper-figure front-ends on top of the sweep runner: each function
//! reproduces one figure/table of Yao et al. (IISWC 2019) and prints it
//! in the row/series format the `holdcsim-bench` binaries used — but the
//! sweeps run in parallel through [`crate::exec`].

use holdcsim::experiments::{
    self, fig6_from_reports, fig8_residency, scalability, DelayTimerCurve,
};
use holdcsim_des::time::SimDuration;
use holdcsim_workload::presets::WorkloadPreset;

use crate::exec::{run_configs, run_plan};
use crate::grid::SweepPlan;

/// Scale knobs shared by all figures.
#[derive(Debug, Clone, Copy)]
pub struct FigScale {
    /// Reduced-scale run (CI-friendly).
    pub quick: bool,
    /// Worker threads.
    pub threads: usize,
    /// Root seed.
    pub seed: u64,
}

impl FigScale {
    fn pick(&self, full: u64, quick: u64) -> u64 {
        if self.quick {
            quick
        } else {
            full
        }
    }
}

/// Fig. 4: provisioning controller tracking a diurnal trace. Prints the
/// sampled `time_s,active_jobs,active_servers` series as CSV, decimated
/// to ~200 points.
pub fn fig4(scale: &FigScale) {
    let servers = scale.pick(50, 10) as usize;
    let duration = SimDuration::from_secs(scale.pick(1_200, 60));
    eprintln!("# Fig. 4 — provisioning ({servers} servers, {duration})");
    let r = experiments::fig4_provisioning(servers, duration, scale.seed);
    println!("time_s,active_jobs,active_servers");
    let stride = (r.time_s.len() / 200).max(1);
    for i in (0..r.time_s.len()).step_by(stride) {
        println!(
            "{:.0},{:.1},{:.0}",
            r.time_s[i], r.active_jobs[i], r.active_servers[i]
        );
    }
    let min = r.active_servers.iter().copied().fold(f64::MAX, f64::min);
    let max = r.active_servers.iter().copied().fold(0.0, f64::max);
    eprintln!(
        "# active servers ranged {min:.0}..{max:.0} of {servers}; {} jobs completed; p95 {:.1} ms",
        r.report.jobs_completed,
        r.report.latency.p95 * 1e3,
    );
}

/// Fig. 5: farm energy vs single delay-timer τ — the U-shaped curves —
/// run as one parallel sweep per workload preset.
pub fn fig5(scale: &FigScale) {
    let servers = scale.pick(50, 8) as usize;
    let duration = SimDuration::from_secs(scale.pick(150, 30));
    let rhos = [0.1, 0.3, 0.6];
    for (preset, taus) in [
        (
            WorkloadPreset::WebSearch,
            vec![0.05, 0.1, 0.2, 0.4, 0.8, 1.6, 3.0, 5.0],
        ),
        (
            WorkloadPreset::WebServing,
            vec![0.2, 0.5, 1.2, 2.4, 4.8, 8.0, 14.0, 20.0],
        ),
    ] {
        eprintln!("# Fig. 5 — {preset} ({servers} servers x 4 cores, {duration})");
        let plan = SweepPlan::new(&format!("fig5-{preset}"))
            .seed(scale.seed)
            .duration(duration)
            .presets(&[preset])
            .servers(&[servers])
            .cores(&[4])
            .utilizations(&rhos)
            .taus_s(&taus);
        let result = run_plan(&plan, scale.threads, false).expect("fig5 grid is valid");
        // Point order is ρ-major, τ-minor: regroup into one curve per ρ.
        let curves: Vec<DelayTimerCurve> = rhos
            .iter()
            .enumerate()
            .map(|(ri, &rho)| DelayTimerCurve {
                rho,
                points: taus
                    .iter()
                    .enumerate()
                    .map(|(ti, &tau)| {
                        let s = &result.summaries[ri * taus.len() + ti];
                        (tau, s.get("energy_j").expect("known metric").mean)
                    })
                    .collect(),
            })
            .collect();
        print!("tau_s");
        for c in &curves {
            print!(",energy_MJ_rho{}", c.rho);
        }
        println!();
        for (i, &tau) in taus.iter().enumerate() {
            print!("{tau}");
            for c in &curves {
                print!(",{:.4}", c.points[i].1 / 1e6);
            }
            println!();
        }
        for c in &curves {
            eprintln!(
                "#   rho={}: optimal tau = {:.2} s",
                c.rho,
                c.optimal_tau_s()
            );
        }
    }
}

/// Fig. 6: dual delay timers vs Active-Idle vs best single τ. The three
/// arms of every (farm, workload, ρ) cell run concurrently.
pub fn fig6(scale: &FigScale) {
    let duration = SimDuration::from_secs(scale.pick(120, 30));
    let farms: Vec<usize> = if scale.quick { vec![8] } else { vec![20, 100] };
    let cells: Vec<(usize, WorkloadPreset, f64, f64)> = farms
        .iter()
        .flat_map(|&servers| {
            [
                (WorkloadPreset::WebSearch, 0.4),
                (WorkloadPreset::WebServing, 4.8),
            ]
            .into_iter()
            .flat_map(move |(preset, tau)| {
                [0.1, 0.3, 0.6]
                    .into_iter()
                    .map(move |rho| (servers, preset, rho, tau))
            })
        })
        .collect();
    let configs = cells
        .iter()
        .flat_map(|&(servers, preset, rho, tau)| {
            experiments::fig6_configs(preset, rho, servers, 4, tau, duration, scale.seed)
        })
        .collect();
    let reports = run_configs(configs, scale.threads, None);
    println!(
        "| farm | workload | rho | E(active-idle) MJ | E(single) MJ | E(dual) MJ | reduction vs AI | reduction vs single | p95 dual ms |"
    );
    for (i, &(servers, preset, rho, _)) in cells.iter().enumerate() {
        let arms: &[_; 3] = reports[3 * i..3 * i + 3]
            .try_into()
            .expect("three arms per cell");
        let r = fig6_from_reports(rho, servers, arms);
        println!(
            "| {} | {} | {} | {:.4} | {:.4} | {:.4} | {:.1}% | {:.1}% | {:.1} |",
            servers,
            preset,
            rho,
            r.energy_active_idle_j / 1e6,
            r.energy_single_j / 1e6,
            r.energy_dual_j / 1e6,
            r.reduction_vs_active_idle() * 100.0,
            r.reduction_vs_single() * 100.0,
            r.p95_dual_s * 1e3,
        );
    }
}

/// Fig. 8: WASP state-residency stacked bars for utilizations 0.1–0.9,
/// both workload presets.
pub fn fig8(scale: &FigScale) {
    let servers = scale.pick(10, 4) as usize;
    let cores = scale.pick(10, 4) as u32;
    let duration = SimDuration::from_secs(scale.pick(120, 30));
    let rhos: Vec<f64> = (1..=9).map(|i| i as f64 / 10.0).collect();
    for preset in [WorkloadPreset::WebSearch, WorkloadPreset::WebServing] {
        eprintln!("# Fig. 8 — {preset} ({servers} servers x {cores} cores, {duration})");
        println!("rho,active,wakeup,idle,pkg_c6,sys_sleep,p90_ms");
        for b in fig8_residency(preset, &rhos, servers, cores, duration, scale.seed) {
            let (a, w, i, c6, s3) = b.bands;
            println!(
                "{:.1},{a:.3},{w:.3},{i:.3},{c6:.3},{s3:.3},{:.2}",
                b.rho,
                b.p90_s * 1e3
            );
        }
    }
}

/// Fig. 9: per-server energy breakdown (CPU / DRAM / platform),
/// delay-timer vs workload-adaptive pools.
pub fn fig9(scale: &FigScale) {
    let servers = scale.pick(10, 4) as usize;
    let cores = scale.pick(10, 4) as u32;
    let duration = SimDuration::from_secs(scale.pick(300, 40));
    eprintln!("# Fig. 9 — breakdown ({servers} servers x {cores} cores, {duration})");
    let r = experiments::fig9_breakdown(servers, cores, duration, scale.seed);
    println!("strategy,server,cpu_kJ,dram_kJ,platform_kJ");
    for (name, rows) in [
        ("delay-timer", &r.delay_timer),
        ("workload-adaptive", &r.adaptive),
    ] {
        for (i, (c, d, p)) in rows.iter().enumerate() {
            println!(
                "{name},{},{:.2},{:.2},{:.2}",
                i + 1,
                c / 1e3,
                d / 1e3,
                p / 1e3
            );
        }
    }
    eprintln!(
        "# totals: delay-timer {:.1} kJ, adaptive {:.1} kJ -> {:.1}% saving (paper: 39%)",
        r.total_delay_timer_j / 1e3,
        r.total_adaptive_j / 1e3,
        r.adaptive_saving() * 100.0
    );
}

/// Fig. 11: Server-Load-Balance vs Server-Network-Aware placement on a
/// fat tree (k=4): power table plus the ρ=0.3 response-time CDF.
pub fn fig11(scale: &FigScale) {
    let jobs = scale.pick(2_000, 300) as usize;
    let flow_bytes = scale.pick(100_000_000, 10_000_000);
    let drain = SimDuration::from_secs(scale.pick(30, 10));
    println!("| rho | policy | server W | network W | p95 ms | jobs |");
    let mut cdfs = Vec::new();
    for rho in [0.3, 0.6] {
        let r = experiments::fig11_joint(rho, jobs, flow_bytes, drain, scale.seed);
        for (name, p) in [
            ("server-load-balance", &r.balanced),
            ("server-network-aware", &r.aware),
        ] {
            println!(
                "| {rho} | {name} | {:.1} | {:.1} | {:.1} | {} |",
                p.server_power_w,
                p.network_power_w,
                p.p95_s * 1e3,
                p.jobs
            );
        }
        eprintln!(
            "# rho={rho}: server saving {:.1}%, network saving {:.1}% (paper: ~20% / ~18%)",
            r.server_saving() * 100.0,
            r.network_saving() * 100.0
        );
        cdfs.push((rho, r));
    }
    // Fig. 11b: latency CDF for rho = 0.3.
    if let Some((rho, r)) = cdfs.first() {
        println!();
        println!("# CDF at rho={rho}: cdf_fraction,balanced_latency_s,aware_latency_s");
        let n = 50;
        for i in 1..=n {
            let q = i as f64 / n as f64;
            let pick = |cdf: &[(f64, f64)]| -> f64 {
                let idx = ((q * cdf.len() as f64).ceil() as usize).clamp(1, cdf.len());
                cdf[idx - 1].0
            };
            println!(
                "{:.2},{:.4},{:.4}",
                q,
                pick(&r.balanced.latency_cdf),
                pick(&r.aware.latency_cdf)
            );
        }
    }
}

/// Table I: event-throughput scalability across farm sizes.
pub fn table1(scale: &FigScale) {
    let sizes: Vec<usize> = if scale.quick {
        vec![100, 1_000]
    } else {
        vec![1_000, 5_000, 20_480]
    };
    let duration = SimDuration::from_millis(scale.pick(2_000, 200));
    eprintln!("# Table I — scalability ({duration} simulated per size)");
    println!("| servers | events | wall s | events/s | jobs |");
    for p in scalability(&sizes, duration, scale.seed) {
        println!(
            "| {} | {} | {:.3} | {:.0} | {} |",
            p.servers, p.events, p.wall_s, p.events_per_s, p.jobs
        );
    }
}
