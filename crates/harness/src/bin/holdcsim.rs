//! The `holdcsim` CLI: one entry point for single runs, declarative
//! parallel sweeps, and paper-figure reproduction.
//!
//! ```text
//! holdcsim run   [--servers N] [--cores C] [--rho R] [--preset P] [--tau T]
//!                [--policy POL] [--duration S] [--seed S] [--json]
//! holdcsim sweep [--policies a,b] [--rhos 0.1,0.3] [--taus 0.4,1.6|active-idle]
//!                [--presets web-search,web-serving] [--servers 8,50] [--cores 4]
//!                [--replications N] [--duration S] [--seed S]
//!                [--threads N] [--out DIR] [--name NAME]
//! holdcsim fig <4|5|6|8|9|11|table1> [--quick] [--threads N] [--seed S]
//! holdcsim bench-scale [--sizes 16,128,1024] [--duration S] [--seed S]
//!                [--repeats N] [--out PATH]
//! ```

// CLI flag maps are `--key value` lookups, never iterated (lint D001).
#[allow(clippy::disallowed_types)]
use std::collections::HashMap;
use std::path::PathBuf;
use std::process::ExitCode;

use holdcsim::config::{
    ClusterConfig, NetworkConfig, PolicyKind, SimConfig, WanConfig, WanLinkMode,
};
use holdcsim::experiments::fat_tree_k_for;
use holdcsim::sim::Simulation;
use holdcsim_cluster::Federation;
use holdcsim_des::time::SimDuration;
use holdcsim_harness::artifacts;
use holdcsim_harness::bench_scale::{self, BenchScaleConfig};
use holdcsim_harness::exec::{default_threads, run_plan};
use holdcsim_harness::figs::{self, FigScale};
use holdcsim_harness::grid::SweepPlan;
use holdcsim_harness::obs_cli::ObsCli;
use holdcsim_network::flow::FlowSolverKind;
use holdcsim_obs::fingerprint;
use holdcsim_sched::geo::GeoPolicy;
use holdcsim_workload::presets::WorkloadPreset;

const USAGE: &str = "holdcsim — HolDCSim-RS experiment runner

USAGE:
    holdcsim run   [--servers N] [--cores C] [--rho R] [--preset P] [--tau T]
                   [--policy POL] [--duration SECS] [--seed S] [--json]
                   [--faults SPEC|FILE]
                   [--net [--flow-solver incremental|reference|cohort]] [OBS]
    holdcsim sweep [--policies a,b,c] [--rhos 0.1,0.3] [--taus 0.4,1.6]
                   [--presets web-search,web-serving] [--servers 8,50] [--cores 4]
                   [--replications N] [--duration SECS] [--seed S]
                   [--faults SPEC|FILE|none, |-separated arms]
                   [--threads N] [--out DIR] [--name NAME] [OBS]
    holdcsim fig   <4|5|6|8|9|11|table1> [--quick] [--threads N] [--seed S]
    holdcsim federate [--sites N] [--servers N] [--cores C] [--rho R] [--preset P]
                   [--affinity w1,w2,...] [--geo POL] [--spill L] [--latency-weight W]
                   [--wan-gbps G] [--wan-latency-ms L] [--wan-mode pipe|flow] [--hub]
                   [--job-bytes B] [--net] [--fed-workers N | --fed-serial]
                   [--faults SPEC|FILE]
                   [--duration SECS] [--seed S] [--json] [OBS]
    holdcsim trace-diff A.json B.json
    holdcsim bench-scale [--sizes 16,128,1024] [--duration SECS]
                   [--net-sizes 16,128 | none] [--net-duration SECS]
                   [--flow-solver incremental|reference|cohort|both|all]
                   [--clusters 2,4 | none] [--cluster-servers N]
                   [--cluster-duration SECS] [--fed-workers N]
                   [--faults default|none|SPEC|FILE]
                   [--seed S] [--repeats N] [--out PATH] [--obs-overhead]

Observability ([OBS], accepted by run, federate, and sweep):
    --trace FILE [--trace-format jsonl|chrome] [--trace-limit N]
    --metrics FILE [--metrics-period SECS]
    --fingerprint FILE [--fingerprint-every K]
    --profile [--profile-sample N]

Policies:     round-robin, least-loaded, pack-first, random, network-aware.
Presets:      web-search, web-serving, provisioning.
Taus:         seconds, or `active-idle` for the no-sleep arm.
Geo policies: site-local (spill past --spill in-flight jobs/core),
              load-balanced, latency-aware (--latency-weight load units/s).

`federate` runs a multi-datacenter federation: N sites (each its own
fabric and RNG substream; add a fat-tree + flow comm with --net) behind
a full-mesh WAN (--hub for hub-and-spoke), with the aggregate arrival
rate split by --affinity weights and jobs geo-routed per --geo; prints
per-site and federation-wide reports. Sites advance concurrently
through conservative WAN-lookahead windows on --fed-workers pooled
threads (default: the machine's parallelism); --fed-serial runs the
thread-free reference arm. Reports are byte-identical either way.

`bench-scale` runs the Table I configuration at each farm size plus a
network-heavy fat-tree grid (high-fan-out DAGs, flow and packet comm
models) at each --net-sizes size (`none` skips the network arms),
measures wall-clock events/second (best of --repeats), and writes the
JSON perf baseline (default ./BENCH_scalability.json). The flow arm
runs once per selected fair-share solver (`all` by default: the
incremental production solver as `flow`, the global progressive-
filling reference as `flow-ref`, and the cohort-cell solver as
`flow-cohort`, interleaved on the same grid with identical
completed-flow counts asserted); the same arms drive a wide-gather
incast stress grid (`incast*` points). With --obs-overhead it also
re-runs the network arms with fingerprinting on and reports the
observability overhead per point.

Fault plans (--faults, accepted by run, sweep, federate, bench-scale):
an inline spec or a file of `;`/newline-separated entries (`#` comments):
    crash@2s:0            kill server 0 at t=2s (in-flight tasks fail)
    recover@4s:0          bring it back
    straggle@1s:3,0.5,2s  run server 3 at 0.5x speed for 2s
    switch-down@1s:0      fabric switch outage (switch-up@.. restores)
    link-down@1s:4        fabric link outage (link-up@.. restores)
    wan-down@1s:0         WAN link outage (wan-up@.. restores; federate)
    mtbf:server=2,mtbf=5s,mttr=500ms   stochastic crash/repair cycle
    retry:max=3,backoff=10ms,mult=2    bounded exponential re-dispatch
Prefix an entry with `site<k>.` under federate to target one site.
Times accept ns/us/ms/s suffixes. `sweep --faults` takes |-separated
arms (`none` is a fault-free arm) as an extra grid axis; `bench-scale
--faults default` runs a canned crash+switch storm scaled to each farm.

`trace-diff` compares two fingerprint files (written with --fingerprint)
and bisects to the first divergent checkpoint, or reports `identical`.
Federation/sweep observability files are tagged per site/trial
(fp.json -> fp.site0.json / fp.trial0.json); the profile table prints
one section per site/trial.
";

fn parse_policy(s: &str) -> Result<PolicyKind, String> {
    match s {
        "round-robin" => Ok(PolicyKind::RoundRobin),
        "least-loaded" => Ok(PolicyKind::LeastLoaded),
        "pack-first" => Ok(PolicyKind::PackFirst),
        "random" => Ok(PolicyKind::Random),
        "network-aware" => Ok(PolicyKind::NetworkAware),
        _ => Err(format!("unknown policy `{s}`")),
    }
}

fn parse_preset(s: &str) -> Result<WorkloadPreset, String> {
    match s {
        "web-search" => Ok(WorkloadPreset::WebSearch),
        "web-serving" => Ok(WorkloadPreset::WebServing),
        "provisioning" => Ok(WorkloadPreset::Provisioning),
        _ => Err(format!("unknown preset `{s}`")),
    }
}

fn parse_list<T, F: Fn(&str) -> Result<T, String>>(s: &str, f: F) -> Result<Vec<T>, String> {
    s.split(',').map(|x| f(x.trim())).collect()
}

fn parse_num<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("invalid {what}: `{s}`"))
}

/// Splits `args` into `--key value` options; rejects unknown keys.
#[allow(clippy::disallowed_types)] // keyed flag lookups; never iterated
fn parse_opts(args: &[String], allowed: &[&str]) -> Result<HashMap<String, String>, String> {
    let mut opts = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("unexpected argument `{}`", args[i]))?;
        if !allowed.contains(&key) {
            return Err(format!("unknown option `--{key}`"));
        }
        // Flags (no value): --json, --quick, --hub, --net, --profile,
        // --obs-overhead, --fed-serial.
        if matches!(
            key,
            "json" | "quick" | "hub" | "net" | "profile" | "obs-overhead" | "fed-serial"
        ) {
            opts.insert(key.to_string(), "true".to_string());
            i += 1;
            continue;
        }
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("option `--{key}` needs a value"))?
            .clone();
        opts.insert(key.to_string(), value);
        i += 2;
    }
    Ok(opts)
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let mut allowed = vec![
        "servers",
        "cores",
        "rho",
        "preset",
        "tau",
        "policy",
        "duration",
        "seed",
        "json",
        "net",
        "flow-solver",
        "faults",
    ];
    allowed.extend_from_slice(&ObsCli::OPTS);
    let opts = parse_opts(args, &allowed)?;
    let obs = ObsCli::from_opts(&opts)?;
    let get = |k: &str, d: &str| opts.get(k).cloned().unwrap_or_else(|| d.to_string());
    let servers: usize = parse_num(&get("servers", "8"), "server count")?;
    let cores: u32 = parse_num(&get("cores", "4"), "core count")?;
    let rho: f64 = parse_num(&get("rho", "0.3"), "utilization")?;
    let preset = parse_preset(&get("preset", "web-search"))?;
    let duration = SimDuration::from_secs_f64(parse_num(&get("duration", "30"), "duration")?);
    let seed: u64 = parse_num(&get("seed", "42"), "seed")?;
    let cfg = match opts.get("tau") {
        Some(t) if t != "active-idle" => holdcsim::experiments::delay_timer_farm(
            preset,
            rho,
            servers,
            cores,
            parse_num(t, "tau")?,
            duration,
            seed,
        ),
        _ => {
            SimConfig::server_farm(servers, cores, rho, preset.template(), duration).with_seed(seed)
        }
    };
    let mut cfg = match opts.get("policy") {
        Some(p) => cfg.with_policy(parse_policy(p)?),
        None => cfg,
    };
    // --net attaches a fat-tree fabric with flow-model comm and swaps
    // in the fan-out/fan-in communicating workload (the presets are
    // compute-only, so the fabric would otherwise carry zero flows);
    // the solver arm is selectable so the CI smoke can A/B all three
    // on one seed.
    if opts.contains_key("net") {
        let solver = match opts.get("flow-solver").map(String::as_str) {
            None | Some("incremental") => FlowSolverKind::Incremental,
            Some("reference") => FlowSolverKind::Reference,
            Some("cohort") => FlowSolverKind::Cohort,
            Some(other) => return Err(format!("unknown flow solver `{other}`")),
        };
        cfg.template = holdcsim::experiments::net_scalability_template();
        let mut net = NetworkConfig::fat_tree(fat_tree_k_for(servers));
        net.comm = holdcsim::config::CommModel::Flow;
        net.flow_solver = solver;
        cfg.network = Some(net);
    } else if opts.contains_key("flow-solver") {
        return Err("--flow-solver requires --net".to_string());
    }
    if let Some(s) = opts.get("faults") {
        cfg.faults = Some(holdcsim_faults::load_plan(s)?);
    }
    cfg.obs = obs.cfg;
    let (report, arts) = Simulation::new(cfg).run_with_obs();
    if opts.contains_key("json") {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.summary());
    }
    obs.emit(&arts, None)?;
    Ok(())
}

fn cmd_sweep(args: &[String]) -> Result<(), String> {
    let mut allowed = vec![
        "policies",
        "rhos",
        "taus",
        "presets",
        "servers",
        "cores",
        "replications",
        "duration",
        "seed",
        "faults",
        "threads",
        "out",
        "name",
    ];
    allowed.extend_from_slice(&ObsCli::OPTS);
    let opts = parse_opts(args, &allowed)?;
    let obs = ObsCli::from_opts(&opts)?;
    let mut plan = SweepPlan::new(opts.get("name").map_or("sweep", |s| s.as_str()));
    plan = plan.obs(obs.cfg);
    if let Some(s) = opts.get("policies") {
        plan = plan.policies(&parse_list(s, parse_policy)?);
    }
    if let Some(s) = opts.get("presets") {
        plan = plan.presets(&parse_list(s, parse_preset)?);
    }
    if let Some(s) = opts.get("rhos") {
        plan = plan.utilizations(&parse_list(s, |x| parse_num(x, "rho"))?);
    }
    if let Some(s) = opts.get("taus") {
        let taus = parse_list(s, |x| {
            if x == "active-idle" {
                Ok(None)
            } else {
                parse_num(x, "tau").map(Some)
            }
        })?;
        plan = plan.taus_opt(&taus);
    }
    if let Some(s) = opts.get("servers") {
        plan = plan.servers(&parse_list(s, |x| parse_num(x, "server count"))?);
    }
    if let Some(s) = opts.get("cores") {
        plan = plan.cores(&parse_list(s, |x| parse_num(x, "core count"))?);
    }
    if let Some(s) = opts.get("replications") {
        plan = plan.replications(parse_num(s, "replications")?);
    }
    if let Some(s) = opts.get("duration") {
        plan = plan.duration(SimDuration::from_secs_f64(parse_num(s, "duration")?));
    }
    if let Some(s) = opts.get("seed") {
        plan = plan.seed(parse_num(s, "seed")?);
    }
    if let Some(s) = opts.get("faults") {
        // Fault specs contain `,` and `;`, so arms split on `|`;
        // `none` is the fault-free arm. Validate each spec here so a
        // bad plan fails before any trial runs.
        let mut arms = Vec::new();
        for arm in s.split('|') {
            let arm = arm.trim();
            if arm == "none" {
                arms.push(None);
            } else {
                holdcsim_faults::load_plan(arm)?;
                arms.push(Some(arm.to_string()));
            }
        }
        plan = plan.fault_specs(&arms);
    }
    let threads: usize = match opts.get("threads") {
        Some(s) => parse_num(s, "threads")?,
        None => default_threads(),
    };

    let size = plan.size().map_err(|e| e.to_string())?;
    eprintln!(
        "[{}] {} trials ({} points x {} replications) on {} threads",
        plan.name,
        size,
        size / plan.replications as usize,
        plan.replications,
        threads
    );
    let result = run_plan(&plan, threads, true).map_err(|e| e.to_string())?;

    // Console summary: the headline metrics with confidence intervals.
    for s in &result.summaries {
        let e = s.get("energy_j").expect("known metric");
        let p95 = s.get("latency_p95_s").expect("known metric");
        println!(
            "{} | energy {:.1} ± {:.1} J | p95 {:.2} ± {:.2} ms (n={})",
            s.point.label(),
            e.mean,
            e.ci95_half,
            p95.mean * 1e3,
            p95.ci95_half * 1e3,
            s.replications,
        );
    }

    let out = PathBuf::from(opts.get("out").map_or("artifacts", |s| s.as_str()));
    let paths = artifacts::write_artifacts(&out, &result).map_err(|e| e.to_string())?;
    for p in &paths {
        eprintln!("[{}] wrote {}", result.name, p.display());
    }
    if !obs.is_off() {
        for (i, arts) in result.obs.iter().enumerate() {
            obs.emit(arts, Some(&format!("trial{i}")))?;
        }
    }
    Ok(())
}

fn cmd_fig(args: &[String]) -> Result<(), String> {
    let which = args
        .first()
        .ok_or("`fig` needs a figure id (4, 5, 6, 8, 9, 11, table1)")?
        .clone();
    let opts = parse_opts(&args[1..], &["quick", "threads", "seed"])?;
    let scale = FigScale {
        quick: opts.contains_key("quick"),
        threads: match opts.get("threads") {
            Some(s) => parse_num(s, "threads")?,
            None => default_threads(),
        },
        seed: match opts.get("seed") {
            Some(s) => parse_num(s, "seed")?,
            None => 42,
        },
    };
    match which.as_str() {
        "4" => figs::fig4(&scale),
        "5" => figs::fig5(&scale),
        "6" => figs::fig6(&scale),
        "8" => figs::fig8(&scale),
        "9" => figs::fig9(&scale),
        "11" => figs::fig11(&scale),
        "table1" | "1" => figs::table1(&scale),
        other => {
            return Err(format!(
                "unknown figure `{other}` (try 4, 5, 6, 8, 9, 11, table1)"
            ))
        }
    }
    Ok(())
}

fn cmd_federate(args: &[String]) -> Result<(), String> {
    let mut allowed = vec![
        "sites",
        "servers",
        "cores",
        "rho",
        "preset",
        "affinity",
        "geo",
        "spill",
        "latency-weight",
        "wan-gbps",
        "wan-latency-ms",
        "wan-mode",
        "hub",
        "job-bytes",
        "net",
        "duration",
        "seed",
        "json",
        "fed-workers",
        "fed-serial",
        "faults",
    ];
    allowed.extend_from_slice(&ObsCli::OPTS);
    let opts = parse_opts(args, &allowed)?;
    let obs = ObsCli::from_opts(&opts)?;
    let get = |k: &str, d: &str| opts.get(k).cloned().unwrap_or_else(|| d.to_string());
    let sites: usize = parse_num(&get("sites", "3"), "site count")?;
    if sites == 0 {
        return Err("a federation needs at least one site".into());
    }
    let servers: usize = parse_num(&get("servers", "8"), "server count")?;
    let cores: u32 = parse_num(&get("cores", "4"), "core count")?;
    let rho: f64 = parse_num(&get("rho", "0.3"), "utilization")?;
    let preset = parse_preset(&get("preset", "web-search"))?;
    let duration = SimDuration::from_secs_f64(parse_num(&get("duration", "10"), "duration")?);
    let seed: u64 = parse_num(&get("seed", "42"), "seed")?;
    let mut base = SimConfig::server_farm(servers, cores, rho, preset.template(), duration);
    base.obs = obs.cfg;
    if opts.contains_key("net") {
        base.network = Some(NetworkConfig::fat_tree(fat_tree_k_for(servers)));
    }
    let rate_bps = (parse_num::<f64>(&get("wan-gbps", "10"), "WAN rate")? * 1e9) as u64;
    let latency = SimDuration::from_secs_f64(
        parse_num::<f64>(&get("wan-latency-ms", "10"), "WAN latency")? / 1e3,
    );
    let mut wan = if opts.contains_key("hub") {
        WanConfig::hub(sites, rate_bps, latency)
    } else {
        WanConfig::full_mesh(sites, rate_bps, latency)
    };
    wan = match get("wan-mode", "pipe").as_str() {
        "pipe" => wan.with_mode(WanLinkMode::Pipe),
        "flow" => wan.with_mode(WanLinkMode::Flow),
        other => return Err(format!("unknown WAN mode `{other}`")),
    };
    let geo = match get("geo", "site-local").as_str() {
        "site-local" => GeoPolicy::SiteLocalFirst {
            spill_load: parse_num(&get("spill", "1.0"), "spill load")?,
        },
        "load-balanced" => GeoPolicy::LoadBalanced,
        "latency-aware" => GeoPolicy::LatencyAware {
            latency_weight: parse_num(&get("latency-weight", "5.0"), "latency weight")?,
        },
        other => return Err(format!("unknown geo policy `{other}`")),
    };
    let mut cc = ClusterConfig::uniform(base, sites, wan)
        .with_geo(geo)
        .with_seed(seed);
    cc.job_bytes = parse_num(&get("job-bytes", "1048576"), "job bytes")?;
    if let Some(s) = opts.get("faults") {
        cc.faults = Some(holdcsim_faults::load_plan(s)?);
    }
    if let Some(s) = opts.get("affinity") {
        let weights: Vec<f64> = parse_list(s, |x| parse_num(x, "affinity weight"))?;
        if weights.len() != sites {
            return Err(format!(
                "--affinity needs one weight per site ({} != {sites})",
                weights.len()
            ));
        }
        for (spec, w) in cc.sites.iter_mut().zip(weights) {
            spec.affinity = Some(w);
        }
    }
    let fed = Federation::new(&cc);
    let report = if opts.contains_key("fed-serial") {
        fed.run_serial()
    } else if let Some(w) = opts.get("fed-workers") {
        fed.run_with_workers(parse_num(w, "federation worker count")?)
    } else {
        fed.run()
    };
    if opts.contains_key("json") {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.summary());
    }
    if !obs.is_off() {
        for arts in &report.obs {
            let tag = arts.site.map(|s| format!("site{s}"));
            obs.emit(arts, tag.as_deref())?;
        }
        if let Some(wm) = &report.wan_metrics {
            obs.emit_extra_metrics(wm, "wan")?;
        }
    }
    Ok(())
}

fn cmd_trace_diff(args: &[String]) -> Result<(), String> {
    let [a, b] = args else {
        return Err("`trace-diff` needs exactly two fingerprint files".into());
    };
    let read = |p: &str| -> Result<(u64, Vec<fingerprint::Checkpoint>), String> {
        let text = std::fs::read_to_string(p).map_err(|e| format!("reading {p}: {e}"))?;
        fingerprint::parse_file(&text).map_err(|e| format!("{p}: {e}"))
    };
    let (every_a, ca) = read(a)?;
    let (every_b, cb) = read(b)?;
    if every_a != every_b {
        return Err(format!(
            "checkpoint cadences differ ({every_a} vs {every_b} events); \
             re-run with the same --fingerprint-every"
        ));
    }
    print!("{}", fingerprint::render_diff(&fingerprint::diff(&ca, &cb)));
    Ok(())
}

fn cmd_bench_scale(args: &[String]) -> Result<(), String> {
    let opts = parse_opts(
        args,
        &[
            "sizes",
            "duration",
            "net-sizes",
            "net-duration",
            "clusters",
            "cluster-servers",
            "cluster-duration",
            "fed-workers",
            "flow-solver",
            "obs-overhead",
            "faults",
            "seed",
            "repeats",
            "out",
        ],
    )?;
    let mut cfg = BenchScaleConfig::default();
    if let Some(s) = opts.get("sizes") {
        cfg.sizes = parse_list(s, |x| parse_num(x, "server count"))?;
        if cfg.sizes.is_empty() {
            return Err("`--sizes` needs at least one size".into());
        }
    }
    if let Some(s) = opts.get("duration") {
        cfg.duration = SimDuration::from_secs_f64(parse_num(s, "duration")?);
    }
    if let Some(s) = opts.get("net-sizes") {
        cfg.net_sizes = if s == "none" {
            Vec::new()
        } else {
            parse_list(s, |x| parse_num(x, "server count"))?
        };
    }
    if let Some(s) = opts.get("net-duration") {
        cfg.net_duration = SimDuration::from_secs_f64(parse_num(s, "net-duration")?);
    }
    if let Some(s) = opts.get("clusters") {
        cfg.clusters = if s == "none" {
            Vec::new()
        } else {
            parse_list(s, |x| parse_num(x, "site count"))?
        };
    }
    if let Some(s) = opts.get("cluster-servers") {
        cfg.cluster_servers = parse_num(s, "servers per site")?;
    }
    if let Some(s) = opts.get("cluster-duration") {
        cfg.cluster_duration = SimDuration::from_secs_f64(parse_num(s, "cluster-duration")?);
    }
    if let Some(s) = opts.get("fed-workers") {
        cfg.fed_workers = parse_num(s, "federation worker count")?;
    }
    if let Some(s) = opts.get("flow-solver") {
        cfg.flow_solvers = match s.as_str() {
            "incremental" => vec![FlowSolverKind::Incremental],
            "reference" => vec![FlowSolverKind::Reference],
            "cohort" => vec![FlowSolverKind::Cohort],
            "both" => vec![FlowSolverKind::Incremental, FlowSolverKind::Reference],
            "all" => vec![
                FlowSolverKind::Incremental,
                FlowSolverKind::Reference,
                FlowSolverKind::Cohort,
            ],
            other => return Err(format!("unknown flow solver `{other}`")),
        };
    }
    cfg.obs_overhead = opts.contains_key("obs-overhead");
    if let Some(s) = opts.get("faults") {
        cfg.faults = match s.as_str() {
            "none" => None,
            "default" => Some("default".to_string()),
            spec => {
                holdcsim_faults::load_plan(spec)?;
                Some(spec.to_string())
            }
        };
    }
    if let Some(s) = opts.get("seed") {
        cfg.seed = parse_num(s, "seed")?;
    }
    if let Some(s) = opts.get("repeats") {
        cfg.repeats = parse_num(s, "repeats")?;
    }
    if let Some(s) = opts.get("out") {
        cfg.out = PathBuf::from(s);
    }
    let path = bench_scale::run_bench_scale(&cfg).map_err(|e| e.to_string())?;
    eprintln!("[bench-scale] wrote {}", path.display());
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("sweep") => cmd_sweep(&args[1..]),
        Some("fig") => cmd_fig(&args[1..]),
        Some("federate") => cmd_federate(&args[1..]),
        Some("trace-diff") => cmd_trace_diff(&args[1..]),
        Some("bench-scale") => cmd_bench_scale(&args[1..]),
        Some("help") | Some("--help") | Some("-h") | None => {
            print!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown subcommand `{other}`\n\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opts_parse_flags_and_pairs() {
        let args: Vec<String> = ["--rho", "0.3", "--json"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let opts = parse_opts(&args, &["rho", "json"]).unwrap();
        assert_eq!(opts["rho"], "0.3");
        assert_eq!(opts["json"], "true");
    }

    #[test]
    fn unknown_option_is_rejected() {
        let args: Vec<String> = ["--bogus", "1"].iter().map(|s| s.to_string()).collect();
        assert!(parse_opts(&args, &["rho"]).is_err());
    }

    #[test]
    fn policy_and_preset_round_trip() {
        for p in [
            "round-robin",
            "least-loaded",
            "pack-first",
            "random",
            "network-aware",
        ] {
            parse_policy(p).unwrap();
        }
        for p in ["web-search", "web-serving", "provisioning"] {
            parse_preset(p).unwrap();
        }
        assert!(parse_policy("nope").is_err());
    }
}
