//! # holdcsim-harness
//!
//! Declarative, parallel experiment orchestration for HolDCSim-RS.
//!
//! Every result in the source paper is a sweep — policies × workloads ×
//! utilizations × timers × seeds — and this crate makes those sweeps
//! first-class:
//!
//! * [`grid`] — [`grid::SweepPlan`]: a parameter grid × N replications
//!   expanded into trials, each with a deterministic RNG stream derived
//!   from its grid coordinates (via `holdcsim_des::rng`), so results are
//!   bitwise identical at any thread count.
//! * [`exec`] — a scoped-thread work-stealing executor
//!   ([`exec::run_plan`] / [`exec::run_configs`]) with progress
//!   reporting; results are stored by trial index, never by completion
//!   order.
//! * [`agg`] — cross-replication aggregation: mean, sample standard
//!   deviation, and Student-t 95 % confidence intervals per metric per
//!   grid point.
//! * [`artifacts`] — JSONL/CSV artifact rendering and writing, built on
//!   `holdcsim::export`.
//! * [`figs`] — the paper's figures re-expressed as plans/parallel runs,
//!   backing the `holdcsim fig <n>` CLI subcommand.
//! * [`bench_scale`] — the Table I scalability sweep as a perf baseline:
//!   events/second per farm size, written to `BENCH_scalability.json` so
//!   hot-path regressions are visible PR over PR.
//! * [`obs_cli`] — shared parsing/output plumbing for the observability
//!   flags (`--trace`, `--metrics`, `--fingerprint`, `--profile`).
//!
//! The `holdcsim` binary (`src/bin/holdcsim.rs`) exposes `run`, `sweep`,
//! `fig`, and `bench-scale` subcommands over all of this.
//!
//! ## Example: a 24-trial grid, in parallel, with confidence intervals
//!
//! ```no_run
//! use holdcsim::config::PolicyKind;
//! use holdcsim_des::time::SimDuration;
//! use holdcsim_harness::exec::run_plan;
//! use holdcsim_harness::grid::SweepPlan;
//!
//! let plan = SweepPlan::new("demo")
//!     .policies(&[PolicyKind::PackFirst, PolicyKind::LeastLoaded, PolicyKind::RoundRobin])
//!     .utilizations(&[0.1, 0.3])
//!     .replications(4)
//!     .duration(SimDuration::from_secs(30));
//! let result = run_plan(&plan, 8, true).unwrap();
//! for s in &result.summaries {
//!     let e = s.get("energy_j").unwrap();
//!     println!("{}: {:.1} ± {:.1} J", s.point.label(), e.mean, e.ci95_half);
//! }
//! ```

#![warn(missing_docs)]

pub mod agg;
pub mod artifacts;
pub mod bench_scale;
pub mod exec;
pub mod figs;
pub mod grid;
pub mod obs_cli;

pub use agg::{MetricSummary, PointSummary, TrialMetrics, TrialOutcome, METRIC_NAMES};
pub use exec::{run_configs, run_plan, SweepResult};
pub use grid::{GridError, SweepPlan, TrialPoint, TrialSpec};
