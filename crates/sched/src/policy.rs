//! Global scheduling policies (§III-E): where the front end sends each task.

use holdcsim_des::rng::SimRng;
use holdcsim_server::server::{Server, ServerId};

/// A probe for the network cost of activating a server — "the amount of
/// additional switches to be woken up in order to allow communications to
/// that server" (§IV-D). Implemented by the simulation driver over its
/// switch devices; policies that ignore the network use [`NoNetworkCost`].
pub trait NetworkCost {
    /// Relative cost of steering new work to `server` (0 = free).
    fn wake_cost(&self, server: ServerId) -> f64;
}

/// A [`NetworkCost`] that charges nothing (server-only studies).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoNetworkCost;

impl NetworkCost for NoNetworkCost {
    fn wake_cost(&self, _server: ServerId) -> f64 {
        0.0
    }
}

/// What placement policies see of the cluster: the servers plus any
/// driver-side load not yet visible inside them (tasks committed to a
/// server but still waiting on inbound network transfers).
#[derive(Debug, Clone, Copy)]
pub struct ClusterView<'a> {
    servers: &'a [Server],
    committed: Option<&'a [u32]>,
}

impl<'a> ClusterView<'a> {
    /// A view with no extra committed load.
    pub fn new(servers: &'a [Server]) -> Self {
        ClusterView {
            servers,
            committed: None,
        }
    }

    /// A view adding `committed[i]` in-flight-transfer tasks to server `i`'s
    /// apparent load.
    ///
    /// # Panics
    ///
    /// Panics if the slice length does not match the server count.
    pub fn with_committed(servers: &'a [Server], committed: &'a [u32]) -> Self {
        assert_eq!(
            servers.len(),
            committed.len(),
            "one committed count per server"
        );
        ClusterView {
            servers,
            committed: Some(committed),
        }
    }

    /// The server with this id.
    pub fn server(&self, id: ServerId) -> &'a Server {
        &self.servers[id.0 as usize]
    }

    /// Apparent pending load of `id`: queued + running + committed.
    pub fn pending(&self, id: ServerId) -> usize {
        self.server(id).pending() + self.committed.map_or(0, |c| c[id.0 as usize] as usize)
    }

    /// `true` if `id` can start a task immediately (awake, free core, and
    /// no committed backlog racing for that core).
    pub fn has_free_core(&self, id: ServerId) -> bool {
        let s = self.server(id);
        s.is_awake() && (self.pending(id) as u32) < s.core_count()
    }
}

/// A global task-placement policy.
///
/// `eligible` is the candidate set (the driver filters by server class and
/// pool membership); policies must return a member of it, or `None` to
/// leave the task in the global queue.
/// (The `Send` supertrait lets a boxed policy — and with it a whole site
/// `Datacenter` — cross into a worker thread, which the federation's
/// conservative-window coordinator relies on to run sites concurrently.)
pub trait GlobalPolicy: std::fmt::Debug + Send {
    /// Chooses a server for one task.
    fn select(
        &mut self,
        view: &ClusterView<'_>,
        eligible: &[ServerId],
        net: &dyn NetworkCost,
    ) -> Option<ServerId>;

    /// Policy name for reports.
    fn name(&self) -> &'static str;
}

/// Round-robin over the eligible set.
#[derive(Debug, Default)]
pub struct RoundRobin {
    next: usize,
}

impl RoundRobin {
    /// Creates a round-robin policy starting at the first server.
    pub fn new() -> Self {
        Self::default()
    }
}

impl GlobalPolicy for RoundRobin {
    fn select(
        &mut self,
        _view: &ClusterView<'_>,
        eligible: &[ServerId],
        _net: &dyn NetworkCost,
    ) -> Option<ServerId> {
        if eligible.is_empty() {
            return None;
        }
        let pick = eligible[self.next % eligible.len()];
        self.next = (self.next + 1) % eligible.len();
        Some(pick)
    }

    fn name(&self) -> &'static str {
        "round-robin"
    }
}

/// Least-loaded (the paper's load-balancing policy): minimum pending tasks,
/// ties broken by lower id.
#[derive(Debug, Default)]
pub struct LeastLoaded;

impl LeastLoaded {
    /// Creates the policy.
    pub fn new() -> Self {
        LeastLoaded
    }
}

impl GlobalPolicy for LeastLoaded {
    fn select(
        &mut self,
        view: &ClusterView<'_>,
        eligible: &[ServerId],
        _net: &dyn NetworkCost,
    ) -> Option<ServerId> {
        eligible
            .iter()
            .copied()
            .min_by_key(|&id| (view.pending(id), id))
    }

    fn name(&self) -> &'static str {
        "least-loaded"
    }
}

/// Consolidating placement: fill the lowest-indexed server that can take
/// the task immediately; only spill to sleeping/busy servers when every
/// awake server is saturated. This is the dispatcher that lets delay-timer
/// policies actually find idle periods (§IV-A/B).
#[derive(Debug, Default)]
pub struct PackFirst;

impl PackFirst {
    /// Creates the policy.
    pub fn new() -> Self {
        PackFirst
    }
}

impl GlobalPolicy for PackFirst {
    fn select(
        &mut self,
        view: &ClusterView<'_>,
        eligible: &[ServerId],
        _net: &dyn NetworkCost,
    ) -> Option<ServerId> {
        // First choice: lowest-id awake server with a free core.
        if let Some(id) = eligible.iter().copied().find(|&id| view.has_free_core(id)) {
            return Some(id);
        }
        // Second: the least-loaded awake server (queue there).
        if let Some(id) = eligible
            .iter()
            .copied()
            .filter(|&id| view.server(id).is_awake())
            .min_by_key(|&id| (view.pending(id), id))
        {
            return Some(id);
        }
        // Last resort: wake the lowest-id sleeping server.
        eligible.first().copied()
    }

    fn name(&self) -> &'static str {
        "pack-first"
    }
}

/// Uniform random placement.
#[derive(Debug)]
pub struct Random {
    rng: SimRng,
}

impl Random {
    /// Creates the policy with its own RNG stream.
    pub fn new(seed: u64) -> Self {
        Random {
            rng: SimRng::seed_from(seed),
        }
    }
}

impl GlobalPolicy for Random {
    fn select(
        &mut self,
        _view: &ClusterView<'_>,
        eligible: &[ServerId],
        _net: &dyn NetworkCost,
    ) -> Option<ServerId> {
        self.rng.choose(eligible).copied()
    }

    fn name(&self) -> &'static str {
        "random"
    }
}

/// The §IV-D Server-Network-Aware policy: prefer servers already reachable
/// without waking switches; when a server must be woken, pick the one with
/// the least network wake cost.
#[derive(Debug, Default)]
pub struct NetworkAware;

impl NetworkAware {
    /// Creates the policy.
    pub fn new() -> Self {
        NetworkAware
    }
}

impl GlobalPolicy for NetworkAware {
    fn select(
        &mut self,
        view: &ClusterView<'_>,
        eligible: &[ServerId],
        net: &dyn NetworkCost,
    ) -> Option<ServerId> {
        // Rank: (needs wake?, network wake cost, pending, id). The cost
        // term dominates: work stays on servers reachable without waking
        // network elements (and, via the driver's distance term, close to
        // its data sources), load-balancing only among equal-cost servers.
        // When every cheap server is saturated, the server with the least
        // network wake cost is activated (§IV-D's strategy).
        eligible.iter().copied().min_by(|&a, &b| {
            let ka = rank_key(view, a, net);
            let kb = rank_key(view, b, net);
            ka.partial_cmp(&kb).expect("costs are finite")
        })
    }

    fn name(&self) -> &'static str {
        "server-network-aware"
    }
}

fn rank_key(view: &ClusterView<'_>, id: ServerId, net: &dyn NetworkCost) -> (u8, f64, usize, u32) {
    let needs_wake = u8::from(!view.has_free_core(id));
    (needs_wake, net.wake_cost(id), view.pending(id), id.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use holdcsim_des::time::{SimDuration, SimTime};
    use holdcsim_server::server::{EffectBuf, ServerConfig};
    use holdcsim_server::task::TaskHandle;
    use holdcsim_workload::ids::{JobId, TaskId};

    fn view(servers: &[Server]) -> ClusterView<'_> {
        ClusterView::new(servers)
    }

    fn cluster(n: u32) -> (Vec<Server>, Vec<ServerId>) {
        let servers: Vec<Server> = (0..n)
            .map(|i| Server::new(SimTime::ZERO, ServerId(i), ServerConfig::new(2)))
            .collect();
        let ids = (0..n).map(ServerId).collect();
        (servers, ids)
    }

    fn load(servers: &mut [Server], id: ServerId, tasks: u64) {
        let mut fx = EffectBuf::new();
        for k in 0..tasks {
            let t = TaskHandle::new(
                TaskId::new(JobId(id.0 as u64 * 100 + k), 0),
                SimDuration::from_millis(10),
            );
            servers[id.0 as usize].submit(SimTime::ZERO, t, &mut fx);
        }
    }

    #[test]
    fn round_robin_cycles() {
        let (servers, ids) = cluster(3);
        let mut p = RoundRobin::new();
        let picks: Vec<u32> = (0..6)
            .map(|_| p.select(&view(&servers), &ids, &NoNetworkCost).unwrap().0)
            .collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn round_robin_empty_eligible() {
        let (servers, _) = cluster(1);
        let mut p = RoundRobin::new();
        assert_eq!(p.select(&view(&servers), &[], &NoNetworkCost), None);
    }

    #[test]
    fn least_loaded_prefers_empty_server() {
        let (mut servers, ids) = cluster(3);
        load(&mut servers, ServerId(0), 3);
        load(&mut servers, ServerId(1), 1);
        let mut p = LeastLoaded::new();
        assert_eq!(
            p.select(&view(&servers), &ids, &NoNetworkCost),
            Some(ServerId(2))
        );
    }

    #[test]
    fn least_loaded_ties_break_low_id() {
        let (servers, ids) = cluster(3);
        let mut p = LeastLoaded::new();
        assert_eq!(
            p.select(&view(&servers), &ids, &NoNetworkCost),
            Some(ServerId(0))
        );
    }

    #[test]
    fn pack_first_consolidates() {
        let (mut servers, ids) = cluster(3);
        // Server 0 has one of two cores busy: still first choice.
        load(&mut servers, ServerId(0), 1);
        let mut p = PackFirst::new();
        assert_eq!(
            p.select(&view(&servers), &ids, &NoNetworkCost),
            Some(ServerId(0))
        );
        // Saturate 0: next free-core server is 1.
        load(&mut servers, ServerId(0), 1);
        assert_eq!(
            p.select(&view(&servers), &ids, &NoNetworkCost),
            Some(ServerId(1))
        );
    }

    #[test]
    fn pack_first_queues_at_least_loaded_when_saturated() {
        let (mut servers, ids) = cluster(2);
        load(&mut servers, ServerId(0), 4);
        load(&mut servers, ServerId(1), 3);
        let mut p = PackFirst::new();
        assert_eq!(
            p.select(&view(&servers), &ids, &NoNetworkCost),
            Some(ServerId(1))
        );
    }

    #[test]
    fn random_stays_in_eligible_set() {
        let (servers, _) = cluster(4);
        let ids = vec![ServerId(1), ServerId(3)];
        let mut p = Random::new(9);
        for _ in 0..32 {
            let pick = p.select(&view(&servers), &ids, &NoNetworkCost).unwrap();
            assert!(ids.contains(&pick));
        }
    }

    struct FixedCost(Vec<f64>);
    impl NetworkCost for FixedCost {
        fn wake_cost(&self, server: ServerId) -> f64 {
            self.0[server.0 as usize]
        }
    }

    #[test]
    fn network_aware_prefers_cheap_paths() {
        let (servers, ids) = cluster(3);
        // All free; server 2's path is cheapest.
        let net = FixedCost(vec![2.0, 1.0, 0.0]);
        let mut p = NetworkAware::new();
        assert_eq!(p.select(&view(&servers), &ids, &net), Some(ServerId(2)));
    }

    #[test]
    fn network_aware_prefers_awake_over_cheap_sleeping() {
        let (mut servers, ids) = cluster(2);
        // Saturate server 0 (2 cores): it no longer has a free core.
        load(&mut servers, ServerId(0), 2);
        // Server 1 is free but "expensive"; it still wins over waking... no:
        // server 1 is awake with a free core, so it wins despite cost.
        let net = FixedCost(vec![0.0, 10.0]);
        let mut p = NetworkAware::new();
        assert_eq!(p.select(&view(&servers), &ids, &net), Some(ServerId(1)));
    }

    #[test]
    fn policy_names() {
        assert_eq!(RoundRobin::new().name(), "round-robin");
        assert_eq!(LeastLoaded::new().name(), "least-loaded");
        assert_eq!(PackFirst::new().name(), "pack-first");
        assert_eq!(Random::new(0).name(), "random");
        assert_eq!(NetworkAware::new().name(), "server-network-aware");
    }

    #[test]
    fn committed_load_shifts_least_loaded() {
        let (servers, ids) = cluster(2);
        // Both empty, but server 0 has 3 committed transfers inbound.
        let committed = vec![3u32, 0];
        let v = ClusterView::with_committed(&servers, &committed);
        let mut p = LeastLoaded::new();
        assert_eq!(p.select(&v, &ids, &NoNetworkCost), Some(ServerId(1)));
        assert_eq!(v.pending(ServerId(0)), 3);
        assert!(!v.has_free_core(ServerId(0)) || servers[0].core_count() > 3);
    }
}
