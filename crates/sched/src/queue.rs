//! The optional global task queue (§III-E): tasks the global scheduler
//! could not place wait here until a server frees up.

use std::collections::VecDeque;

use holdcsim_des::time::SimTime;
use holdcsim_server::task::TaskHandle;

/// A FIFO of unplaced tasks with waiting-time statistics.
///
/// # Examples
///
/// ```
/// use holdcsim_sched::queue::GlobalQueue;
/// use holdcsim_server::task::TaskHandle;
/// use holdcsim_des::time::{SimDuration, SimTime};
/// use holdcsim_workload::ids::{JobId, TaskId};
///
/// let mut q = GlobalQueue::new();
/// let t = TaskHandle::new(TaskId::new(JobId(1), 0), SimDuration::from_millis(5));
/// q.push(SimTime::ZERO, t);
/// let (task, waited) = q.pop(SimTime::from_millis(3)).unwrap();
/// assert_eq!(task.id, t.id);
/// assert_eq!(waited.as_secs_f64(), 0.003);
/// ```
#[derive(Debug, Default)]
pub struct GlobalQueue {
    queue: VecDeque<(SimTime, TaskHandle)>,
    max_len: usize,
    total_enqueued: u64,
}

impl GlobalQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueues an unplaced task at `now`.
    pub fn push(&mut self, now: SimTime, task: TaskHandle) {
        self.queue.push_back((now, task));
        self.max_len = self.max_len.max(self.queue.len());
        self.total_enqueued += 1;
    }

    /// Dequeues the oldest task, returning it with its queueing delay.
    pub fn pop(&mut self, now: SimTime) -> Option<(TaskHandle, holdcsim_des::time::SimDuration)> {
        let (enq, task) = self.queue.pop_front()?;
        Some((task, now.saturating_duration_since(enq)))
    }

    /// Dequeues the oldest task satisfying `pred` (e.g. a server-class
    /// match), preserving order among the rest.
    pub fn pop_matching(
        &mut self,
        now: SimTime,
        mut pred: impl FnMut(&TaskHandle) -> bool,
    ) -> Option<(TaskHandle, holdcsim_des::time::SimDuration)> {
        let idx = self.queue.iter().position(|(_, t)| pred(t))?;
        let (enq, task) = self.queue.remove(idx).expect("index from position");
        Some((task, now.saturating_duration_since(enq)))
    }

    /// Tasks currently waiting.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// `true` if no tasks wait.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// High-water mark of the queue length.
    pub fn max_len(&self) -> usize {
        self.max_len
    }

    /// Total tasks that ever waited here.
    pub fn total_enqueued(&self) -> u64 {
        self.total_enqueued
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use holdcsim_des::time::SimDuration;
    use holdcsim_workload::ids::{JobId, TaskId};

    fn th(n: u64) -> TaskHandle {
        TaskHandle::new(TaskId::new(JobId(n), 0), SimDuration::from_millis(1))
    }

    #[test]
    fn fifo_order_and_waits() {
        let mut q = GlobalQueue::new();
        q.push(SimTime::ZERO, th(1));
        q.push(SimTime::from_millis(5), th(2));
        let (a, wa) = q.pop(SimTime::from_millis(10)).unwrap();
        assert_eq!(a.id.job.0, 1);
        assert_eq!(wa, SimDuration::from_millis(10));
        let (b, wb) = q.pop(SimTime::from_millis(10)).unwrap();
        assert_eq!(b.id.job.0, 2);
        assert_eq!(wb, SimDuration::from_millis(5));
        assert!(q.pop(SimTime::from_millis(11)).is_none());
    }

    #[test]
    fn stats_track_high_water() {
        let mut q = GlobalQueue::new();
        assert!(q.is_empty());
        q.push(SimTime::ZERO, th(1));
        q.push(SimTime::ZERO, th(2));
        q.pop(SimTime::ZERO);
        q.push(SimTime::ZERO, th(3));
        assert_eq!(q.len(), 2);
        assert_eq!(q.max_len(), 2);
        assert_eq!(q.total_enqueued(), 3);
    }
}
