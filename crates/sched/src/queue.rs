//! The optional global task queue (§III-E): tasks the global scheduler
//! could not place wait here until a server frees up.
//!
//! Entries live in a [`SlotWindow`] (sequential keys double as age), and
//! per-server-class sub-queues index the window so a class-constrained
//! pull ([`GlobalQueue::pop_eligible`]) inspects at most two sub-queue
//! fronts — O(1) amortized — instead of linearly scanning the whole queue,
//! while preserving exactly the global FIFO order among matching tasks
//! that the old linear scan produced.

use std::collections::VecDeque;

use holdcsim_des::slot_window::SlotWindow;
use holdcsim_des::time::{SimDuration, SimTime};
use holdcsim_server::task::TaskHandle;

/// One queued task: enqueue time, the task, and its class constraint
/// (which names the sub-queue holding its key).
type QueueEntry = (SimTime, TaskHandle, Option<u32>);

/// A FIFO of unplaced tasks with waiting-time statistics and per-class
/// sub-queue indices.
///
/// # Examples
///
/// ```
/// use holdcsim_sched::queue::GlobalQueue;
/// use holdcsim_server::task::TaskHandle;
/// use holdcsim_des::time::{SimDuration, SimTime};
/// use holdcsim_workload::ids::{JobId, TaskId};
///
/// let mut q = GlobalQueue::new();
/// let t = TaskHandle::new(TaskId::new(JobId(1), 0), SimDuration::from_millis(5));
/// q.push(SimTime::ZERO, t);
/// let (task, waited) = q.pop(SimTime::from_millis(3)).unwrap();
/// assert_eq!(task.id, t.id);
/// assert_eq!(waited.as_secs_f64(), 0.003);
/// ```
#[derive(Debug, Default)]
pub struct GlobalQueue {
    /// Waiting tasks; the window key is the global arrival sequence.
    entries: SlotWindow<QueueEntry>,
    /// Arrival sequences of tasks with no class constraint.
    unclassed: VecDeque<u64>,
    /// Arrival sequences per task class (linear class lookup: class counts
    /// are tiny, and this avoids hashing on the pull path entirely).
    classed: Vec<(u32, VecDeque<u64>)>,
    max_len: usize,
    total_enqueued: u64,
}

/// The front of sub-queue `q`. Every removal path purges its sub-queue
/// key eagerly, so fronts are always live — mixed `pop_matching` and
/// class-pull workloads cannot accumulate dead fronts (checked here in
/// debug builds).
fn live_front(entries: &SlotWindow<QueueEntry>, q: &VecDeque<u64>) -> Option<u64> {
    let front = q.front().copied();
    debug_assert!(
        front.is_none_or(|k| entries.contains(k)),
        "sub-queue front must be purged eagerly on removal"
    );
    front
}

impl GlobalQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueues an unplaced task at `now` with no class constraint
    /// (equivalent to [`push_classed`](Self::push_classed) with `None`).
    pub fn push(&mut self, now: SimTime, task: TaskHandle) {
        self.push_classed(now, task, None);
    }

    /// Enqueues an unplaced task at `now`, indexing it under its
    /// server-class constraint so class-aware pulls are O(1).
    pub fn push_classed(&mut self, now: SimTime, task: TaskHandle, class: Option<u32>) {
        let key = self.entries.insert((now, task, class));
        self.subqueue_mut(class).push_back(key);
        self.max_len = self.max_len.max(self.entries.len());
        self.total_enqueued += 1;
    }

    fn subqueue_mut(&mut self, class: Option<u32>) -> &mut VecDeque<u64> {
        match class {
            None => &mut self.unclassed,
            Some(c) => {
                if let Some(i) = self.classed.iter().position(|(cc, _)| *cc == c) {
                    &mut self.classed[i].1
                } else {
                    self.classed.push((c, VecDeque::new()));
                    &mut self.classed.last_mut().expect("just pushed").1
                }
            }
        }
    }

    /// Dequeues the oldest task overall, returning it with its queueing
    /// delay.
    pub fn pop(&mut self, now: SimTime) -> Option<(TaskHandle, SimDuration)> {
        let mut best: Option<(u64, usize)> = None;
        if let Some(k) = live_front(&self.entries, &self.unclassed) {
            best = Some((k, usize::MAX));
        }
        for (i, (_, q)) in self.classed.iter().enumerate() {
            if let Some(k) = live_front(&self.entries, q) {
                if best.is_none_or(|(bk, _)| k < bk) {
                    best = Some((k, i));
                }
            }
        }
        let (key, qi) = best?;
        self.take(key, qi, now)
    }

    /// Dequeues the oldest task a server of class `server_class` may run:
    /// the earliest-queued among unclassed tasks and tasks constrained to
    /// exactly that class. O(1) amortized — two sub-queue fronts are
    /// compared, matching the old linear scan's order exactly.
    pub fn pop_eligible(
        &mut self,
        now: SimTime,
        server_class: u32,
    ) -> Option<(TaskHandle, SimDuration)> {
        let mut best: Option<(u64, usize)> = None;
        if let Some(k) = live_front(&self.entries, &self.unclassed) {
            best = Some((k, usize::MAX));
        }
        if let Some(i) = self.classed.iter().position(|(c, _)| *c == server_class) {
            if let Some(k) = live_front(&self.entries, &self.classed[i].1) {
                if best.is_none_or(|(bk, _)| k < bk) {
                    best = Some((k, i));
                }
            }
        }
        let (key, qi) = best?;
        self.take(key, qi, now)
    }

    /// Removes `key` (the head of sub-queue `qi`) and returns its task.
    fn take(&mut self, key: u64, qi: usize, now: SimTime) -> Option<(TaskHandle, SimDuration)> {
        let popped = if qi == usize::MAX {
            self.unclassed.pop_front()
        } else {
            self.classed[qi].1.pop_front()
        };
        debug_assert_eq!(popped, Some(key), "take must consume its sub-queue front");
        let (enq, task, _) = self.entries.remove(key).expect("front key is live");
        Some((task, now.saturating_duration_since(enq)))
    }

    /// Dequeues the oldest task satisfying `pred`, preserving order among
    /// the rest. This is the fully general (linear) path; class-shaped
    /// predicates should use [`pop_eligible`](Self::pop_eligible).
    pub fn pop_matching(
        &mut self,
        now: SimTime,
        mut pred: impl FnMut(&TaskHandle) -> bool,
    ) -> Option<(TaskHandle, SimDuration)> {
        let mut best: Option<u64> = None;
        for (k, (_, t, _)) in self.entries.iter() {
            if best.is_none_or(|b| k < b) && pred(t) {
                best = Some(k);
            }
        }
        let key = best?;
        let (enq, task, class) = self.entries.remove(key).expect("key from live iter");
        self.purge_key(class, key);
        Some((task, now.saturating_duration_since(enq)))
    }

    /// Eagerly removes `key` from its class sub-queue after an
    /// out-of-band (non-front) removal, preserving the invariant that
    /// sub-queue fronts are always live (linear in that one sub-queue —
    /// only [`pop_matching`](Self::pop_matching), already the linear
    /// path, removes out of band).
    fn purge_key(&mut self, class: Option<u32>, key: u64) {
        let q = self.subqueue_mut(class);
        if let Some(pos) = q.iter().position(|&k| k == key) {
            q.remove(pos);
        } else {
            debug_assert!(false, "removed entry missing from its sub-queue");
        }
    }

    /// Tasks currently waiting.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if no tasks wait.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// High-water mark of the queue length.
    pub fn max_len(&self) -> usize {
        self.max_len
    }

    /// Total tasks that ever waited here.
    pub fn total_enqueued(&self) -> u64 {
        self.total_enqueued
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use holdcsim_des::rng::SimRng;
    use holdcsim_des::time::SimDuration;
    use holdcsim_workload::ids::{JobId, TaskId};

    fn th(n: u64) -> TaskHandle {
        TaskHandle::new(TaskId::new(JobId(n), 0), SimDuration::from_millis(1))
    }

    #[test]
    fn fifo_order_and_waits() {
        let mut q = GlobalQueue::new();
        q.push(SimTime::ZERO, th(1));
        q.push(SimTime::from_millis(5), th(2));
        let (a, wa) = q.pop(SimTime::from_millis(10)).unwrap();
        assert_eq!(a.id.job.0, 1);
        assert_eq!(wa, SimDuration::from_millis(10));
        let (b, wb) = q.pop(SimTime::from_millis(10)).unwrap();
        assert_eq!(b.id.job.0, 2);
        assert_eq!(wb, SimDuration::from_millis(5));
        assert!(q.pop(SimTime::from_millis(11)).is_none());
    }

    #[test]
    fn stats_track_high_water() {
        let mut q = GlobalQueue::new();
        assert!(q.is_empty());
        q.push(SimTime::ZERO, th(1));
        q.push(SimTime::ZERO, th(2));
        q.pop(SimTime::ZERO);
        q.push(SimTime::ZERO, th(3));
        assert_eq!(q.len(), 2);
        assert_eq!(q.max_len(), 2);
        assert_eq!(q.total_enqueued(), 3);
    }

    #[test]
    fn pop_interleaves_classes_in_global_fifo_order() {
        let mut q = GlobalQueue::new();
        q.push_classed(SimTime::ZERO, th(0), Some(1));
        q.push_classed(SimTime::ZERO, th(1), None);
        q.push_classed(SimTime::ZERO, th(2), Some(0));
        q.push_classed(SimTime::ZERO, th(3), Some(1));
        let order: Vec<u64> =
            std::iter::from_fn(|| q.pop(SimTime::ZERO).map(|(t, _)| t.id.job.0)).collect();
        assert_eq!(order, vec![0, 1, 2, 3], "pop ignores class boundaries");
    }

    #[test]
    fn pop_eligible_matches_class_and_unclassed_in_fifo_order() {
        let mut q = GlobalQueue::new();
        q.push_classed(SimTime::ZERO, th(0), Some(1)); // other class
        q.push_classed(SimTime::ZERO, th(1), Some(0)); // ours
        q.push_classed(SimTime::ZERO, th(2), None); // unconstrained
        q.push_classed(SimTime::ZERO, th(3), Some(0)); // ours
        let (a, _) = q.pop_eligible(SimTime::ZERO, 0).unwrap();
        let (b, _) = q.pop_eligible(SimTime::ZERO, 0).unwrap();
        let (c, _) = q.pop_eligible(SimTime::ZERO, 0).unwrap();
        assert_eq!(
            (a.id.job.0, b.id.job.0, c.id.job.0),
            (1, 2, 3),
            "oldest eligible first, across class and unclassed queues"
        );
        assert!(q.pop_eligible(SimTime::ZERO, 0).is_none(), "class 1 left");
        let (d, _) = q.pop_eligible(SimTime::ZERO, 1).unwrap();
        assert_eq!(d.id.job.0, 0);
        assert!(q.is_empty());
    }

    #[test]
    fn pop_matching_purges_subqueues_and_preserves_order() {
        // pop_matching removes out of band; the matching sub-queue key is
        // purged eagerly and order among the rest is undisturbed.
        let mut q = GlobalQueue::new();
        q.push_classed(SimTime::ZERO, th(0), Some(0));
        q.push_classed(SimTime::ZERO, th(1), Some(0));
        q.push_classed(SimTime::ZERO, th(2), None);
        let (m, _) = q.pop_matching(SimTime::ZERO, |t| t.id.job.0 == 1).unwrap();
        assert_eq!(m.id.job.0, 1);
        assert_eq!(q.len(), 2);
        let (a, _) = q.pop_eligible(SimTime::ZERO, 0).unwrap();
        let (b, _) = q.pop_eligible(SimTime::ZERO, 0).unwrap();
        assert_eq!((a.id.job.0, b.id.job.0), (0, 2));
        assert!(q.is_empty());
    }

    #[test]
    fn pop_matching_only_usage_does_not_grow_subqueues() {
        // A consumer using only push + pop_matching (the pre-PR API) must
        // keep sub-queue memory at O(waiting), not O(total enqueued).
        let mut q = GlobalQueue::new();
        q.push_classed(SimTime::ZERO, th(u64::MAX), Some(9)); // never matched
        for i in 0..10_000u64 {
            q.push_classed(SimTime::ZERO, th(i), Some(i as u32 % 2));
            let (t, _) = q.pop_matching(SimTime::ZERO, |t| t.id.job.0 == i).unwrap();
            assert_eq!(t.id.job.0, i);
        }
        assert_eq!(q.len(), 1);
        let held: usize = q.unclassed.len() + q.classed.iter().map(|(_, v)| v.len()).sum::<usize>();
        assert_eq!(held, 1, "sub-queues must not accumulate dead keys");
    }

    /// A workload mixing heavy `pop_matching` with class pulls and plain
    /// pops must never accumulate dead keys in any sub-queue: removal is
    /// eagerly purged, so held sub-queue keys always equal the waiting
    /// count.
    #[test]
    fn mixed_pop_matching_and_class_pulls_hold_no_dead_keys() {
        let root = SimRng::seed_from(0xDEAD5);
        for trial in 0..8u64 {
            let mut rng = root.substream(trial);
            let mut q = GlobalQueue::new();
            let mut next_job = 0u64;
            for _ in 0..3_000 {
                match rng.below(10) {
                    0..=4 => {
                        let class = match rng.below(4) {
                            0 => None,
                            c => Some((c - 1) as u32),
                        };
                        q.push_classed(SimTime::ZERO, th(next_job), class);
                        next_job += 1;
                    }
                    5..=6 => {
                        // Match an arbitrary (often mid-queue) job id.
                        let probe = rng.below(next_job.max(1));
                        q.pop_matching(SimTime::ZERO, |t| t.id.job.0 >= probe);
                    }
                    7..=8 => {
                        q.pop_eligible(SimTime::ZERO, rng.below(3) as u32);
                    }
                    _ => {
                        q.pop(SimTime::ZERO);
                    }
                }
                let held: usize =
                    q.unclassed.len() + q.classed.iter().map(|(_, v)| v.len()).sum::<usize>();
                assert_eq!(held, q.len(), "trial {trial}: dead sub-queue keys");
            }
        }
    }

    /// Equivalence: `pop_eligible` must reproduce the old linear-scan
    /// `pop_matching` semantics under a randomized class workload.
    #[test]
    fn pop_eligible_matches_linear_scan_reference() {
        let root = SimRng::seed_from(0xC1A55);
        for trial in 0..10u64 {
            let mut rng = root.substream(trial);
            let mut q = GlobalQueue::new();
            // The reference model: a plain FIFO of (job, class).
            let mut model: VecDeque<(u64, Option<u32>)> = VecDeque::new();
            let mut next_job = 0u64;
            for _ in 0..2_000 {
                if model.is_empty() || rng.chance(0.55) {
                    let class = match rng.below(4) {
                        0 => None,
                        c => Some((c - 1) as u32),
                    };
                    q.push_classed(SimTime::ZERO, th(next_job), class);
                    model.push_back((next_job, class));
                    next_job += 1;
                } else {
                    let server_class = rng.below(3) as u32;
                    let got = q
                        .pop_eligible(SimTime::ZERO, server_class)
                        .map(|(t, _)| t.id.job.0);
                    // Reference: first entry whose class is None or equal.
                    let want_idx = model
                        .iter()
                        .position(|(_, c)| c.is_none() || *c == Some(server_class));
                    let want = want_idx.map(|i| model.remove(i).expect("index from position").0);
                    assert_eq!(got, want, "trial {trial}");
                }
                assert_eq!(q.len(), model.len());
            }
        }
    }
}
