//! # holdcsim-sched
//!
//! Global scheduling and cluster-level power controllers for HolDCSim-RS
//! (§III-E, §IV of the paper): placement policies (round-robin,
//! least-loaded, consolidating pack-first, random, server-network-aware),
//! the optional global task queue, the §IV-A provisioning controller, the
//! WASP two-pool manager, and dual-delay-timer assignment.
//!
//! ```
//! use holdcsim_sched::prelude::*;
//! use holdcsim_server::prelude::*;
//! use holdcsim_des::time::SimTime;
//!
//! let servers: Vec<Server> = (0..4)
//!     .map(|i| Server::new(SimTime::ZERO, ServerId(i), ServerConfig::new(2)))
//!     .collect();
//! let ids: Vec<ServerId> = (0..4).map(ServerId).collect();
//! let mut policy = LeastLoaded::new();
//! let view = ClusterView::new(&servers);
//! let pick = policy.select(&view, &ids, &NoNetworkCost);
//! assert_eq!(pick, Some(ServerId(0)));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod geo;
pub mod policy;
pub mod pools;
pub mod provisioning;
pub mod queue;

pub use geo::{route_site, GeoPolicy};
pub use policy::{
    ClusterView, GlobalPolicy, LeastLoaded, NetworkAware, NetworkCost, NoNetworkCost, PackFirst,
    Random, RoundRobin,
};
pub use pools::{dual_timer_policies, PoolAction, PoolManager};
pub use provisioning::{ProvisionAction, ProvisioningController};
pub use queue::GlobalQueue;

/// Convenience re-exports for downstream crates.
pub mod prelude {
    pub use crate::geo::{route_site, GeoPolicy};
    pub use crate::policy::{
        ClusterView, GlobalPolicy, LeastLoaded, NetworkAware, NetworkCost, NoNetworkCost,
        PackFirst, Random, RoundRobin,
    };
    pub use crate::pools::{dual_timer_policies, PoolAction, PoolManager};
    pub use crate::provisioning::{ProvisionAction, ProvisioningController};
    pub use crate::queue::GlobalQueue;
}
