//! Pool-based power management: the WASP workload-adaptive two-pool
//! framework (§IV-C, Fig. 7) and the dual-delay-timer partitioning
//! (§IV-B, Fig. 6, after \[69\]).

use std::collections::BTreeSet;

use holdcsim_des::time::SimDuration;
use holdcsim_server::policy::SleepPolicy;
use holdcsim_server::server::ServerId;

/// What the pool controller wants done after a load sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolAction {
    /// Move `server` from the sleep pool to the active pool and wake it.
    Promote(ServerId),
    /// Move `server` from the active pool to the sleep pool.
    Demote(ServerId),
    /// No change.
    Hold,
}

/// The WASP two-pool manager: an *active pool* (shallow sleep only, takes
/// all dispatches) and a *sleep pool* (descends to deep sleep). Servers
/// migrate between pools on pending-load thresholds T_wakeup / T_sleep.
///
/// # Examples
///
/// ```
/// use holdcsim_sched::pools::{PoolAction, PoolManager};
/// use holdcsim_server::server::ServerId;
/// use holdcsim_des::time::SimDuration;
///
/// let ids: Vec<ServerId> = (0..4).map(ServerId).collect();
/// let mut mgr = PoolManager::new(&ids, 2, 3.0, 0.5, SimDuration::from_secs(1));
/// assert_eq!(mgr.active().len(), 2);
/// // Load of 4 pending/active-server > T_wakeup: promote one.
/// match mgr.decide(8.0) {
///     PoolAction::Promote(id) => mgr.apply_promote(id),
///     other => panic!("{other:?}"),
/// }
/// assert_eq!(mgr.active().len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct PoolManager {
    active: BTreeSet<ServerId>,
    sleeping: BTreeSet<ServerId>,
    t_wakeup: f64,
    t_sleep: f64,
    sleep_pool_tau: SimDuration,
    min_active: usize,
}

impl PoolManager {
    /// Creates a manager over `servers`, starting with the first
    /// `initial_active` of them in the active pool.
    ///
    /// * `t_wakeup` — promote when pending jobs per active server rises
    ///   above this.
    /// * `t_sleep` — demote when it falls below this.
    /// * `sleep_pool_tau` — the delay timer sleep-pool members run before
    ///   descending from package C6 to system sleep.
    ///
    /// # Panics
    ///
    /// Panics if `servers` is empty, `initial_active` is zero or exceeds
    /// the server count, or `t_sleep >= t_wakeup`.
    pub fn new(
        servers: &[ServerId],
        initial_active: usize,
        t_wakeup: f64,
        t_sleep: f64,
        sleep_pool_tau: SimDuration,
    ) -> Self {
        assert!(!servers.is_empty(), "pool manager needs servers");
        assert!(
            initial_active >= 1 && initial_active <= servers.len(),
            "initial_active out of range"
        );
        assert!(t_sleep < t_wakeup, "T_sleep must be below T_wakeup");
        let active: BTreeSet<ServerId> = servers[..initial_active].iter().copied().collect();
        let sleeping: BTreeSet<ServerId> = servers[initial_active..].iter().copied().collect();
        PoolManager {
            active,
            sleeping,
            t_wakeup,
            t_sleep,
            sleep_pool_tau,
            min_active: 1,
        }
    }

    /// The active pool (dispatch targets), ascending by id.
    pub fn active(&self) -> Vec<ServerId> {
        self.active.iter().copied().collect()
    }

    /// The sleep pool, ascending by id.
    pub fn sleeping(&self) -> Vec<ServerId> {
        self.sleeping.iter().copied().collect()
    }

    /// Iterates the active pool ascending by id without allocating.
    pub fn active_iter(&self) -> impl Iterator<Item = ServerId> + '_ {
        self.active.iter().copied()
    }

    /// Iterates the sleep pool ascending by id without allocating.
    pub fn sleeping_iter(&self) -> impl Iterator<Item = ServerId> + '_ {
        self.sleeping.iter().copied()
    }

    /// `true` if `id` is currently in the active pool.
    pub fn is_active(&self, id: ServerId) -> bool {
        self.active.contains(&id)
    }

    /// The policy active-pool members should run: shallow sleep only.
    pub fn active_pool_policy(&self) -> SleepPolicy {
        SleepPolicy::shallow_only()
    }

    /// The policy sleep-pool members should run: shallow, then deep after τ.
    pub fn sleep_pool_policy(&self) -> SleepPolicy {
        SleepPolicy::shallow_then_deep(self.sleep_pool_tau)
    }

    /// Decides on a sample of `total_pending` jobs (pending per active
    /// server vs the thresholds). The returned server is a *suggestion*;
    /// the driver applies it with [`apply_promote`](Self::apply_promote) /
    /// [`apply_demote`](Self::apply_demote) after acting on the hardware.
    pub fn decide(&self, total_pending: f64) -> PoolAction {
        let per = total_pending / self.active.len() as f64;
        if per > self.t_wakeup {
            if let Some(&id) = self.sleeping.iter().next() {
                return PoolAction::Promote(id);
            }
        } else if per < self.t_sleep && self.active.len() > self.min_active {
            // Demote the highest-id active server (LIFO keeps a stable core
            // set hot, concentrating load like the paper's Fig. 9).
            if let Some(&id) = self.active.iter().next_back() {
                return PoolAction::Demote(id);
            }
        }
        PoolAction::Hold
    }

    /// Records a promotion decided by [`decide`](Self::decide).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not in the sleep pool.
    pub fn apply_promote(&mut self, id: ServerId) {
        assert!(self.sleeping.remove(&id), "{id} was not sleeping");
        self.active.insert(id);
    }

    /// Records a demotion decided by [`decide`](Self::decide).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not in the active pool.
    pub fn apply_demote(&mut self, id: ServerId) {
        assert!(self.active.remove(&id), "{id} was not active");
        self.sleeping.insert(id);
    }

    /// The `(T_wakeup, T_sleep)` thresholds.
    pub fn thresholds(&self) -> (f64, f64) {
        (self.t_wakeup, self.t_sleep)
    }
}

/// Dual-delay-timer assignment (§IV-B, Fig. 6): the first `n_high` servers
/// get a long timer τ_high and absorb the steady load; the rest get a short
/// timer τ_low so they sleep promptly after bursts.
///
/// Returns one policy per server, aligned with `n_servers`.
///
/// # Panics
///
/// Panics if `n_high > n_servers`.
pub fn dual_timer_policies(
    n_servers: usize,
    n_high: usize,
    tau_high: SimDuration,
    tau_low: SimDuration,
) -> Vec<SleepPolicy> {
    assert!(n_high <= n_servers, "n_high exceeds the farm");
    (0..n_servers)
        .map(|i| {
            if i < n_high {
                SleepPolicy::delay_timer(tau_high)
            } else {
                SleepPolicy::delay_timer(tau_low)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(n: u32) -> Vec<ServerId> {
        (0..n).map(ServerId).collect()
    }

    #[test]
    fn initial_split() {
        let mgr = PoolManager::new(&ids(5), 2, 3.0, 0.5, SimDuration::from_secs(1));
        assert_eq!(mgr.active(), vec![ServerId(0), ServerId(1)]);
        assert_eq!(mgr.sleeping().len(), 3);
        assert!(mgr.is_active(ServerId(0)));
        assert!(!mgr.is_active(ServerId(4)));
    }

    #[test]
    fn promote_on_high_load() {
        let mut mgr = PoolManager::new(&ids(3), 1, 2.0, 0.5, SimDuration::from_secs(1));
        match mgr.decide(5.0) {
            PoolAction::Promote(id) => {
                assert_eq!(id, ServerId(1));
                mgr.apply_promote(id);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(mgr.active().len(), 2);
    }

    #[test]
    fn demote_on_low_load() {
        let mut mgr = PoolManager::new(&ids(3), 3, 2.0, 0.5, SimDuration::from_secs(1));
        match mgr.decide(0.3) {
            PoolAction::Demote(id) => {
                assert_eq!(id, ServerId(2), "demotes highest id");
                mgr.apply_demote(id);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(mgr.active().len(), 2);
    }

    #[test]
    fn never_demotes_last_server() {
        let mgr = PoolManager::new(&ids(3), 1, 2.0, 0.5, SimDuration::from_secs(1));
        assert_eq!(mgr.decide(0.0), PoolAction::Hold);
    }

    #[test]
    fn hold_when_all_promoted() {
        let mgr = PoolManager::new(&ids(2), 2, 2.0, 0.5, SimDuration::from_secs(1));
        assert_eq!(mgr.decide(100.0), PoolAction::Hold);
    }

    #[test]
    fn hold_inside_band() {
        let mgr = PoolManager::new(&ids(4), 2, 3.0, 0.5, SimDuration::from_secs(1));
        assert_eq!(mgr.decide(2.0), PoolAction::Hold); // 1.0 per server
    }

    #[test]
    fn pool_policies_match_wasp() {
        let mgr = PoolManager::new(&ids(2), 1, 2.0, 0.5, SimDuration::from_secs(3));
        assert_eq!(mgr.active_pool_policy(), SleepPolicy::shallow_only());
        assert_eq!(
            mgr.sleep_pool_policy(),
            SleepPolicy::shallow_then_deep(SimDuration::from_secs(3))
        );
    }

    #[test]
    fn dual_timer_split() {
        let ps = dual_timer_policies(
            4,
            1,
            SimDuration::from_secs(10),
            SimDuration::from_millis(100),
        );
        assert_eq!(ps.len(), 4);
        assert_eq!(ps[0], SleepPolicy::delay_timer(SimDuration::from_secs(10)));
        for p in &ps[1..] {
            assert_eq!(*p, SleepPolicy::delay_timer(SimDuration::from_millis(100)));
        }
    }

    #[test]
    #[should_panic(expected = "T_sleep must be below")]
    fn inverted_thresholds_rejected() {
        let _ = PoolManager::new(&ids(2), 1, 0.5, 2.0, SimDuration::from_secs(1));
    }
}
