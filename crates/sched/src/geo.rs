//! Geo-aware dispatch: which *site* of a multi-datacenter federation runs
//! a job that just arrived at its home site.
//!
//! The federation coordinator snapshots per-site loads (in-flight jobs per
//! core) and static WAN path latencies, and the site's driver calls
//! [`route_site`] at every job arrival. Decisions are pure functions of
//! those inputs — no RNG — so a federated run whose jobs all stay home is
//! event-for-event identical to the corresponding standalone runs.

/// Geo-aware site-dispatch policy of a federation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GeoPolicy {
    /// Run at the home site unless its load (in-flight jobs per core)
    /// reaches `spill_load`; then spill to the least-loaded site.
    SiteLocalFirst {
        /// Home-site load threshold above which jobs spill.
        spill_load: f64,
    },
    /// Always run at the least-loaded site (ties prefer home, then the
    /// lowest site index) — the WAN-oblivious baseline.
    LoadBalanced,
    /// Follow the workload under a latency budget: minimize
    /// `load + latency_weight × wan_latency_s(home → site)`, so nearby
    /// sites win unless the load gap pays for the WAN detour.
    LatencyAware {
        /// Load units charged per second of WAN path latency.
        latency_weight: f64,
    },
}

impl GeoPolicy {
    /// Policy name for reports and CLI round-trips.
    pub fn name(&self) -> &'static str {
        match self {
            GeoPolicy::SiteLocalFirst { .. } => "site-local-first",
            GeoPolicy::LoadBalanced => "load-balanced",
            GeoPolicy::LatencyAware { .. } => "latency-aware",
        }
    }
}

/// Picks the site that minimizes `score(site)`, preferring `home` on ties
/// and lower indices otherwise (a total, deterministic order).
fn argmin_site(n: usize, home: u32, mut score: impl FnMut(usize) -> f64) -> u32 {
    let mut best = home;
    let mut best_score = score(home as usize);
    for i in 0..n {
        let s = score(i);
        if s < best_score && i as u32 != home {
            best = i as u32;
            best_score = s;
        }
    }
    best
}

/// The geo dispatch decision: the site that should run a job arriving at
/// `home`, given per-site `loads` (in-flight jobs per core) and the WAN
/// path latency in seconds from `home` to each site
/// (`wan_latency_s[home] == 0`).
///
/// # Panics
///
/// Panics (debug) if the slices disagree in length or `home` is out of
/// range.
pub fn route_site(policy: GeoPolicy, home: u32, loads: &[f64], wan_latency_s: &[f64]) -> u32 {
    debug_assert_eq!(loads.len(), wan_latency_s.len());
    debug_assert!((home as usize) < loads.len());
    if loads.len() <= 1 {
        return home;
    }
    match policy {
        GeoPolicy::SiteLocalFirst { spill_load } => {
            if loads[home as usize] < spill_load {
                home
            } else {
                argmin_site(loads.len(), home, |i| loads[i])
            }
        }
        GeoPolicy::LoadBalanced => argmin_site(loads.len(), home, |i| loads[i]),
        GeoPolicy::LatencyAware { latency_weight } => argmin_site(loads.len(), home, |i| {
            loads[i] + latency_weight * wan_latency_s[i]
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_local_stays_home_below_threshold() {
        let loads = [0.9, 0.0, 0.0];
        let lat = [0.0, 0.01, 0.01];
        let p = GeoPolicy::SiteLocalFirst { spill_load: 1.0 };
        assert_eq!(route_site(p, 0, &loads, &lat), 0);
    }

    #[test]
    fn site_local_spills_to_least_loaded() {
        let loads = [2.0, 0.7, 0.3];
        let lat = [0.0, 0.01, 0.01];
        let p = GeoPolicy::SiteLocalFirst { spill_load: 1.0 };
        assert_eq!(route_site(p, 0, &loads, &lat), 2);
    }

    #[test]
    fn load_balanced_prefers_home_on_ties() {
        let loads = [0.5, 0.5, 0.5];
        let lat = [0.02, 0.0, 0.02];
        assert_eq!(route_site(GeoPolicy::LoadBalanced, 1, &loads, &lat), 1);
        // Strictly lower load wins even away from home.
        let loads = [0.5, 0.5, 0.4];
        assert_eq!(route_site(GeoPolicy::LoadBalanced, 1, &loads, &lat), 2);
    }

    #[test]
    fn latency_aware_charges_the_wan_detour() {
        // Site 2 is less loaded, but 50 ms away at 10 load-units/s the
        // detour costs 0.5 — more than the 0.3 load gap.
        let loads = [0.8, 0.9, 0.5];
        let lat = [0.0, 0.005, 0.05];
        let p = GeoPolicy::LatencyAware {
            latency_weight: 10.0,
        };
        assert_eq!(route_site(p, 0, &loads, &lat), 0);
        // With a cheap WAN the load gap dominates.
        let cheap = GeoPolicy::LatencyAware {
            latency_weight: 1.0,
        };
        assert_eq!(route_site(cheap, 0, &loads, &lat), 2);
    }

    #[test]
    fn single_site_is_trivial() {
        assert_eq!(route_site(GeoPolicy::LoadBalanced, 0, &[3.0], &[0.0]), 0);
    }

    #[test]
    fn names_round_trip() {
        assert_eq!(
            GeoPolicy::SiteLocalFirst { spill_load: 1.0 }.name(),
            "site-local-first"
        );
        assert_eq!(GeoPolicy::LoadBalanced.name(), "load-balanced");
        assert_eq!(
            GeoPolicy::LatencyAware {
                latency_weight: 1.0
            }
            .name(),
            "latency-aware"
        );
    }
}
