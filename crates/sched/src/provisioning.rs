//! Dynamic resource provisioning (§IV-A, Fig. 4): keep the load per active
//! server between two thresholds by activating/parking servers.

/// What the provisioning loop should do after a load sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProvisionAction {
    /// Load per server exceeded the max threshold: bring one server back.
    ActivateOne,
    /// Load per server dropped below the min threshold: park one server
    /// (it finishes pending work, then sleeps).
    DeactivateOne,
    /// Load is within band.
    Hold,
}

/// The §IV-A threshold controller.
///
/// # Examples
///
/// ```
/// use holdcsim_sched::provisioning::{ProvisionAction, ProvisioningController};
///
/// let ctl = ProvisioningController::new(1.0, 3.0, 100);
/// assert_eq!(ctl.decide(200.0, 50), ProvisionAction::ActivateOne); // 4 > 3
/// assert_eq!(ctl.decide(20.0, 50), ProvisionAction::DeactivateOne); // 0.4 < 1
/// assert_eq!(ctl.decide(100.0, 50), ProvisionAction::Hold); // 2 in band
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProvisioningController {
    min_load: f64,
    max_load: f64,
    total_servers: usize,
}

impl ProvisioningController {
    /// Creates a controller with per-server load thresholds.
    ///
    /// # Panics
    ///
    /// Panics if `min_load >= max_load`, either is negative, or
    /// `total_servers == 0`.
    pub fn new(min_load: f64, max_load: f64, total_servers: usize) -> Self {
        assert!(
            min_load >= 0.0 && max_load > min_load,
            "thresholds must satisfy 0 <= min < max"
        );
        assert!(total_servers > 0, "need at least one server");
        ProvisioningController {
            min_load,
            max_load,
            total_servers,
        }
    }

    /// Decides on a sample of `total_pending` tasks across `active` servers.
    ///
    /// Never deactivates the last server, never activates beyond the farm.
    pub fn decide(&self, total_pending: f64, active: usize) -> ProvisionAction {
        if active == 0 {
            return ProvisionAction::ActivateOne;
        }
        let per_server = total_pending / active as f64;
        if per_server > self.max_load && active < self.total_servers {
            ProvisionAction::ActivateOne
        } else if per_server < self.min_load && active > 1 {
            ProvisionAction::DeactivateOne
        } else {
            ProvisionAction::Hold
        }
    }

    /// The configured thresholds `(min, max)`.
    pub fn thresholds(&self) -> (f64, f64) {
        (self.min_load, self.max_load)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_are_respected() {
        let ctl = ProvisioningController::new(1.0, 3.0, 4);
        // At full farm, high load holds.
        assert_eq!(ctl.decide(100.0, 4), ProvisionAction::Hold);
        // At one server, low load holds.
        assert_eq!(ctl.decide(0.0, 1), ProvisionAction::Hold);
        // Zero active always activates.
        assert_eq!(ctl.decide(0.0, 0), ProvisionAction::ActivateOne);
    }

    #[test]
    fn band_edges_hold() {
        let ctl = ProvisioningController::new(1.0, 3.0, 10);
        assert_eq!(ctl.decide(30.0, 10), ProvisionAction::Hold); // exactly max
        assert_eq!(ctl.decide(10.0, 10), ProvisionAction::Hold); // exactly min
    }

    #[test]
    fn converges_to_band_in_closed_loop() {
        // Simulated closed loop: constant 120 pending tasks, controller
        // adjusts the active count until load/server is within [2, 6].
        let ctl = ProvisioningController::new(2.0, 6.0, 100);
        let mut active = 100usize;
        for _ in 0..200 {
            match ctl.decide(120.0, active) {
                ProvisionAction::ActivateOne => active += 1,
                ProvisionAction::DeactivateOne => active -= 1,
                ProvisionAction::Hold => break,
            }
        }
        let per = 120.0 / active as f64;
        assert!(
            (2.0..=6.0).contains(&per),
            "load per server {per} with {active} active"
        );
    }

    #[test]
    #[should_panic(expected = "min < max")]
    fn inverted_thresholds_rejected() {
        let _ = ProvisioningController::new(3.0, 1.0, 10);
    }
}
