//! A generic power-state machine with transition latencies, per-state power
//! draw, residency accounting, and energy integration.
//!
//! Every power-managed component in the simulator — cores, packages, whole
//! servers, switch ports, line cards — is an instance of
//! [`PowerStateMachine`] over its own state enum. The paper's hierarchical
//! power model (§III-F) composes several of these.

use std::hash::Hash;

use holdcsim_des::stats::{Residency, TimeWeighted};
use holdcsim_des::time::{SimDuration, SimTime};

/// Either steady residence in a state or an in-flight transition.
///
/// Transitions are first-class because the paper reports them separately
/// (the "Wake-up" band of Fig. 8) and because components draw distinctive
/// power while transitioning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase<S> {
    /// Settled in a state.
    Steady(S),
    /// Moving between states (not yet usable in the target state).
    Transitioning {
        /// State the machine left.
        from: S,
        /// State the machine will settle in.
        to: S,
    },
}

impl<S: Copy> Phase<S> {
    /// The state this phase settles toward (target for transitions).
    pub fn target(&self) -> S {
        match *self {
            Phase::Steady(s) => s,
            Phase::Transitioning { to, .. } => to,
        }
    }
}

/// A pending transition's bookkeeping.
#[derive(Debug, Clone, Copy)]
struct Pending<S> {
    to: S,
    done_at: SimTime,
    settle_power_w: f64,
}

/// Tracks one component's power state, transition, residency, and energy.
///
/// # Examples
///
/// ```
/// use holdcsim_power::machine::{Phase, PowerStateMachine};
/// use holdcsim_des::time::{SimDuration, SimTime};
///
/// #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
/// enum S { On, Sleep }
///
/// let t0 = SimTime::ZERO;
/// let mut m = PowerStateMachine::new(t0, S::On, 100.0);
/// // Sleep entry takes 1 s at 100 W, then draws 5 W.
/// let done = m.begin_transition(SimTime::from_secs(10), S::Sleep,
///                               SimDuration::from_secs(1), 100.0, 5.0);
/// m.complete_transition(done);
/// let end = SimTime::from_secs(20);
/// // 11 s at 100 W + 9 s at 5 W.
/// assert_eq!(m.energy_j(end), 11.0 * 100.0 + 9.0 * 5.0);
/// assert_eq!(m.phase(), Phase::Steady(S::Sleep));
/// ```
#[derive(Debug, Clone)]
pub struct PowerStateMachine<S: Copy + Ord + Hash> {
    phase: Phase<S>,
    pending: Option<Pending<S>>,
    residency: Residency<Phase<S>>,
    power: TimeWeighted,
    transition_energy_j: f64,
}

impl<S: Copy + Ord + Hash + std::fmt::Debug> PowerStateMachine<S> {
    /// Creates a machine settled in `initial`, drawing `power_w`.
    pub fn new(now: SimTime, initial: S, power_w: f64) -> Self {
        PowerStateMachine {
            phase: Phase::Steady(initial),
            pending: None,
            residency: Residency::new(now, Phase::Steady(initial)),
            power: TimeWeighted::new(now, power_w),
            transition_energy_j: 0.0,
        }
    }

    /// The current phase (steady state or in-flight transition).
    pub fn phase(&self) -> Phase<S> {
        self.phase
    }

    /// The steady state if settled, `None` while transitioning.
    pub fn steady(&self) -> Option<S> {
        match self.phase {
            Phase::Steady(s) => Some(s),
            Phase::Transitioning { .. } => None,
        }
    }

    /// `true` while a transition is in flight.
    pub fn is_transitioning(&self) -> bool {
        self.pending.is_some()
    }

    /// When the in-flight transition settles, if any.
    pub fn transition_done_at(&self) -> Option<SimTime> {
        self.pending.map(|p| p.done_at)
    }

    /// Instantaneous power draw in watts.
    pub fn power_w(&self) -> f64 {
        self.power.value()
    }

    /// Changes power draw without a state change (e.g. a core going from
    /// idle-in-C0 to busy-in-C0, or a DVFS change).
    pub fn set_power(&mut self, now: SimTime, power_w: f64) {
        self.power.set(now, power_w);
    }

    /// Instantaneously switches to `state` drawing `power_w` (for
    /// zero-latency transitions like C0 → C1).
    ///
    /// # Panics
    ///
    /// Panics if a latent transition is in flight — complete or supersede it
    /// first (components cannot teleport out of a hardware transition).
    pub fn set_state(&mut self, now: SimTime, state: S, power_w: f64) {
        assert!(
            self.pending.is_none(),
            "set_state during in-flight transition to {:?}",
            self.pending.unwrap().to
        );
        self.phase = Phase::Steady(state);
        self.residency.transition(now, self.phase);
        self.power.set(now, power_w);
    }

    /// Starts a transition to `to` taking `latency`, drawing
    /// `transition_power_w` meanwhile and `settle_power_w` once settled.
    ///
    /// Returns the settle instant; the caller must invoke
    /// [`complete_transition`](Self::complete_transition) at that instant
    /// (typically from a scheduled event).
    ///
    /// # Panics
    ///
    /// Panics if a transition is already in flight.
    pub fn begin_transition(
        &mut self,
        now: SimTime,
        to: S,
        latency: SimDuration,
        transition_power_w: f64,
        settle_power_w: f64,
    ) -> SimTime {
        assert!(self.pending.is_none(), "transition already in flight");
        let from = self.phase.target();
        let done_at = now + latency;
        self.phase = Phase::Transitioning { from, to };
        self.residency.transition(now, self.phase);
        self.power.set(now, transition_power_w);
        self.pending = Some(Pending {
            to,
            done_at,
            settle_power_w,
        });
        done_at
    }

    /// Settles the in-flight transition at `now`.
    ///
    /// # Panics
    ///
    /// Panics if no transition is in flight or `now` is before the settle
    /// instant returned by [`begin_transition`](Self::begin_transition).
    pub fn complete_transition(&mut self, now: SimTime) {
        let p = self.pending.take().expect("no transition in flight");
        assert!(now >= p.done_at, "transition completed early");
        self.phase = Phase::Steady(p.to);
        self.residency.transition(now, self.phase);
        self.power.set(now, p.settle_power_w);
    }

    /// Adds a lump of transition energy (joules) on top of integrated power
    /// (for models that charge fixed energy per wake, e.g. cache flushes).
    pub fn add_transition_energy(&mut self, joules: f64) {
        self.transition_energy_j += joules;
    }

    /// Total energy in joules consumed through `now`.
    pub fn energy_j(&self, now: SimTime) -> f64 {
        self.power.integral(now) + self.transition_energy_j
    }

    /// Average power in watts over the machine's lifetime through `now`.
    pub fn average_power_w(&self, now: SimTime) -> f64 {
        self.power.time_average(now)
    }

    /// Residency accounting per phase (steady states and transitions).
    pub fn residency(&self) -> &Residency<Phase<S>> {
        &self.residency
    }

    /// Time settled in `state` through `now` (excludes transitions).
    pub fn time_in(&self, state: S, now: SimTime) -> SimDuration {
        self.residency.time_in_through(Phase::Steady(state), now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
    enum S {
        Active,
        Sleep,
    }

    #[test]
    fn steady_energy_integrates() {
        let m = PowerStateMachine::new(SimTime::ZERO, S::Active, 50.0);
        assert_eq!(m.energy_j(SimTime::from_secs(4)), 200.0);
        assert_eq!(m.average_power_w(SimTime::from_secs(4)), 50.0);
    }

    #[test]
    fn transition_draws_transition_power() {
        let mut m = PowerStateMachine::new(SimTime::ZERO, S::Active, 50.0);
        let done = m.begin_transition(
            SimTime::from_secs(2),
            S::Sleep,
            SimDuration::from_secs(3),
            40.0,
            5.0,
        );
        assert_eq!(done, SimTime::from_secs(5));
        assert!(m.is_transitioning());
        m.complete_transition(done);
        assert_eq!(m.phase(), Phase::Steady(S::Sleep));
        // 2s*50 + 3s*40 + 5s*5
        assert_eq!(m.energy_j(SimTime::from_secs(10)), 100.0 + 120.0 + 25.0);
    }

    #[test]
    fn residency_tracks_transition_phase() {
        let mut m = PowerStateMachine::new(SimTime::ZERO, S::Active, 50.0);
        let done = m.begin_transition(
            SimTime::from_secs(1),
            S::Sleep,
            SimDuration::from_secs(2),
            50.0,
            5.0,
        );
        m.complete_transition(done);
        let now = SimTime::from_secs(10);
        assert_eq!(m.time_in(S::Active, now), SimDuration::from_secs(1));
        assert_eq!(m.time_in(S::Sleep, now), SimDuration::from_secs(7));
        let wakeup = m.residency().time_in_through(
            Phase::Transitioning {
                from: S::Active,
                to: S::Sleep,
            },
            now,
        );
        assert_eq!(wakeup, SimDuration::from_secs(2));
    }

    #[test]
    fn set_state_is_instant() {
        let mut m = PowerStateMachine::new(SimTime::ZERO, S::Active, 50.0);
        m.set_state(SimTime::from_secs(1), S::Sleep, 5.0);
        assert_eq!(m.steady(), Some(S::Sleep));
        assert_eq!(m.energy_j(SimTime::from_secs(2)), 55.0);
    }

    #[test]
    fn set_power_changes_draw_without_state_change() {
        let mut m = PowerStateMachine::new(SimTime::ZERO, S::Active, 10.0);
        m.set_power(SimTime::from_secs(1), 20.0);
        assert_eq!(m.steady(), Some(S::Active));
        assert_eq!(m.energy_j(SimTime::from_secs(2)), 30.0);
    }

    #[test]
    fn lump_transition_energy_adds() {
        let mut m = PowerStateMachine::new(SimTime::ZERO, S::Active, 0.0);
        m.add_transition_energy(7.5);
        assert_eq!(m.energy_j(SimTime::from_secs(1)), 7.5);
    }

    #[test]
    #[should_panic(expected = "transition already in flight")]
    fn double_transition_panics() {
        let mut m = PowerStateMachine::new(SimTime::ZERO, S::Active, 50.0);
        m.begin_transition(
            SimTime::ZERO,
            S::Sleep,
            SimDuration::from_secs(1),
            50.0,
            5.0,
        );
        m.begin_transition(
            SimTime::ZERO,
            S::Active,
            SimDuration::from_secs(1),
            50.0,
            50.0,
        );
    }

    #[test]
    #[should_panic(expected = "no transition in flight")]
    fn complete_without_begin_panics() {
        let mut m = PowerStateMachine::new(SimTime::ZERO, S::Active, 50.0);
        m.complete_transition(SimTime::from_secs(1));
    }

    #[test]
    #[should_panic(expected = "completed early")]
    fn complete_early_panics() {
        let mut m = PowerStateMachine::new(SimTime::ZERO, S::Active, 50.0);
        m.begin_transition(
            SimTime::ZERO,
            S::Sleep,
            SimDuration::from_secs(5),
            50.0,
            5.0,
        );
        m.complete_transition(SimTime::from_secs(1));
    }
}
