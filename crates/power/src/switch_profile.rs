//! Switch power profiles: chassis, line cards, and ports (§III-B, §V-B).
//!
//! The paper validates against a Cisco WS-C2960-24-S: base power 14.7 W plus
//! 0.23 W per active port. The [`SwitchPowerProfile::cisco_ws_c2960_24s`]
//! preset reproduces that; [`SwitchPowerProfile::datacenter_48port`] is a
//! larger modular switch for fat-tree studies.

use holdcsim_des::time::SimDuration;

use crate::states::{LineCardPowerState, PortPowerState};

/// Per-port power draws and IEEE 802.3az Low Power Idle timing.
#[derive(Debug, Clone, PartialEq)]
pub struct PortPowerProfile {
    /// Power with the port active at full rate.
    pub active_w: f64,
    /// Power in Low Power Idle.
    pub lpi_w: f64,
    /// Time to enter LPI once the controller decides to (802.3az Ts).
    pub lpi_entry: SimDuration,
    /// Time to leave LPI before the first bit can go out (802.3az Tw).
    pub lpi_exit: SimDuration,
    /// Adaptive Link Rate ladder: `(rate_bps, power_scale)` pairs, slowest
    /// first. Scales `active_w` when the port negotiates a lower rate.
    pub alr_ladder: Vec<(u64, f64)>,
}

impl PortPowerProfile {
    /// Power draw in `state` at the port's full rate.
    pub fn power_w(&self, state: PortPowerState) -> f64 {
        match state {
            PortPowerState::Active => self.active_w,
            PortPowerState::Lpi => self.lpi_w,
            PortPowerState::Off => 0.0,
        }
    }

    /// Active power at `rate_bps` under ALR (nearest ladder entry at or
    /// above the rate; falls back to full power off-ladder).
    pub fn active_power_at_rate_w(&self, rate_bps: u64) -> f64 {
        for &(r, scale) in &self.alr_ladder {
            if rate_bps <= r {
                return self.active_w * scale;
            }
        }
        self.active_w
    }
}

/// Line-card power draws and wake latency.
#[derive(Debug, Clone, PartialEq)]
pub struct LineCardPowerProfile {
    /// Packet-processing hardware active.
    pub active_w: f64,
    /// Sleep state (paper's line-card sleep).
    pub sleep_w: f64,
    /// Latency to wake from sleep to active.
    pub wake_latency: SimDuration,
}

impl LineCardPowerProfile {
    /// Power draw in `state`.
    pub fn power_w(&self, state: LineCardPowerState) -> f64 {
        match state {
            LineCardPowerState::Active => self.active_w,
            LineCardPowerState::Sleep => self.sleep_w,
            LineCardPowerState::Off => 0.0,
        }
    }
}

/// Full power profile of one switch.
#[derive(Debug, Clone, PartialEq)]
pub struct SwitchPowerProfile {
    /// Chassis power with at least one line card active (fans, supervisor,
    /// fabric base).
    pub chassis_w: f64,
    /// Chassis power once every line card sleeps (the whole-switch sleep
    /// the §IV-D joint optimization exploits).
    pub chassis_sleep_w: f64,
    /// Line-card profile (uniform across cards).
    pub linecard: LineCardPowerProfile,
    /// Port profile (uniform across ports).
    pub port: PortPowerProfile,
}

impl SwitchPowerProfile {
    /// The paper's validation switch: Cisco WS-C2960-24-S, 24 ports,
    /// base 14.7 W, 0.23 W per active port (§V-B). The fixed-config switch
    /// has a single integrated "line card" drawing no extra power.
    pub fn cisco_ws_c2960_24s() -> Self {
        SwitchPowerProfile {
            chassis_w: 14.7,
            chassis_sleep_w: 14.7, // fixed-config switch: no chassis sleep
            linecard: LineCardPowerProfile {
                active_w: 0.0,
                sleep_w: 0.0,
                wake_latency: SimDuration::from_millis(1),
            },
            port: PortPowerProfile {
                active_w: 0.23,
                lpi_w: 0.023,
                lpi_entry: SimDuration::from_micros(3),
                lpi_exit: SimDuration::from_micros(5),
                alr_ladder: vec![(100_000_000, 0.45), (1_000_000_000, 1.0)],
            },
        }
    }

    /// A modular 48-port 10 GbE data-center switch for topology studies
    /// (fat tree, flattened butterfly): 4 line cards × 12 ports.
    pub fn datacenter_48port() -> Self {
        SwitchPowerProfile {
            chassis_w: 52.0,
            chassis_sleep_w: 6.5,
            linecard: LineCardPowerProfile {
                active_w: 18.0,
                sleep_w: 3.0,
                wake_latency: SimDuration::from_millis(10),
            },
            port: PortPowerProfile {
                active_w: 0.9,
                lpi_w: 0.09,
                lpi_entry: SimDuration::from_micros(3),
                lpi_exit: SimDuration::from_micros(5),
                alr_ladder: vec![
                    (100_000_000, 0.30),
                    (1_000_000_000, 0.55),
                    (10_000_000_000, 1.0),
                ],
            },
        }
    }

    /// Peak power with `cards` line cards of `ports_per_card` ports, all on.
    pub fn peak_power_w(&self, cards: usize, ports_per_card: usize) -> f64 {
        self.chassis_w
            + self.linecard.active_w * cards as f64
            + self.port.active_w * (cards * ports_per_card) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cisco_preset_matches_paper_numbers() {
        let p = SwitchPowerProfile::cisco_ws_c2960_24s();
        assert_eq!(p.chassis_w, 14.7);
        assert_eq!(p.port.active_w, 0.23);
        // All 24 ports on: 14.7 + 24*0.23 = 20.22 W.
        let peak = p.peak_power_w(1, 24);
        assert!((peak - 20.22).abs() < 1e-9, "peak {peak}");
    }

    #[test]
    fn port_states_order_power() {
        let p = SwitchPowerProfile::datacenter_48port().port;
        assert!(p.power_w(PortPowerState::Active) > p.power_w(PortPowerState::Lpi));
        assert!(p.power_w(PortPowerState::Lpi) > p.power_w(PortPowerState::Off));
        assert_eq!(p.power_w(PortPowerState::Off), 0.0);
    }

    #[test]
    fn alr_ladder_scales_down() {
        let p = SwitchPowerProfile::datacenter_48port().port;
        let slow = p.active_power_at_rate_w(100_000_000);
        let mid = p.active_power_at_rate_w(1_000_000_000);
        let full = p.active_power_at_rate_w(10_000_000_000);
        assert!(slow < mid && mid < full);
        assert_eq!(full, p.active_w);
        // Off-ladder rates fall back to full power.
        assert_eq!(p.active_power_at_rate_w(40_000_000_000), p.active_w);
    }

    #[test]
    fn chassis_sleep_is_cheaper_on_modular_switch() {
        let p = SwitchPowerProfile::datacenter_48port();
        assert!(p.chassis_sleep_w < p.chassis_w);
        let c = SwitchPowerProfile::cisco_ws_c2960_24s();
        assert_eq!(
            c.chassis_sleep_w, c.chassis_w,
            "fixed-config switch never sleeps"
        );
    }

    #[test]
    fn linecard_power_lookup() {
        let lc = SwitchPowerProfile::datacenter_48port().linecard;
        assert_eq!(lc.power_w(LineCardPowerState::Active), 18.0);
        assert_eq!(lc.power_w(LineCardPowerState::Sleep), 3.0);
        assert_eq!(lc.power_w(LineCardPowerState::Off), 0.0);
    }
}
