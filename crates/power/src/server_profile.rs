//! Server power profiles: per-state power draws and transition latencies for
//! cores, packages, DRAM, and the platform (§III-A, §III-F).
//!
//! Profiles are plain data. Users can measure their own machines (RAPL,
//! power meters) or use modeling tools and fill these structs; the
//! [`ServerPowerProfile::xeon_e5_2680`] preset approximates the 10-core
//! Intel Xeon E5-2680 v2 server the paper validates against (§V-A).

use holdcsim_des::time::SimDuration;

use crate::states::{CoreCState, PState, PkgCState, SystemState};

/// Per-core power draws and wake latencies.
#[derive(Debug, Clone, PartialEq)]
pub struct CorePowerProfile {
    /// Power of a core executing instructions at the nominal P-state.
    pub c0_busy_w: f64,
    /// Power of a core in C0 but idle (polling/halt loop).
    pub c0_idle_w: f64,
    /// Power in C1 (halt).
    pub c1_w: f64,
    /// Power in C3.
    pub c3_w: f64,
    /// Power in C6 (power-gated).
    pub c6_w: f64,
    /// Wake latency C1 → C0.
    pub c1_wake: SimDuration,
    /// Wake latency C3 → C0.
    pub c3_wake: SimDuration,
    /// Wake latency C6 → C0.
    pub c6_wake: SimDuration,
}

impl CorePowerProfile {
    /// Idle power draw in `state` (busy power is a separate dimension).
    pub fn idle_power_w(&self, state: CoreCState) -> f64 {
        match state {
            CoreCState::C0 => self.c0_idle_w,
            CoreCState::C1 => self.c1_w,
            CoreCState::C3 => self.c3_w,
            CoreCState::C6 => self.c6_w,
        }
    }

    /// Latency to wake from `state` to C0.
    pub fn wake_latency(&self, state: CoreCState) -> SimDuration {
        match state {
            CoreCState::C0 => SimDuration::ZERO,
            CoreCState::C1 => self.c1_wake,
            CoreCState::C3 => self.c3_wake,
            CoreCState::C6 => self.c6_wake,
        }
    }
}

/// Package (uncore) power draws and wake latencies.
#[derive(Debug, Clone, PartialEq)]
pub struct PackagePowerProfile {
    /// Uncore power with the package fully active.
    pub pc0_w: f64,
    /// Uncore power in the shallow package sleep.
    pub pc2_w: f64,
    /// Uncore power in deep package sleep (paper's package C6).
    pub pc6_w: f64,
    /// Wake latency PC2 → PC0.
    pub pc2_wake: SimDuration,
    /// Wake latency PC6 → PC0 (paper: "less than 1 ms").
    pub pc6_wake: SimDuration,
}

impl PackagePowerProfile {
    /// Uncore power draw in `state`.
    pub fn power_w(&self, state: PkgCState) -> f64 {
        match state {
            PkgCState::Pc0 => self.pc0_w,
            PkgCState::Pc2 => self.pc2_w,
            PkgCState::Pc6 => self.pc6_w,
        }
    }

    /// Latency to wake from `state` to PC0.
    pub fn wake_latency(&self, state: PkgCState) -> SimDuration {
        match state {
            PkgCState::Pc0 => SimDuration::ZERO,
            PkgCState::Pc2 => self.pc2_wake,
            PkgCState::Pc6 => self.pc6_wake,
        }
    }
}

/// DRAM power by activity and system state.
#[derive(Debug, Clone, PartialEq)]
pub struct DramPowerProfile {
    /// Power while cores actively reference memory.
    pub active_w: f64,
    /// Power while powered but unreferenced (precharge/active standby).
    pub idle_w: f64,
    /// Power in self-refresh (system S3).
    pub self_refresh_w: f64,
}

/// Platform (PSU inefficiency, fans, disk, NIC, board) power by system state.
#[derive(Debug, Clone, PartialEq)]
pub struct PlatformPowerProfile {
    /// Platform power with the system working (S0).
    pub s0_w: f64,
    /// Platform power suspended to RAM (S3).
    pub s3_w: f64,
    /// Platform power soft-off (S5).
    pub s5_w: f64,
    /// Latency to suspend S0 → S3.
    pub suspend_latency: SimDuration,
    /// Latency to resume S3 → S0 (dominates the delay-timer economics of
    /// §IV-B).
    pub resume_latency: SimDuration,
    /// Latency to boot from S5 to S0.
    pub boot_latency: SimDuration,
}

impl PlatformPowerProfile {
    /// Platform power in `state`.
    pub fn power_w(&self, state: SystemState) -> f64 {
        match state {
            SystemState::S0 => self.s0_w,
            SystemState::S3 => self.s3_w,
            SystemState::S5 => self.s5_w,
        }
    }

    /// Latency to return to S0 from `state`.
    pub fn wake_latency(&self, state: SystemState) -> SimDuration {
        match state {
            SystemState::S0 => SimDuration::ZERO,
            SystemState::S3 => self.resume_latency,
            SystemState::S5 => self.boot_latency,
        }
    }
}

/// Full hierarchical power profile of one server.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerPowerProfile {
    /// Per-core draws and latencies.
    pub core: CorePowerProfile,
    /// Uncore draws and latencies.
    pub package: PackagePowerProfile,
    /// DRAM draws.
    pub dram: DramPowerProfile,
    /// Platform draws and Sx latencies.
    pub platform: PlatformPowerProfile,
    /// DVFS operating points, slowest first. Must contain at least one
    /// entry; the last entry is the nominal (fastest) point.
    pub pstates: Vec<PState>,
}

impl ServerPowerProfile {
    /// Approximation of the paper's validation server: a 10-core Intel Xeon
    /// E5-2680 v2 machine with C0/C1/C3/C6, package C-states, and S3.
    ///
    /// Absolute draws are calibrated so that an idle package (cores in C6)
    /// sits near 14–15 W and a fully busy package near 55 W, matching the
    /// range of the paper's Fig. 12 RAPL traces.
    pub fn xeon_e5_2680() -> Self {
        ServerPowerProfile {
            core: CorePowerProfile {
                c0_busy_w: 4.0,
                c0_idle_w: 1.4,
                c1_w: 0.9,
                c3_w: 0.35,
                c6_w: 0.05,
                c1_wake: SimDuration::from_micros(2),
                c3_wake: SimDuration::from_micros(60),
                c6_wake: SimDuration::from_micros(200),
            },
            package: PackagePowerProfile {
                pc0_w: 14.0,
                pc2_w: 8.0,
                pc6_w: 2.0,
                pc2_wake: SimDuration::from_micros(50),
                pc6_wake: SimDuration::from_micros(600),
            },
            dram: DramPowerProfile {
                active_w: 6.0,
                idle_w: 2.5,
                self_refresh_w: 0.5,
            },
            platform: PlatformPowerProfile {
                s0_w: 45.0,
                s3_w: 3.5,
                s5_w: 0.8,
                suspend_latency: SimDuration::from_millis(500),
                resume_latency: SimDuration::from_secs(4),
                boot_latency: SimDuration::from_secs(60),
            },
            pstates: vec![
                PState {
                    freq_ghz: 1.2,
                    busy_power_scale: 0.35,
                },
                PState {
                    freq_ghz: 1.6,
                    busy_power_scale: 0.48,
                },
                PState {
                    freq_ghz: 2.0,
                    busy_power_scale: 0.63,
                },
                PState {
                    freq_ghz: 2.4,
                    busy_power_scale: 0.80,
                },
                PState {
                    freq_ghz: 2.8,
                    busy_power_scale: 1.00,
                },
            ],
        }
    }

    /// The nominal (fastest) P-state.
    ///
    /// # Panics
    ///
    /// Panics if the profile has no P-states (invalid profile).
    pub fn nominal_pstate(&self) -> PState {
        *self.pstates.last().expect("profile has no P-states")
    }

    /// Busy power of one core at P-state index `p` (clamped to the table).
    pub fn core_busy_power_w(&self, p: usize) -> f64 {
        let idx = p.min(self.pstates.len() - 1);
        self.core.c0_busy_w * self.pstates[idx].busy_power_scale
    }

    /// Execution speed ratio (vs nominal) at P-state index `p`.
    pub fn speed_ratio(&self, p: usize) -> f64 {
        let idx = p.min(self.pstates.len() - 1);
        self.pstates[idx].speed_ratio(self.nominal_pstate().freq_ghz)
    }

    /// Peak power of a fully-busy server (all cores busy, everything on),
    /// given the core count. Useful for sanity checks and provisioning.
    pub fn peak_power_w(&self, n_cores: usize) -> f64 {
        self.platform.s0_w
            + self.dram.active_w
            + self.package.pc0_w
            + self.core.c0_busy_w * n_cores as f64
    }

    /// Power of a fully-idle server kept in S0 with cores parked in `core_state`.
    pub fn idle_power_w(&self, n_cores: usize, core_state: CoreCState) -> f64 {
        self.platform.s0_w
            + self.dram.idle_w
            + self.package.pc0_w
            + self.core.idle_power_w(core_state) * n_cores as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_is_internally_consistent() {
        let p = ServerPowerProfile::xeon_e5_2680();
        // Deeper states draw less.
        assert!(p.core.c0_idle_w > p.core.c1_w);
        assert!(p.core.c1_w > p.core.c3_w);
        assert!(p.core.c3_w > p.core.c6_w);
        assert!(p.package.pc0_w > p.package.pc2_w);
        assert!(p.package.pc2_w > p.package.pc6_w);
        assert!(p.platform.s0_w > p.platform.s3_w);
        assert!(p.platform.s3_w > p.platform.s5_w);
        // Deeper states wake slower.
        assert!(p.core.c6_wake > p.core.c3_wake);
        assert!(p.platform.resume_latency > p.package.pc6_wake);
        // CPU package range matches the Fig. 12 calibration target.
        let idle_pkg = p.package.pc0_w + 10.0 * p.core.c6_w;
        let busy_pkg = p.package.pc0_w + 10.0 * p.core.c0_busy_w;
        assert!((14.0..16.0).contains(&idle_pkg), "idle pkg {idle_pkg}");
        assert!((50.0..60.0).contains(&busy_pkg), "busy pkg {busy_pkg}");
    }

    #[test]
    fn pstates_scale_speed_and_power() {
        let p = ServerPowerProfile::xeon_e5_2680();
        assert_eq!(p.speed_ratio(p.pstates.len() - 1), 1.0);
        assert!(p.speed_ratio(0) < 0.5);
        assert!(p.core_busy_power_w(0) < p.core_busy_power_w(4));
        // Clamping past the end returns the nominal point.
        assert_eq!(p.core_busy_power_w(99), p.core_busy_power_w(4));
    }

    #[test]
    fn lookup_helpers() {
        let p = ServerPowerProfile::xeon_e5_2680();
        assert_eq!(p.core.idle_power_w(CoreCState::C6), p.core.c6_w);
        assert_eq!(p.package.power_w(PkgCState::Pc2), p.package.pc2_w);
        assert_eq!(p.platform.power_w(SystemState::S3), p.platform.s3_w);
        assert_eq!(p.platform.wake_latency(SystemState::S0), SimDuration::ZERO);
        assert_eq!(p.core.wake_latency(CoreCState::C6), p.core.c6_wake);
    }

    #[test]
    fn peak_and_idle_power() {
        let p = ServerPowerProfile::xeon_e5_2680();
        assert!(p.peak_power_w(10) > p.idle_power_w(10, CoreCState::C6));
        let peak = p.peak_power_w(10);
        assert!((100.0..120.0).contains(&peak), "peak {peak}");
    }
}
