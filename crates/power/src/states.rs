//! ACPI-style power-state vocabularies for servers and switches (§III-A,
//! §III-B of the paper).

use std::fmt;

/// Core-level C-states (processor idle states).
///
/// `C0` is the only state that executes instructions; deeper states save
/// more power but pay longer wake-up latencies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CoreCState {
    /// Executing (or ready to execute) instructions.
    C0,
    /// Halted: clock gated, caches retained.
    C1,
    /// Deeper sleep: L1/L2 flushed to shared cache.
    C3,
    /// Deep sleep: core power-gated, state saved.
    C6,
}

/// Package-level C-states (uncore: shared cache, memory controller, fabric).
///
/// A package can only descend when all of its cores have descended at least
/// as deep (hierarchy invariant, enforced by the server model).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PkgCState {
    /// Uncore fully active.
    Pc0,
    /// Shallow package sleep: caches retained, fabric clock-gated.
    Pc2,
    /// Deep package sleep: uncore power-gated (paper's "package C6").
    Pc6,
}

/// ACPI system sleep states (Sx) as modeled for whole servers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SystemState {
    /// Working: platform powered, processors follow C/P states.
    S0,
    /// Suspend-to-RAM: only DRAM in self-refresh plus wake logic powered.
    S3,
    /// Soft-off: everything off except wake circuitry.
    S5,
}

/// Power states for a single switch port (§III-B: active, LPI, off).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PortPowerState {
    /// Transmitting or ready to transmit.
    Active,
    /// IEEE 802.3az Low Power Idle.
    Lpi,
    /// Port disabled.
    Off,
}

/// Power states for a switch line card (§III-B: active, sleep, off).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LineCardPowerState {
    /// Forwarding packets.
    Active,
    /// Packet-processing hardware in sleep; must wake before forwarding.
    Sleep,
    /// Line card disabled.
    Off,
}

/// A DVFS operating point: frequency plus the dynamic-power scale it implies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PState {
    /// Core frequency in GHz.
    pub freq_ghz: f64,
    /// Multiplier on per-core busy power at this operating point
    /// (≈ (f/f_nominal)·V², captured as a single factor).
    pub busy_power_scale: f64,
}

impl PState {
    /// Frequency relative to `nominal` (e.g. 0.5 means half speed).
    pub fn speed_ratio(&self, nominal_ghz: f64) -> f64 {
        self.freq_ghz / nominal_ghz
    }
}

macro_rules! impl_display_as_debug {
    ($($t:ty),*) => {
        $(impl fmt::Display for $t {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{self:?}")
            }
        })*
    };
}
impl_display_as_debug!(
    CoreCState,
    PkgCState,
    SystemState,
    PortPowerState,
    LineCardPowerState
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cstates_order_by_depth() {
        assert!(CoreCState::C0 < CoreCState::C1);
        assert!(CoreCState::C1 < CoreCState::C3);
        assert!(CoreCState::C3 < CoreCState::C6);
        assert!(PkgCState::Pc0 < PkgCState::Pc6);
        assert!(SystemState::S0 < SystemState::S3);
    }

    #[test]
    fn display_matches_debug() {
        assert_eq!(CoreCState::C6.to_string(), "C6");
        assert_eq!(PortPowerState::Lpi.to_string(), "Lpi");
        assert_eq!(SystemState::S3.to_string(), "S3");
    }

    #[test]
    fn pstate_speed_ratio() {
        let p = PState {
            freq_ghz: 1.4,
            busy_power_scale: 0.4,
        };
        assert!((p.speed_ratio(2.8) - 0.5).abs() < 1e-12);
    }
}
