//! # holdcsim-power
//!
//! Hierarchical ACPI-style power modeling for HolDCSim-RS (§III-A/B/F of the
//! paper): state vocabularies for cores (Cx), packages (PCx), systems (Sx),
//! switch ports (Active/LPI/Off) and line cards (Active/Sleep/Off); a
//! generic [`machine::PowerStateMachine`] that tracks transitions, residency
//! and energy; and measured-style power profiles, including presets for the
//! paper's validation hardware (Intel Xeon E5-2680 server, Cisco
//! WS-C2960-24-S switch).
//!
//! ```
//! use holdcsim_power::prelude::*;
//! use holdcsim_des::time::SimTime;
//!
//! let profile = ServerPowerProfile::xeon_e5_2680();
//! let pkg = PowerStateMachine::new(SimTime::ZERO, PkgCState::Pc0, profile.package.pc0_w);
//! assert_eq!(pkg.power_w(), 14.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod machine;
pub mod server_profile;
pub mod states;
pub mod switch_profile;

pub use machine::{Phase, PowerStateMachine};
pub use server_profile::{
    CorePowerProfile, DramPowerProfile, PackagePowerProfile, PlatformPowerProfile,
    ServerPowerProfile,
};
pub use states::{CoreCState, LineCardPowerState, PState, PkgCState, PortPowerState, SystemState};
pub use switch_profile::{LineCardPowerProfile, PortPowerProfile, SwitchPowerProfile};

/// Convenience re-exports for downstream crates.
pub mod prelude {
    pub use crate::machine::{Phase, PowerStateMachine};
    pub use crate::server_profile::ServerPowerProfile;
    pub use crate::states::{
        CoreCState, LineCardPowerState, PState, PkgCState, PortPowerState, SystemState,
    };
    pub use crate::switch_profile::SwitchPowerProfile;
}
