//! Structured event tracing: a capped in-memory sink plus a fixed-size
//! "last K events" ring buffer for panic context.
//!
//! Records are `(event index, sim time, kind, entity ids)` tuples. The sink
//! stops growing at the configured limit (later events are counted as
//! dropped, the ring keeps rolling), so tracing a long run cannot exhaust
//! memory. Export formats: JSONL (one record per line) and Chrome
//! trace-event JSON loadable in Perfetto / `chrome://tracing`.

use holdcsim_des::time::SimTime;

use crate::EventInfo;

/// One traced event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Zero-based index of the event in the run's processed-event stream.
    pub n: u64,
    /// The simulation instant the event fired.
    pub t: SimTime,
    /// Kind + entity ids.
    pub info: EventInfo,
}

/// Tracing knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Maximum number of records kept in the sink (`--trace-limit`).
    pub limit: usize,
    /// Size of the last-K ring buffer dumped on a handler panic.
    pub ring: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            limit: 1_000_000,
            ring: 64,
        }
    }
}

/// The trace sink: capped record vector + last-K ring.
#[derive(Debug, Clone)]
pub struct Tracer {
    limit: usize,
    records: Vec<TraceRecord>,
    dropped: u64,
    ring: Vec<TraceRecord>,
    ring_cap: usize,
    ring_next: usize,
    count: u64,
}

impl Tracer {
    /// Creates an empty sink with the given caps.
    pub fn new(cfg: TraceConfig) -> Self {
        Tracer {
            limit: cfg.limit,
            records: Vec::new(),
            dropped: 0,
            ring: Vec::with_capacity(cfg.ring.min(4096)),
            ring_cap: cfg.ring.max(1),
            ring_next: 0,
            count: 0,
        }
    }

    /// Appends one event to the sink (and always to the ring).
    #[inline]
    pub fn record(&mut self, t: SimTime, info: EventInfo) {
        let rec = TraceRecord {
            n: self.count,
            t,
            info,
        };
        self.count += 1;
        if self.records.len() < self.limit {
            self.records.push(rec);
        } else {
            self.dropped += 1;
        }
        if self.ring.len() < self.ring_cap {
            self.ring.push(rec);
        } else {
            self.ring[self.ring_next] = rec;
        }
        self.ring_next = (self.ring_next + 1) % self.ring_cap;
    }

    /// The retained records, oldest first.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Number of events that arrived after the sink was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total events seen (retained + dropped).
    pub fn seen(&self) -> u64 {
        self.count
    }

    /// The ring's contents, oldest first — the tail of the event stream.
    pub fn ring_tail(&self) -> Vec<TraceRecord> {
        if self.ring.len() < self.ring_cap {
            return self.ring.clone();
        }
        let mut out = Vec::with_capacity(self.ring.len());
        out.extend_from_slice(&self.ring[self.ring_next..]);
        out.extend_from_slice(&self.ring[..self.ring_next]);
        out
    }
}

/// Renders records as JSONL: one
/// `{"n":…,"t_ns":…,"kind":"…","a":…,"b":…}` object per line
/// (plus `"site":…` when a federation site id is given).
pub fn render_jsonl(
    records: &[TraceRecord],
    kind_names: &'static [&'static str],
    site: Option<u32>,
) -> String {
    let mut out = String::with_capacity(records.len() * 64);
    for r in records {
        let name = kind_name(kind_names, r.info.kind);
        match site {
            Some(s) => out.push_str(&format!(
                "{{\"site\":{s},\"n\":{},\"t_ns\":{},\"kind\":\"{name}\",\"a\":{},\"b\":{}}}\n",
                r.n,
                r.t.as_nanos(),
                r.info.a,
                r.info.b
            )),
            None => out.push_str(&format!(
                "{{\"n\":{},\"t_ns\":{},\"kind\":\"{name}\",\"a\":{},\"b\":{}}}\n",
                r.n,
                r.t.as_nanos(),
                r.info.a,
                r.info.b
            )),
        }
    }
    out
}

/// Renders records as Chrome trace-event JSON (the `traceEvents` array
/// format), viewable in Perfetto or `chrome://tracing`.
///
/// Each record becomes an instant event (`"ph":"i"`) whose timestamp is the
/// sim time in microseconds; the federation site id (0 when absent) is used
/// as the `tid` so multi-site traces land on separate tracks.
pub fn render_chrome(
    records: &[TraceRecord],
    kind_names: &'static [&'static str],
    site: Option<u32>,
) -> String {
    let tid = site.unwrap_or(0);
    let mut out = String::with_capacity(records.len() * 96 + 32);
    out.push_str("{\"traceEvents\":[");
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let name = kind_name(kind_names, r.info.kind);
        let ts_us = r.t.as_nanos() as f64 / 1_000.0;
        out.push_str(&format!(
            "{{\"name\":\"{name}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":{tid},\
             \"ts\":{ts_us},\"args\":{{\"n\":{},\"a\":{},\"b\":{}}}}}",
            r.n, r.info.a, r.info.b
        ));
    }
    out.push_str("]}\n");
    out
}

/// Renders a panic-context dump: the sim time of the offending event plus
/// the ring's tail, newest last.
pub fn render_panic_dump(
    now: SimTime,
    tail: &[TraceRecord],
    kind_names: &'static [&'static str],
    site: Option<u32>,
) -> String {
    let mut out = String::new();
    let site_label = site.map(|s| format!(" (site {s})")).unwrap_or_default();
    out.push_str(&format!(
        "=== handler panic at sim time {now}{site_label}: last {} events ===\n",
        tail.len()
    ));
    for r in tail {
        out.push_str(&format!(
            "  #{:>10}  t={}  {} a={} b={}\n",
            r.n,
            r.t,
            kind_name(kind_names, r.info.kind),
            r.info.a,
            r.info.b
        ));
    }
    out
}

pub(crate) fn kind_name(kind_names: &'static [&'static str], kind: u8) -> &'static str {
    kind_names.get(kind as usize).copied().unwrap_or("?")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info(kind: u8, a: u64) -> EventInfo {
        EventInfo { kind, a, b: 0 }
    }

    const NAMES: &[&str] = &["Alpha", "Beta"];

    #[test]
    fn sink_caps_at_limit_and_counts_drops() {
        let mut t = Tracer::new(TraceConfig { limit: 3, ring: 2 });
        for i in 0..5u64 {
            t.record(SimTime::from_nanos(i), info(0, i));
        }
        assert_eq!(t.records().len(), 3);
        assert_eq!(t.dropped(), 2);
        assert_eq!(t.seen(), 5);
        // The ring kept rolling past the sink cap: last two events.
        let tail = t.ring_tail();
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0].n, 3);
        assert_eq!(tail[1].n, 4);
    }

    #[test]
    fn jsonl_has_one_line_per_record() {
        let mut t = Tracer::new(TraceConfig { limit: 10, ring: 4 });
        t.record(SimTime::from_nanos(5), info(1, 7));
        let s = render_jsonl(t.records(), NAMES, None);
        assert_eq!(
            s,
            "{\"n\":0,\"t_ns\":5,\"kind\":\"Beta\",\"a\":7,\"b\":0}\n"
        );
        let s = render_jsonl(t.records(), NAMES, Some(3));
        assert!(s.starts_with("{\"site\":3,"));
    }

    #[test]
    fn chrome_trace_wraps_records_in_trace_events_array() {
        let mut t = Tracer::new(TraceConfig { limit: 10, ring: 4 });
        t.record(SimTime::from_nanos(1_500), info(0, 1));
        t.record(SimTime::from_nanos(2_000), info(1, 2));
        let s = render_chrome(t.records(), NAMES, Some(2));
        assert!(s.starts_with("{\"traceEvents\":["));
        assert!(s.contains("\"name\":\"Alpha\""));
        assert!(s.contains("\"tid\":2"));
        assert!(s.contains("\"ts\":1.5"));
        assert!(s.trim_end().ends_with("]}"));
    }

    #[test]
    fn panic_dump_mentions_time_and_tail() {
        let mut t = Tracer::new(TraceConfig { limit: 10, ring: 2 });
        t.record(SimTime::from_nanos(1), info(0, 1));
        t.record(SimTime::from_nanos(2), info(1, 2));
        let dump = render_panic_dump(SimTime::from_nanos(2), &t.ring_tail(), NAMES, None);
        assert!(dump.contains("handler panic at sim time"));
        assert!(dump.contains("Beta"));
    }
}
