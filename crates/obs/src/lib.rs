//! # holdcsim-obs
//!
//! Zero-overhead-when-off observability for the HolDCSim-RS stack: event
//! tracing, determinism fingerprints, metrics probes, and a self-profiler,
//! all hanging off the DES kernel's [`EventObserver`] hook.
//!
//! The design splits the cost question in two:
//!
//! - **Compile time**: an engine parameterized with
//!   [`NoObserver`](holdcsim_des::NoObserver) monomorphizes the hook to
//!   nothing — crates that never instrument pay zero.
//! - **Run time**: the [`Observer`] here is a single concrete type carrying
//!   all four capabilities behind one cached `active` flag, so a run with
//!   every flag off pays one predicted branch per event. That lets the
//!   simulator keep a fixed `Engine<Datacenter, Observer>` type (no
//!   combinatorial monomorphization) while still meeting the bench gate.
//!
//! Capabilities (each independently optional via [`ObsConfig`]):
//!
//! - [`trace`] — structured event records, JSONL / Chrome trace-event
//!   export, last-K ring for panic context;
//! - [`fingerprint`] — rolling 64-bit event-stream hash checkpointed every
//!   K events, plus a bisecting diff between two fingerprint files;
//! - [`metrics`] — named probes sampled on a sim-time interval;
//! - [`profile`] — per-event-kind counts and sampled wall-clock
//!   attribution.
//!
//! The domain crates opt in by implementing [`TraceEvent`] for their event
//! alphabet and [`ProbeSource`] for their model.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod fingerprint;
pub mod metrics;
pub mod profile;
pub mod trace;

use holdcsim_des::engine::{EventObserver, Model};
use holdcsim_des::time::SimTime;

pub use fingerprint::{Checkpoint, DiffOutcome, FingerprintConfig, Fingerprinter};
pub use metrics::{MetricsConfig, MetricsData, ProbePanel};
pub use profile::{ProfileConfig, ProfileData, Profiler};
pub use trace::{TraceConfig, TraceRecord, Tracer};

/// The observable identity of one event: a small kind discriminant plus up
/// to two entity ids (meaning is kind-specific; unused ids are 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventInfo {
    /// Kind discriminant, an index into [`TraceEvent::KIND_NAMES`].
    pub kind: u8,
    /// First entity id (e.g. server, flow, or switch index).
    pub a: u64,
    /// Second entity id (e.g. task or port index).
    pub b: u64,
}

/// An event alphabet that can be traced: names for every kind plus a cheap
/// projection of each event onto [`EventInfo`].
pub trait TraceEvent {
    /// Human-readable kind names, indexed by [`EventInfo::kind`] /
    /// [`kind`](TraceEvent::kind).
    const KIND_NAMES: &'static [&'static str];

    /// The kind discriminant alone — called for *every* event even when
    /// observability is off (for panic context), so it must be trivial.
    fn kind(&self) -> u8;

    /// Kind plus entity ids — only called when a capability is on.
    fn info(&self) -> EventInfo;
}

/// A model that exposes named gauges to the metrics probes.
pub trait ProbeSource {
    /// The probe names, fixed for the model's lifetime.
    fn probe_names(&self) -> Vec<&'static str>;

    /// Pushes one value per probe onto `out`, in
    /// [`probe_names`](Self::probe_names) order.
    fn probe_sample(&self, out: &mut Vec<f64>);
}

/// Which observability capabilities are on, and their knobs. The default is
/// everything off.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ObsConfig {
    /// Event tracing (`--trace`).
    pub trace: Option<TraceConfig>,
    /// Determinism fingerprints (`--fingerprint`).
    pub fingerprint: Option<FingerprintConfig>,
    /// Metrics probes (`--metrics`).
    pub metrics: Option<MetricsConfig>,
    /// Self-profiling (`--profile`).
    pub profile: Option<ProfileConfig>,
}

impl ObsConfig {
    /// `true` when every capability is off.
    pub fn is_off(&self) -> bool {
        self.trace.is_none()
            && self.fingerprint.is_none()
            && self.metrics.is_none()
            && self.profile.is_none()
    }
}

/// The concrete observer wired into the simulator's engines.
///
/// Carries all four capabilities as `Option`s behind one cached `active`
/// flag: with everything off, [`EventObserver::on_event`] reduces to
/// recording the last event kind (for panic context) and one branch.
#[derive(Debug, Clone)]
pub struct Observer {
    site: Option<u32>,
    kind_names: &'static [&'static str],
    /// Sim time and kind of the most recent event, kept even when inactive
    /// so a handler panic can always be localized.
    last: (SimTime, u8),
    active: bool,
    tracer: Option<Tracer>,
    fingerprinter: Option<Fingerprinter>,
    panel: Option<ProbePanel>,
    profiler: Option<Profiler>,
    probe_scratch: Vec<f64>,
}

impl Observer {
    /// Builds an observer from `cfg` for an event alphabet with
    /// `kind_names` and a model exposing `probe_names`.
    pub fn new(
        cfg: &ObsConfig,
        kind_names: &'static [&'static str],
        probe_names: Vec<&'static str>,
    ) -> Self {
        let tracer = cfg.trace.map(Tracer::new);
        let fingerprinter = cfg.fingerprint.map(Fingerprinter::new);
        let panel = cfg.metrics.map(|m| ProbePanel::new(m, probe_names));
        let profiler = cfg.profile.map(|p| Profiler::new(p, kind_names.len()));
        let active =
            tracer.is_some() || fingerprinter.is_some() || panel.is_some() || profiler.is_some();
        Observer {
            site: None,
            kind_names,
            last: (SimTime::ZERO, 0),
            active,
            tracer,
            fingerprinter,
            panel,
            profiler,
            probe_scratch: Vec::new(),
        }
    }

    /// Builds an observer for `model`, pulling kind names and probe names
    /// from its [`TraceEvent`] / [`ProbeSource`] impls.
    pub fn for_model<M>(cfg: &ObsConfig, model: &M) -> Self
    where
        M: Model + ProbeSource,
        M::Event: TraceEvent,
    {
        Observer::new(
            cfg,
            <M::Event as TraceEvent>::KIND_NAMES,
            model.probe_names(),
        )
    }

    /// Labels this observer's output with a federation site id.
    pub fn set_site(&mut self, site: u32) {
        self.site = Some(site);
    }

    /// The federation site id, if set.
    pub fn site(&self) -> Option<u32> {
        self.site
    }

    /// `true` when at least one capability is on.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// The rolling fingerprint hash so far (None when fingerprinting is off).
    pub fn current_fingerprint(&self) -> Option<u64> {
        self.fingerprinter.as_ref().map(|f| f.current_hash())
    }

    /// The active-capability path of `on_event`; kept out of the inlined
    /// hot path so the off case stays small.
    fn observe<M: ProbeSource>(&mut self, now: SimTime, info: EventInfo, model: &M) {
        if let Some(t) = &mut self.tracer {
            t.record(now, info);
        }
        if let Some(f) = &mut self.fingerprinter {
            f.record(now, info);
        }
        if let Some(p) = &mut self.profiler {
            p.record(info.kind);
        }
        if let Some(m) = &mut self.panel {
            if m.due(now) {
                self.probe_scratch.clear();
                model.probe_sample(&mut self.probe_scratch);
                m.record(now, &self.probe_scratch);
            }
        }
    }

    /// Closes every capability at sim time `end` and returns the artifacts.
    pub fn finish(self, end: SimTime) -> ObsArtifacts {
        ObsArtifacts {
            site: self.site,
            kind_names: self.kind_names,
            trace: self.tracer.map(|t| TraceData {
                dropped: t.dropped(),
                seen: t.seen(),
                records: t.records().to_vec(),
            }),
            fingerprint: self.fingerprinter.map(|f| FingerprintFile {
                every: f.every(),
                checkpoints: f.finish(),
            }),
            metrics: self.panel.map(|p| p.finish(end)),
            profile: self.profiler.map(|p| p.finish(self.kind_names)),
        }
    }
}

impl<M> EventObserver<M> for Observer
where
    M: Model + ProbeSource,
    M::Event: TraceEvent,
{
    const PANIC_HOOK: bool = true;

    #[inline]
    fn on_event(&mut self, now: SimTime, event: &M::Event, model: &M) {
        self.last = (now, event.kind());
        if self.active {
            self.observe(now, event.info(), model);
        }
    }

    fn on_panic(&self, now: SimTime) {
        let (t, kind) = self.last;
        let name = trace::kind_name(self.kind_names, kind);
        let site_label = self
            .site
            .map(|s| format!(" (site {s})"))
            .unwrap_or_default();
        eprintln!("holdcsim: handler panicked at sim time {now}{site_label} while processing {name} (event at {t})");
        if let Some(tr) = &self.tracer {
            eprint!(
                "{}",
                trace::render_panic_dump(now, &tr.ring_tail(), self.kind_names, self.site)
            );
        }
    }
}

/// A finished trace: the retained records plus drop accounting.
#[derive(Debug, Clone)]
pub struct TraceData {
    /// Retained records, oldest first (capped at the trace limit).
    pub records: Vec<TraceRecord>,
    /// Events dropped after the sink filled.
    pub dropped: u64,
    /// Total events seen (retained + dropped).
    pub seen: u64,
}

/// A finished fingerprint: checkpoint cadence plus the checkpoints.
#[derive(Debug, Clone)]
pub struct FingerprintFile {
    /// Checkpoint cadence in events.
    pub every: u64,
    /// The checkpoints, in stream order (last one covers the whole run).
    pub checkpoints: Vec<Checkpoint>,
}

/// Everything an observed run leaves behind, with render methods for each
/// export format.
#[derive(Debug, Clone)]
pub struct ObsArtifacts {
    /// Federation site id, when the run was one site of a federation.
    pub site: Option<u32>,
    /// Kind names of the traced event alphabet.
    pub kind_names: &'static [&'static str],
    /// The trace, when tracing was on.
    pub trace: Option<TraceData>,
    /// The fingerprint checkpoints, when fingerprinting was on.
    pub fingerprint: Option<FingerprintFile>,
    /// The sampled probe series, when metrics were on.
    pub metrics: Option<MetricsData>,
    /// The per-kind profile, when profiling was on.
    pub profile: Option<ProfileData>,
}

impl ObsArtifacts {
    /// The trace as JSONL, one record per line.
    pub fn trace_jsonl(&self) -> Option<String> {
        self.trace
            .as_ref()
            .map(|t| trace::render_jsonl(&t.records, self.kind_names, self.site))
    }

    /// The trace as Chrome trace-event JSON (Perfetto-loadable).
    pub fn trace_chrome(&self) -> Option<String> {
        self.trace
            .as_ref()
            .map(|t| trace::render_chrome(&t.records, self.kind_names, self.site))
    }

    /// The fingerprint file (header + one line per checkpoint).
    pub fn fingerprint_file(&self) -> Option<String> {
        self.fingerprint
            .as_ref()
            .map(|f| fingerprint::render_file(f.every, self.site, &f.checkpoints))
    }

    /// The metrics as JSONL keyed by probe name.
    pub fn metrics_jsonl(&self) -> Option<String> {
        self.metrics.as_ref().map(|m| m.render_jsonl(self.site))
    }

    /// The `--profile` events/s-per-kind table.
    pub fn profile_table(&self) -> Option<String> {
        self.profile.as_ref().map(|p| p.render_table(self.site))
    }

    /// `true` when no capability was on.
    pub fn is_empty(&self) -> bool {
        self.trace.is_none()
            && self.fingerprint.is_none()
            && self.metrics.is_none()
            && self.profile.is_none()
    }
}
