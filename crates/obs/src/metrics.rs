//! Metrics probes: a registry of named gauges sampled on a sim-time
//! interval into the DES kernel's [`TimeSeries`] primitive and exported as
//! JSONL keyed by probe name.
//!
//! Probes are registered once (by name, in a fixed order) when the panel is
//! built; each sampling tick reads every probe through
//! [`ProbeSource::probe_sample`](crate::ProbeSource::probe_sample) and feeds
//! the values into per-probe zero-order-hold series, so export timestamps
//! land on a clean grid regardless of event timing.

use holdcsim_des::stats::TimeSeries;
use holdcsim_des::time::{SimDuration, SimTime};

/// Metrics knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricsConfig {
    /// Sampling period in sim time (`--metrics-period`, seconds on the CLI).
    pub period: SimDuration,
}

impl Default for MetricsConfig {
    fn default() -> Self {
        MetricsConfig {
            period: SimDuration::from_millis(100),
        }
    }
}

/// A registry of named probes, each backed by a [`TimeSeries`].
#[derive(Debug, Clone)]
pub struct ProbePanel {
    period: SimDuration,
    next_due: SimTime,
    names: Vec<&'static str>,
    series: Vec<TimeSeries>,
}

impl ProbePanel {
    /// Creates a panel sampling the given probes every `cfg.period`.
    pub fn new(cfg: MetricsConfig, names: Vec<&'static str>) -> Self {
        let period = if cfg.period.is_zero() {
            MetricsConfig::default().period
        } else {
            cfg.period
        };
        let series = names.iter().map(|_| TimeSeries::new(period)).collect();
        ProbePanel {
            period,
            next_due: SimTime::ZERO,
            names,
            series,
        }
    }

    /// `true` when the next sampling tick is due at or before `now`.
    #[inline]
    pub fn due(&self, now: SimTime) -> bool {
        now >= self.next_due
    }

    /// Records one sample row (`values[i]` belongs to `names[i]`) and
    /// advances the next-due tick past `now`.
    pub fn record(&mut self, now: SimTime, values: &[f64]) {
        debug_assert_eq!(values.len(), self.series.len(), "probe arity changed");
        for (s, &v) in self.series.iter_mut().zip(values) {
            s.observe(now, v);
        }
        while self.next_due <= now {
            self.next_due += self.period;
        }
    }

    /// The registered probe names, in registration order.
    pub fn names(&self) -> &[&'static str] {
        &self.names
    }

    /// Closes all series at `end` and returns `(names, series)`.
    pub fn finish(mut self, end: SimTime) -> MetricsData {
        for s in &mut self.series {
            s.finish(end);
        }
        MetricsData {
            names: self.names,
            series: self.series,
        }
    }
}

/// The finished per-probe series, ready for export.
#[derive(Debug, Clone)]
pub struct MetricsData {
    /// Probe names, in registration order.
    pub names: Vec<&'static str>,
    /// One series per probe, same order as `names`.
    pub series: Vec<TimeSeries>,
}

impl MetricsData {
    /// Renders the series as JSONL: one
    /// `{"probe":"…","t_s":…,"v":…}` object per sample (plus `"site":…`
    /// when a federation site id is given). Probes are emitted in
    /// registration order, each probe's samples in time order.
    pub fn render_jsonl(&self, site: Option<u32>) -> String {
        let mut out = String::new();
        for (name, series) in self.names.iter().zip(&self.series) {
            for (t_s, v) in series.points() {
                match site {
                    Some(s) => out.push_str(&format!(
                        "{{\"site\":{s},\"probe\":\"{name}\",\"t_s\":{t_s},\"v\":{}}}\n",
                        fmt_value(v)
                    )),
                    None => out.push_str(&format!(
                        "{{\"probe\":\"{name}\",\"t_s\":{t_s},\"v\":{}}}\n",
                        fmt_value(v)
                    )),
                }
            }
        }
        out
    }
}

/// Formats a sample as JSON: finite numbers as-is, non-finite as `null`.
fn fmt_value(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_on_the_period_grid() {
        let cfg = MetricsConfig {
            period: SimDuration::from_secs(1),
        };
        let mut p = ProbePanel::new(cfg, vec!["q", "busy"]);
        assert!(p.due(SimTime::ZERO));
        p.record(SimTime::ZERO, &[1.0, 2.0]);
        assert!(!p.due(SimTime::from_millis(500)));
        assert!(p.due(SimTime::from_secs(1)));
        p.record(SimTime::from_millis(1200), &[3.0, 4.0]);
        let data = p.finish(SimTime::from_secs(2));
        assert_eq!(data.series[0].values(), &[1.0, 1.0, 3.0]);
        assert_eq!(data.series[1].values(), &[2.0, 2.0, 4.0]);
    }

    #[test]
    fn jsonl_is_keyed_by_probe_name() {
        let cfg = MetricsConfig {
            period: SimDuration::from_secs(1),
        };
        let mut p = ProbePanel::new(cfg, vec!["q"]);
        p.record(SimTime::ZERO, &[7.0]);
        let data = p.finish(SimTime::from_secs(1));
        let s = data.render_jsonl(None);
        assert_eq!(
            s,
            "{\"probe\":\"q\",\"t_s\":0,\"v\":7}\n{\"probe\":\"q\",\"t_s\":1,\"v\":7}\n"
        );
        assert!(data.render_jsonl(Some(1)).starts_with("{\"site\":1,"));
    }

    #[test]
    fn zero_period_falls_back_to_default() {
        let p = ProbePanel::new(
            MetricsConfig {
                period: SimDuration::ZERO,
            },
            vec!["q"],
        );
        assert_eq!(p.period, MetricsConfig::default().period);
    }
}
