//! Determinism fingerprints: a rolling 64-bit hash of the event stream,
//! checkpointed every K events, plus a diff that bisects two fingerprint
//! files to the first divergent checkpoint.
//!
//! The hash folds `(t_ns, kind, a, b)` of every processed event through a
//! splitmix64-style mixer, so any reordering, retiming, or substitution of
//! a single event changes every later checkpoint. Because each checkpoint
//! hashes a strict prefix of the stream, two runs agree exactly up to their
//! first divergent checkpoint — [`diff`] binary-searches that boundary
//! instead of scanning, which is what makes fingerprints usable as the
//! debugging backbone for parallel-coordination work.

use holdcsim_des::time::SimTime;

use crate::EventInfo;

/// Fingerprint knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FingerprintConfig {
    /// Checkpoint cadence in events (`--fingerprint-every`).
    pub every: u64,
}

impl Default for FingerprintConfig {
    fn default() -> Self {
        FingerprintConfig { every: 4096 }
    }
}

/// One fingerprint checkpoint: the rolling hash after `events` events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Checkpoint {
    /// Number of events folded into `hash` so far.
    pub events: u64,
    /// Sim time of the last folded event (nanoseconds).
    pub t_ns: u64,
    /// The rolling hash over the first `events` events.
    pub hash: u64,
}

/// splitmix64 finalizer: the mixing primitive under the rolling hash.
#[inline]
fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The rolling-hash accumulator.
#[derive(Debug, Clone)]
pub struct Fingerprinter {
    every: u64,
    count: u64,
    hash: u64,
    checkpoints: Vec<Checkpoint>,
    last_t_ns: u64,
}

impl Fingerprinter {
    /// Creates an empty accumulator checkpointing every `cfg.every` events.
    pub fn new(cfg: FingerprintConfig) -> Self {
        Fingerprinter {
            every: cfg.every.max(1),
            count: 0,
            hash: 0x9e37_79b9_7f4a_7c15, // non-zero seed so an empty run is distinguishable
            checkpoints: Vec::new(),
            last_t_ns: 0,
        }
    }

    /// Folds one event into the rolling hash.
    #[inline]
    pub fn record(&mut self, t: SimTime, info: EventInfo) {
        let t_ns = t.as_nanos();
        let mut h = self.hash;
        h = mix(h ^ t_ns);
        h = mix(h ^ (info.kind as u64));
        h = mix(h ^ info.a);
        h = mix(h ^ info.b);
        self.hash = h;
        self.last_t_ns = t_ns;
        self.count += 1;
        if self.count.is_multiple_of(self.every) {
            self.checkpoints.push(Checkpoint {
                events: self.count,
                t_ns,
                hash: h,
            });
        }
    }

    /// The rolling hash over everything folded so far.
    pub fn current_hash(&self) -> u64 {
        self.hash
    }

    /// Events folded so far.
    pub fn events(&self) -> u64 {
        self.count
    }

    /// The checkpoint cadence.
    pub fn every(&self) -> u64 {
        self.every
    }

    /// Closes the stream: appends a final checkpoint (unless the last
    /// periodic one already covers every event) and returns the checkpoint
    /// list.
    pub fn finish(mut self) -> Vec<Checkpoint> {
        let covered = self
            .checkpoints
            .last()
            .map(|c| c.events)
            .unwrap_or(u64::MAX);
        if covered != self.count {
            self.checkpoints.push(Checkpoint {
                events: self.count,
                t_ns: self.last_t_ns,
                hash: self.hash,
            });
        }
        self.checkpoints
    }
}

/// Renders a fingerprint file: a JSONL header line
/// `{"fingerprint":{"every":…,"site":…}}` followed by one
/// `{"events":…,"t_ns":…,"hash":"…"}` line per checkpoint (hash in hex).
pub fn render_file(every: u64, site: Option<u32>, checkpoints: &[Checkpoint]) -> String {
    let mut out = String::with_capacity(checkpoints.len() * 64 + 64);
    match site {
        Some(s) => out.push_str(&format!(
            "{{\"fingerprint\":{{\"every\":{every},\"site\":{s}}}}}\n"
        )),
        None => out.push_str(&format!(
            "{{\"fingerprint\":{{\"every\":{every},\"site\":null}}}}\n"
        )),
    }
    for c in checkpoints {
        out.push_str(&format!(
            "{{\"events\":{},\"t_ns\":{},\"hash\":\"{:016x}\"}}\n",
            c.events, c.t_ns, c.hash
        ));
    }
    out
}

/// Parses a fingerprint file produced by [`render_file`].
///
/// Returns `(every, checkpoints)`; tolerant of trailing whitespace but not
/// of structural damage — a malformed line is an error naming its number.
pub fn parse_file(text: &str) -> Result<(u64, Vec<Checkpoint>), String> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines
        .next()
        .ok_or_else(|| "empty fingerprint file".to_string())?;
    if !header.starts_with("{\"fingerprint\":") {
        return Err("line 1: missing fingerprint header".to_string());
    }
    let every = field_u64(header, "\"every\":").ok_or("line 1: missing \"every\"")?;
    let mut checkpoints = Vec::new();
    for (i, line) in lines {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let events =
            field_u64(line, "\"events\":").ok_or(format!("line {}: missing \"events\"", i + 1))?;
        let t_ns =
            field_u64(line, "\"t_ns\":").ok_or(format!("line {}: missing \"t_ns\"", i + 1))?;
        let hash_hex =
            field_str(line, "\"hash\":\"").ok_or(format!("line {}: missing \"hash\"", i + 1))?;
        let hash = u64::from_str_radix(hash_hex, 16)
            .map_err(|e| format!("line {}: bad hash: {e}", i + 1))?;
        checkpoints.push(Checkpoint { events, t_ns, hash });
    }
    Ok((every, checkpoints))
}

fn field_u64(line: &str, key: &str) -> Option<u64> {
    let start = line.find(key)? + key.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn field_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let start = line.find(key)? + key.len();
    let rest = &line[start..];
    let end = rest.find('"')?;
    Some(&rest[..end])
}

/// The outcome of comparing two fingerprint files.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiffOutcome {
    /// Every common checkpoint matches (and the streams are the same length).
    Identical {
        /// Number of checkpoints compared.
        checkpoints: usize,
        /// The final rolling hash.
        final_hash: u64,
    },
    /// The streams agree up to `last_common` and first disagree at
    /// checkpoint index `index`.
    Diverged {
        /// Index (into the checkpoint list) of the first mismatch.
        index: usize,
        /// The last checkpoint both runs agree on, if any.
        last_common: Option<Checkpoint>,
        /// Run A's checkpoint at the divergence point.
        a: Checkpoint,
        /// Run B's checkpoint at the divergence point.
        b: Checkpoint,
    },
    /// All common checkpoints match but one run processed more events.
    LengthMismatch {
        /// Run A's total checkpointed events.
        a_events: u64,
        /// Run B's total checkpointed events.
        b_events: u64,
    },
}

/// Bisects two checkpoint streams to the first divergent checkpoint.
///
/// Relies on the prefix property: if checkpoint `i` matches, every earlier
/// one does too, so a binary search over the common prefix finds the first
/// mismatch in `O(log n)` comparisons.
pub fn diff(a: &[Checkpoint], b: &[Checkpoint]) -> DiffOutcome {
    let common = a.len().min(b.len());
    // Invariant: checkpoints before `lo` match, `hi` is a known mismatch
    // (or one past the end).
    let (mut lo, mut hi) = (0usize, common);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if a[mid] == b[mid] {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    if lo < common {
        return DiffOutcome::Diverged {
            index: lo,
            last_common: lo.checked_sub(1).map(|i| a[i]),
            a: a[lo],
            b: b[lo],
        };
    }
    let a_events = a.last().map(|c| c.events).unwrap_or(0);
    let b_events = b.last().map(|c| c.events).unwrap_or(0);
    if a.len() != b.len() || a_events != b_events {
        return DiffOutcome::LengthMismatch { a_events, b_events };
    }
    DiffOutcome::Identical {
        checkpoints: common,
        final_hash: a.last().map(|c| c.hash).unwrap_or(0),
    }
}

/// Renders a [`DiffOutcome`] as the `trace-diff` subcommand's report.
pub fn render_diff(outcome: &DiffOutcome) -> String {
    match outcome {
        DiffOutcome::Identical {
            checkpoints,
            final_hash,
        } => format!("identical: {checkpoints} checkpoints match, final hash {final_hash:016x}\n"),
        DiffOutcome::Diverged {
            index,
            last_common,
            a,
            b,
        } => {
            let mut out = format!("diverged at checkpoint {index}:\n");
            match last_common {
                Some(c) => out.push_str(&format!(
                    "  last common : events={} t={:.6}s hash={:016x}\n",
                    c.events,
                    c.t_ns as f64 / 1e9,
                    c.hash
                )),
                None => out.push_str("  last common : none (runs differ from the start)\n"),
            }
            out.push_str(&format!(
                "  run A       : events={} t={:.6}s hash={:016x}\n",
                a.events,
                a.t_ns as f64 / 1e9,
                a.hash
            ));
            out.push_str(&format!(
                "  run B       : events={} t={:.6}s hash={:016x}\n",
                b.events,
                b.t_ns as f64 / 1e9,
                b.hash
            ));
            out
        }
        DiffOutcome::LengthMismatch { a_events, b_events } => format!(
            "length mismatch: all common checkpoints match, but run A covers {a_events} \
             events and run B covers {b_events}\n"
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: u8, a: u64) -> EventInfo {
        EventInfo { kind, a, b: 0 }
    }

    fn stream(n: u64, flip_at: Option<u64>) -> Vec<Checkpoint> {
        let mut fp = Fingerprinter::new(FingerprintConfig { every: 10 });
        for i in 0..n {
            let a = if Some(i) == flip_at { 999 } else { i };
            fp.record(SimTime::from_nanos(i * 100), ev((i % 3) as u8, a));
        }
        fp.finish()
    }

    #[test]
    fn same_stream_same_checkpoints() {
        assert_eq!(stream(105, None), stream(105, None));
    }

    #[test]
    fn checkpoint_cadence_and_final_tail() {
        let cps = stream(105, None);
        // 10 periodic checkpoints + the final partial one at 105.
        assert_eq!(cps.len(), 11);
        assert_eq!(cps[0].events, 10);
        assert_eq!(cps.last().unwrap().events, 105);
        // Exact multiple: no duplicate final checkpoint.
        assert_eq!(stream(100, None).len(), 10);
    }

    #[test]
    fn diff_identical() {
        let a = stream(105, None);
        let out = diff(&a, &a.clone());
        assert!(matches!(
            out,
            DiffOutcome::Identical {
                checkpoints: 11,
                ..
            }
        ));
        assert!(render_diff(&out).starts_with("identical:"));
    }

    #[test]
    fn diff_bisects_to_first_divergent_checkpoint() {
        let a = stream(105, None);
        let b = stream(105, Some(57)); // event 57 differs -> checkpoint 5 (events=60) first to change
        let out = diff(&a, &b);
        match out {
            DiffOutcome::Diverged {
                index,
                last_common,
                a: ca,
                b: cb,
            } => {
                assert_eq!(index, 5);
                assert_eq!(last_common.unwrap().events, 50);
                assert_eq!(ca.events, 60);
                assert_eq!(cb.events, 60);
                assert_ne!(ca.hash, cb.hash);
            }
            other => panic!("expected divergence, got {other:?}"),
        }
        assert!(render_diff(&out).contains("diverged at checkpoint 5"));
    }

    #[test]
    fn diff_detects_length_mismatch() {
        let a = stream(100, None);
        let b = stream(130, None);
        assert!(matches!(
            diff(&a, &b),
            DiffOutcome::LengthMismatch {
                a_events: 100,
                b_events: 130
            }
        ));
    }

    #[test]
    fn file_round_trips_through_parse() {
        let cps = stream(105, None);
        let text = render_file(10, Some(2), &cps);
        let (every, parsed) = parse_file(&text).unwrap();
        assert_eq!(every, 10);
        assert_eq!(parsed, cps);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_file("").is_err());
        assert!(parse_file("{\"not\":1}\n").is_err());
        let bad = "{\"fingerprint\":{\"every\":10,\"site\":null}}\n{\"events\":oops}\n";
        assert!(parse_file(bad).is_err());
    }

    #[test]
    fn time_only_change_flips_hash() {
        let mut a = Fingerprinter::new(FingerprintConfig::default());
        let mut b = Fingerprinter::new(FingerprintConfig::default());
        a.record(SimTime::from_nanos(1), ev(0, 0));
        b.record(SimTime::from_nanos(2), ev(0, 0));
        assert_ne!(a.current_hash(), b.current_hash());
    }
}
