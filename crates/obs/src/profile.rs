//! Self-profiling: per-event-kind counts plus sampled wall-clock
//! attribution, surfaced as an events/s-per-kind table.
//!
//! Counting every event is cheap (one array increment); timing every event
//! is not, so handler cost is sampled 1-in-N. At a sampled event the
//! profiler stamps `Instant::now()` and remembers the kind; the *next*
//! event's arrival closes the interval and attributes the elapsed wall
//! clock to the remembered kind. That interval covers the handler plus the
//! engine's pop/dispatch overhead — exactly the per-event cost a throughput
//! number cares about — and costs two `Instant::now()` calls per sample
//! instead of two per event.

use std::time::Instant;

use crate::trace::kind_name;

/// Profiling knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfileConfig {
    /// Sample 1 in `sample` events for wall-clock attribution
    /// (`--profile-sample`).
    pub sample: u32,
}

impl Default for ProfileConfig {
    fn default() -> Self {
        ProfileConfig { sample: 64 }
    }
}

/// The profiler: counts per kind, samples wall clock 1-in-N.
#[derive(Debug, Clone)]
pub struct Profiler {
    mask: u64,
    seen: u64,
    counts: Vec<u64>,
    sampled_ns: Vec<u64>,
    sampled_n: Vec<u64>,
    pending: Option<(u8, Instant)>,
}

impl Profiler {
    /// Creates a profiler for `kinds` event kinds, sampling roughly 1 in
    /// `cfg.sample` events (rounded up to a power of two).
    pub fn new(cfg: ProfileConfig, kinds: usize) -> Self {
        let sample = cfg.sample.max(1) as u64;
        Profiler {
            mask: sample.next_power_of_two() - 1,
            seen: 0,
            counts: vec![0; kinds],
            sampled_ns: vec![0; kinds],
            sampled_n: vec![0; kinds],
            pending: None,
        }
    }

    /// Records one event of `kind`, closing any pending wall-clock sample.
    #[inline]
    #[allow(clippy::disallowed_methods)] // the profiler's wall-clock sampling IS the product; obs is outside sim state
    pub fn record(&mut self, kind: u8) {
        if let Some(c) = self.counts.get_mut(kind as usize) {
            *c += 1;
        }
        if let Some((k, t0)) = self.pending.take() {
            let ns = t0.elapsed().as_nanos() as u64;
            self.sampled_ns[k as usize] += ns;
            self.sampled_n[k as usize] += 1;
        }
        if self.seen & self.mask == 0 && (kind as usize) < self.counts.len() {
            self.pending = Some((kind, Instant::now()));
        }
        self.seen += 1;
    }

    /// Closes the stream and produces the per-kind report.
    pub fn finish(mut self, kind_names: &'static [&'static str]) -> ProfileData {
        // A sample pending at the end of the run has no closing event;
        // drop it rather than attribute shutdown time to a handler.
        self.pending = None;
        ProfileData {
            kind_names,
            counts: self.counts,
            sampled_ns: self.sampled_ns,
            sampled_n: self.sampled_n,
        }
    }
}

/// Finished per-kind profile, ready for rendering.
#[derive(Debug, Clone)]
pub struct ProfileData {
    kind_names: &'static [&'static str],
    counts: Vec<u64>,
    sampled_ns: Vec<u64>,
    sampled_n: Vec<u64>,
}

impl ProfileData {
    /// Total events counted.
    pub fn total_events(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The count for one kind (0 if out of range).
    pub fn count(&self, kind: u8) -> u64 {
        self.counts.get(kind as usize).copied().unwrap_or(0)
    }

    /// Renders the events/s-per-kind table shown by `--profile`.
    ///
    /// `est. wall` extrapolates each kind's mean sampled cost to its full
    /// count; `events/s` is the reciprocal of the mean per-event cost.
    pub fn render_table(&self, site: Option<u32>) -> String {
        let total: u64 = self.total_events();
        let est_total_ns: f64 = (0..self.counts.len()).map(|k| self.est_ns(k)).sum();
        let mut out = String::new();
        let site_label = site.map(|s| format!(" (site {s})")).unwrap_or_default();
        out.push_str(&format!(
            "profile{site_label}: {total} events, {} sampled\n",
            self.sampled_n.iter().sum::<u64>()
        ));
        out.push_str(&format!(
            "{:<18} {:>12} {:>8} {:>10} {:>10} {:>8} {:>12}\n",
            "kind", "count", "%events", "ns/event", "est.wall", "%wall", "events/s"
        ));
        let mut order: Vec<usize> = (0..self.counts.len()).collect();
        order.sort_by_key(|&k| std::cmp::Reverse(self.est_ns(k) as u64));
        for k in order {
            if self.counts[k] == 0 {
                continue;
            }
            let name = kind_name(self.kind_names, k as u8);
            let count = self.counts[k];
            let pct_events = 100.0 * count as f64 / total.max(1) as f64;
            let mean_ns = self.mean_ns(k);
            let est_s = self.est_ns(k) / 1e9;
            let pct_wall = if est_total_ns > 0.0 {
                100.0 * self.est_ns(k) / est_total_ns
            } else {
                0.0
            };
            let evps = if mean_ns > 0.0 { 1e9 / mean_ns } else { 0.0 };
            out.push_str(&format!(
                "{name:<18} {count:>12} {pct_events:>7.1}% {mean_ns:>10.0} {est_s:>9.3}s \
                 {pct_wall:>7.1}% {evps:>12.0}\n"
            ));
        }
        out
    }

    /// Mean sampled wall-clock nanoseconds per event of kind `k` (0 when
    /// nothing was sampled).
    fn mean_ns(&self, k: usize) -> f64 {
        if self.sampled_n[k] == 0 {
            0.0
        } else {
            self.sampled_ns[k] as f64 / self.sampled_n[k] as f64
        }
    }

    /// Estimated total wall-clock nanoseconds spent on kind `k`.
    fn est_ns(&self, k: usize) -> f64 {
        self.mean_ns(k) * self.counts[k] as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const NAMES: &[&str] = &["Alpha", "Beta"];

    #[test]
    fn counts_every_event() {
        let mut p = Profiler::new(ProfileConfig { sample: 4 }, 2);
        for i in 0..100u64 {
            p.record((i % 2) as u8);
        }
        let data = p.finish(NAMES);
        assert_eq!(data.total_events(), 100);
        assert_eq!(data.count(0), 50);
        assert_eq!(data.count(1), 50);
    }

    #[test]
    fn samples_roughly_one_in_n() {
        let mut p = Profiler::new(ProfileConfig { sample: 4 }, 1);
        for _ in 0..64 {
            p.record(0);
        }
        let data = p.finish(&["Only"]);
        // 64 events, 1-in-4 sampling: a sample opens at events 0,4,…,60 and
        // each is closed by the following event.
        let sampled: u64 = data.sampled_n.iter().sum();
        assert_eq!(sampled, 16);
    }

    #[test]
    fn table_lists_kinds_and_counts() {
        let mut p = Profiler::new(ProfileConfig { sample: 1 }, 2);
        for i in 0..10u64 {
            p.record((i % 2) as u8);
        }
        let data = p.finish(NAMES);
        let t = data.render_table(Some(1));
        assert!(t.contains("(site 1)"));
        assert!(t.contains("Alpha"));
        assert!(t.contains("Beta"));
        assert!(t.contains("10 events"));
    }

    #[test]
    fn out_of_range_kind_is_ignored() {
        let mut p = Profiler::new(ProfileConfig { sample: 1 }, 1);
        p.record(9);
        let data = p.finish(&["Only"]);
        assert_eq!(data.total_events(), 0);
    }
}
