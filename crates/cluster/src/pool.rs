//! A reusable scoped-thread window pool for the federation coordinator.
//!
//! The conservative-window scheme runs the *same* set of site engines
//! through many short windows — thousands per simulated second — so
//! spawning threads per window (as the harness's one-shot sweep executor
//! does per config) would drown the win in thread churn. This pool spawns
//! its workers once, parks them on a condvar, and replays the harness
//! executor's determinism recipe every window: work items are pulled from
//! a shared atomic counter and every cell sits behind its own mutex, so
//! which worker runs which site never affects the outcome — results live
//! in the cells, by index.
//!
//! No dependencies beyond `std` (`Mutex` + `Condvar` epoch barrier), same
//! as the rest of the workspace.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

use holdcsim_des::time::SimTime;

/// Barrier state shared between the coordinator and the workers.
struct State {
    /// Bumped once per dispatched window; workers run when it passes the
    /// epoch they last served.
    epoch: u64,
    /// The inclusive window cap workers pass to the work closure.
    cap: SimTime,
    /// Workers still busy in the current epoch.
    remaining: usize,
    /// Set once the coordinator is done (or unwinding): workers exit.
    shutdown: bool,
    /// Set when a worker's work closure panicked.
    panicked: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Workers wait here for the next epoch (or shutdown).
    work_cv: Condvar,
    /// The coordinator waits here for `remaining == 0`.
    done_cv: Condvar,
}

/// Signals shutdown to the workers even when the coordinator unwinds —
/// without this, a panicking `drive` would leave workers parked forever
/// and `thread::scope` would never join them.
struct ShutdownGuard<'a>(&'a Shared);

impl Drop for ShutdownGuard<'_> {
    fn drop(&mut self) {
        let mut st = self.0.state.lock().unwrap_or_else(|e| e.into_inner());
        st.shutdown = true;
        self.0.work_cv.notify_all();
    }
}

/// Runs `drive` with a window-dispatch handle backed by `workers` pooled
/// threads. Each call of the handle runs `work(&mut cell, cap)` exactly
/// once per cell (pulled by shared counter, any worker order) and returns
/// only when every cell finished — a full barrier per window.
///
/// With `workers <= 1` (or a single cell) no threads are spawned at all:
/// the handle runs the cells inline, in index order, making worker count
/// a pure throughput knob.
///
/// # Panics
///
/// Propagates panics from `work` (after releasing the barrier) and from
/// `drive`.
pub fn run_windows<T, W, D, R>(workers: usize, cells: &[Mutex<T>], work: W, drive: D) -> R
where
    T: Send,
    W: Fn(&mut T, SimTime) + Sync,
    D: FnOnce(&mut dyn FnMut(SimTime)) -> R,
{
    let workers = workers.clamp(1, cells.len().max(1));
    if workers <= 1 {
        let mut dispatch = |cap: SimTime| {
            for cell in cells {
                work(&mut cell.lock().expect("window cell"), cap);
            }
        };
        return drive(&mut dispatch);
    }
    let shared = Shared {
        state: Mutex::new(State {
            epoch: 0,
            cap: SimTime::ZERO,
            remaining: 0,
            shutdown: false,
            panicked: false,
        }),
        work_cv: Condvar::new(),
        done_cv: Condvar::new(),
    };
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| worker_loop(&shared, &next, cells, &work));
        }
        let _guard = ShutdownGuard(&shared);
        let mut dispatch = |cap: SimTime| {
            let mut st = shared.state.lock().expect("pool state");
            st.epoch += 1;
            st.cap = cap;
            st.remaining = workers;
            // The previous epoch fully drained before this one starts, so
            // resetting the pull counter races with nothing.
            next.store(0, Ordering::Relaxed);
            shared.work_cv.notify_all();
            while st.remaining > 0 {
                st = shared.done_cv.wait(st).expect("pool state");
            }
            assert!(!st.panicked, "window pool worker panicked");
        };
        drive(&mut dispatch)
    })
}

fn worker_loop<T, W>(shared: &Shared, next: &AtomicUsize, cells: &[Mutex<T>], work: &W)
where
    T: Send,
    W: Fn(&mut T, SimTime) + Sync,
{
    let mut served = 0u64;
    loop {
        let cap;
        {
            let mut st = shared.state.lock().expect("pool state");
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch > served {
                    served = st.epoch;
                    cap = st.cap;
                    break;
                }
                st = shared.work_cv.wait(st).expect("pool state");
            }
        }
        let outcome = catch_unwind(AssertUnwindSafe(|| loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= cells.len() {
                break;
            }
            work(&mut cells[i].lock().expect("window cell"), cap);
        }));
        {
            let mut st = shared.state.lock().unwrap_or_else(|e| e.into_inner());
            st.remaining -= 1;
            if outcome.is_err() {
                st.panicked = true;
            }
            if st.remaining == 0 {
                shared.done_cv.notify_all();
            }
        }
        if let Err(payload) = outcome {
            resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_cell_sees_every_window_in_order() {
        for workers in [1usize, 2, 3, 8] {
            let cells: Vec<Mutex<Vec<SimTime>>> = (0..5).map(|_| Mutex::new(Vec::new())).collect();
            let total = run_windows(
                workers,
                &cells,
                |cell: &mut Vec<SimTime>, cap| cell.push(cap),
                |dispatch| {
                    let mut n = 0;
                    for t in 1..=4u64 {
                        dispatch(SimTime::from_secs(t));
                        n += 1;
                    }
                    n
                },
            );
            assert_eq!(total, 4);
            let want: Vec<SimTime> = (1..=4).map(SimTime::from_secs).collect();
            for cell in &cells {
                assert_eq!(*cell.lock().unwrap(), want, "workers={workers}");
            }
        }
    }

    #[test]
    fn worker_panic_reaches_the_coordinator() {
        let cells: Vec<Mutex<u64>> = (0..4).map(Mutex::new).collect();
        let hit = std::panic::catch_unwind(AssertUnwindSafe(|| {
            run_windows(
                2,
                &cells,
                |cell: &mut u64, _cap| {
                    if *cell == 2 {
                        panic!("boom");
                    }
                },
                |dispatch| dispatch(SimTime::ZERO),
            )
        }));
        assert!(hit.is_err(), "the window panic must propagate");
    }

    #[test]
    fn coordinator_panic_still_shuts_the_pool_down() {
        let cells: Vec<Mutex<u64>> = (0..4).map(Mutex::new).collect();
        let hit = std::panic::catch_unwind(AssertUnwindSafe(|| {
            run_windows(
                2,
                &cells,
                |_cell: &mut u64, _cap| {},
                |dispatch| {
                    dispatch(SimTime::ZERO);
                    panic!("drive failed");
                },
            )
        }));
        // Reaching this line at all proves the workers were released.
        assert!(hit.is_err());
    }
}
