//! The federation coordinator: N site [`Datacenter`]s advanced through
//! conservative lookahead windows (Chandy–Misra style), coupled only by
//! WAN job transfers and the geo-dispatch load snapshot.
//!
//! Between WAN deliveries the sites are independent shards, and nothing
//! a site does before `earliest event + WAN lookahead floor` can reach
//! another site — so the coordinator computes that safe horizon, runs
//! every site up to it ([`Engine::run_window`], concurrently on a pooled
//! scoped-thread substrate or inline in the serial reference arm), then
//! exchanges the accumulated outboxes through the WAN in global send
//! order and refreshes the dispatch load snapshot, window after window.
//! Both arms drive the identical coordination loop, so
//! [`FederationReport::to_json`] is byte-identical at any worker count
//! and to [`Federation::run_serial`].
//!
//! Each site is a complete, self-driven fabric built by
//! [`Simulation::new`] from its own [`SimConfig`](holdcsim::config::SimConfig) (derived by
//! [`ClusterConfig::site_configs`], per-site RNG substreams included), so
//! a federated site whose jobs all stay home retraces the corresponding
//! standalone run event for event — the property the cross-site
//! equivalence tests pin down.

use std::sync::Mutex;

use holdcsim::config::ClusterConfig;
use holdcsim::export::{json_f64, JsonObj};
use holdcsim::job::JobState;
use holdcsim::report::SimReport;
use holdcsim::sim::{finish_report, Datacenter, DcEvent, FedPort, Simulation};
use holdcsim_des::engine::Engine;
use holdcsim_des::time::{SimDuration, SimTime};
use holdcsim_faults::{FaultEvent, FaultKind};
use holdcsim_obs::{MetricsData, ObsArtifacts, Observer, ProbePanel};

use crate::pool::run_windows;
use crate::wan::{Wan, WanReport};

/// One site fabric plus its observability tap.
type SiteEngine = Engine<Datacenter, Observer>;

/// A configured multi-datacenter federation, ready to run.
///
/// # Examples
///
/// ```
/// use holdcsim::config::{ClusterConfig, SimConfig, WanConfig};
/// use holdcsim_cluster::Federation;
/// use holdcsim_des::time::SimDuration;
/// use holdcsim_workload::presets::WorkloadPreset;
///
/// let base = SimConfig::server_farm(
///     4, 2, 0.3,
///     WorkloadPreset::WebSearch.template(),
///     SimDuration::from_secs(2),
/// );
/// let wan = WanConfig::full_mesh(2, 10_000_000_000, SimDuration::from_millis(20));
/// let report = Federation::new(&ClusterConfig::uniform(base, 2, wan)).run();
/// assert_eq!(report.sites.len(), 2);
/// assert!(report.jobs_completed() > 0);
/// ```
#[derive(Debug)]
pub struct Federation {
    sites: Vec<SiteEngine>,
    coord: Coordinator,
}

impl Federation {
    /// Builds every site fabric and the WAN from `cfg`.
    ///
    /// # Panics
    ///
    /// Panics on malformed configurations (no sites, zero
    /// [`ClusterConfig::job_bytes`], malformed WAN links).
    pub fn new(cfg: &ClusterConfig) -> Self {
        assert!(cfg.job_bytes > 0, "forwarded jobs carry payload");
        let site_cfgs = cfg.site_configs();
        let n = site_cfgs.len();
        let mut wan = Wan::build(&cfg.wan, n);
        let wan_faults: Vec<FaultEvent> = cfg
            .faults
            .as_ref()
            .map(|p| {
                p.wan_events()
                    .into_iter()
                    .filter(|e| e.at <= cfg.base.duration)
                    .collect()
            })
            .unwrap_or_default();
        if !wan_faults.is_empty() {
            wan.arm_faults();
        }
        let horizon = SimTime::ZERO + cfg.base.duration;
        let wan_panel =
            cfg.base.obs.metrics.map(|mc| {
                ProbePanel::new(mc, vec!["wan_in_flight_bytes", "wan_in_flight_transfers"])
            });
        let mut sites = Vec::with_capacity(n);
        let mut caps = Vec::with_capacity(n);
        for (i, sc) in site_cfgs.into_iter().enumerate() {
            caps.push((sc.server_count * sc.cores_per_server as usize) as f64);
            let mut engine = Simulation::new(sc).into_engine();
            engine.observer_mut().set_site(i as u32);
            engine.model_mut().attach_federation(FedPort {
                site: i as u32,
                geo: cfg.geo,
                site_loads: vec![0.0; n],
                wan_latency_s: wan.path_latency_s(i),
                outbox: Vec::new(),
                forwarded: 0,
            });
            sites.push(engine);
        }
        let lookahead = wan.lookahead();
        Federation {
            sites,
            coord: Coordinator {
                wan,
                wan_panel,
                lookahead,
                wan_faults,
                wan_fault_idx: 0,
                loads: vec![0.0; n],
                caps,
                job_bytes: cfg.job_bytes,
                horizon,
                deliveries: Vec::new(),
                sendbuf: Vec::new(),
            },
        }
    }

    /// Number of sites.
    pub fn site_count(&self) -> usize {
        self.sites.len()
    }

    /// Read access to a site's datacenter (tests and harnesses).
    pub fn site(&self, i: usize) -> &Datacenter {
        self.sites[i].model()
    }

    /// Runs the federation to its horizon with the default worker count
    /// (the machine's available parallelism, capped at the site count)
    /// and produces the report. Byte-identical to
    /// [`run_serial`](Federation::run_serial) and to every other worker
    /// count.
    pub fn run(self) -> FederationReport {
        let workers = std::thread::available_parallelism()
            .map(usize::from)
            .unwrap_or(1);
        self.run_with_workers(workers)
    }

    /// Runs the federation with exactly `workers` pooled threads burning
    /// down site windows (clamped to `1..=site_count`; `1` runs inline
    /// without spawning).
    pub fn run_with_workers(self, workers: usize) -> FederationReport {
        self.execute(workers)
    }

    /// The serial reference arm: the identical conservative-window loop,
    /// sites advanced inline in index order. Exists so tests (and
    /// `--fed-serial`) can pin the parallel arms against a thread-free
    /// execution byte for byte.
    pub fn run_serial(self) -> FederationReport {
        self.execute(1)
    }

    /// Runs the conservative-window coordination loop to the horizon and
    /// assembles the report.
    #[allow(clippy::disallowed_methods)] // summary-only wall_s; excluded from to_json (see analysis.toml D002 entry)
    fn execute(self, workers: usize) -> FederationReport {
        let t0 = std::time::Instant::now();
        let Federation { sites, mut coord } = self;
        let cells: Vec<Mutex<SiteEngine>> = sites.into_iter().map(Mutex::new).collect();
        run_windows(
            workers,
            &cells,
            |engine: &mut SiteEngine, cap| {
                engine.run_window(cap);
            },
            |dispatch| coord.drive(&cells, dispatch),
        );
        let horizon = coord.horizon;
        let mut engines: Vec<SiteEngine> = cells
            .into_iter()
            .map(|c| c.into_inner().expect("site cell poisoned"))
            .collect();
        for e in &mut engines {
            // All events within the horizon are processed; this only
            // advances the site clock to the common end instant.
            e.run_until(horizon);
        }
        let wall_s = t0.elapsed().as_secs_f64();
        let mut sites = Vec::with_capacity(engines.len());
        let mut obs = Vec::with_capacity(engines.len());
        let mut forwarded = Vec::with_capacity(engines.len());
        let mut events = 0;
        for e in engines {
            let ev = e.events_processed();
            events += ev;
            let (dc, observer) = e.into_parts();
            forwarded.push(dc.jobs_forwarded());
            sites.push(finish_report(dc, horizon, ev, wall_s));
            obs.push(observer.finish(horizon));
        }
        let wan = coord.wan.report(horizon);
        let resilience = fed_resilience(&sites, &wan);
        FederationReport {
            sites,
            obs,
            forwarded,
            wan,
            wan_metrics: coord.wan_panel.map(|p| p.finish(horizon)),
            resilience,
            events_processed: events,
            wall_s,
        }
    }
}

/// Aggregates the per-site resilience sections plus the WAN fault stats
/// into the federation-wide section — `None` when no site and no WAN
/// fault schedule was armed, keeping fault-free report bytes unchanged.
fn fed_resilience(sites: &[SimReport], wan: &WanReport) -> Option<FederationResilience> {
    if sites.iter().all(|s| s.resilience.is_none()) && wan.faults.is_none() {
        return None;
    }
    // Jobs mid-WAN at the horizon belong to no site's table yet; they
    // count as unfinished here so the federation-wide ledger closes.
    let mut r = FederationResilience {
        faults_injected: 0,
        server_downtime_s: 0.0,
        availability: 1.0,
        tasks_killed: 0,
        jobs_retried: 0,
        retries: 0,
        jobs_abandoned: 0,
        transfer_retries: 0,
        jobs_unfinished: sites
            .iter()
            .map(|s| s.jobs_submitted - s.jobs_completed)
            .sum::<u64>()
            + (wan.transfers - wan.delivered),
        wan_restarts: wan.faults.map_or(0, |f| f.restarts),
        wan_parked: wan.faults.map_or(0, |f| f.parked),
        wan_link_downtime_s: wan.faults.map_or(0.0, |f| f.link_downtime_s),
    };
    // Per-site availability is `1 − downtime / (servers × horizon)`; the
    // rollup keeps the same server-second units so a one-site federation
    // matches its site's number exactly.
    let mut server_seconds = 0.0;
    for s in sites {
        server_seconds += s.servers.len() as f64 * s.duration.as_secs_f64();
        let Some(sr) = &s.resilience else { continue };
        r.faults_injected += sr.faults_injected;
        r.server_downtime_s += sr.server_downtime_s;
        r.tasks_killed += sr.tasks_killed;
        r.jobs_retried += sr.jobs_retried;
        r.retries += sr.retries;
        r.jobs_abandoned += sr.jobs_abandoned;
        r.transfer_retries += sr.transfer_retries;
    }
    if server_seconds > 0.0 {
        r.availability = 1.0 - r.server_downtime_s / server_seconds;
    }
    Some(r)
}

/// The federation-wide resilience rollup: per-site sections summed, the
/// availability re-weighted by each site's server-seconds, plus the
/// coordinator-level WAN fault outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FederationResilience {
    /// Applied (non-recovery) fault events across all sites.
    pub faults_injected: u64,
    /// Summed per-server down seconds across all sites.
    pub server_downtime_s: f64,
    /// `1 − downtime / total server-seconds` over the whole federation.
    pub availability: f64,
    /// Tasks killed mid-run by crashes across all sites.
    pub tasks_killed: u64,
    /// Distinct jobs that retried at least once.
    pub jobs_retried: u64,
    /// Total task retry dispatches.
    pub retries: u64,
    /// Jobs abandoned with the retry budget exhausted.
    pub jobs_abandoned: u64,
    /// Intra-site transfers severed by fabric faults.
    pub transfer_retries: u64,
    /// Jobs not completed by the horizon (in-site plus mid-WAN).
    pub jobs_unfinished: u64,
    /// WAN transfers restarted from source by link failures.
    pub wan_restarts: u64,
    /// WAN transfers that waited at the ingress without a path.
    pub wan_parked: u64,
    /// Summed WAN link down seconds.
    pub wan_link_downtime_s: f64,
}

impl FederationResilience {
    /// Renders the rollup as a JSON object.
    pub fn to_json(&self) -> String {
        JsonObj::new()
            .int("faults_injected", self.faults_injected)
            .num("server_downtime_s", self.server_downtime_s)
            .raw("availability", &json_f64(self.availability))
            .int("tasks_killed", self.tasks_killed)
            .int("jobs_retried", self.jobs_retried)
            .int("retries", self.retries)
            .int("jobs_abandoned", self.jobs_abandoned)
            .int("transfer_retries", self.transfer_retries)
            .int("jobs_unfinished", self.jobs_unfinished)
            .int("wan_restarts", self.wan_restarts)
            .int("wan_parked", self.wan_parked)
            .num("wan_link_downtime_s", self.wan_link_downtime_s)
            .finish()
    }
}

/// What the coordination loop does next.
enum Turn {
    /// Advance the WAN to this instant (hop completions, deliveries).
    Wan(SimTime),
    /// Apply the scripted WAN fault(s) at this instant: links flip,
    /// paths and the lookahead floor recompute, sites learn the new
    /// latencies.
    Fault(SimTime),
    /// Run every site up to this inclusive cap.
    Window(SimTime),
    /// Nothing remains inside the horizon.
    Done,
}

/// Everything the window loop owns besides the site engines themselves:
/// the WAN, the dispatch load snapshot, and the window scratch buffers.
#[derive(Debug)]
struct Coordinator {
    wan: Wan,
    /// Coordinator-level WAN probes (in-flight bytes/transfers), present
    /// only when the base config turns metrics on. Sampled at window
    /// boundaries and WAN turns.
    wan_panel: Option<ProbePanel>,
    /// The WAN lookahead floor ([`Wan::lookahead`]) over the currently
    /// surviving links, refreshed at every WAN fault turn; `None` means
    /// sends are impossible and windows are bounded by the horizon only.
    lookahead: Option<SimDuration>,
    /// Scripted WAN fault events, time-sorted; applied at dedicated
    /// coordinator turns so no committed window spans a topology change.
    wan_faults: Vec<FaultEvent>,
    /// Next unapplied entry in `wan_faults`.
    wan_fault_idx: usize,
    /// Per-site load snapshot (in-flight jobs per core), recomputed at
    /// window boundaries and republished to every [`FedPort`] only when
    /// it changed.
    loads: Vec<f64>,
    /// Per-site core counts (the load denominator).
    caps: Vec<f64>,
    job_bytes: u64,
    horizon: SimTime,
    /// Reusable delivery buffer.
    deliveries: Vec<(u32, JobState)>,
    /// Reusable outbox merge buffer: `(send time, src, dst, job)`.
    sendbuf: Vec<(SimTime, u32, u32, JobState)>,
}

impl Coordinator {
    /// Runs the window loop to the horizon. `dispatch(cap)` must run
    /// every site engine through [`Engine::run_window`]`(cap)` before
    /// returning — inline or on the worker pool; the trace cannot tell
    /// the difference.
    fn drive(&mut self, cells: &[Mutex<SiteEngine>], dispatch: &mut dyn FnMut(SimTime)) {
        loop {
            match self.next_turn(cells) {
                Turn::Wan(t) => self.wan_turn(cells, t),
                Turn::Fault(t) => self.fault_turn(cells, t),
                Turn::Window(cap) => {
                    self.publish_loads(cells);
                    dispatch(cap);
                    self.close_window(cells, cap);
                }
                Turn::Done => return,
            }
        }
    }

    /// Picks the next turn: the WAN when it holds the earliest event
    /// inside the horizon (ties go to the WAN so a delivery always
    /// precedes same-instant site work), then a due WAN fault (applied
    /// before any site processes events at or past its instant),
    /// otherwise the widest safe site window.
    fn next_turn(&mut self, cells: &[Mutex<SiteEngine>]) -> Turn {
        let mut earliest: Option<SimTime> = None;
        // The earliest pending site-local fault instant strictly after
        // `earliest`: committed windows close at it so capacity changes
        // reach the load snapshot within one window (see `window_cap`).
        let mut site_fault: Option<SimTime> = None;
        for cell in cells {
            let mut guard = cell.lock().expect("site cell");
            if let Some(t) = guard.peek_next_time() {
                if t <= self.horizon && earliest.is_none_or(|b| t < b) {
                    earliest = Some(t);
                }
            }
            if let Some(f) = guard.model().next_fault_at(guard.now()) {
                if site_fault.is_none_or(|b| f < b) {
                    site_fault = Some(f);
                }
            }
        }
        let next_wan = self.wan.next_time().filter(|&t| t <= self.horizon);
        let next_fault = self
            .wan_faults
            .get(self.wan_fault_idx)
            .map(|e| SimTime::ZERO + e.at)
            .filter(|&t| t <= self.horizon);
        match (next_wan, next_fault, earliest) {
            (Some(w), f, s) if f.is_none_or(|f| w <= f) && s.is_none_or(|s| w <= s) => Turn::Wan(w),
            (_, Some(f), s) if s.is_none_or(|s| f <= s) => Turn::Fault(f),
            (w, f, Some(s)) => Turn::Window(self.window_cap(w, f, site_fault, s)),
            // All remaining combinations have no site event; WAN-only
            // futures are consumed by the first two arms.
            _ => Turn::Done,
        }
    }

    /// The inclusive window cap for sites whose earliest event is at
    /// `start`, given the next WAN event at `next_wan` (already known to
    /// be strictly after `start`): strictly before the next WAN delivery
    /// could land — the earlier of the next WAN event and
    /// `start + lookahead` (sends issued inside the window deliver no
    /// earlier; max–min fair sharing only ever postpones in-flight
    /// completions, so both bounds stay conservative) — clamped to the
    /// horizon. Two fault clamps tighten it further: the window must end
    /// strictly before the next scripted WAN fault (`wan_fault` — sends
    /// after a topology change must route on the post-change paths and
    /// the lookahead floor may shrink at it), and closes *at* the next
    /// site-local fault instant (`site_fault` — the capacity change is
    /// then visible at the very next load publish). When the lookahead
    /// floor is zero the exclusive bound is empty, so the cap
    /// degenerates to `start` itself: events *at* one instant cannot
    /// affect other sites at that same instant (every WAN hop takes
    /// nonzero time), and processing them guarantees progress — no
    /// deadlock, no livelock.
    fn window_cap(
        &self,
        next_wan: Option<SimTime>,
        wan_fault: Option<SimTime>,
        site_fault: Option<SimTime>,
        start: SimTime,
    ) -> SimTime {
        let mut cap = self.horizon;
        if let Some(w) = next_wan {
            cap = cap.min(SimTime::from_nanos(w.as_nanos() - 1));
        }
        if let Some(f) = wan_fault {
            cap = cap.min(SimTime::from_nanos(f.as_nanos() - 1));
        }
        if let Some(f) = site_fault {
            cap = cap.min(f);
        }
        if let Some(floor) = self.lookahead {
            let exclusive = start.saturating_add(floor).as_nanos();
            cap = cap.min(SimTime::from_nanos(exclusive.saturating_sub(1)));
        }
        cap.max(start)
    }

    /// Applies every scripted WAN fault due at `t`: links flip (paths,
    /// in-flight restarts, and parked relaunches happen inside the WAN),
    /// then the lookahead floor and every site's WAN latency snapshot
    /// refresh against the surviving topology.
    fn fault_turn(&mut self, cells: &[Mutex<SiteEngine>], t: SimTime) {
        while let Some(ev) = self.wan_faults.get(self.wan_fault_idx) {
            if SimTime::ZERO + ev.at != t {
                break;
            }
            self.wan_fault_idx += 1;
            match ev.kind {
                FaultKind::WanLinkDown { link } => {
                    self.wan.set_link_down(t, link, true);
                }
                FaultKind::WanLinkUp { link } => {
                    self.wan.set_link_down(t, link, false);
                }
                // `FaultPlan::wan_events` only yields WAN kinds.
                _ => {}
            }
        }
        self.lookahead = self.wan.lookahead();
        for (i, cell) in cells.iter().enumerate() {
            let mut e = cell.lock().expect("site cell");
            if let Some(port) = e.model_mut().fed_port_mut() {
                port.wan_latency_s = self.wan.path_latency_s(i);
            }
        }
        self.sample_wan(t);
    }

    /// Advances the WAN to `t`, scheduling completed deliveries as
    /// first-class events on their destination sites.
    fn wan_turn(&mut self, cells: &[Mutex<SiteEngine>], t: SimTime) {
        let mut deliveries = std::mem::take(&mut self.deliveries);
        deliveries.clear();
        self.wan.advance(t, &mut deliveries);
        for (dst, job) in deliveries.drain(..) {
            let mut e = cells[dst as usize].lock().expect("site cell");
            let slot = e.model_mut().accept_remote_job(job);
            e.schedule_at(t, DcEvent::RemoteJobArrive { slot });
        }
        self.deliveries = deliveries;
        self.sample_wan(t);
    }

    /// Recomputes the per-site load snapshot and republishes it into
    /// every [`FedPort`] — only when it actually changed, and only at
    /// window boundaries (never per event), identically in the serial
    /// and parallel arms. The denominator is the *surviving* capacity
    /// (cores minus fault-downed ones): a crash wave inflates the site's
    /// apparent load so geo dispatch drains away from it within one
    /// window, and a fully dead site reads as infinitely loaded.
    fn publish_loads(&mut self, cells: &[Mutex<SiteEngine>]) {
        let mut changed = false;
        for (i, cell) in cells.iter().enumerate() {
            let e = cell.lock().expect("site cell");
            let dc = e.model();
            let cap = self.caps[i] - dc.down_cores() as f64;
            let load = if cap > 0.0 {
                dc.jobs_in_flight() as f64 / cap
            } else {
                f64::INFINITY
            };
            if load != self.loads[i] {
                self.loads[i] = load;
                changed = true;
            }
        }
        if !changed {
            return;
        }
        for cell in cells {
            let mut e = cell.lock().expect("site cell");
            if let Some(port) = e.model_mut().fed_port_mut() {
                port.site_loads.clone_from(&self.loads);
            }
        }
    }

    /// Ships every outbox accumulated during the window through the WAN
    /// in global send order — send instant first, then site index (the
    /// per-site drains concatenate in index order and the sort is
    /// stable), then a site's own event order — interleaving WAN hop
    /// completions due at or before each send exactly as the per-event
    /// coordinator did.
    fn close_window(&mut self, cells: &[Mutex<SiteEngine>], cap: SimTime) {
        self.sendbuf.clear();
        for (i, cell) in cells.iter().enumerate() {
            let mut e = cell.lock().expect("site cell");
            if let Some(port) = e.model_mut().fed_port_mut() {
                for (at, target, job) in port.outbox.drain(..) {
                    self.sendbuf.push((at, i as u32, target, job));
                }
            }
        }
        let mut sends = std::mem::take(&mut self.sendbuf);
        sends.sort_by_key(|&(at, ..)| at);
        for (at, src, dst, job) in sends.drain(..) {
            while self.wan.next_time().is_some_and(|w| w <= at) {
                let w = self.wan.next_time().expect("peeked");
                let mut sink = std::mem::take(&mut self.deliveries);
                self.wan.advance(w, &mut sink);
                // The window cap sits strictly below every possible
                // delivery instant (and a hop never takes zero time), so
                // hops completing here are mid-path only. A delivery
                // would mean the lookahead bound was violated.
                assert!(
                    sink.is_empty(),
                    "conservative window admitted a WAN delivery at {w} (cap {cap})"
                );
                self.deliveries = sink;
            }
            self.wan.send(at, src, dst, self.job_bytes, job);
        }
        self.sendbuf = sends;
        self.sample_wan(cap);
    }

    /// Samples the coordinator-level WAN probes when the metrics period
    /// has elapsed (no-op when metrics are off).
    fn sample_wan(&mut self, now: SimTime) {
        if let Some(panel) = &mut self.wan_panel {
            if panel.due(now) {
                let values = [
                    self.wan.in_flight_bytes() as f64,
                    self.wan.in_flight() as f64,
                ];
                panel.record(now, &values);
            }
        }
    }
}

/// The outcome of a federated run: per-site reports plus the WAN and
/// federation-wide aggregates.
#[derive(Debug, Clone)]
pub struct FederationReport {
    /// One full report per site, in site order.
    pub sites: Vec<SimReport>,
    /// Per-site observability artifacts, in site order (all empty when
    /// observability is off in the base config).
    pub obs: Vec<ObsArtifacts>,
    /// Jobs each site forwarded off-site, in site order.
    pub forwarded: Vec<u64>,
    /// The WAN outcome.
    pub wan: WanReport,
    /// Coordinator-level WAN probe samples (present when metrics are on).
    pub wan_metrics: Option<MetricsData>,
    /// Federation-wide resilience rollup — present only when a fault
    /// schedule was armed somewhere (any site, or the WAN).
    pub resilience: Option<FederationResilience>,
    /// Engine events processed across all sites.
    pub events_processed: u64,
    /// Wall-clock seconds for the whole federated run. Deliberately
    /// excluded from [`FederationReport::to_json`] so exported artifacts
    /// stay bitwise identical across machines and worker counts.
    pub wall_s: f64,
}

impl FederationReport {
    /// Jobs submitted across the federation (forwarded jobs count at
    /// their execution site once delivered).
    pub fn jobs_submitted(&self) -> u64 {
        self.sites.iter().map(|s| s.jobs_submitted).sum()
    }

    /// Jobs completed across the federation.
    pub fn jobs_completed(&self) -> u64 {
        self.sites.iter().map(|s| s.jobs_completed).sum()
    }

    /// Jobs forwarded across the WAN.
    pub fn jobs_forwarded(&self) -> u64 {
        self.forwarded.iter().sum()
    }

    /// Total energy (servers + switches + WAN transport), joules.
    pub fn total_energy_j(&self) -> f64 {
        self.sites.iter().map(|s| s.total_energy_j()).sum::<f64>() + self.wan.energy_j
    }

    /// Count-weighted mean job latency across sites, seconds (exact).
    pub fn mean_latency_s(&self) -> f64 {
        let (mut n, mut sum) = (0u64, 0.0);
        for s in &self.sites {
            n += s.latency.count;
            sum += s.latency.count as f64 * s.latency.mean;
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    /// Federation-wide latency quantile, merged from the per-site
    /// empirical CDFs (count-weighted; exact up to each site's CDF
    /// resolution).
    pub fn latency_quantile(&self, q: f64) -> f64 {
        let mut points: Vec<(f64, f64)> = Vec::new();
        let mut total = 0.0;
        for s in &self.sites {
            if s.latency_cdf.is_empty() {
                continue;
            }
            let w = s.latency.count as f64 / s.latency_cdf.len() as f64;
            total += s.latency.count as f64;
            points.extend(s.latency_cdf.iter().map(|&(v, _)| (v, w)));
        }
        if points.is_empty() {
            return 0.0;
        }
        points.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite latencies"));
        let target = q * total;
        let mut acc = 0.0;
        for &(v, w) in &points {
            acc += w;
            if acc >= target {
                return v;
            }
        }
        points.last().expect("nonempty").0
    }

    /// Renders a compact human-readable summary: one line per site plus
    /// the WAN and federation-wide aggregates.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for (i, s) in self.sites.iter().enumerate() {
            out.push_str(&format!(
                "site {i}: jobs {}/{} (fwd {}) | p95 {:.3} ms | energy {:.1} kJ\n",
                s.jobs_completed,
                s.jobs_submitted,
                self.forwarded[i],
                s.latency.p95 * 1e3,
                s.total_energy_j() / 1e3,
            ));
        }
        out.push_str(&format!(
            "wan: {} transfers ({} delivered) | {:.1} MB | {:.1} J | mean {:.1} ms\n",
            self.wan.transfers,
            self.wan.delivered,
            self.wan.payload_bytes as f64 / 1e6,
            self.wan.energy_j,
            self.wan.mean_transfer_s * 1e3,
        ));
        out.push_str(&format!(
            "federation: jobs {}/{} | latency mean {:.3} ms p95 {:.3} ms | {:.1} kJ | {} events\n",
            self.jobs_completed(),
            self.jobs_submitted(),
            self.mean_latency_s() * 1e3,
            self.latency_quantile(0.95) * 1e3,
            self.total_energy_j() / 1e3,
            self.events_processed,
        ));
        if let Some(r) = &self.resilience {
            out.push_str(&format!(
                "resilience: {:.4}% available | {} faults | {} killed | {} retried ({} retries, {} abandoned) | wan {} restarts {} parked {:.1} s down\n",
                r.availability * 100.0,
                r.faults_injected,
                r.tasks_killed,
                r.jobs_retried,
                r.retries,
                r.jobs_abandoned,
                r.wan_restarts,
                r.wan_parked,
                r.wan_link_downtime_s,
            ));
        }
        if self.wall_s > 0.0 {
            out.push_str(&format!(
                "engine: {} events in {:.3} s wall ({:.0} events/s)\n",
                self.events_processed,
                self.wall_s,
                self.events_processed as f64 / self.wall_s,
            ));
        }
        out
    }

    /// Serializes the report (per-site headline JSON, forwarded counts,
    /// WAN, aggregates) as one JSON object.
    pub fn to_json(&self) -> String {
        let sites = format!(
            "[{}]",
            self.sites
                .iter()
                .map(|s| s.to_json())
                .collect::<Vec<_>>()
                .join(",")
        );
        let forwarded = format!(
            "[{}]",
            self.forwarded
                .iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
                .join(",")
        );
        let aggregate = JsonObj::new()
            .int("jobs_submitted", self.jobs_submitted())
            .int("jobs_completed", self.jobs_completed())
            .int("jobs_forwarded", self.jobs_forwarded())
            .raw("latency_mean_s", &json_f64(self.mean_latency_s()))
            .raw("latency_p95_s", &json_f64(self.latency_quantile(0.95)))
            .raw("energy_j", &json_f64(self.total_energy_j()))
            .int("events", self.events_processed)
            .finish();
        let mut obj = JsonObj::new()
            .raw("sites", &sites)
            .raw("forwarded", &forwarded)
            .raw("wan", &self.wan.to_json())
            .raw("aggregate", &aggregate);
        if let Some(r) = &self.resilience {
            obj = obj.raw("resilience", &r.to_json());
        }
        obj.finish()
    }
}

/// Runs every federation and returns the reports in input order, pulled
/// from a shared counter by a scoped thread pool — the same
/// slot-per-trial scheme as the harness's `run_configs`, so the output
/// is bitwise identical at every worker count.
///
/// Each federation runs its sites serially here: the grid's parallelism
/// budget is already spent across federations, and nesting a window pool
/// per federation would only oversubscribe the machine. (The output is
/// identical either way.)
pub fn run_federations(configs: Vec<ClusterConfig>, threads: usize) -> Vec<FederationReport> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;
    let n = configs.len();
    if n == 0 {
        return Vec::new();
    }
    let jobs: Vec<Mutex<Option<ClusterConfig>>> =
        configs.into_iter().map(|c| Mutex::new(Some(c))).collect();
    let slots: Vec<Mutex<Option<FederationReport>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let workers = threads.clamp(1, n);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let cfg = jobs[i]
                    .lock()
                    .expect("job lock")
                    .take()
                    .expect("job taken once");
                let report = Federation::new(&cfg).run_serial();
                *slots[i].lock().expect("slot lock") = Some(report);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("slot poisoned")
                .expect("all federations ran")
        })
        .collect()
}
