//! # holdcsim-cluster
//!
//! Multi-datacenter federation for HolDCSim-RS: several complete site
//! fabrics ([`holdcsim::sim::Datacenter`]s, each with its own topology,
//! power devices, and RNG substream) behind one coordinator, coupled by
//! an inter-cluster WAN and a geo-aware dispatch policy.
//!
//! * [`Federation`] — the coordinator: advances sites through
//!   conservative lookahead windows (each site burns down its calendar
//!   to the next safe WAN horizon, concurrently on a pooled
//!   scoped-thread substrate or inline in the `run_serial` reference
//!   arm) and ships forwarded jobs over the WAN as first-class
//!   [`holdcsim::sim::DcEvent::RemoteJobArrive`] events on the
//!   destination site's calendar.
//! * [`wan::Wan`] — the inter-cluster network: per-link selectable FIFO
//!   pipes or max-min fair-shared flow links (through the kernel's
//!   [`holdcsim_network::flow::FlowNet`] solver arms), point-to-point or
//!   hub topologies, latency/bandwidth/transport-energy accounting.
//! * [`FederationReport`] — per-site [`holdcsim::report::SimReport`]s
//!   plus WAN and federation-wide aggregates.
//!
//! Configuration lives in [`holdcsim::config::ClusterConfig`]; the geo
//! dispatch policies in [`holdcsim_sched::geo`]. Determinism carries
//! over from single-fabric runs: same [`ClusterConfig`] ⇒ byte-identical
//! [`FederationReport`], at any federation worker count (and any
//! [`run_federations`] worker count) — and a federation whose jobs all
//! stay home reproduces each site's standalone trajectory exactly.
//!
//! [`ClusterConfig`]: holdcsim::config::ClusterConfig

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod federation;
pub mod pool;
pub mod wan;

pub use federation::{run_federations, Federation, FederationReport};
pub use wan::{Wan, WanReport};

#[cfg(test)]
mod tests {
    use super::*;
    use holdcsim::config::{
        ClusterConfig, CommModel, NetworkConfig, SimConfig, WanConfig, WanLinkMode,
    };
    use holdcsim::sim::Simulation;
    use holdcsim_des::time::SimDuration;
    use holdcsim_sched::geo::GeoPolicy;
    use holdcsim_workload::service::ServiceDist;
    use holdcsim_workload::templates::JobTemplate;

    /// A networked per-site base: two-tier jobs whose every edge crosses
    /// the site fabric (interleaved server classes on a k=4 fat tree).
    fn networked_base(comm: CommModel, secs: u64) -> SimConfig {
        let template = JobTemplate::two_tier(
            ServiceDist::Exponential {
                mean: SimDuration::from_millis(4),
            },
            ServiceDist::Exponential {
                mean: SimDuration::from_millis(6),
            },
            48_000,
        );
        let mut cfg = SimConfig::server_farm(8, 2, 0.4, template, SimDuration::from_secs(secs));
        cfg.server_classes = (0..8).map(|i| (i % 2) as u32).collect();
        let mut net = NetworkConfig::fat_tree(4);
        net.comm = comm;
        cfg.network = Some(net);
        cfg
    }

    fn packet() -> CommModel {
        CommModel::Packet {
            mtu: 1_500,
            buffer_bytes: 1 << 20,
        }
    }

    /// An effectively unconstrained WAN: zero latency, 1 Tb/s links.
    fn zero_latency_wan(sites: usize) -> WanConfig {
        WanConfig::full_mesh(sites, 1_000_000_000_000, SimDuration::ZERO)
    }

    /// Satellite: a 2-site federation over an infinite-capacity /
    /// zero-latency WAN whose traffic stays site-local must reproduce
    /// the single-fabric trajectories byte for byte.
    #[test]
    fn zero_latency_site_local_matches_single_fabric_byte_for_byte() {
        for comm in [CommModel::Flow, packet()] {
            let cc = ClusterConfig::uniform(networked_base(comm, 2), 2, zero_latency_wan(2))
                .with_geo(GeoPolicy::SiteLocalFirst {
                    spill_load: f64::INFINITY,
                });
            let standalone: Vec<String> = cc
                .site_configs()
                .into_iter()
                .map(|c| Simulation::new(c).run().to_json())
                .collect();
            let fed = Federation::new(&cc).run();
            assert_eq!(fed.jobs_forwarded(), 0, "site-local traffic only");
            assert_eq!(fed.wan.transfers, 0);
            for (i, site) in fed.sites.iter().enumerate() {
                assert_eq!(
                    site.to_json(),
                    standalone[i],
                    "site {i} diverged from its standalone run ({comm:?})"
                );
            }
        }
    }

    /// Satellite: same seed ⇒ byte-identical federation reports at 1 vs
    /// 4 harness threads, across 2- and 3-site grids in both comm arms.
    #[test]
    fn federation_grid_is_bitwise_identical_across_thread_counts() {
        let mut grid = Vec::new();
        for sites in [2usize, 3] {
            for comm in [CommModel::Flow, packet()] {
                let mut cc = ClusterConfig::uniform(
                    networked_base(comm, 1),
                    sites,
                    WanConfig::full_mesh(sites, 10_000_000_000, SimDuration::from_millis(5)),
                )
                .with_geo(GeoPolicy::LoadBalanced)
                .with_seed(9);
                cc.job_bytes = 256 * 1024;
                // Skew the mix so cross-site forwarding actually happens.
                cc.sites[0].affinity = Some(3.0);
                grid.push(cc);
            }
        }
        let serial: Vec<String> = run_federations(grid.clone(), 1)
            .iter()
            .map(|r| r.to_json())
            .collect();
        let parallel: Vec<String> = run_federations(grid, 4)
            .iter()
            .map(|r| r.to_json())
            .collect();
        assert_eq!(serial, parallel, "reports must not depend on threads");
    }

    /// Tentpole: the window-parallel coordinator is byte-identical to
    /// the serial reference arm — flow and packet site fabrics, pipe and
    /// flow WAN links, 1/2/4 workers, asserted on `to_json` bytes.
    #[test]
    fn parallel_windows_bitwise_identical_to_serial() {
        for comm in [CommModel::Flow, packet()] {
            for mode in [WanLinkMode::Pipe, WanLinkMode::Flow] {
                let mut cc = ClusterConfig::uniform(
                    networked_base(comm, 1),
                    2,
                    WanConfig::full_mesh(2, 10_000_000_000, SimDuration::from_millis(5))
                        .with_mode(mode),
                )
                .with_geo(GeoPolicy::LoadBalanced)
                .with_seed(11);
                cc.job_bytes = 256 * 1024;
                cc.sites[0].affinity = Some(3.0);
                let reference = Federation::new(&cc).run_serial();
                assert!(
                    reference.jobs_forwarded() > 0,
                    "the A/B must exercise the WAN ({comm:?}, {mode:?})"
                );
                let want = reference.to_json();
                for workers in [1usize, 2, 4] {
                    let got = Federation::new(&cc).run_with_workers(workers).to_json();
                    assert_eq!(
                        got, want,
                        "{workers} workers diverged from serial ({comm:?}, {mode:?})"
                    );
                }
            }
        }
    }

    /// Edge case: a zero-latency WAN collapses the lookahead floor to
    /// zero — windows degenerate to single instants but the loop must
    /// still terminate (no deadlock, no livelock) and stay byte-equal to
    /// the serial arm.
    #[test]
    fn zero_lookahead_windows_terminate_and_match_serial() {
        let mut cc = ClusterConfig::uniform(
            networked_base(CommModel::Flow, 1),
            2,
            WanConfig::full_mesh(2, 10_000_000_000, SimDuration::ZERO),
        )
        .with_geo(GeoPolicy::LoadBalanced)
        .with_seed(5);
        cc.sites[0].affinity = Some(1.0);
        cc.sites[1].affinity = Some(0.0);
        cc.job_bytes = 256 * 1024;
        let serial = Federation::new(&cc).run_serial();
        assert!(serial.jobs_forwarded() > 0, "forced forwarding at floor 0");
        let parallel = Federation::new(&cc).run_with_workers(2);
        assert_eq!(serial.to_json(), parallel.to_json());
    }

    /// Acceptance: cross-site transfers demonstrably traverse the WAN —
    /// the skewed/load-balanced run forwards jobs, pays WAN latency and
    /// energy, and its event counts differ from the site-local control
    /// (which the equivalence test above pins to the single-fabric
    /// trajectory).
    #[test]
    fn cross_site_transfers_traverse_the_wan() {
        let sites = 2;
        let mk = |geo| {
            let mut cc = ClusterConfig::uniform(
                networked_base(CommModel::Flow, 2),
                sites,
                WanConfig::full_mesh(sites, 1_000_000_000, SimDuration::from_millis(20)),
            )
            .with_geo(geo);
            // All home traffic lands at site 0; only dispatch moves it.
            cc.sites[0].affinity = Some(1.0);
            cc.sites[1].affinity = Some(0.0);
            cc.job_bytes = 512 * 1024;
            cc
        };
        let control = Federation::new(&mk(GeoPolicy::SiteLocalFirst {
            spill_load: f64::INFINITY,
        }))
        .run();
        let treated = Federation::new(&mk(GeoPolicy::LoadBalanced)).run();
        assert_eq!(control.jobs_forwarded(), 0);
        assert!(
            treated.jobs_forwarded() > 50,
            "load balancing off a saturated home site must forward: {}",
            treated.jobs_forwarded()
        );
        assert!(treated.wan.delivered > 0);
        assert!(treated.wan.energy_j > 0.0);
        assert!(
            treated.wan.mean_transfer_s > 0.020,
            "transfers pay at least the 20 ms WAN latency: {}",
            treated.wan.mean_transfer_s
        );
        assert!(
            treated.sites[1].jobs_submitted > 0,
            "forwarded jobs execute at the remote site"
        );
        assert_ne!(
            control.events_processed, treated.events_processed,
            "WAN traversal changes the event trajectory"
        );
    }

    /// Same federation, same seed, run twice ⇒ byte-identical reports
    /// (including flow-mode WAN links and a hub topology).
    #[test]
    fn federation_runs_are_reproducible() {
        let mut cc = ClusterConfig::uniform(
            networked_base(CommModel::Flow, 1),
            3,
            WanConfig::hub(3, 2_000_000_000, SimDuration::from_millis(10))
                .with_mode(WanLinkMode::Flow),
        )
        .with_geo(GeoPolicy::LatencyAware {
            latency_weight: 2.0,
        });
        cc.sites[0].affinity = Some(4.0);
        let a = Federation::new(&cc).run();
        let b = Federation::new(&cc).run();
        assert_eq!(a.to_json(), b.to_json());
        // The latency-aware arm still runs a live federation.
        assert!(a.jobs_completed() > 0);
    }

    /// The WAN-latency leg shows up in end-to-end job latency: a distant
    /// federation under forced forwarding has a larger mean than the
    /// same federation with a near-zero WAN.
    #[test]
    fn wan_latency_shows_up_in_job_latency() {
        let mk = |latency_ms: u64| {
            let mut cc = ClusterConfig::uniform(
                networked_base(CommModel::Flow, 2),
                2,
                WanConfig::full_mesh(2, 10_000_000_000, SimDuration::from_millis(latency_ms)),
            )
            .with_geo(GeoPolicy::LoadBalanced);
            cc.sites[0].affinity = Some(1.0);
            cc.sites[1].affinity = Some(0.0);
            Federation::new(&cc).run()
        };
        let near = mk(0);
        let far = mk(50);
        assert!(far.jobs_forwarded() > 0);
        assert!(
            far.mean_latency_s() > near.mean_latency_s(),
            "50 ms WAN legs must lift mean latency: {} vs {}",
            far.mean_latency_s(),
            near.mean_latency_s()
        );
    }

    /// Server-only sites federate too (no site fabric at all): the WAN
    /// is the only network in the run.
    #[test]
    fn server_only_sites_federate() {
        let base = SimConfig::server_farm(
            4,
            2,
            0.6,
            holdcsim_workload::presets::WorkloadPreset::WebSearch.template(),
            SimDuration::from_secs(2),
        );
        let mut cc = ClusterConfig::uniform(
            base,
            3,
            WanConfig::hub(3, 1_000_000_000, SimDuration::from_millis(15)),
        )
        .with_geo(GeoPolicy::SiteLocalFirst { spill_load: 0.9 });
        cc.sites[0].affinity = Some(8.0);
        let r = Federation::new(&cc).run();
        assert!(r.jobs_completed() > 100);
        assert!(r.jobs_forwarded() > 0, "spill threshold must trigger");
        assert_eq!(r.sites.len(), 3);
        let json = r.to_json();
        for key in ["\"sites\":", "\"forwarded\":", "\"wan\":", "\"aggregate\":"] {
            assert!(json.contains(key), "missing {key}");
        }
        assert!(!r.summary().is_empty());
    }
}
