//! The inter-cluster WAN: forwarded jobs traverse their site-to-site path
//! hop by hop, each hop either a FIFO pipe (serialization + propagation)
//! or a max-min fair-shared flow link driven through the kernel's
//! [`FlowNet`] solver arms — selectable per link via [`WanLinkMode`].

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use holdcsim::config::{WanConfig, WanLinkMode};
use holdcsim::export::JsonObj;
use holdcsim::job::JobState;
use holdcsim_des::slot_window::SlotWindow;
use holdcsim_des::time::{SimDuration, SimTime};
use holdcsim_network::flow::FlowNet;
use holdcsim_network::ids::{FlowId, LinkId, NodeId};
use holdcsim_network::topology::Topology;

/// Per-link runtime state over the configured WAN link.
#[derive(Debug)]
struct LinkState {
    rate_bps: u64,
    latency: SimDuration,
    energy_per_byte_j: f64,
    mode: WanLinkMode,
    /// Pipe mode: when the current FIFO serialization drains.
    busy_until: SimTime,
    /// Endpoints as WAN-topology nodes (for flow admission).
    a: NodeId,
    b: NodeId,
    /// Failed by the fault schedule: excluded from paths, carries
    /// nothing until it recovers.
    down: bool,
}

/// One forwarded job in flight across the WAN.
#[derive(Debug)]
struct Transfer {
    src: u32,
    dst: u32,
    bytes: u64,
    hop: u32,
    started: SimTime,
    /// The link-id path snapshotted at launch (or relaunch): a fault that
    /// recomputes the site paths must not shift the ground under a
    /// mid-path transfer. Empty while parked.
    path: Vec<u32>,
    /// Bumped on every fault-forced restart; hop completions carrying a
    /// stale generation are dropped.
    gen: u32,
    job: JobState,
}

/// Aggregate WAN outcome of a federated run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WanReport {
    /// Transfers started.
    pub transfers: u64,
    /// Transfers fully delivered (in-flight ones at the horizon are cut
    /// off, like arrivals past the horizon).
    pub delivered: u64,
    /// Payload bytes entering the WAN.
    pub payload_bytes: u64,
    /// Bytes moved across links (payload × hops traversed).
    pub link_bytes: u64,
    /// Transport energy charged across all link traversals, joules.
    pub energy_j: f64,
    /// Mean delivered-transfer latency, seconds.
    pub mean_transfer_s: f64,
    /// Fault-side WAN outcome — `Some` only when a WAN fault schedule is
    /// armed, so fault-free reports keep their exact byte layout.
    pub faults: Option<WanFaultStats>,
}

/// WAN resilience counters (armed fault schedules only).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WanFaultStats {
    /// Transfers restarted from their source because a link on their
    /// path died mid-flight.
    pub restarts: u64,
    /// Transfers that waited at the WAN ingress with no usable path
    /// (cumulative park events).
    pub parked: u64,
    /// Transfers still parked without a path at the horizon.
    pub still_parked: u64,
    /// Summed per-link down seconds (open intervals run to the horizon).
    pub link_downtime_s: f64,
}

impl WanFaultStats {
    /// Renders the stats as a JSON object.
    pub fn to_json(&self) -> String {
        JsonObj::new()
            .int("restarts", self.restarts)
            .int("parked", self.parked)
            .int("still_parked", self.still_parked)
            .num("link_downtime_s", self.link_downtime_s)
            .finish()
    }
}

impl WanReport {
    /// Renders the report as a JSON object.
    pub fn to_json(&self) -> String {
        let mut obj = JsonObj::new()
            .int("transfers", self.transfers)
            .int("delivered", self.delivered)
            .int("payload_bytes", self.payload_bytes)
            .int("link_bytes", self.link_bytes)
            .num("energy_j", self.energy_j)
            .num("mean_transfer_s", self.mean_transfer_s);
        if let Some(f) = &self.faults {
            obj = obj.raw("faults", &f.to_json());
        }
        obj.finish()
    }
}

/// The WAN engine owned by a federation coordinator.
#[derive(Debug)]
pub struct Wan {
    links: Vec<LinkState>,
    /// `paths[src][dst]`: link-id sequence, `None` when unreachable.
    paths: Vec<Vec<Option<Vec<u32>>>>,
    /// Propagation latency (s) per site pair (∞ when unreachable).
    latency_s: Vec<Vec<f64>>,
    /// The static lookahead floor: the smallest site-pair path latency
    /// (exact nanoseconds). `None` when no site can reach another — the
    /// lookahead is then unbounded.
    lookahead: Option<SimDuration>,
    /// Fair-share model over the WAN topology (flow-mode hops only).
    flows: FlowNet,
    transfers: SlotWindow<Transfer>,
    /// Pending hop completions `(instant, transfer key, generation)`;
    /// entries whose generation no longer matches the transfer are
    /// stale (the transfer restarted after a fault) and are dropped.
    heap: BinaryHeap<Reverse<(SimTime, u64, u32)>>,
    /// Scratch for flow completions drained per advance.
    scratch_done: Vec<(u64, SimTime)>,
    /// The site graph as `(a, b, latency)` per link, in link-id order —
    /// kept so paths can recompute against the surviving link set.
    graph: Vec<(u32, u32, SimDuration)>,
    nodes: usize,
    sites: usize,
    /// Links currently failed.
    down_count: u32,
    /// Per-link open down interval start.
    link_down_since: Vec<Option<SimTime>>,
    /// Closed down intervals, seconds.
    link_downtime_s: f64,
    /// Transfer keys waiting at the ingress with no usable path, in
    /// park order; re-launched on recovery in that order.
    parked: Vec<u64>,
    restarts: u64,
    parked_total: u64,
    /// A WAN fault schedule exists: the report grows its fault section.
    fault_armed: bool,
    started: u64,
    delivered: u64,
    payload_bytes: u64,
    link_bytes: u64,
    energy_j: f64,
    latency_sum_s: f64,
}

impl Wan {
    /// Builds the WAN over `sites` gateways (plus `cfg.extra_nodes`
    /// relays), computing deterministic minimum-latency site-to-site
    /// paths.
    ///
    /// # Panics
    ///
    /// Panics on malformed links (self-links, unknown endpoints).
    pub fn build(cfg: &WanConfig, sites: usize) -> Self {
        let nodes = sites + cfg.extra_nodes as usize;
        let mut degree = vec![0u32; nodes];
        for l in &cfg.links {
            assert!(l.a != l.b, "WAN self-link at node {}", l.a);
            assert!(
                l.rate_bps > 0,
                "WAN link {}-{} needs a positive rate",
                l.a,
                l.b
            );
            for n in [l.a, l.b] {
                assert!(
                    (n as usize) < nodes,
                    "WAN link endpoint {n} outside the {nodes}-node WAN"
                );
                degree[n as usize] += 1;
            }
        }
        // A tiny switch-only topology mirroring the WAN graph 1:1 (link
        // ids align with `cfg.links` indices) so flow-mode hops share
        // bandwidth through the regular fair-share solver.
        let mut builder = Topology::builder();
        let node_ids: Vec<NodeId> = degree
            .iter()
            .map(|&d| builder.add_switch(1, d.max(1)))
            .collect();
        let mut links = Vec::with_capacity(cfg.links.len());
        for l in &cfg.links {
            let (a, b) = (node_ids[l.a as usize], node_ids[l.b as usize]);
            let id = builder
                .link(a, b, l.rate_bps, l.latency)
                .expect("validated WAN link");
            debug_assert_eq!(id.0 as usize, links.len());
            links.push(LinkState {
                rate_bps: l.rate_bps,
                latency: l.latency,
                energy_per_byte_j: l.energy_per_byte_j,
                mode: l.mode,
                busy_until: SimTime::ZERO,
                a,
                b,
                down: false,
            });
        }
        let topo = builder.build();
        let flows = FlowNet::with_solver(&topo, cfg.flow_solver);
        let graph: Vec<(u32, u32, SimDuration)> =
            cfg.links.iter().map(|l| (l.a, l.b, l.latency)).collect();
        let (paths, latency_s, lookahead) =
            shortest_paths(&graph, &vec![false; graph.len()], nodes, sites);
        let link_down_since = vec![None; links.len()];
        Wan {
            links,
            paths,
            latency_s,
            lookahead,
            flows,
            transfers: SlotWindow::new(),
            heap: BinaryHeap::new(),
            scratch_done: Vec::new(),
            graph,
            nodes,
            sites,
            down_count: 0,
            link_down_since,
            link_downtime_s: 0.0,
            parked: Vec::new(),
            restarts: 0,
            parked_total: 0,
            fault_armed: false,
            started: 0,
            delivered: 0,
            payload_bytes: 0,
            link_bytes: 0,
            energy_j: 0.0,
            latency_sum_s: 0.0,
        }
    }

    /// Propagation latency (seconds) from `src` to every site (∞ when no
    /// WAN path exists) — the static input of latency-aware dispatch.
    pub fn path_latency_s(&self, src: usize) -> Vec<f64> {
        self.latency_s[src].clone()
    }

    /// The static WAN lookahead floor: the minimum path latency over all
    /// distinct site pairs, in exact nanoseconds. A job sent at `t`
    /// cannot be delivered before `t + lookahead`, so site events
    /// strictly before `earliest event + lookahead` are causally
    /// independent across sites — the conservative-window bound. `None`
    /// when no site pair is connected (sends are then impossible and the
    /// lookahead is unbounded).
    pub fn lookahead(&self) -> Option<SimDuration> {
        self.lookahead
    }

    /// Starts shipping `bytes` (carrying `job`) from site `src` to `dst`.
    /// With fault-failed links in play a currently unreachable pair
    /// parks the transfer at the ingress; it launches when a path comes
    /// back.
    ///
    /// # Panics
    ///
    /// Panics if the sites are unreachable with every link healthy, or
    /// `bytes == 0`.
    pub fn send(&mut self, now: SimTime, src: u32, dst: u32, bytes: u64, job: JobState) {
        assert!(bytes > 0, "WAN transfers carry payload");
        let path = self.paths[src as usize][dst as usize].clone();
        assert!(
            path.is_some() || self.down_count > 0,
            "no WAN path from site {src} to site {dst}"
        );
        let key = self.transfers.insert(Transfer {
            src,
            dst,
            bytes,
            hop: 0,
            started: now,
            path: path.clone().unwrap_or_default(),
            gen: 0,
            job,
        });
        self.started += 1;
        self.payload_bytes += bytes;
        match path {
            Some(_) => self.start_hop(now, key),
            None => {
                self.parked.push(key);
                self.parked_total += 1;
            }
        }
    }

    /// Launches the current hop of transfer `key` at `now`.
    fn start_hop(&mut self, now: SimTime, key: u64) {
        let t = self.transfers.get(key).expect("live transfer");
        let link_id = t.path[t.hop as usize];
        let (bytes, gen) = (t.bytes, t.gen);
        let l = &mut self.links[link_id as usize];
        match l.mode {
            WanLinkMode::Pipe => {
                // FIFO serialization, then propagation.
                let tx = SimDuration::from_secs_f64(bytes as f64 * 8.0 / l.rate_bps as f64);
                l.busy_until = l.busy_until.max(now) + tx;
                let arrive = l.busy_until + l.latency;
                self.heap.push(Reverse((arrive, key, gen)));
            }
            WanLinkMode::Flow => {
                // Fair-shared serialization through the solver; the
                // propagation latency is appended on flow completion.
                self.flows
                    .add_flow(now, FlowId(key), l.a, l.b, &[LinkId(link_id)], bytes);
            }
        }
    }

    /// The instant of the next WAN event (hop completion), if any.
    pub fn next_time(&mut self) -> Option<SimTime> {
        let pipe = self.heap.peek().map(|Reverse((t, ..))| *t);
        let flow = self.flows.next_due();
        match (pipe, flow) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Processes every WAN event due at or before `now`, appending fully
    /// delivered jobs to `deliveries` as `(destination site, job)`.
    pub fn advance(&mut self, now: SimTime, deliveries: &mut Vec<(u32, JobState)>) {
        loop {
            let mut progressed = false;
            // Flow-mode serializations that finished: append propagation.
            if self.flows.next_due().is_some_and(|d| d <= now) {
                self.flows.advance_due(now);
                self.scratch_done.clear();
                for c in self.flows.drain_completed() {
                    self.scratch_done.push((c.id.0, now));
                }
                for &(key, at) in &self.scratch_done {
                    // Flow completions are never stale: a fault severing
                    // this hop would have removed the flow from the
                    // solver before the restart.
                    let t = self.transfers.get(key).expect("live transfer");
                    let link = t.path[t.hop as usize] as usize;
                    self.heap
                        .push(Reverse((at + self.links[link].latency, key, t.gen)));
                }
                progressed = !self.scratch_done.is_empty();
            }
            // Hop completions (pipe arrivals and post-flow propagation).
            while self.heap.peek().is_some_and(|Reverse((t, ..))| *t <= now) {
                let Reverse((at, key, gen)) = self.heap.pop().expect("peeked");
                progressed = true;
                // Drop stale hops: the transfer restarted after a fault
                // (and may have since delivered under its new
                // generation) — this hop's bits died on the failed link.
                let Some(t) = self.transfers.get_mut(key) else {
                    continue;
                };
                if t.gen != gen {
                    continue;
                }
                let path_len = {
                    let link = &self.links[t.path[t.hop as usize] as usize];
                    self.link_bytes += t.bytes;
                    self.energy_j += t.bytes as f64 * link.energy_per_byte_j;
                    t.path.len()
                };
                t.hop += 1;
                if (t.hop as usize) == path_len {
                    let t = self.transfers.remove(key).expect("live transfer");
                    self.delivered += 1;
                    self.latency_sum_s += at.saturating_duration_since(t.started).as_secs_f64();
                    deliveries.push((t.dst, t.job));
                } else {
                    self.start_hop(at, key);
                }
            }
            if !progressed {
                return;
            }
        }
    }

    /// Arms the fault section of the report. Called once by the
    /// federation when the cluster config carries WAN fault events, so
    /// fault-free runs keep their exact report bytes.
    pub fn arm_faults(&mut self) {
        self.fault_armed = true;
    }

    /// Fails (`down == true`) or recovers a WAN link at `now`,
    /// recomputing site paths and the lookahead floor against the
    /// surviving links. On failure, in-flight transfers whose remaining
    /// path crosses the dead link restart from their source (their bits
    /// on the wire are lost); on either transition, parked transfers
    /// that regained a path relaunch in park order. Returns `false` when
    /// the link is unknown or already in the requested state.
    pub fn set_link_down(&mut self, now: SimTime, link: u32, down: bool) -> bool {
        let Some(l) = self.links.get_mut(link as usize) else {
            return false;
        };
        if l.down == down {
            return false;
        }
        l.down = down;
        if down {
            self.down_count += 1;
            self.link_down_since[link as usize] = Some(now);
        } else {
            self.down_count -= 1;
            if let Some(t0) = self.link_down_since[link as usize].take() {
                self.link_downtime_s += now.saturating_duration_since(t0).as_secs_f64();
            }
        }
        let mask: Vec<bool> = self.links.iter().map(|l| l.down).collect();
        let (paths, latency_s, lookahead) =
            shortest_paths(&self.graph, &mask, self.nodes, self.sites);
        self.paths = paths;
        self.latency_s = latency_s;
        self.lookahead = lookahead;
        if down {
            // Restart every transfer crossing the dead link, in key
            // (launch) order. Parked transfers have an empty path and
            // skip naturally.
            let crossing: Vec<u64> = self
                .transfers
                .iter()
                .filter(|(_, t)| t.path[t.hop as usize..].contains(&link))
                .map(|(k, _)| k)
                .collect();
            for key in crossing {
                self.restart_transfer(now, key);
            }
        }
        self.release_parked(now);
        true
    }

    /// Restarts transfer `key` from its source on the current paths:
    /// the hop in progress is severed (its flow leaves the solver, its
    /// pending completion goes stale) and the payload relaunches from
    /// hop zero — or parks when the sites are now disconnected.
    fn restart_transfer(&mut self, now: SimTime, key: u64) {
        self.flows.remove_flow(now, key);
        self.restarts += 1;
        let (src, dst) = {
            let t = self.transfers.get_mut(key).expect("live transfer");
            t.gen += 1;
            t.hop = 0;
            (t.src as usize, t.dst as usize)
        };
        let path = self.paths[src][dst].clone();
        let t = self.transfers.get_mut(key).expect("live transfer");
        match path {
            Some(p) => {
                t.path = p;
                self.start_hop(now, key);
            }
            None => {
                t.path = Vec::new();
                self.parked.push(key);
                self.parked_total += 1;
            }
        }
    }

    /// Relaunches parked transfers that have a path again, in park
    /// order; the rest keep waiting.
    fn release_parked(&mut self, now: SimTime) {
        if self.parked.is_empty() {
            return;
        }
        let mut parked = std::mem::take(&mut self.parked);
        parked.retain(|&key| {
            let (src, dst) = {
                let t = self.transfers.get(key).expect("parked transfer");
                (t.src as usize, t.dst as usize)
            };
            match self.paths[src][dst].clone() {
                Some(p) => {
                    let t = self.transfers.get_mut(key).expect("parked transfer");
                    t.path = p;
                    self.start_hop(now, key);
                    false
                }
                None => true,
            }
        });
        debug_assert!(self.parked.is_empty(), "no parking during release");
        self.parked = parked;
    }

    /// Transfers currently crossing the WAN.
    pub fn in_flight(&self) -> usize {
        self.transfers.len()
    }

    /// Total payload bytes of transfers currently crossing the WAN.
    ///
    /// Sampled by the federation coordinator's WAN metrics probes; O(live
    /// transfers), so only walked on the metrics period.
    pub fn in_flight_bytes(&self) -> u64 {
        self.transfers.iter().map(|(_, t)| t.bytes).sum()
    }

    /// Summed per-link down seconds as of `now` (open intervals
    /// included).
    pub fn link_downtime_s(&self, now: SimTime) -> f64 {
        self.link_down_since
            .iter()
            .flatten()
            .fold(self.link_downtime_s, |acc, &t0| {
                acc + now.saturating_duration_since(t0).as_secs_f64()
            })
    }

    /// The aggregate WAN outcome as of `now` (the horizon when the run
    /// is over; `now` only affects open fault downtime intervals).
    pub fn report(&self, now: SimTime) -> WanReport {
        WanReport {
            transfers: self.started,
            delivered: self.delivered,
            payload_bytes: self.payload_bytes,
            link_bytes: self.link_bytes,
            energy_j: self.energy_j,
            mean_transfer_s: if self.delivered > 0 {
                self.latency_sum_s / self.delivered as f64
            } else {
                0.0
            },
            faults: self.fault_armed.then(|| WanFaultStats {
                restarts: self.restarts,
                parked: self.parked_total,
                still_parked: self.parked.len() as u64,
                link_downtime_s: self.link_downtime_s(now),
            }),
        }
    }
}

/// Deterministic minimum-latency paths between all site pairs over the
/// surviving (`!down`) links (Dijkstra in exact nanoseconds; ties
/// resolved by scan order, so identical configs always yield identical
/// paths).
#[allow(clippy::type_complexity)]
fn shortest_paths(
    graph: &[(u32, u32, SimDuration)],
    down: &[bool],
    nodes: usize,
    sites: usize,
) -> (
    Vec<Vec<Option<Vec<u32>>>>,
    Vec<Vec<f64>>,
    Option<SimDuration>,
) {
    // Adjacency in link-id order.
    let mut adj: Vec<Vec<(usize, u32)>> = vec![Vec::new(); nodes];
    for (i, &(a, b, _)) in graph.iter().enumerate() {
        if down[i] {
            continue;
        }
        adj[a as usize].push((b as usize, i as u32));
        adj[b as usize].push((a as usize, i as u32));
    }
    let mut paths = vec![vec![None; sites]; sites];
    let mut latency_s = vec![vec![f64::INFINITY; sites]; sites];
    // Minimum over distinct reachable site pairs, exact nanos: the
    // federation's static lookahead floor.
    let mut min_pair: Option<u64> = None;
    for src in 0..sites {
        let mut dist = vec![u64::MAX; nodes];
        let mut via: Vec<Option<(usize, u32)>> = vec![None; nodes];
        let mut done = vec![false; nodes];
        dist[src] = 0;
        loop {
            // O(V²) selection: the WAN graph is a handful of nodes.
            let mut u = None;
            for v in 0..nodes {
                if !done[v] && dist[v] < u.map_or(u64::MAX, |(_, d)| d) {
                    u = Some((v, dist[v]));
                }
            }
            let Some((u, du)) = u else { break };
            done[u] = true;
            for &(v, link) in &adj[u] {
                let d = du.saturating_add(graph[link as usize].2.as_nanos());
                if d < dist[v] {
                    dist[v] = d;
                    via[v] = Some((u, link));
                }
            }
        }
        for dst in 0..sites {
            if dst == src {
                paths[src][dst] = Some(Vec::new());
                latency_s[src][dst] = 0.0;
                continue;
            }
            if dist[dst] == u64::MAX {
                continue;
            }
            let mut hops = Vec::new();
            let mut v = dst;
            while v != src {
                let (prev, link) = via[v].expect("reached nodes have predecessors");
                hops.push(link);
                v = prev;
            }
            hops.reverse();
            paths[src][dst] = Some(hops);
            latency_s[src][dst] = dist[dst] as f64 * 1e-9;
            min_pair = Some(min_pair.map_or(dist[dst], |m| m.min(dist[dst])));
        }
    }
    (paths, latency_s, min_pair.map(SimDuration::from_nanos))
}

#[cfg(test)]
mod tests {
    use super::*;
    use holdcsim::config::{WanConfig, WanLink};
    use holdcsim_des::time::SimDuration;
    use holdcsim_workload::dag::TaskSpec;

    fn job() -> JobState {
        let dag = holdcsim_workload::dag::JobDag::builder()
            .task(TaskSpec::compute(SimDuration::from_millis(1)))
            .build()
            .unwrap();
        JobState::new(dag, SimTime::ZERO)
    }

    fn drain(wan: &mut Wan) -> Vec<(SimTime, u32)> {
        let mut out = Vec::new();
        let mut buf = Vec::new();
        while let Some(t) = wan.next_time() {
            buf.clear();
            wan.advance(t, &mut buf);
            out.extend(buf.drain(..).map(|(dst, _)| (t, dst)));
        }
        out
    }

    #[test]
    fn pipe_serializes_fifo_then_propagates() {
        // 1 Gb/s, 10 ms: 1 MB takes 8 ms on the wire.
        let cfg = WanConfig::full_mesh(2, 1_000_000_000, SimDuration::from_millis(10));
        let mut wan = Wan::build(&cfg, 2);
        wan.send(SimTime::ZERO, 0, 1, 1_000_000, job());
        wan.send(SimTime::ZERO, 0, 1, 1_000_000, job());
        let got = drain(&mut wan);
        assert_eq!(
            got,
            vec![(SimTime::from_millis(18), 1), (SimTime::from_millis(26), 1),],
            "second transfer queues behind the first's serialization"
        );
        let r = wan.report(SimTime::ZERO);
        assert_eq!((r.transfers, r.delivered), (2, 2));
        assert!(r.faults.is_none(), "unarmed faults stay out of the report");
        assert_eq!(r.payload_bytes, 2_000_000);
        assert_eq!(r.link_bytes, 2_000_000, "single hop each");
        assert!(r.energy_j > 0.0);
        assert!((r.mean_transfer_s - 0.022).abs() < 1e-9);
    }

    #[test]
    fn hub_paths_pay_two_hops() {
        let cfg = WanConfig::hub(3, 1_000_000_000, SimDuration::from_millis(10));
        let mut wan = Wan::build(&cfg, 3);
        assert!((wan.path_latency_s(0)[2] - 0.020).abs() < 1e-12);
        wan.send(SimTime::ZERO, 0, 2, 1_000_000, job());
        let got = drain(&mut wan);
        // Store-and-forward: (8 + 10) ms per hop.
        assert_eq!(got, vec![(SimTime::from_millis(36), 2)]);
        assert_eq!(
            wan.report(SimTime::ZERO).link_bytes,
            2_000_000,
            "payload crossed twice"
        );
    }

    #[test]
    fn flow_links_share_bandwidth_max_min() {
        let cfg = WanConfig::full_mesh(2, 1_000_000_000, SimDuration::from_millis(10))
            .with_mode(WanLinkMode::Flow);
        let mut wan = Wan::build(&cfg, 2);
        wan.send(SimTime::ZERO, 0, 1, 1_000_000, job());
        wan.send(SimTime::ZERO, 0, 1, 1_000_000, job());
        let got = drain(&mut wan);
        assert_eq!(got.len(), 2);
        // Both share the link at 500 Mb/s: ~16 ms serialization + 10 ms
        // propagation (the solver adds a 1 ns completion guard).
        let t = got[1].0.as_secs_f64();
        assert!((t - 0.026).abs() < 1e-6, "shared completion at {t}");
        // And they finish together (same fair share).
        assert!(got[1].0.saturating_duration_since(got[0].0) <= SimDuration::from_nanos(2));
    }

    #[test]
    fn flow_links_deliver_identically_across_solver_arms() {
        use holdcsim_network::flow::FlowSolverKind;
        // A contended hub WAN (every pair relays through one node) driven
        // through each fair-share solver arm must produce the very same
        // delivery schedule — the cohort arm's virtual-time cells are as
        // selectable for WAN links as for the intra-site fabric.
        let mut results: Vec<Vec<(SimTime, u32)>> = Vec::new();
        for kind in [
            FlowSolverKind::Reference,
            FlowSolverKind::Incremental,
            FlowSolverKind::Cohort,
        ] {
            let mut cfg = WanConfig::hub(3, 1_000_000_000, SimDuration::from_millis(10))
                .with_mode(WanLinkMode::Flow);
            cfg.flow_solver = kind;
            let mut wan = Wan::build(&cfg, 3);
            for (src, dst) in [(0u32, 2u32), (1, 2), (0, 1), (1, 0)] {
                wan.send(SimTime::ZERO, src, dst, 2_000_000, job());
            }
            results.push(drain(&mut wan));
        }
        assert_eq!(results[0], results[1]);
        assert_eq!(results[0], results[2], "cohort arm diverged on the WAN");
        assert_eq!(results[0].len(), 4);
    }

    #[test]
    fn lookahead_is_the_minimum_site_pair_latency() {
        // Hub: every pair pays two 10 ms hops.
        let cfg = WanConfig::hub(3, 1_000_000_000, SimDuration::from_millis(10));
        assert_eq!(
            Wan::build(&cfg, 3).lookahead(),
            Some(SimDuration::from_millis(20))
        );
        // Mesh with one fast pair: the floor is that pair.
        let mut mesh = WanConfig::full_mesh(3, 1_000_000_000, SimDuration::from_millis(10));
        mesh.links[0].latency = SimDuration::from_millis(3);
        assert_eq!(
            Wan::build(&mesh, 3).lookahead(),
            Some(SimDuration::from_millis(3))
        );
        // No links: no reachable pair, unbounded lookahead.
        let empty = WanConfig {
            links: Vec::new(),
            extra_nodes: 0,
            flow_solver: Default::default(),
        };
        assert_eq!(Wan::build(&empty, 2).lookahead(), None);
    }

    #[test]
    fn unreachable_latency_is_infinite() {
        let cfg = WanConfig {
            links: vec![WanLink::new(0, 1, 1_000, SimDuration::from_millis(1))],
            extra_nodes: 0,
            flow_solver: Default::default(),
        };
        let wan = Wan::build(&cfg, 3);
        assert!(wan.path_latency_s(0)[2].is_infinite());
        assert!(wan.path_latency_s(0)[1].is_finite());
    }

    #[test]
    #[should_panic(expected = "no WAN path")]
    fn sending_without_a_path_panics() {
        let cfg = WanConfig {
            links: Vec::new(),
            extra_nodes: 0,
            flow_solver: Default::default(),
        };
        let mut wan = Wan::build(&cfg, 2);
        wan.send(SimTime::ZERO, 0, 1, 1, job());
    }

    #[test]
    fn link_failure_parks_and_recovery_relaunches() {
        // Single 1 Gb/s, 10 ms link: the fault partitions the pair.
        let cfg = WanConfig::full_mesh(2, 1_000_000_000, SimDuration::from_millis(10));
        let mut wan = Wan::build(&cfg, 2);
        wan.arm_faults();
        wan.send(SimTime::ZERO, 0, 1, 1_000_000, job());
        assert!(wan.set_link_down(SimTime::from_millis(4), 0, true));
        assert!(
            !wan.set_link_down(SimTime::from_millis(5), 0, true),
            "double-down is a no-op"
        );
        assert_eq!(wan.lookahead(), None, "partitioned pair has no floor");
        assert_eq!(wan.in_flight(), 1, "parked transfers stay in flight");
        // A send during the partition parks instead of panicking.
        wan.send(SimTime::from_millis(10), 0, 1, 1_000_000, job());
        assert!(wan.set_link_down(SimTime::from_millis(30), 0, false));
        assert_eq!(wan.lookahead(), Some(SimDuration::from_millis(10)));
        let got = drain(&mut wan);
        // Relaunch at 30 ms behind the dead attempt's 8 ms FIFO
        // reservation: arrivals at 48 ms and 56 ms.
        assert_eq!(
            got,
            vec![(SimTime::from_millis(48), 1), (SimTime::from_millis(56), 1)]
        );
        let r = wan.report(SimTime::from_millis(100));
        assert_eq!(r.delivered, 2);
        let f = r.faults.expect("armed");
        assert_eq!((f.restarts, f.parked, f.still_parked), (1, 2, 0));
        assert!(
            (f.link_downtime_s - 0.026).abs() < 1e-9,
            "{}",
            f.link_downtime_s
        );
    }

    #[test]
    fn link_failure_reroutes_over_surviving_mesh() {
        let cfg = WanConfig::full_mesh(3, 1_000_000_000, SimDuration::from_millis(10));
        let mut wan = Wan::build(&cfg, 3);
        wan.arm_faults();
        wan.send(SimTime::ZERO, 0, 1, 1_000_000, job());
        // Kill the direct 0–1 link mid-serialization: the transfer
        // restarts from the source over the 0–2–1 relay.
        let direct = cfg
            .links
            .iter()
            .position(|l| (l.a.min(l.b), l.a.max(l.b)) == (0, 1))
            .expect("mesh has the direct link") as u32;
        assert!(wan.set_link_down(SimTime::from_millis(2), direct, true));
        let got = drain(&mut wan);
        // Restart at 2 ms: hop one arrives at 2+8+10 = 20 ms, hop two at
        // 20+8+10 = 38 ms.
        assert_eq!(got, vec![(SimTime::from_millis(38), 1)]);
        let f = wan.report(SimTime::from_millis(38)).faults.expect("armed");
        assert_eq!((f.restarts, f.parked, f.still_parked), (1, 0, 0));
        assert!(
            (f.link_downtime_s - 0.036).abs() < 1e-9,
            "open interval runs"
        );
    }

    #[test]
    fn mesh_beats_detour() {
        // Direct 0–2 link at 50 ms vs 0–1–2 at 2 × 10 ms: Dijkstra takes
        // the relay route.
        let mut cfg = WanConfig::full_mesh(3, 1_000_000_000, SimDuration::from_millis(10));
        for l in &mut cfg.links {
            if l.a == 0 && l.b == 2 {
                l.latency = SimDuration::from_millis(50);
            }
        }
        let wan = Wan::build(&cfg, 3);
        assert!((wan.path_latency_s(0)[2] - 0.020).abs() < 1e-12);
    }
}
