//! The inter-cluster WAN: forwarded jobs traverse their site-to-site path
//! hop by hop, each hop either a FIFO pipe (serialization + propagation)
//! or a max-min fair-shared flow link driven through the kernel's
//! [`FlowNet`] solver arms — selectable per link via [`WanLinkMode`].

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use holdcsim::config::{WanConfig, WanLinkMode};
use holdcsim::export::JsonObj;
use holdcsim::job::JobState;
use holdcsim_des::slot_window::SlotWindow;
use holdcsim_des::time::{SimDuration, SimTime};
use holdcsim_network::flow::FlowNet;
use holdcsim_network::ids::{FlowId, LinkId, NodeId};
use holdcsim_network::topology::Topology;

/// Per-link runtime state over the configured WAN link.
#[derive(Debug)]
struct LinkState {
    rate_bps: u64,
    latency: SimDuration,
    energy_per_byte_j: f64,
    mode: WanLinkMode,
    /// Pipe mode: when the current FIFO serialization drains.
    busy_until: SimTime,
    /// Endpoints as WAN-topology nodes (for flow admission).
    a: NodeId,
    b: NodeId,
}

/// One forwarded job in flight across the WAN.
#[derive(Debug)]
struct Transfer {
    src: u32,
    dst: u32,
    bytes: u64,
    hop: u32,
    started: SimTime,
    job: JobState,
}

/// Aggregate WAN outcome of a federated run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WanReport {
    /// Transfers started.
    pub transfers: u64,
    /// Transfers fully delivered (in-flight ones at the horizon are cut
    /// off, like arrivals past the horizon).
    pub delivered: u64,
    /// Payload bytes entering the WAN.
    pub payload_bytes: u64,
    /// Bytes moved across links (payload × hops traversed).
    pub link_bytes: u64,
    /// Transport energy charged across all link traversals, joules.
    pub energy_j: f64,
    /// Mean delivered-transfer latency, seconds.
    pub mean_transfer_s: f64,
}

impl WanReport {
    /// Renders the report as a JSON object.
    pub fn to_json(&self) -> String {
        JsonObj::new()
            .int("transfers", self.transfers)
            .int("delivered", self.delivered)
            .int("payload_bytes", self.payload_bytes)
            .int("link_bytes", self.link_bytes)
            .num("energy_j", self.energy_j)
            .num("mean_transfer_s", self.mean_transfer_s)
            .finish()
    }
}

/// The WAN engine owned by a federation coordinator.
#[derive(Debug)]
pub struct Wan {
    links: Vec<LinkState>,
    /// `paths[src][dst]`: link-id sequence, `None` when unreachable.
    paths: Vec<Vec<Option<Vec<u32>>>>,
    /// Propagation latency (s) per site pair (∞ when unreachable).
    latency_s: Vec<Vec<f64>>,
    /// The static lookahead floor: the smallest site-pair path latency
    /// (exact nanoseconds). `None` when no site can reach another — the
    /// lookahead is then unbounded.
    lookahead: Option<SimDuration>,
    /// Fair-share model over the WAN topology (flow-mode hops only).
    flows: FlowNet,
    transfers: SlotWindow<Transfer>,
    /// Pending hop completions `(instant, transfer key)`.
    heap: BinaryHeap<Reverse<(SimTime, u64)>>,
    /// Scratch for flow completions drained per advance.
    scratch_done: Vec<(u64, SimTime)>,
    started: u64,
    delivered: u64,
    payload_bytes: u64,
    link_bytes: u64,
    energy_j: f64,
    latency_sum_s: f64,
}

impl Wan {
    /// Builds the WAN over `sites` gateways (plus `cfg.extra_nodes`
    /// relays), computing deterministic minimum-latency site-to-site
    /// paths.
    ///
    /// # Panics
    ///
    /// Panics on malformed links (self-links, unknown endpoints).
    pub fn build(cfg: &WanConfig, sites: usize) -> Self {
        let nodes = sites + cfg.extra_nodes as usize;
        let mut degree = vec![0u32; nodes];
        for l in &cfg.links {
            assert!(l.a != l.b, "WAN self-link at node {}", l.a);
            assert!(
                l.rate_bps > 0,
                "WAN link {}-{} needs a positive rate",
                l.a,
                l.b
            );
            for n in [l.a, l.b] {
                assert!(
                    (n as usize) < nodes,
                    "WAN link endpoint {n} outside the {nodes}-node WAN"
                );
                degree[n as usize] += 1;
            }
        }
        // A tiny switch-only topology mirroring the WAN graph 1:1 (link
        // ids align with `cfg.links` indices) so flow-mode hops share
        // bandwidth through the regular fair-share solver.
        let mut builder = Topology::builder();
        let node_ids: Vec<NodeId> = degree
            .iter()
            .map(|&d| builder.add_switch(1, d.max(1)))
            .collect();
        let mut links = Vec::with_capacity(cfg.links.len());
        for l in &cfg.links {
            let (a, b) = (node_ids[l.a as usize], node_ids[l.b as usize]);
            let id = builder
                .link(a, b, l.rate_bps, l.latency)
                .expect("validated WAN link");
            debug_assert_eq!(id.0 as usize, links.len());
            links.push(LinkState {
                rate_bps: l.rate_bps,
                latency: l.latency,
                energy_per_byte_j: l.energy_per_byte_j,
                mode: l.mode,
                busy_until: SimTime::ZERO,
                a,
                b,
            });
        }
        let topo = builder.build();
        let flows = FlowNet::with_solver(&topo, cfg.flow_solver);
        let (paths, latency_s, lookahead) = shortest_paths(cfg, nodes, sites);
        Wan {
            links,
            paths,
            latency_s,
            lookahead,
            flows,
            transfers: SlotWindow::new(),
            heap: BinaryHeap::new(),
            scratch_done: Vec::new(),
            started: 0,
            delivered: 0,
            payload_bytes: 0,
            link_bytes: 0,
            energy_j: 0.0,
            latency_sum_s: 0.0,
        }
    }

    /// Propagation latency (seconds) from `src` to every site (∞ when no
    /// WAN path exists) — the static input of latency-aware dispatch.
    pub fn path_latency_s(&self, src: usize) -> Vec<f64> {
        self.latency_s[src].clone()
    }

    /// The static WAN lookahead floor: the minimum path latency over all
    /// distinct site pairs, in exact nanoseconds. A job sent at `t`
    /// cannot be delivered before `t + lookahead`, so site events
    /// strictly before `earliest event + lookahead` are causally
    /// independent across sites — the conservative-window bound. `None`
    /// when no site pair is connected (sends are then impossible and the
    /// lookahead is unbounded).
    pub fn lookahead(&self) -> Option<SimDuration> {
        self.lookahead
    }

    /// Starts shipping `bytes` (carrying `job`) from site `src` to `dst`.
    ///
    /// # Panics
    ///
    /// Panics if no WAN path connects the sites or `bytes == 0`.
    pub fn send(&mut self, now: SimTime, src: u32, dst: u32, bytes: u64, job: JobState) {
        assert!(bytes > 0, "WAN transfers carry payload");
        assert!(
            self.paths[src as usize][dst as usize].is_some(),
            "no WAN path from site {src} to site {dst}"
        );
        let key = self.transfers.insert(Transfer {
            src,
            dst,
            bytes,
            hop: 0,
            started: now,
            job,
        });
        self.started += 1;
        self.payload_bytes += bytes;
        self.start_hop(now, key);
    }

    /// Launches the current hop of transfer `key` at `now`.
    fn start_hop(&mut self, now: SimTime, key: u64) {
        let t = self.transfers.get(key).expect("live transfer");
        let path = self.paths[t.src as usize][t.dst as usize]
            .as_ref()
            .expect("checked at send");
        let link_id = path[t.hop as usize];
        let bytes = t.bytes;
        let l = &mut self.links[link_id as usize];
        match l.mode {
            WanLinkMode::Pipe => {
                // FIFO serialization, then propagation.
                let tx = SimDuration::from_secs_f64(bytes as f64 * 8.0 / l.rate_bps as f64);
                l.busy_until = l.busy_until.max(now) + tx;
                let arrive = l.busy_until + l.latency;
                self.heap.push(Reverse((arrive, key)));
            }
            WanLinkMode::Flow => {
                // Fair-shared serialization through the solver; the
                // propagation latency is appended on flow completion.
                self.flows
                    .add_flow(now, FlowId(key), l.a, l.b, &[LinkId(link_id)], bytes);
            }
        }
    }

    /// The instant of the next WAN event (hop completion), if any.
    pub fn next_time(&mut self) -> Option<SimTime> {
        let pipe = self.heap.peek().map(|Reverse((t, _))| *t);
        let flow = self.flows.next_due();
        match (pipe, flow) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Processes every WAN event due at or before `now`, appending fully
    /// delivered jobs to `deliveries` as `(destination site, job)`.
    pub fn advance(&mut self, now: SimTime, deliveries: &mut Vec<(u32, JobState)>) {
        loop {
            let mut progressed = false;
            // Flow-mode serializations that finished: append propagation.
            if self.flows.next_due().is_some_and(|d| d <= now) {
                self.flows.advance_due(now);
                self.scratch_done.clear();
                for c in self.flows.drain_completed() {
                    self.scratch_done.push((c.id.0, now));
                }
                for &(key, at) in &self.scratch_done {
                    let t = self.transfers.get(key).expect("live transfer");
                    let path = self.paths[t.src as usize][t.dst as usize]
                        .as_ref()
                        .expect("checked at send");
                    let link = path[t.hop as usize] as usize;
                    self.heap
                        .push(Reverse((at + self.links[link].latency, key)));
                }
                progressed = !self.scratch_done.is_empty();
            }
            // Hop completions (pipe arrivals and post-flow propagation).
            while self.heap.peek().is_some_and(|Reverse((t, _))| *t <= now) {
                let Reverse((at, key)) = self.heap.pop().expect("peeked");
                progressed = true;
                let t = self.transfers.get_mut(key).expect("live transfer");
                let path_len = {
                    let path = self.paths[t.src as usize][t.dst as usize]
                        .as_ref()
                        .expect("checked at send");
                    let link = &self.links[path[t.hop as usize] as usize];
                    self.link_bytes += t.bytes;
                    self.energy_j += t.bytes as f64 * link.energy_per_byte_j;
                    path.len()
                };
                t.hop += 1;
                if (t.hop as usize) == path_len {
                    let t = self.transfers.remove(key).expect("live transfer");
                    self.delivered += 1;
                    self.latency_sum_s += at.saturating_duration_since(t.started).as_secs_f64();
                    deliveries.push((t.dst, t.job));
                } else {
                    self.start_hop(at, key);
                }
            }
            if !progressed {
                return;
            }
        }
    }

    /// Transfers currently crossing the WAN.
    pub fn in_flight(&self) -> usize {
        self.transfers.len()
    }

    /// Total payload bytes of transfers currently crossing the WAN.
    ///
    /// Sampled by the federation coordinator's WAN metrics probes; O(live
    /// transfers), so only walked on the metrics period.
    pub fn in_flight_bytes(&self) -> u64 {
        self.transfers.iter().map(|(_, t)| t.bytes).sum()
    }

    /// The aggregate WAN outcome so far.
    pub fn report(&self) -> WanReport {
        WanReport {
            transfers: self.started,
            delivered: self.delivered,
            payload_bytes: self.payload_bytes,
            link_bytes: self.link_bytes,
            energy_j: self.energy_j,
            mean_transfer_s: if self.delivered > 0 {
                self.latency_sum_s / self.delivered as f64
            } else {
                0.0
            },
        }
    }
}

/// Deterministic minimum-latency paths between all site pairs (Dijkstra
/// in exact nanoseconds; ties resolved by scan order, so identical
/// configs always yield identical paths).
#[allow(clippy::type_complexity)]
fn shortest_paths(
    cfg: &WanConfig,
    nodes: usize,
    sites: usize,
) -> (
    Vec<Vec<Option<Vec<u32>>>>,
    Vec<Vec<f64>>,
    Option<SimDuration>,
) {
    // Adjacency in link-id order.
    let mut adj: Vec<Vec<(usize, u32)>> = vec![Vec::new(); nodes];
    for (i, l) in cfg.links.iter().enumerate() {
        adj[l.a as usize].push((l.b as usize, i as u32));
        adj[l.b as usize].push((l.a as usize, i as u32));
    }
    let mut paths = vec![vec![None; sites]; sites];
    let mut latency_s = vec![vec![f64::INFINITY; sites]; sites];
    // Minimum over distinct reachable site pairs, exact nanos: the
    // federation's static lookahead floor.
    let mut min_pair: Option<u64> = None;
    for src in 0..sites {
        let mut dist = vec![u64::MAX; nodes];
        let mut via: Vec<Option<(usize, u32)>> = vec![None; nodes];
        let mut done = vec![false; nodes];
        dist[src] = 0;
        loop {
            // O(V²) selection: the WAN graph is a handful of nodes.
            let mut u = None;
            for v in 0..nodes {
                if !done[v] && dist[v] < u.map_or(u64::MAX, |(_, d)| d) {
                    u = Some((v, dist[v]));
                }
            }
            let Some((u, du)) = u else { break };
            done[u] = true;
            for &(v, link) in &adj[u] {
                let d = du.saturating_add(cfg.links[link as usize].latency.as_nanos());
                if d < dist[v] {
                    dist[v] = d;
                    via[v] = Some((u, link));
                }
            }
        }
        for dst in 0..sites {
            if dst == src {
                paths[src][dst] = Some(Vec::new());
                latency_s[src][dst] = 0.0;
                continue;
            }
            if dist[dst] == u64::MAX {
                continue;
            }
            let mut hops = Vec::new();
            let mut v = dst;
            while v != src {
                let (prev, link) = via[v].expect("reached nodes have predecessors");
                hops.push(link);
                v = prev;
            }
            hops.reverse();
            paths[src][dst] = Some(hops);
            latency_s[src][dst] = dist[dst] as f64 * 1e-9;
            min_pair = Some(min_pair.map_or(dist[dst], |m| m.min(dist[dst])));
        }
    }
    (paths, latency_s, min_pair.map(SimDuration::from_nanos))
}

#[cfg(test)]
mod tests {
    use super::*;
    use holdcsim::config::{WanConfig, WanLink};
    use holdcsim_des::time::SimDuration;
    use holdcsim_workload::dag::TaskSpec;

    fn job() -> JobState {
        let dag = holdcsim_workload::dag::JobDag::builder()
            .task(TaskSpec::compute(SimDuration::from_millis(1)))
            .build()
            .unwrap();
        JobState::new(dag, SimTime::ZERO)
    }

    fn drain(wan: &mut Wan) -> Vec<(SimTime, u32)> {
        let mut out = Vec::new();
        let mut buf = Vec::new();
        while let Some(t) = wan.next_time() {
            buf.clear();
            wan.advance(t, &mut buf);
            out.extend(buf.drain(..).map(|(dst, _)| (t, dst)));
        }
        out
    }

    #[test]
    fn pipe_serializes_fifo_then_propagates() {
        // 1 Gb/s, 10 ms: 1 MB takes 8 ms on the wire.
        let cfg = WanConfig::full_mesh(2, 1_000_000_000, SimDuration::from_millis(10));
        let mut wan = Wan::build(&cfg, 2);
        wan.send(SimTime::ZERO, 0, 1, 1_000_000, job());
        wan.send(SimTime::ZERO, 0, 1, 1_000_000, job());
        let got = drain(&mut wan);
        assert_eq!(
            got,
            vec![(SimTime::from_millis(18), 1), (SimTime::from_millis(26), 1),],
            "second transfer queues behind the first's serialization"
        );
        let r = wan.report();
        assert_eq!((r.transfers, r.delivered), (2, 2));
        assert_eq!(r.payload_bytes, 2_000_000);
        assert_eq!(r.link_bytes, 2_000_000, "single hop each");
        assert!(r.energy_j > 0.0);
        assert!((r.mean_transfer_s - 0.022).abs() < 1e-9);
    }

    #[test]
    fn hub_paths_pay_two_hops() {
        let cfg = WanConfig::hub(3, 1_000_000_000, SimDuration::from_millis(10));
        let mut wan = Wan::build(&cfg, 3);
        assert!((wan.path_latency_s(0)[2] - 0.020).abs() < 1e-12);
        wan.send(SimTime::ZERO, 0, 2, 1_000_000, job());
        let got = drain(&mut wan);
        // Store-and-forward: (8 + 10) ms per hop.
        assert_eq!(got, vec![(SimTime::from_millis(36), 2)]);
        assert_eq!(wan.report().link_bytes, 2_000_000, "payload crossed twice");
    }

    #[test]
    fn flow_links_share_bandwidth_max_min() {
        let cfg = WanConfig::full_mesh(2, 1_000_000_000, SimDuration::from_millis(10))
            .with_mode(WanLinkMode::Flow);
        let mut wan = Wan::build(&cfg, 2);
        wan.send(SimTime::ZERO, 0, 1, 1_000_000, job());
        wan.send(SimTime::ZERO, 0, 1, 1_000_000, job());
        let got = drain(&mut wan);
        assert_eq!(got.len(), 2);
        // Both share the link at 500 Mb/s: ~16 ms serialization + 10 ms
        // propagation (the solver adds a 1 ns completion guard).
        let t = got[1].0.as_secs_f64();
        assert!((t - 0.026).abs() < 1e-6, "shared completion at {t}");
        // And they finish together (same fair share).
        assert!(got[1].0.saturating_duration_since(got[0].0) <= SimDuration::from_nanos(2));
    }

    #[test]
    fn flow_links_deliver_identically_across_solver_arms() {
        use holdcsim_network::flow::FlowSolverKind;
        // A contended hub WAN (every pair relays through one node) driven
        // through each fair-share solver arm must produce the very same
        // delivery schedule — the cohort arm's virtual-time cells are as
        // selectable for WAN links as for the intra-site fabric.
        let mut results: Vec<Vec<(SimTime, u32)>> = Vec::new();
        for kind in [
            FlowSolverKind::Reference,
            FlowSolverKind::Incremental,
            FlowSolverKind::Cohort,
        ] {
            let mut cfg = WanConfig::hub(3, 1_000_000_000, SimDuration::from_millis(10))
                .with_mode(WanLinkMode::Flow);
            cfg.flow_solver = kind;
            let mut wan = Wan::build(&cfg, 3);
            for (src, dst) in [(0u32, 2u32), (1, 2), (0, 1), (1, 0)] {
                wan.send(SimTime::ZERO, src, dst, 2_000_000, job());
            }
            results.push(drain(&mut wan));
        }
        assert_eq!(results[0], results[1]);
        assert_eq!(results[0], results[2], "cohort arm diverged on the WAN");
        assert_eq!(results[0].len(), 4);
    }

    #[test]
    fn lookahead_is_the_minimum_site_pair_latency() {
        // Hub: every pair pays two 10 ms hops.
        let cfg = WanConfig::hub(3, 1_000_000_000, SimDuration::from_millis(10));
        assert_eq!(
            Wan::build(&cfg, 3).lookahead(),
            Some(SimDuration::from_millis(20))
        );
        // Mesh with one fast pair: the floor is that pair.
        let mut mesh = WanConfig::full_mesh(3, 1_000_000_000, SimDuration::from_millis(10));
        mesh.links[0].latency = SimDuration::from_millis(3);
        assert_eq!(
            Wan::build(&mesh, 3).lookahead(),
            Some(SimDuration::from_millis(3))
        );
        // No links: no reachable pair, unbounded lookahead.
        let empty = WanConfig {
            links: Vec::new(),
            extra_nodes: 0,
            flow_solver: Default::default(),
        };
        assert_eq!(Wan::build(&empty, 2).lookahead(), None);
    }

    #[test]
    fn unreachable_latency_is_infinite() {
        let cfg = WanConfig {
            links: vec![WanLink::new(0, 1, 1_000, SimDuration::from_millis(1))],
            extra_nodes: 0,
            flow_solver: Default::default(),
        };
        let wan = Wan::build(&cfg, 3);
        assert!(wan.path_latency_s(0)[2].is_infinite());
        assert!(wan.path_latency_s(0)[1].is_finite());
    }

    #[test]
    #[should_panic(expected = "no WAN path")]
    fn sending_without_a_path_panics() {
        let cfg = WanConfig {
            links: Vec::new(),
            extra_nodes: 0,
            flow_solver: Default::default(),
        };
        let mut wan = Wan::build(&cfg, 2);
        wan.send(SimTime::ZERO, 0, 1, 1, job());
    }

    #[test]
    fn mesh_beats_detour() {
        // Direct 0–2 link at 50 ms vs 0–1–2 at 2 × 10 ms: Dijkstra takes
        // the relay route.
        let mut cfg = WanConfig::full_mesh(3, 1_000_000_000, SimDuration::from_millis(10));
        for l in &mut cfg.links {
            if l.a == 0 && l.b == 2 {
                l.latency = SimDuration::from_millis(50);
            }
        }
        let wan = Wan::build(&cfg, 3);
        assert!((wan.path_latency_s(0)[2] - 0.020).abs() < 1e-12);
    }
}
