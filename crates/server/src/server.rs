//! The multi-core server model (§III-A): local task queues, per-core
//! execution with DVFS scaling, hierarchical sleep states, delay timers,
//! and CPU/DRAM/platform energy accounting.
//!
//! A [`Server`] is a passive state machine: the simulation driver calls it
//! with the current time and a reusable [`EffectBuf`], then schedules the
//! [`Effect`]s left in the buffer. This keeps the model engine-agnostic,
//! directly unit-testable, and allocation-free on the per-event hot path.

use std::collections::VecDeque;

use holdcsim_des::stats::{Residency, TimeWeighted};
use holdcsim_des::time::{SimDuration, SimTime};
use holdcsim_power::server_profile::ServerPowerProfile;
use holdcsim_power::states::{CoreCState, SystemState};
use holdcsim_workload::ids::TaskId;

use crate::policy::{DeepState, IdleDescent, SleepPolicy};
use crate::task::TaskHandle;

/// Identifies one server in the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ServerId(pub u32);

impl std::fmt::Display for ServerId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "srv{}", self.0)
    }
}

/// How the local scheduler queues tasks (§III-A, \[37\]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LocalQueueMode {
    /// One shared FIFO; any free core pulls the head.
    Unified,
    /// One FIFO per core; arrivals join the shortest queue and never migrate.
    PerCore,
}

/// The server's operating mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerMode {
    /// At least one core executing (S0).
    Active,
    /// S0, no work, cores halted in C1 — fully responsive.
    Idle,
    /// Package C6: cores and uncore gated, sub-millisecond wake.
    ShallowSleep,
    /// Deep sleep in the given ACPI system state (S3/S5).
    DeepSleep(SystemState),
    /// Entering deep sleep (cannot be aborted mid-flight).
    Suspending(SystemState),
    /// Waking from deep sleep.
    Resuming,
}

impl ServerMode {
    /// `true` in any state that can accept a dispatch without a system-level
    /// transition.
    pub fn is_awake(self) -> bool {
        matches!(
            self,
            ServerMode::Active | ServerMode::Idle | ServerMode::ShallowSleep
        )
    }

    /// The residency band this mode accounts under (Fig. 8's five bands).
    pub fn band(self) -> Band {
        match self {
            ServerMode::Active => Band::Active,
            ServerMode::Idle => Band::Idle,
            ServerMode::ShallowSleep => Band::ShallowSleep,
            ServerMode::DeepSleep(_) => Band::DeepSleep,
            ServerMode::Suspending(_) | ServerMode::Resuming => Band::Transition,
        }
    }
}

/// Residency bands reported by the paper's Fig. 8: Active, Wake-up
/// (transitions), Idle, Pkg C6, and System Sleep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Band {
    /// Executing tasks.
    Active,
    /// Suspend/resume transitions ("Wake-up" in the paper's figure).
    Transition,
    /// Responsive idle.
    Idle,
    /// Package C6 shallow sleep.
    ShallowSleep,
    /// System sleep (S3/S5).
    DeepSleep,
}

/// What the simulation driver must do after a server call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Effect {
    /// A task began executing on `core`; schedule its completion.
    TaskStarted {
        /// Core index.
        core: u32,
        /// The task that started.
        id: TaskId,
        /// Time until completion (includes any wake padding).
        completes_in: SimDuration,
    },
    /// Arm the idle delay timer; deliver `timer_fired(gen)` after `after`.
    ArmTimer {
        /// Delay until the timer fires.
        after: SimDuration,
        /// Generation to echo back (stale generations are ignored).
        gen: u64,
    },
    /// A suspend/resume transition began; deliver `transition_done` after
    /// `after`.
    TransitionDoneIn {
        /// Transition latency.
        after: SimDuration,
    },
}

/// Inline capacity of an [`EffectBuf`]: covers a full dispatch burst on a
/// typical server (one `TaskStarted` per core) without touching the heap.
const INLINE_EFFECTS: usize = 8;

/// Placeholder for unused inline slots (never observable).
const NO_EFFECT: Effect = Effect::TransitionDoneIn {
    after: SimDuration::ZERO,
};

/// A reusable buffer of [`Effect`]s: a hand-rolled inline array that spills
/// to the heap only on bursts larger than the 8-effect inline capacity.
///
/// The driving loop owns one buffer and passes it to every server call, so
/// the per-event hot path performs no allocation. Server methods clear the
/// buffer on entry; the caller reads [`as_slice`](Self::as_slice) (or
/// derefs — the buffer derefs to `[Effect]`) afterwards.
///
/// # Examples
///
/// ```
/// use holdcsim_server::server::{Effect, EffectBuf};
/// use holdcsim_des::time::SimDuration;
///
/// let mut buf = EffectBuf::new();
/// buf.push(Effect::TransitionDoneIn { after: SimDuration::from_millis(1) });
/// assert_eq!(buf.len(), 1);
/// assert!(matches!(buf[0], Effect::TransitionDoneIn { .. }));
/// buf.clear();
/// assert!(buf.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct EffectBuf {
    /// Occupied inline slots (0 once spilled).
    len: usize,
    inline: [Effect; INLINE_EFFECTS],
    /// Overflow storage; when non-empty it holds *all* effects in order.
    spill: Vec<Effect>,
}

impl Default for EffectBuf {
    fn default() -> Self {
        Self::new()
    }
}

impl EffectBuf {
    /// Creates an empty buffer (no heap allocation).
    pub fn new() -> Self {
        EffectBuf {
            len: 0,
            inline: [NO_EFFECT; INLINE_EFFECTS],
            spill: Vec::new(),
        }
    }

    /// Empties the buffer, keeping any spill capacity for reuse.
    pub fn clear(&mut self) {
        self.len = 0;
        self.spill.clear();
    }

    /// Appends an effect.
    pub fn push(&mut self, e: Effect) {
        if !self.spill.is_empty() {
            self.spill.push(e);
        } else if self.len < INLINE_EFFECTS {
            self.inline[self.len] = e;
            self.len += 1;
        } else {
            // First overflow: move the inline prefix so `spill` holds all.
            self.spill.extend_from_slice(&self.inline[..self.len]);
            self.spill.push(e);
            self.len = 0;
        }
    }

    /// The buffered effects in push order.
    pub fn as_slice(&self) -> &[Effect] {
        if self.spill.is_empty() {
            &self.inline[..self.len]
        } else {
            &self.spill
        }
    }
}

impl std::ops::Deref for EffectBuf {
    type Target = [Effect];

    fn deref(&self) -> &[Effect] {
        self.as_slice()
    }
}

/// Configuration for one server.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Number of cores.
    pub cores: u32,
    /// Power profile.
    pub profile: ServerPowerProfile,
    /// Local queueing discipline.
    pub queue_mode: LocalQueueMode,
    /// Sleep policy.
    pub policy: SleepPolicy,
    /// Initial P-state index into `profile.pstates` (defaults to nominal).
    pub pstate: usize,
    /// Per-core speed factors for heterogeneous processors (Table I's
    /// "heterogeneous architecture" row): empty means homogeneous 1.0.
    /// A factor of 0.5 halves a core's execution speed; busy power scales
    /// quadratically with the factor (frequency·voltage² heuristic).
    pub core_speeds: Vec<f64>,
    /// Number of processor sockets (Table I's "multiple sockets" row);
    /// cores are split evenly across sockets, each with its own uncore.
    /// While the server is active, a socket whose cores are all idle drops
    /// its uncore into the shallow package sleep (PC2) autonomously.
    pub sockets: u32,
}

impl ServerConfig {
    /// A `cores`-core server with the Xeon E5-2680 profile, unified queue,
    /// Active-Idle policy, nominal frequency.
    pub fn new(cores: u32) -> Self {
        let profile = ServerPowerProfile::xeon_e5_2680();
        let pstate = profile.pstates.len() - 1;
        ServerConfig {
            cores,
            profile,
            queue_mode: LocalQueueMode::Unified,
            policy: SleepPolicy::active_idle(),
            pstate,
            core_speeds: Vec::new(),
            sockets: 1,
        }
    }

    /// Splits the cores over `sockets` processor packages.
    ///
    /// # Panics
    ///
    /// Panics if `sockets` is zero or does not divide the core count.
    pub fn with_sockets(mut self, sockets: u32) -> Self {
        assert!(sockets > 0, "need at least one socket");
        assert_eq!(
            self.cores % sockets,
            0,
            "cores must split evenly over sockets"
        );
        self.sockets = sockets;
        self
    }

    /// Makes the processor heterogeneous: `speeds[i]` scales core `i`'s
    /// execution speed (big.LITTLE-style).
    ///
    /// # Panics
    ///
    /// Panics if the length does not match `cores` or a factor is not
    /// strictly positive.
    pub fn with_core_speeds(mut self, speeds: Vec<f64>) -> Self {
        assert_eq!(speeds.len(), self.cores as usize, "one speed per core");
        assert!(
            speeds.iter().all(|&s| s > 0.0),
            "core speeds must be positive"
        );
        self.core_speeds = speeds;
        self
    }

    /// Replaces the sleep policy.
    pub fn with_policy(mut self, policy: SleepPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Replaces the queue mode.
    pub fn with_queue_mode(mut self, mode: LocalQueueMode) -> Self {
        self.queue_mode = mode;
        self
    }
}

#[derive(Debug)]
enum LocalQueues {
    Unified(VecDeque<TaskHandle>),
    PerCore(Vec<VecDeque<TaskHandle>>),
}

impl LocalQueues {
    fn len(&self) -> usize {
        match self {
            LocalQueues::Unified(q) => q.len(),
            LocalQueues::PerCore(qs) => qs.iter().map(|q| q.len()).sum(),
        }
    }

    fn push(&mut self, task: TaskHandle) {
        match self {
            LocalQueues::Unified(q) => q.push_back(task),
            LocalQueues::PerCore(qs) => {
                let (shortest, _) = qs
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, q)| q.len())
                    .expect("server has at least one core");
                qs[shortest].push_back(task);
            }
        }
    }

    fn pop_for(&mut self, core: u32) -> Option<TaskHandle> {
        match self {
            LocalQueues::Unified(q) => q.pop_front(),
            LocalQueues::PerCore(qs) => qs[core as usize].pop_front(),
        }
    }
}

/// The server model. See the [module docs](self) for the driving contract.
///
/// # Examples
///
/// ```
/// use holdcsim_server::server::{Effect, EffectBuf, Server, ServerConfig, ServerId, ServerMode};
/// use holdcsim_server::task::TaskHandle;
/// use holdcsim_des::time::{SimDuration, SimTime};
/// use holdcsim_workload::ids::{JobId, TaskId};
///
/// let mut s = Server::new(SimTime::ZERO, ServerId(0), ServerConfig::new(4));
/// let task = TaskHandle::new(TaskId::new(JobId(1), 0), SimDuration::from_millis(5));
/// let mut effects = EffectBuf::new();
/// s.submit(SimTime::ZERO, task, &mut effects);
/// assert!(matches!(effects[0], Effect::TaskStarted { core: 0, .. }));
/// assert_eq!(s.mode(), ServerMode::Active);
/// ```
#[derive(Debug)]
pub struct Server {
    id: ServerId,
    cfg: ServerConfig,
    mode: ServerMode,
    running: Vec<Option<TaskHandle>>,
    /// Core indices in dispatch preference order (fastest first).
    dispatch_order: Vec<u32>,
    queues: LocalQueues,
    timer_gen: u64,
    wake_after_suspend: bool,
    /// Fault-injection speed factor (straggler model): scales execution
    /// speed of subsequently started tasks; 1.0 means nominal.
    fault_speed: f64,
    // --- accounting ---
    residency: Residency<Band>,
    busy_cores_tw: TimeWeighted,
    queue_len_tw: TimeWeighted,
    cores_w: TimeWeighted,
    pkg_w: TimeWeighted,
    dram_w: TimeWeighted,
    platform_w: TimeWeighted,
    tasks_completed: u64,
    deep_sleeps: u64,
    resumes: u64,
}

impl Server {
    /// Creates a server at `now`, idle and fully responsive.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.cores == 0` or the profile has no P-states.
    pub fn new(now: SimTime, id: ServerId, cfg: ServerConfig) -> Self {
        assert!(cfg.cores > 0, "server needs at least one core");
        assert!(!cfg.profile.pstates.is_empty(), "profile has no P-states");
        assert!(
            cfg.core_speeds.is_empty() || cfg.core_speeds.len() == cfg.cores as usize,
            "core_speeds must be empty or one per core"
        );
        assert!(
            cfg.sockets > 0 && cfg.cores.is_multiple_of(cfg.sockets),
            "cores must split evenly over sockets"
        );
        // Prefer faster cores; stable by index among equals.
        let mut dispatch_order: Vec<u32> = (0..cfg.cores).collect();
        if !cfg.core_speeds.is_empty() {
            dispatch_order.sort_by(|&a, &b| {
                cfg.core_speeds[b as usize]
                    .partial_cmp(&cfg.core_speeds[a as usize])
                    .expect("finite speeds")
                    .then(a.cmp(&b))
            });
        }
        let queues = match cfg.queue_mode {
            LocalQueueMode::Unified => LocalQueues::Unified(VecDeque::new()),
            LocalQueueMode::PerCore => {
                LocalQueues::PerCore(vec![VecDeque::new(); cfg.cores as usize])
            }
        };
        let mode = match cfg.policy.idle_descent {
            IdleDescent::StayIdle => ServerMode::Idle,
            IdleDescent::ShallowSleep => ServerMode::ShallowSleep,
        };
        let mut s = Server {
            id,
            running: vec![None; cfg.cores as usize],
            dispatch_order,
            queues,
            mode,
            timer_gen: 0,
            wake_after_suspend: false,
            fault_speed: 1.0,
            residency: Residency::new(now, mode.band()),
            busy_cores_tw: TimeWeighted::new(now, 0.0),
            queue_len_tw: TimeWeighted::new(now, 0.0),
            cores_w: TimeWeighted::new(now, 0.0),
            pkg_w: TimeWeighted::new(now, 0.0),
            dram_w: TimeWeighted::new(now, 0.0),
            platform_w: TimeWeighted::new(now, 0.0),
            tasks_completed: 0,
            deep_sleeps: 0,
            resumes: 0,
            cfg,
        };
        s.refresh_power(now);
        s
    }

    // ------------------------------------------------------------------
    // Observers
    // ------------------------------------------------------------------

    /// This server's id.
    pub fn id(&self) -> ServerId {
        self.id
    }

    /// Current operating mode.
    pub fn mode(&self) -> ServerMode {
        self.mode
    }

    /// Number of cores currently executing tasks.
    pub fn busy_cores(&self) -> u32 {
        self.running.iter().filter(|r| r.is_some()).count() as u32
    }

    /// Total cores.
    pub fn core_count(&self) -> u32 {
        self.cfg.cores
    }

    /// Tasks waiting in local queues (excludes running).
    pub fn queue_len(&self) -> usize {
        self.queues.len()
    }

    /// Queued plus running tasks — the "pending jobs" load signal the
    /// paper's controllers monitor.
    pub fn pending(&self) -> usize {
        self.queue_len() + self.busy_cores() as usize
    }

    /// `true` if a dispatch right now needs no system-level transition.
    pub fn is_awake(&self) -> bool {
        self.mode.is_awake()
    }

    /// Total tasks completed.
    pub fn tasks_completed(&self) -> u64 {
        self.tasks_completed
    }

    /// `(deep sleeps entered, resumes)` counters.
    pub fn sleep_counts(&self) -> (u64, u64) {
        (self.deep_sleeps, self.resumes)
    }

    /// The active sleep policy.
    pub fn policy(&self) -> SleepPolicy {
        self.cfg.policy
    }

    /// The current P-state index.
    pub fn pstate(&self) -> usize {
        self.cfg.pstate
    }

    /// Number of P-states in the profile.
    pub fn pstate_count(&self) -> usize {
        self.cfg.profile.pstates.len()
    }

    /// Residency accounting over Fig. 8's five bands.
    pub fn residency(&self) -> &Residency<Band> {
        &self.residency
    }

    /// Mean busy cores over time / total cores — the server's utilization.
    pub fn utilization(&self, now: SimTime) -> f64 {
        self.busy_cores_tw.time_average(now) / self.cfg.cores as f64
    }

    /// Time-averaged local queue length.
    pub fn mean_queue_len(&self, now: SimTime) -> f64 {
        self.queue_len_tw.time_average(now)
    }

    /// CPU energy (cores + uncore) in joules through `now`.
    pub fn cpu_energy_j(&self, now: SimTime) -> f64 {
        self.cores_w.integral(now) + self.pkg_w.integral(now)
    }

    /// DRAM energy in joules through `now`.
    pub fn dram_energy_j(&self, now: SimTime) -> f64 {
        self.dram_w.integral(now)
    }

    /// Platform energy in joules through `now`.
    pub fn platform_energy_j(&self, now: SimTime) -> f64 {
        self.platform_w.integral(now)
    }

    /// Total server energy in joules through `now`.
    pub fn energy_j(&self, now: SimTime) -> f64 {
        self.cpu_energy_j(now) + self.dram_energy_j(now) + self.platform_energy_j(now)
    }

    /// Instantaneous total power draw in watts.
    pub fn power_w(&self) -> f64 {
        self.cores_w.value() + self.pkg_w.value() + self.dram_w.value() + self.platform_w.value()
    }

    /// Instantaneous CPU (cores + uncore) power draw in watts — the
    /// RAPL-package observable used for Fig. 12 validation.
    pub fn cpu_power_w(&self) -> f64 {
        self.cores_w.value() + self.pkg_w.value()
    }

    // ------------------------------------------------------------------
    // Driving API
    // ------------------------------------------------------------------

    /// Submits a task at `now`. Clears `fx` and fills it with the follow-up
    /// effects the driver must schedule.
    pub fn submit(&mut self, now: SimTime, task: TaskHandle, fx: &mut EffectBuf) {
        fx.clear();
        self.timer_gen += 1; // any activity cancels a pending descent
        self.queues.push(task);
        match self.mode {
            ServerMode::Active | ServerMode::Idle | ServerMode::ShallowSleep => {
                self.dispatch_free_cores(now, fx);
            }
            ServerMode::DeepSleep(_) => {
                self.begin_resume(now, fx);
            }
            ServerMode::Suspending(_) => {
                self.wake_after_suspend = true;
            }
            ServerMode::Resuming => {}
        }
        self.note_load(now);
    }

    /// Reports that the task on `core` finished at `now`; returns the
    /// finished task id and clears/fills `fx` with follow-up effects.
    ///
    /// # Panics
    ///
    /// Panics if `core` is not running a task.
    pub fn complete(&mut self, now: SimTime, core: u32, fx: &mut EffectBuf) -> TaskId {
        fx.clear();
        let finished = self.running[core as usize]
            .take()
            .expect("completion for an idle core");
        self.tasks_completed += 1;
        // Pull follow-on work for this core (it is warm: no wake padding).
        if let Some(next) = self.queues.pop_for(core) {
            let completes_in = next.execution_time(self.speed_ratio() * self.core_speed(core));
            self.running[core as usize] = Some(next);
            fx.push(Effect::TaskStarted {
                core,
                id: next.id,
                completes_in,
            });
        } else if self.busy_cores() == 0 && self.queue_len() == 0 {
            self.descend_idle(now, fx);
        }
        self.note_load(now);
        finished.id
    }

    /// The idle delay timer armed with `gen` fired at `now`.
    pub fn timer_fired(&mut self, now: SimTime, gen: u64, fx: &mut EffectBuf) {
        fx.clear();
        if gen != self.timer_gen {
            return; // stale: activity intervened
        }
        if matches!(self.mode, ServerMode::Idle | ServerMode::ShallowSleep) && self.pending() == 0 {
            if let Some((_, deep)) = self.cfg.policy.deep_after {
                self.begin_suspend(now, deep, fx);
            }
        }
    }

    /// A suspend or resume transition completed at `now`.
    ///
    /// # Panics
    ///
    /// Panics if no transition was in flight.
    pub fn transition_done(&mut self, now: SimTime, fx: &mut EffectBuf) {
        fx.clear();
        match self.mode {
            ServerMode::Suspending(s) => {
                if self.queue_len() > 0 || self.wake_after_suspend {
                    // Work (or an explicit wake) arrived mid-suspend: sleep
                    // completed, now immediately resume.
                    self.set_mode(now, ServerMode::DeepSleep(s));
                    self.deep_sleeps += 1;
                    self.begin_resume(now, fx);
                } else {
                    self.set_mode(now, ServerMode::DeepSleep(s));
                    self.deep_sleeps += 1;
                }
            }
            ServerMode::Resuming => {
                self.resumes += 1;
                self.set_mode(now, ServerMode::Idle);
                self.dispatch_free_cores(now, fx);
                if self.busy_cores() == 0 && self.queue_len() == 0 {
                    self.descend_idle(now, fx);
                }
            }
            other => panic!("transition_done in non-transitional mode {other:?}"),
        }
        self.note_load(now);
    }

    /// Control-plane: ask the server to enter deep sleep now (pool
    /// managers). No-op unless it is awake and workless.
    pub fn request_deep_sleep(&mut self, now: SimTime, deep: DeepState, fx: &mut EffectBuf) {
        fx.clear();
        if self.mode.is_awake() && self.pending() == 0 {
            self.timer_gen += 1;
            self.begin_suspend(now, deep, fx);
        }
    }

    /// Control-plane: wake the server from deep sleep (pool managers,
    /// provisioning). No-op if it is already awake or resuming.
    pub fn request_wake(&mut self, now: SimTime, fx: &mut EffectBuf) {
        fx.clear();
        match self.mode {
            ServerMode::DeepSleep(_) => self.begin_resume(now, fx),
            ServerMode::Suspending(_) => self.wake_after_suspend = true,
            _ => {}
        }
    }

    /// Control-plane: swap the sleep policy at `now` (WASP pool moves).
    /// Re-evaluates idleness under the new policy.
    pub fn set_policy(&mut self, now: SimTime, policy: SleepPolicy, fx: &mut EffectBuf) {
        fx.clear();
        self.cfg.policy = policy;
        if matches!(self.mode, ServerMode::Idle | ServerMode::ShallowSleep) && self.pending() == 0 {
            self.timer_gen += 1;
            self.descend_idle(now, fx);
        }
    }

    /// Control-plane: change the P-state (takes effect for subsequently
    /// started tasks; in-flight tasks finish at their original speed).
    ///
    /// # Panics
    ///
    /// Panics if `pstate` is out of range for the profile.
    pub fn set_pstate(&mut self, now: SimTime, pstate: usize) {
        assert!(
            pstate < self.cfg.profile.pstates.len(),
            "P-state out of range"
        );
        self.cfg.pstate = pstate;
        self.refresh_power(now);
    }

    /// Fault injection: scales execution speed of subsequently started
    /// tasks (the straggler model; 1.0 restores nominal). In-flight tasks
    /// finish at their already-computed speed, and power is not rescaled —
    /// a straggling server burns nominal busy power.
    ///
    /// # Panics
    ///
    /// Panics unless `factor` is strictly positive.
    pub fn set_fault_speed(&mut self, factor: f64) {
        assert!(factor > 0.0, "fault speed factor must be positive");
        self.fault_speed = factor;
    }

    /// Fault injection: the server crashes at `now`. Every running and
    /// queued task is appended to `killed` (running tasks in core order,
    /// then queued tasks in queue order) for the driver to re-dispatch
    /// elsewhere; the server lands in S5 deep sleep (powered off, drawing
    /// S5 platform power) until an explicit recovery wake. Any in-flight
    /// timer or transition events become stale: the driver must guard
    /// them with its own crash generation counter, since the server
    /// cannot cancel already-scheduled events.
    pub fn fail(&mut self, now: SimTime, killed: &mut Vec<TaskHandle>) {
        self.timer_gen += 1; // cancel any pending descent timer
        self.wake_after_suspend = false;
        for slot in self.running.iter_mut() {
            if let Some(t) = slot.take() {
                killed.push(t);
            }
        }
        match &mut self.queues {
            LocalQueues::Unified(q) => killed.extend(q.drain(..)),
            LocalQueues::PerCore(qs) => {
                for q in qs.iter_mut() {
                    killed.extend(q.drain(..));
                }
            }
        }
        self.set_mode(now, ServerMode::DeepSleep(SystemState::S5));
        self.note_load(now);
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    fn speed_ratio(&self) -> f64 {
        // Multiplying by the nominal 1.0 fault factor is IEEE-exact, so
        // fault-free runs stay bitwise identical.
        self.cfg.profile.speed_ratio(self.cfg.pstate) * self.fault_speed
    }

    /// Heterogeneity factor of `core` (1.0 when homogeneous).
    pub fn core_speed(&self, core: u32) -> f64 {
        self.cfg
            .core_speeds
            .get(core as usize)
            .copied()
            .unwrap_or(1.0)
    }

    /// Wake padding charged to the first dispatch out of the current mode.
    fn dispatch_pad(&self) -> SimDuration {
        match self.mode {
            ServerMode::Idle => self.cfg.profile.core.c1_wake,
            ServerMode::ShallowSleep => {
                self.cfg.profile.package.pc6_wake + self.cfg.profile.core.c6_wake
            }
            _ => SimDuration::ZERO,
        }
    }

    fn dispatch_free_cores(&mut self, now: SimTime, effects: &mut EffectBuf) {
        let pad = self.dispatch_pad();
        let speed = self.speed_ratio();
        let mut dispatched = false;
        for i in 0..self.dispatch_order.len() {
            let core = self.dispatch_order[i];
            if self.running[core as usize].is_some() {
                continue;
            }
            let Some(task) = self.queues.pop_for(core) else {
                match &self.queues {
                    LocalQueues::Unified(_) => break, // empty for everyone
                    LocalQueues::PerCore(_) => continue,
                }
            };
            let completes_in = pad + task.execution_time(speed * self.core_speed(core));
            self.running[core as usize] = Some(task);
            effects.push(Effect::TaskStarted {
                core,
                id: task.id,
                completes_in,
            });
            dispatched = true;
        }
        if dispatched {
            self.set_mode(now, ServerMode::Active);
        }
    }

    fn descend_idle(&mut self, now: SimTime, effects: &mut EffectBuf) {
        match self.cfg.policy.idle_descent {
            IdleDescent::StayIdle => self.set_mode(now, ServerMode::Idle),
            IdleDescent::ShallowSleep => self.set_mode(now, ServerMode::ShallowSleep),
        }
        if let Some((tau, _)) = self.cfg.policy.deep_after {
            self.timer_gen += 1;
            if tau.is_zero() {
                // Degenerate timer: descend immediately.
                let (_, deep) = self.cfg.policy.deep_after.expect("checked above");
                self.begin_suspend(now, deep, effects);
            } else {
                effects.push(Effect::ArmTimer {
                    after: tau,
                    gen: self.timer_gen,
                });
            }
        }
    }

    fn begin_suspend(&mut self, now: SimTime, deep: DeepState, effects: &mut EffectBuf) {
        debug_assert!(self.mode.is_awake());
        self.wake_after_suspend = false;
        self.set_mode(now, ServerMode::Suspending(deep.system_state()));
        effects.push(Effect::TransitionDoneIn {
            after: self.cfg.profile.platform.suspend_latency,
        });
    }

    fn begin_resume(&mut self, now: SimTime, effects: &mut EffectBuf) {
        let ServerMode::DeepSleep(s) = self.mode else {
            panic!("resume from non-sleep mode {:?}", self.mode);
        };
        self.set_mode(now, ServerMode::Resuming);
        effects.push(Effect::TransitionDoneIn {
            after: self.cfg.profile.platform.wake_latency(s),
        });
    }

    fn set_mode(&mut self, now: SimTime, mode: ServerMode) {
        self.mode = mode;
        self.residency.transition(now, mode.band());
        self.refresh_power(now);
    }

    fn note_load(&mut self, now: SimTime) {
        self.busy_cores_tw.set(now, self.busy_cores() as f64);
        self.queue_len_tw.set(now, self.queue_len() as f64);
    }

    /// Recomputes the four component power draws from the logical state.
    fn refresh_power(&mut self, now: SimTime) {
        let p = &self.cfg.profile;
        let n = self.cfg.cores as f64;
        let busy = self.busy_cores() as f64;
        let (cores, pkg, dram, platform) = match self.mode {
            ServerMode::Active | ServerMode::Idle => {
                let busy_w = p.core_busy_power_w(self.cfg.pstate);
                let idle_w = p.core.idle_power_w(CoreCState::C1);
                // Heterogeneous cores: busy power scales ~quadratically
                // with the per-core speed factor.
                let busy_power: f64 = if self.cfg.core_speeds.is_empty() {
                    busy * busy_w
                } else {
                    self.running
                        .iter()
                        .enumerate()
                        .filter(|(_, r)| r.is_some())
                        .map(|(i, _)| {
                            let s = self.cfg.core_speeds[i];
                            busy_w * s * s
                        })
                        .sum()
                };
                let dram = if busy > 0.0 {
                    p.dram.active_w
                } else {
                    p.dram.idle_w
                };
                // Per-socket uncore: a socket with no busy core drops into
                // the shallow package sleep autonomously while the rest of
                // the server keeps working. (Idle mode keeps socket 0's
                // uncore in PC0 so the server stays fully responsive.)
                let per_socket = self.cfg.cores / self.cfg.sockets;
                let pkg_power: f64 = (0..self.cfg.sockets)
                    .map(|sk| {
                        let lo = (sk * per_socket) as usize;
                        let hi = lo + per_socket as usize;
                        let socket_busy = self.running[lo..hi].iter().any(|r| r.is_some());
                        if socket_busy || (sk == 0 && self.mode == ServerMode::Idle) {
                            p.package.pc0_w
                        } else if self.mode == ServerMode::Idle {
                            p.package.pc2_w
                        } else {
                            // Active server: idle sockets nap in PC2.
                            if self.cfg.sockets == 1 {
                                p.package.pc0_w
                            } else {
                                p.package.pc2_w
                            }
                        }
                    })
                    .sum();
                (
                    busy_power + (n - busy) * idle_w,
                    pkg_power,
                    dram,
                    p.platform.s0_w,
                )
            }
            ServerMode::ShallowSleep => (
                n * p.core.idle_power_w(CoreCState::C6),
                p.package.pc6_w * self.cfg.sockets as f64,
                p.dram.idle_w,
                p.platform.s0_w,
            ),
            ServerMode::Suspending(_) | ServerMode::Resuming => (
                n * p.core.c0_idle_w,
                p.package.pc0_w * self.cfg.sockets as f64,
                p.dram.idle_w,
                p.platform.s0_w,
            ),
            ServerMode::DeepSleep(SystemState::S3) => {
                (0.0, 0.0, p.dram.self_refresh_w, p.platform.s3_w)
            }
            ServerMode::DeepSleep(_) => (0.0, 0.0, 0.0, p.platform.s5_w),
        };
        self.cores_w.set(now, cores);
        self.pkg_w.set(now, pkg);
        self.dram_w.set(now, dram);
        self.platform_w.set(now, platform);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use holdcsim_workload::ids::JobId;

    fn th(job: u64, ms: u64) -> TaskHandle {
        TaskHandle::new(TaskId::new(JobId(job), 0), SimDuration::from_millis(ms))
    }

    fn active_idle_server(cores: u32) -> Server {
        Server::new(SimTime::ZERO, ServerId(0), ServerConfig::new(cores))
    }

    // Vec-returning wrappers over the EffectBuf driving API keep the
    // state-machine assertions below readable.
    fn submit(s: &mut Server, now: SimTime, t: TaskHandle) -> Vec<Effect> {
        let mut b = EffectBuf::new();
        s.submit(now, t, &mut b);
        b.to_vec()
    }

    fn complete(s: &mut Server, now: SimTime, core: u32) -> (TaskId, Vec<Effect>) {
        let mut b = EffectBuf::new();
        let id = s.complete(now, core, &mut b);
        (id, b.to_vec())
    }

    fn timer_fired(s: &mut Server, now: SimTime, gen: u64) -> Vec<Effect> {
        let mut b = EffectBuf::new();
        s.timer_fired(now, gen, &mut b);
        b.to_vec()
    }

    fn transition_done(s: &mut Server, now: SimTime) -> Vec<Effect> {
        let mut b = EffectBuf::new();
        s.transition_done(now, &mut b);
        b.to_vec()
    }

    fn request_deep_sleep(s: &mut Server, now: SimTime, deep: DeepState) -> Vec<Effect> {
        let mut b = EffectBuf::new();
        s.request_deep_sleep(now, deep, &mut b);
        b.to_vec()
    }

    fn request_wake(s: &mut Server, now: SimTime) -> Vec<Effect> {
        let mut b = EffectBuf::new();
        s.request_wake(now, &mut b);
        b.to_vec()
    }

    fn set_policy(s: &mut Server, now: SimTime, p: SleepPolicy) -> Vec<Effect> {
        let mut b = EffectBuf::new();
        s.set_policy(now, p, &mut b);
        b.to_vec()
    }

    #[test]
    fn submit_starts_task_on_free_core() {
        let mut s = active_idle_server(2);
        let fx = submit(&mut s, SimTime::ZERO, th(1, 10));
        assert_eq!(fx.len(), 1);
        let Effect::TaskStarted {
            core, completes_in, ..
        } = fx[0]
        else {
            panic!()
        };
        assert_eq!(core, 0);
        // 10 ms + C1 wake (2 µs).
        assert_eq!(
            completes_in,
            SimDuration::from_millis(10) + SimDuration::from_micros(2)
        );
        assert_eq!(s.mode(), ServerMode::Active);
        assert_eq!(s.busy_cores(), 1);
    }

    #[test]
    fn excess_tasks_queue_and_chain_on_completion() {
        let mut s = active_idle_server(1);
        submit(&mut s, SimTime::ZERO, th(1, 10));
        let fx = submit(&mut s, SimTime::from_millis(1), th(2, 5));
        assert!(fx.is_empty(), "no free core: queue only");
        assert_eq!(s.queue_len(), 1);
        let (done, fx) = complete(&mut s, SimTime::from_millis(10), 0);
        assert_eq!(done, TaskId::new(JobId(1), 0));
        assert_eq!(fx.len(), 1);
        assert!(matches!(fx[0], Effect::TaskStarted { core: 0, .. }));
        assert_eq!(s.queue_len(), 0);
        assert_eq!(s.tasks_completed(), 1);
    }

    #[test]
    fn active_idle_never_arms_timer() {
        let mut s = active_idle_server(1);
        submit(&mut s, SimTime::ZERO, th(1, 10));
        let (_, fx) = complete(&mut s, SimTime::from_millis(10), 0);
        assert!(fx.is_empty());
        assert_eq!(s.mode(), ServerMode::Idle);
    }

    #[test]
    fn delay_timer_descends_to_deep_sleep() {
        let cfg =
            ServerConfig::new(1).with_policy(SleepPolicy::delay_timer(SimDuration::from_secs(1)));
        let mut s = Server::new(SimTime::ZERO, ServerId(0), cfg);
        submit(&mut s, SimTime::ZERO, th(1, 10));
        let (_, fx) = complete(&mut s, SimTime::from_millis(10), 0);
        let [Effect::ArmTimer { after, gen }] = fx[..] else {
            panic!("{fx:?}")
        };
        assert_eq!(after, SimDuration::from_secs(1));
        let t_fire = SimTime::from_millis(1_010);
        let fx = timer_fired(&mut s, t_fire, gen);
        let [Effect::TransitionDoneIn { after }] = fx[..] else {
            panic!("{fx:?}")
        };
        assert_eq!(after, SimDuration::from_millis(500)); // suspend latency
        assert!(matches!(s.mode(), ServerMode::Suspending(SystemState::S3)));
        let fx = transition_done(&mut s, t_fire + after);
        assert!(fx.is_empty());
        assert_eq!(s.mode(), ServerMode::DeepSleep(SystemState::S3));
        assert_eq!(s.sleep_counts(), (1, 0));
    }

    #[test]
    fn stale_timer_is_ignored() {
        let cfg =
            ServerConfig::new(1).with_policy(SleepPolicy::delay_timer(SimDuration::from_secs(1)));
        let mut s = Server::new(SimTime::ZERO, ServerId(0), cfg);
        submit(&mut s, SimTime::ZERO, th(1, 10));
        let (_, fx) = complete(&mut s, SimTime::from_millis(10), 0);
        let [Effect::ArmTimer { gen, .. }] = fx[..] else {
            panic!()
        };
        // New work arrives before the timer fires.
        submit(&mut s, SimTime::from_millis(500), th(2, 10));
        let fx = timer_fired(&mut s, SimTime::from_millis(1_010), gen);
        assert!(fx.is_empty());
        assert_eq!(s.mode(), ServerMode::Active);
    }

    #[test]
    fn arrival_during_deep_sleep_triggers_resume() {
        let cfg = ServerConfig::new(1)
            .with_policy(SleepPolicy::delay_timer(SimDuration::from_millis(100)));
        let mut s = Server::new(SimTime::ZERO, ServerId(0), cfg);
        submit(&mut s, SimTime::ZERO, th(1, 10));
        let (_, fx) = complete(&mut s, SimTime::from_millis(10), 0);
        let [Effect::ArmTimer { gen, .. }] = fx[..] else {
            panic!()
        };
        let fx = timer_fired(&mut s, SimTime::from_millis(110), gen);
        let [Effect::TransitionDoneIn { after }] = fx[..] else {
            panic!()
        };
        let t_asleep = SimTime::from_millis(110) + after;
        transition_done(&mut s, t_asleep);
        // A task arrives while asleep.
        let t_arrive = SimTime::from_secs(10);
        let fx = submit(&mut s, t_arrive, th(2, 10));
        let [Effect::TransitionDoneIn { after }] = fx[..] else {
            panic!("{fx:?}")
        };
        assert_eq!(after, SimDuration::from_secs(4)); // resume latency
        assert_eq!(s.mode(), ServerMode::Resuming);
        // Resume completes: queued task dispatches.
        let fx = transition_done(&mut s, t_arrive + after);
        assert_eq!(fx.len(), 1);
        assert!(matches!(fx[0], Effect::TaskStarted { .. }));
        assert_eq!(s.mode(), ServerMode::Active);
        assert_eq!(s.sleep_counts(), (1, 1));
    }

    #[test]
    fn arrival_during_suspend_queues_then_resumes() {
        let cfg = ServerConfig::new(1)
            .with_policy(SleepPolicy::delay_timer(SimDuration::from_millis(100)));
        let mut s = Server::new(SimTime::ZERO, ServerId(0), cfg);
        submit(&mut s, SimTime::ZERO, th(1, 10));
        let (_, fx) = complete(&mut s, SimTime::from_millis(10), 0);
        let [Effect::ArmTimer { gen, .. }] = fx[..] else {
            panic!()
        };
        timer_fired(&mut s, SimTime::from_millis(110), gen);
        // Mid-suspend arrival: no new transition event; it queues.
        let fx = submit(&mut s, SimTime::from_millis(200), th(2, 10));
        assert!(fx.is_empty());
        // Suspend finishes at 610 ms → immediately resumes.
        let fx = transition_done(&mut s, SimTime::from_millis(610));
        let [Effect::TransitionDoneIn { after }] = fx[..] else {
            panic!("{fx:?}")
        };
        assert_eq!(after, SimDuration::from_secs(4));
        assert_eq!(s.mode(), ServerMode::Resuming);
    }

    #[test]
    fn shallow_sleep_pads_first_dispatch() {
        let cfg = ServerConfig::new(2).with_policy(SleepPolicy::shallow_only());
        let mut s = Server::new(SimTime::ZERO, ServerId(0), cfg);
        assert_eq!(s.mode(), ServerMode::ShallowSleep);
        let fx = submit(&mut s, SimTime::ZERO, th(1, 10));
        let [Effect::TaskStarted { completes_in, .. }] = fx[..] else {
            panic!()
        };
        // pkg C6 wake (600 µs) + core C6 wake (200 µs) + 10 ms.
        assert_eq!(
            completes_in,
            SimDuration::from_millis(10) + SimDuration::from_micros(800)
        );
        // Returns to shallow sleep when idle again.
        let (_, _) = complete(&mut s, SimTime::from_millis(11), 0);
        assert_eq!(s.mode(), ServerMode::ShallowSleep);
    }

    #[test]
    fn request_deep_sleep_and_wake_roundtrip() {
        let cfg = ServerConfig::new(1).with_policy(SleepPolicy::shallow_only());
        let mut s = Server::new(SimTime::ZERO, ServerId(0), cfg);
        let fx = request_deep_sleep(&mut s, SimTime::from_secs(1), DeepState::SuspendToRam);
        let [Effect::TransitionDoneIn { after }] = fx[..] else {
            panic!()
        };
        transition_done(&mut s, SimTime::from_secs(1) + after);
        assert_eq!(s.mode(), ServerMode::DeepSleep(SystemState::S3));
        let fx = request_wake(&mut s, SimTime::from_secs(10));
        let [Effect::TransitionDoneIn { after }] = fx[..] else {
            panic!()
        };
        let fx = transition_done(&mut s, SimTime::from_secs(10) + after);
        assert!(fx.is_empty());
        // No work: descends straight back per policy.
        assert_eq!(s.mode(), ServerMode::ShallowSleep);
    }

    #[test]
    fn request_deep_sleep_refused_with_work() {
        let mut s = active_idle_server(1);
        submit(&mut s, SimTime::ZERO, th(1, 10));
        let fx = request_deep_sleep(&mut s, SimTime::from_millis(1), DeepState::SuspendToRam);
        assert!(fx.is_empty());
        assert_eq!(s.mode(), ServerMode::Active);
    }

    #[test]
    fn per_core_queues_join_shortest() {
        let cfg = ServerConfig::new(2).with_queue_mode(LocalQueueMode::PerCore);
        let mut s = Server::new(SimTime::ZERO, ServerId(0), cfg);
        // Fill both cores, then queue two more: they split across queues.
        submit(&mut s, SimTime::ZERO, th(1, 10));
        submit(&mut s, SimTime::ZERO, th(2, 10));
        submit(&mut s, SimTime::ZERO, th(3, 10));
        submit(&mut s, SimTime::ZERO, th(4, 10));
        assert_eq!(s.queue_len(), 2);
        // Completing core 0 pulls from core 0's own queue.
        let (_, fx) = complete(&mut s, SimTime::from_millis(10), 0);
        assert_eq!(fx.len(), 1);
        assert!(matches!(fx[0], Effect::TaskStarted { core: 0, .. }));
        assert_eq!(s.queue_len(), 1);
    }

    #[test]
    fn power_levels_by_mode() {
        let profile = ServerPowerProfile::xeon_e5_2680();
        let cfg =
            ServerConfig::new(10).with_policy(SleepPolicy::delay_timer(SimDuration::from_secs(1)));
        let mut s = Server::new(SimTime::ZERO, ServerId(0), cfg);
        let idle_w = s.power_w();
        assert!(
            (idle_w - profile.idle_power_w(10, CoreCState::C1)).abs() < 1e-9,
            "idle {idle_w}"
        );
        // One busy core raises power by (busy − C1) + DRAM step.
        submit(&mut s, SimTime::ZERO, th(1, 10));
        let one_busy = s.power_w();
        assert!(one_busy > idle_w);
        let (_, fx) = complete(&mut s, SimTime::from_millis(10), 0);
        let [Effect::ArmTimer { gen, .. }] = fx[..] else {
            panic!()
        };
        // Deep sleep power is tiny.
        let fx = timer_fired(&mut s, SimTime::from_secs(2), gen);
        let [Effect::TransitionDoneIn { after }] = fx[..] else {
            panic!()
        };
        transition_done(&mut s, SimTime::from_secs(2) + after);
        let sleep_w = s.power_w();
        assert!(
            (sleep_w - (profile.platform.s3_w + profile.dram.self_refresh_w)).abs() < 1e-9,
            "sleep {sleep_w}"
        );
        assert!(sleep_w < idle_w / 10.0);
    }

    #[test]
    fn energy_breakdown_sums_to_total() {
        let mut s = active_idle_server(4);
        submit(&mut s, SimTime::ZERO, th(1, 100));
        let now = SimTime::from_millis(50);
        let total = s.energy_j(now);
        let parts = s.cpu_energy_j(now) + s.dram_energy_j(now) + s.platform_energy_j(now);
        assert!((total - parts).abs() < 1e-9);
        assert!(total > 0.0);
    }

    #[test]
    fn residency_bands_accumulate() {
        let cfg =
            ServerConfig::new(1).with_policy(SleepPolicy::delay_timer(SimDuration::from_secs(1)));
        let mut s = Server::new(SimTime::ZERO, ServerId(0), cfg);
        submit(&mut s, SimTime::ZERO, th(1, 1_000));
        complete(&mut s, SimTime::from_secs(1), 0);
        let now = SimTime::from_secs(2);
        let active = s.residency().time_in_through(Band::Active, now);
        let idle = s.residency().time_in_through(Band::Idle, now);
        assert_eq!(active, SimDuration::from_secs(1));
        assert_eq!(idle, SimDuration::from_secs(1));
    }

    #[test]
    fn utilization_tracks_busy_fraction() {
        let mut s = active_idle_server(2);
        submit(&mut s, SimTime::ZERO, th(1, 1_000));
        complete(&mut s, SimTime::from_secs(1), 0);
        // 1 of 2 cores busy for 1 s, then idle for 1 s: util = 0.25 at t=2.
        let u = s.utilization(SimTime::from_secs(2));
        assert!((u - 0.25).abs() < 1e-9, "util {u}");
    }

    #[test]
    fn set_policy_reevaluates_idleness() {
        let mut s = active_idle_server(1);
        assert_eq!(s.mode(), ServerMode::Idle);
        let fx = set_policy(
            &mut s,
            SimTime::from_secs(1),
            SleepPolicy::shallow_then_deep(SimDuration::from_secs(5)),
        );
        assert_eq!(s.mode(), ServerMode::ShallowSleep);
        assert!(matches!(fx[..], [Effect::ArmTimer { .. }]));
    }

    #[test]
    fn zero_tau_descends_immediately() {
        let cfg = ServerConfig::new(1).with_policy(SleepPolicy::delay_timer(SimDuration::ZERO));
        let mut s = Server::new(SimTime::ZERO, ServerId(0), cfg);
        submit(&mut s, SimTime::ZERO, th(1, 10));
        let (_, fx) = complete(&mut s, SimTime::from_millis(10), 0);
        assert!(
            matches!(fx[..], [Effect::TransitionDoneIn { .. }]),
            "{fx:?}"
        );
        assert!(matches!(s.mode(), ServerMode::Suspending(_)));
    }

    #[test]
    #[should_panic(expected = "completion for an idle core")]
    fn complete_on_idle_core_panics() {
        let mut s = active_idle_server(1);
        complete(&mut s, SimTime::ZERO, 0);
    }

    #[test]
    fn heterogeneous_dispatch_prefers_fast_cores() {
        // Core 1 is the "big" core (2x); it must be chosen first.
        let cfg = ServerConfig::new(2).with_core_speeds(vec![0.5, 2.0]);
        let mut s = Server::new(SimTime::ZERO, ServerId(0), cfg);
        let fx = submit(&mut s, SimTime::ZERO, th(1, 10));
        let [Effect::TaskStarted {
            core, completes_in, ..
        }] = fx[..]
        else {
            panic!()
        };
        assert_eq!(core, 1);
        // 10 ms at 2x speed = 5 ms (+ C1 wake pad).
        assert_eq!(
            completes_in,
            SimDuration::from_millis(5) + SimDuration::from_micros(2)
        );
        // Second task lands on the little core and runs 2x slower.
        let fx = submit(&mut s, SimTime::ZERO, th(2, 10));
        let [Effect::TaskStarted {
            core, completes_in, ..
        }] = fx[..]
        else {
            panic!()
        };
        assert_eq!(core, 0);
        assert_eq!(completes_in, SimDuration::from_millis(20));
    }

    #[test]
    fn heterogeneous_busy_power_scales_quadratically() {
        let profile = ServerPowerProfile::xeon_e5_2680();
        let cfg = ServerConfig::new(2).with_core_speeds(vec![1.0, 2.0]);
        let mut s = Server::new(SimTime::ZERO, ServerId(0), cfg);
        let idle = s.power_w();
        submit(&mut s, SimTime::ZERO, th(1, 10)); // big core first: 4x busy power
        let big = s.power_w() - idle;
        submit(&mut s, SimTime::ZERO, th(2, 10)); // little core: 1x busy power
        let both = s.power_w() - idle;
        let busy_w = profile.core.c0_busy_w;
        let idle_c1 = profile
            .core
            .idle_power_w(holdcsim_power::states::CoreCState::C1);
        // First dispatch adds 4*busy - c1 idle + DRAM step.
        let dram_step = profile.dram.active_w - profile.dram.idle_w;
        assert!(
            (big - (4.0 * busy_w - idle_c1 + dram_step)).abs() < 1e-9,
            "big {big}"
        );
        assert!(
            ((both - big) - (busy_w - idle_c1)).abs() < 1e-9,
            "delta {}",
            both - big
        );
    }

    #[test]
    fn homogeneous_core_speed_defaults_to_one() {
        let s = active_idle_server(2);
        assert_eq!(s.core_speed(0), 1.0);
        assert_eq!(s.core_speed(1), 1.0);
    }

    #[test]
    #[should_panic(expected = "one speed per core")]
    fn mismatched_core_speeds_rejected() {
        let _ = ServerConfig::new(4).with_core_speeds(vec![1.0, 2.0]);
    }

    #[test]
    fn idle_socket_naps_in_pc2_while_other_works() {
        let profile = ServerPowerProfile::xeon_e5_2680();
        // 2 sockets x 2 cores; one task occupies socket 0 only.
        let cfg = ServerConfig::new(4).with_sockets(2);
        let mut dual = Server::new(SimTime::ZERO, ServerId(0), cfg);
        submit(&mut dual, SimTime::ZERO, th(1, 10));
        let cfg1 = ServerConfig::new(4);
        let mut single = Server::new(SimTime::ZERO, ServerId(1), cfg1);
        submit(&mut single, SimTime::ZERO, th(1, 10));
        // Dual socket: pc0 (busy socket) + pc2 (napping socket);
        // single socket: pc0. Everything else matches.
        let delta = dual.power_w() - single.power_w();
        assert!(
            (delta - profile.package.pc2_w).abs() < 1e-9,
            "expected one extra PC2 uncore, got {delta}"
        );
        // Loading the second socket raises it to PC0.
        submit(&mut dual, SimTime::ZERO, th(2, 10));
        submit(&mut dual, SimTime::ZERO, th(3, 10)); // fills socket 0, spills to 1
        let both_busy = dual.power_w() - single.power_w();
        assert!(
            both_busy > delta,
            "second socket should wake: {both_busy} vs {delta}"
        );
    }

    #[test]
    fn shallow_sleep_gates_all_sockets() {
        let profile = ServerPowerProfile::xeon_e5_2680();
        let cfg = ServerConfig::new(4)
            .with_sockets(2)
            .with_policy(SleepPolicy::shallow_only());
        let s = Server::new(SimTime::ZERO, ServerId(0), cfg);
        let expected = profile.platform.s0_w
            + profile.dram.idle_w
            + 2.0 * profile.package.pc6_w
            + 4.0 * profile.core.c6_w;
        assert!(
            (s.power_w() - expected).abs() < 1e-9,
            "power {}",
            s.power_w()
        );
    }

    #[test]
    #[should_panic(expected = "cores must split evenly")]
    fn uneven_socket_split_rejected() {
        let _ = ServerConfig::new(3).with_sockets(2);
    }

    #[test]
    fn fail_kills_work_and_powers_off() {
        let profile = ServerPowerProfile::xeon_e5_2680();
        let mut s = active_idle_server(2);
        submit(&mut s, SimTime::ZERO, th(1, 10));
        submit(&mut s, SimTime::ZERO, th(2, 10));
        submit(&mut s, SimTime::ZERO, th(3, 10)); // queued
        let mut killed = Vec::new();
        s.fail(SimTime::from_millis(1), &mut killed);
        assert_eq!(killed.len(), 3);
        assert_eq!(s.mode(), ServerMode::DeepSleep(SystemState::S5));
        assert_eq!(s.busy_cores(), 0);
        assert_eq!(s.queue_len(), 0);
        assert!(
            (s.power_w() - profile.platform.s5_w).abs() < 1e-9,
            "crashed server draws S5 power, got {}",
            s.power_w()
        );
        // Recovery: a wake request resumes like any deep-sleep exit.
        let fx = request_wake(&mut s, SimTime::from_secs(1));
        assert!(matches!(fx[..], [Effect::TransitionDoneIn { .. }]));
    }

    #[test]
    fn fault_speed_slows_new_tasks_only() {
        let mut s = active_idle_server(2);
        s.set_fault_speed(0.5);
        let fx = submit(&mut s, SimTime::ZERO, th(1, 10));
        let [Effect::TaskStarted { completes_in, .. }] = fx[..] else {
            panic!("{fx:?}")
        };
        // 10 ms at half speed = 20 ms (+ C1 wake pad on first dispatch).
        assert_eq!(
            completes_in,
            SimDuration::from_millis(20) + SimDuration::from_micros(2)
        );
        s.set_fault_speed(1.0);
        let fx = submit(&mut s, SimTime::ZERO, th(2, 10));
        let [Effect::TaskStarted { completes_in, .. }] = fx[..] else {
            panic!("{fx:?}")
        };
        assert_eq!(completes_in, SimDuration::from_millis(10));
    }
}
