//! Local sleep policies: what a server does with idleness (§IV-B/C).

use holdcsim_des::time::SimDuration;
use holdcsim_power::states::SystemState;

/// Where an idle server settles immediately after its last task departs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IdleDescent {
    /// Stay responsive: cores halt (C1), package stays PC0. The paper's
    /// Active-Idle baseline parks here indefinitely.
    StayIdle,
    /// Drop straight into package C6 (cores C6, uncore gated): the paper's
    /// "shallow sleep" with sub-millisecond wake.
    ShallowSleep,
}

/// The deep state a delay timer descends into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeepState {
    /// Suspend-to-RAM (seconds to resume).
    SuspendToRam,
    /// Soft-off (tens of seconds to boot).
    SoftOff,
}

impl DeepState {
    /// The ACPI system state this corresponds to.
    pub fn system_state(self) -> SystemState {
        match self {
            DeepState::SuspendToRam => SystemState::S3,
            DeepState::SoftOff => SystemState::S5,
        }
    }
}

/// A server's local power policy.
///
/// All of the paper's per-server strategies are points in this space:
///
/// | Paper strategy | `idle_descent` | `deep_after` |
/// |---|---|---|
/// | Active-Idle baseline (§IV-B) | `StayIdle` | `None` |
/// | Single delay timer τ (Fig. 5) | `StayIdle` | `Some((τ, SuspendToRam))` |
/// | Dual delay timers (Fig. 6) | `StayIdle` | per-pool τ |
/// | WASP active pool (Fig. 7b) | `ShallowSleep` | `None` |
/// | WASP sleep pool (Fig. 7b) | `ShallowSleep` | `Some((τ, SuspendToRam))` |
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SleepPolicy {
    /// Immediate descent on idleness.
    pub idle_descent: IdleDescent,
    /// Optional delay timer: after this much uninterrupted idleness, begin
    /// the transition into the deep state.
    pub deep_after: Option<(SimDuration, DeepState)>,
}

impl SleepPolicy {
    /// The Active-Idle baseline: never sleep.
    pub fn active_idle() -> Self {
        SleepPolicy {
            idle_descent: IdleDescent::StayIdle,
            deep_after: None,
        }
    }

    /// A single delay timer: idle for `tau`, then suspend to RAM.
    pub fn delay_timer(tau: SimDuration) -> Self {
        SleepPolicy {
            idle_descent: IdleDescent::StayIdle,
            deep_after: Some((tau, DeepState::SuspendToRam)),
        }
    }

    /// WASP-style shallow-only policy (active pool).
    pub fn shallow_only() -> Self {
        SleepPolicy {
            idle_descent: IdleDescent::ShallowSleep,
            deep_after: None,
        }
    }

    /// WASP-style sleep-pool policy: shallow immediately, deep after `tau`.
    pub fn shallow_then_deep(tau: SimDuration) -> Self {
        SleepPolicy {
            idle_descent: IdleDescent::ShallowSleep,
            deep_after: Some((tau, DeepState::SuspendToRam)),
        }
    }
}

impl Default for SleepPolicy {
    fn default() -> Self {
        Self::active_idle()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_map_to_paper_strategies() {
        assert_eq!(SleepPolicy::active_idle().deep_after, None);
        assert_eq!(
            SleepPolicy::active_idle().idle_descent,
            IdleDescent::StayIdle
        );
        let dt = SleepPolicy::delay_timer(SimDuration::from_secs(1));
        assert_eq!(
            dt.deep_after,
            Some((SimDuration::from_secs(1), DeepState::SuspendToRam))
        );
        assert_eq!(
            SleepPolicy::shallow_only().idle_descent,
            IdleDescent::ShallowSleep
        );
        assert!(SleepPolicy::shallow_then_deep(SimDuration::from_secs(2))
            .deep_after
            .is_some());
    }

    #[test]
    fn deep_state_maps_to_acpi() {
        assert_eq!(DeepState::SuspendToRam.system_state(), SystemState::S3);
        assert_eq!(DeepState::SoftOff.system_state(), SystemState::S5);
    }
}
