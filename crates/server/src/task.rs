//! Task handles as servers see them.

use holdcsim_des::time::SimDuration;
use holdcsim_workload::ids::TaskId;

/// A task dispatched to a server: the identity plus the execution demand.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskHandle {
    /// The task's identity (job + index).
    pub id: TaskId,
    /// Nominal service time at the nominal core frequency.
    pub service: SimDuration,
    /// Compute intensiveness α ∈ `[0, 1]`: fraction of the service time that
    /// scales with frequency.
    pub intensity: f64,
}

impl TaskHandle {
    /// Creates a fully compute-bound task handle.
    pub fn new(id: TaskId, service: SimDuration) -> Self {
        TaskHandle {
            id,
            service,
            intensity: 1.0,
        }
    }

    /// Execution time at `speed_ratio` (relative to nominal frequency):
    /// `service · (α/speed + (1 − α))`.
    ///
    /// # Panics
    ///
    /// Panics if `speed_ratio` is not strictly positive.
    pub fn execution_time(&self, speed_ratio: f64) -> SimDuration {
        assert!(speed_ratio > 0.0, "speed ratio must be positive");
        let a = self.intensity.clamp(0.0, 1.0);
        self.service.mul_f64(a / speed_ratio + (1.0 - a))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use holdcsim_workload::ids::JobId;

    fn task(ms: u64, intensity: f64) -> TaskHandle {
        TaskHandle {
            id: TaskId::new(JobId(1), 0),
            service: SimDuration::from_millis(ms),
            intensity,
        }
    }

    #[test]
    fn nominal_speed_is_identity() {
        assert_eq!(
            task(10, 1.0).execution_time(1.0),
            SimDuration::from_millis(10)
        );
        assert_eq!(
            task(10, 0.3).execution_time(1.0),
            SimDuration::from_millis(10)
        );
    }

    #[test]
    fn compute_bound_scales_inversely_with_speed() {
        assert_eq!(
            task(10, 1.0).execution_time(0.5),
            SimDuration::from_millis(20)
        );
        assert_eq!(
            task(10, 1.0).execution_time(2.0),
            SimDuration::from_millis(5)
        );
    }

    #[test]
    fn memory_bound_fraction_does_not_scale() {
        // α = 0.5 at half speed: 10 * (0.5/0.5 + 0.5) = 15 ms.
        assert_eq!(
            task(10, 0.5).execution_time(0.5),
            SimDuration::from_millis(15)
        );
        // α = 0 never scales.
        assert_eq!(
            task(10, 0.0).execution_time(0.25),
            SimDuration::from_millis(10)
        );
    }
}
