//! # holdcsim-server
//!
//! The multi-core server model of HolDCSim-RS (§III-A of the paper):
//! unified or per-core local task queues, DVFS-scaled execution,
//! hierarchical sleep (core/package C-states, system S-states), delay-timer
//! and shallow/deep sleep policies, and CPU/DRAM/platform energy
//! accounting.
//!
//! Servers are *passive state machines*: the simulation driver calls them
//! with the current time and schedules the returned [`server::Effect`]s.
//!
//! ```
//! use holdcsim_server::prelude::*;
//! use holdcsim_des::time::{SimDuration, SimTime};
//! use holdcsim_workload::ids::{JobId, TaskId};
//!
//! let mut server = Server::new(SimTime::ZERO, ServerId(0), ServerConfig::new(4));
//! let task = TaskHandle::new(TaskId::new(JobId(1), 0), SimDuration::from_millis(5));
//! let mut effects = EffectBuf::new();
//! server.submit(SimTime::ZERO, task, &mut effects);
//! assert_eq!(effects.len(), 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod policy;
pub mod server;
pub mod task;

pub use policy::{DeepState, IdleDescent, SleepPolicy};
pub use server::{
    Band, Effect, EffectBuf, LocalQueueMode, Server, ServerConfig, ServerId, ServerMode,
};
pub use task::TaskHandle;

/// Convenience re-exports for downstream crates.
pub mod prelude {
    pub use crate::policy::{DeepState, IdleDescent, SleepPolicy};
    pub use crate::server::{
        Band, Effect, EffectBuf, LocalQueueMode, Server, ServerConfig, ServerId, ServerMode,
    };
    pub use crate::task::TaskHandle;
}
