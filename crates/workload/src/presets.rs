//! Named workload presets used throughout the paper's evaluation.

use holdcsim_des::time::SimDuration;

use crate::service::ServiceDist;
use crate::templates::JobTemplate;

/// The two representative workloads of §IV-B plus the Fig. 4 task mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadPreset {
    /// Web search: short, latency-critical requests (mean 5 ms).
    WebSearch,
    /// Web serving: longer requests (mean 120 ms).
    WebServing,
    /// Fig. 4's provisioning study: simple tasks uniform in 3–10 ms.
    Provisioning,
}

impl WorkloadPreset {
    /// Mean service time of one job under this preset.
    pub fn mean_service(self) -> SimDuration {
        match self {
            WorkloadPreset::WebSearch => SimDuration::from_millis(5),
            WorkloadPreset::WebServing => SimDuration::from_millis(120),
            WorkloadPreset::Provisioning => SimDuration::from_micros(6_500),
        }
    }

    /// The service-time distribution for this preset.
    pub fn service_dist(self) -> ServiceDist {
        match self {
            WorkloadPreset::WebSearch => ServiceDist::Exponential {
                mean: SimDuration::from_millis(5),
            },
            WorkloadPreset::WebServing => ServiceDist::Exponential {
                mean: SimDuration::from_millis(120),
            },
            WorkloadPreset::Provisioning => ServiceDist::Uniform {
                lo: SimDuration::from_millis(3),
                hi: SimDuration::from_millis(10),
            },
        }
    }

    /// A single-task job template for this preset (the paper's Fig. 4–9
    /// studies all use single-task jobs).
    pub fn template(self) -> JobTemplate {
        JobTemplate::single(self.service_dist())
    }

    /// Human-readable name, matching the paper's figure legends.
    pub fn name(self) -> &'static str {
        match self {
            WorkloadPreset::WebSearch => "Web Search",
            WorkloadPreset::WebServing => "Web Serving",
            WorkloadPreset::Provisioning => "Provisioning",
        }
    }
}

impl std::fmt::Display for WorkloadPreset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_means_match_paper() {
        assert_eq!(
            WorkloadPreset::WebSearch.mean_service(),
            SimDuration::from_millis(5)
        );
        assert_eq!(
            WorkloadPreset::WebServing.mean_service(),
            SimDuration::from_millis(120)
        );
    }

    #[test]
    fn dist_means_agree_with_mean_service() {
        for p in [
            WorkloadPreset::WebSearch,
            WorkloadPreset::WebServing,
            WorkloadPreset::Provisioning,
        ] {
            assert_eq!(p.service_dist().mean(), p.mean_service(), "{p}");
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(WorkloadPreset::WebSearch.to_string(), "Web Search");
    }
}
