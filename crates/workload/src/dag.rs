//! DAG-structured jobs (§III-C): each job is a directed acyclic graph of
//! tasks with spatial and temporal dependence; edges carry data-transfer
//! sizes for the network model.

use std::fmt;

use holdcsim_des::time::SimDuration;

/// One task's resource requirements within a job.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskSpec {
    /// Nominal execution time on a core at the nominal frequency
    /// (the paper's w_v^j).
    pub service: SimDuration,
    /// Compute intensiveness α ∈ `[0, 1]`: the fraction of service time that
    /// scales with core frequency (1 = fully compute-bound).
    pub intensity: f64,
    /// Optional server-class constraint (e.g. "database tier"); the global
    /// scheduler maps classes to eligible servers.
    pub server_class: Option<u32>,
}

impl TaskSpec {
    /// A fully compute-bound task with no placement constraint.
    pub fn compute(service: SimDuration) -> Self {
        TaskSpec {
            service,
            intensity: 1.0,
            server_class: None,
        }
    }
}

/// A dependency edge: `from` must finish and its `bytes` of results must be
/// transferred before `to` may start (the paper's D_l^j).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DagEdge {
    /// Producer task index.
    pub from: u32,
    /// Consumer task index.
    pub to: u32,
    /// Result size to move over the network, in bytes (0 = control-only
    /// dependency, no network traffic).
    pub bytes: u64,
}

/// Errors from [`JobDagBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildDagError {
    /// The job has no tasks.
    Empty,
    /// An edge references a task index that does not exist.
    EdgeOutOfRange {
        /// The offending edge.
        edge: (u32, u32),
    },
    /// An edge connects a task to itself.
    SelfLoop {
        /// The task with the self-loop.
        task: u32,
    },
    /// The edges form a cycle.
    Cyclic,
}

impl fmt::Display for BuildDagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildDagError::Empty => write!(f, "job has no tasks"),
            BuildDagError::EdgeOutOfRange { edge } => {
                write!(f, "edge ({}, {}) references a missing task", edge.0, edge.1)
            }
            BuildDagError::SelfLoop { task } => write!(f, "task {task} depends on itself"),
            BuildDagError::Cyclic => write!(f, "task dependencies form a cycle"),
        }
    }
}

impl std::error::Error for BuildDagError {}

/// A validated job DAG: tasks plus acyclic dependency edges, with
/// precomputed adjacency for the simulator's hot path.
///
/// # Examples
///
/// ```
/// use holdcsim_workload::dag::{JobDag, TaskSpec};
/// use holdcsim_des::time::SimDuration;
///
/// # fn main() -> Result<(), holdcsim_workload::dag::BuildDagError> {
/// // A two-tier web request: app server task feeding a DB task.
/// let dag = JobDag::builder()
///     .task(TaskSpec::compute(SimDuration::from_millis(2)))
///     .task(TaskSpec::compute(SimDuration::from_millis(6)))
///     .edge(0, 1, 16 * 1024)
///     .build()?;
/// assert_eq!(dag.len(), 2);
/// assert_eq!(dag.roots(), &[0]);
/// assert_eq!(dag.successors(0).len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct JobDag {
    tasks: Vec<TaskSpec>,
    edges: Vec<DagEdge>,
    successors: Vec<Vec<u32>>,
    predecessors: Vec<Vec<u32>>,
    roots: Vec<u32>,
    topo_order: Vec<u32>,
}

impl JobDag {
    /// Starts building a DAG.
    pub fn builder() -> JobDagBuilder {
        JobDagBuilder {
            tasks: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// A single-task job (the common case for Fig. 4/5/6 studies).
    pub fn single(task: TaskSpec) -> Self {
        JobDag {
            tasks: vec![task],
            edges: Vec::new(),
            successors: vec![Vec::new()],
            predecessors: vec![Vec::new()],
            roots: vec![0],
            topo_order: vec![0],
        }
    }

    /// Rebuilds this DAG in place as a single-task job, reusing the
    /// existing allocations (the simulator's job-recycling hot path).
    pub fn reset_single(&mut self, task: TaskSpec) {
        self.tasks.clear();
        self.tasks.push(task);
        self.edges.clear();
        self.successors.clear();
        self.successors.push(Vec::new());
        self.predecessors.clear();
        self.predecessors.push(Vec::new());
        self.roots.clear();
        self.roots.push(0);
        self.topo_order.clear();
        self.topo_order.push(0);
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// `true` if the job has no tasks (never true for built DAGs).
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// The task specs, indexed by task index.
    pub fn tasks(&self) -> &[TaskSpec] {
        &self.tasks
    }

    /// The spec of task `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn task(&self, index: u32) -> &TaskSpec {
        &self.tasks[index as usize]
    }

    /// All dependency edges.
    pub fn edges(&self) -> &[DagEdge] {
        &self.edges
    }

    /// Tasks with no predecessors (ready at job arrival).
    pub fn roots(&self) -> &[u32] {
        &self.roots
    }

    /// Direct successors of task `index`.
    pub fn successors(&self, index: u32) -> &[u32] {
        &self.successors[index as usize]
    }

    /// Direct predecessors of task `index`.
    pub fn predecessors(&self, index: u32) -> &[u32] {
        &self.predecessors[index as usize]
    }

    /// Number of predecessors of each task (the simulator's ready-counting
    /// seed).
    pub fn in_degrees(&self) -> Vec<u32> {
        self.predecessors.iter().map(|p| p.len() as u32).collect()
    }

    /// A topological order of task indices.
    pub fn topo_order(&self) -> &[u32] {
        &self.topo_order
    }

    /// The data size on edge `from → to`, if such an edge exists.
    pub fn edge_bytes(&self, from: u32, to: u32) -> Option<u64> {
        self.edges
            .iter()
            .find(|e| e.from == from && e.to == to)
            .map(|e| e.bytes)
    }

    /// Total nominal service time across tasks (work content).
    pub fn total_work(&self) -> SimDuration {
        self.tasks
            .iter()
            .fold(SimDuration::ZERO, |acc, t| acc + t.service)
    }

    /// Critical-path length through the DAG counting service times only
    /// (ignores network transfer time).
    pub fn critical_path(&self) -> SimDuration {
        let mut finish = vec![SimDuration::ZERO; self.tasks.len()];
        for &i in &self.topo_order {
            let start = self.predecessors[i as usize]
                .iter()
                .map(|&p| finish[p as usize])
                .max()
                .unwrap_or(SimDuration::ZERO);
            finish[i as usize] = start + self.tasks[i as usize].service;
        }
        finish.into_iter().max().unwrap_or(SimDuration::ZERO)
    }
}

/// Builder for [`JobDag`]; validates on [`build`](Self::build).
#[derive(Debug, Clone, Default)]
pub struct JobDagBuilder {
    tasks: Vec<TaskSpec>,
    edges: Vec<DagEdge>,
}

impl JobDagBuilder {
    /// Appends a task, returning the builder.
    pub fn task(mut self, spec: TaskSpec) -> Self {
        self.tasks.push(spec);
        self
    }

    /// Appends a dependency edge `from → to` carrying `bytes` of results.
    pub fn edge(mut self, from: u32, to: u32, bytes: u64) -> Self {
        self.edges.push(DagEdge { from, to, bytes });
        self
    }

    /// Validates and builds the DAG.
    ///
    /// # Errors
    ///
    /// Returns [`BuildDagError`] if the job is empty, an edge is out of
    /// range or a self-loop, or the dependencies contain a cycle.
    pub fn build(self) -> Result<JobDag, BuildDagError> {
        let n = self.tasks.len();
        if n == 0 {
            return Err(BuildDagError::Empty);
        }
        let mut successors = vec![Vec::new(); n];
        let mut predecessors = vec![Vec::new(); n];
        for e in &self.edges {
            if e.from as usize >= n || e.to as usize >= n {
                return Err(BuildDagError::EdgeOutOfRange {
                    edge: (e.from, e.to),
                });
            }
            if e.from == e.to {
                return Err(BuildDagError::SelfLoop { task: e.from });
            }
            successors[e.from as usize].push(e.to);
            predecessors[e.to as usize].push(e.from);
        }
        // Kahn's algorithm: topological sort doubling as cycle detection.
        let mut in_deg: Vec<u32> = predecessors.iter().map(|p| p.len() as u32).collect();
        let mut ready: Vec<u32> = (0..n as u32).filter(|&i| in_deg[i as usize] == 0).collect();
        let roots = ready.clone();
        let mut topo = Vec::with_capacity(n);
        let mut head = 0;
        while head < ready.len() {
            let i = ready[head];
            head += 1;
            topo.push(i);
            for &s in &successors[i as usize] {
                in_deg[s as usize] -= 1;
                if in_deg[s as usize] == 0 {
                    ready.push(s);
                }
            }
        }
        if topo.len() != n {
            return Err(BuildDagError::Cyclic);
        }
        Ok(JobDag {
            tasks: self.tasks,
            edges: self.edges,
            successors,
            predecessors,
            roots,
            topo_order: topo,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> TaskSpec {
        TaskSpec::compute(SimDuration::from_millis(ms))
    }

    #[test]
    fn single_task_dag() {
        let dag = JobDag::single(t(5));
        assert_eq!(dag.len(), 1);
        assert_eq!(dag.roots(), &[0]);
        assert_eq!(dag.critical_path(), SimDuration::from_millis(5));
    }

    #[test]
    fn chain_has_one_root_and_linear_critical_path() {
        let dag = JobDag::builder()
            .task(t(1))
            .task(t(2))
            .task(t(3))
            .edge(0, 1, 10)
            .edge(1, 2, 10)
            .build()
            .unwrap();
        assert_eq!(dag.roots(), &[0]);
        assert_eq!(dag.critical_path(), SimDuration::from_millis(6));
        assert_eq!(dag.total_work(), SimDuration::from_millis(6));
        assert_eq!(dag.topo_order(), &[0, 1, 2]);
    }

    #[test]
    fn fan_out_fan_in_critical_path_takes_longest_branch() {
        // 0 -> {1 (2ms), 2 (9ms)} -> 3
        let dag = JobDag::builder()
            .task(t(1))
            .task(t(2))
            .task(t(9))
            .task(t(1))
            .edge(0, 1, 0)
            .edge(0, 2, 0)
            .edge(1, 3, 0)
            .edge(2, 3, 0)
            .build()
            .unwrap();
        assert_eq!(dag.critical_path(), SimDuration::from_millis(11));
        assert_eq!(dag.in_degrees(), vec![0, 1, 1, 2]);
        assert_eq!(dag.successors(0), &[1, 2]);
        assert_eq!(dag.predecessors(3), &[1, 2]);
    }

    #[test]
    fn cycle_is_rejected() {
        let err = JobDag::builder()
            .task(t(1))
            .task(t(1))
            .edge(0, 1, 0)
            .edge(1, 0, 0)
            .build()
            .unwrap_err();
        assert_eq!(err, BuildDagError::Cyclic);
    }

    #[test]
    fn self_loop_is_rejected() {
        let err = JobDag::builder()
            .task(t(1))
            .edge(0, 0, 0)
            .build()
            .unwrap_err();
        assert_eq!(err, BuildDagError::SelfLoop { task: 0 });
    }

    #[test]
    fn out_of_range_edge_is_rejected() {
        let err = JobDag::builder()
            .task(t(1))
            .edge(0, 5, 0)
            .build()
            .unwrap_err();
        assert_eq!(err, BuildDagError::EdgeOutOfRange { edge: (0, 5) });
    }

    #[test]
    fn empty_job_is_rejected() {
        assert_eq!(JobDag::builder().build().unwrap_err(), BuildDagError::Empty);
    }

    #[test]
    fn edge_bytes_lookup() {
        let dag = JobDag::builder()
            .task(t(1))
            .task(t(1))
            .edge(0, 1, 1234)
            .build()
            .unwrap();
        assert_eq!(dag.edge_bytes(0, 1), Some(1234));
        assert_eq!(dag.edge_bytes(1, 0), None);
    }

    #[test]
    fn error_display_is_lowercase_prose() {
        assert_eq!(
            BuildDagError::Cyclic.to_string(),
            "task dependencies form a cycle"
        );
    }
}
