//! Task service-time distributions (§III-A: "various types of workloads
//! with different levels of computation intensiveness").

use holdcsim_des::rng::SimRng;
use holdcsim_des::time::SimDuration;

/// A distribution of task service times.
///
/// # Examples
///
/// ```
/// use holdcsim_workload::service::ServiceDist;
/// use holdcsim_des::rng::SimRng;
/// use holdcsim_des::time::SimDuration;
///
/// let mut rng = SimRng::seed_from(1);
/// let d = ServiceDist::Deterministic(SimDuration::from_millis(5));
/// assert_eq!(d.sample(&mut rng), SimDuration::from_millis(5));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceDist {
    /// Always exactly this long.
    Deterministic(SimDuration),
    /// Exponentially distributed with the given mean (the paper's default
    /// for both web search and web serving).
    Exponential {
        /// Mean service time.
        mean: SimDuration,
    },
    /// Uniform in `[lo, hi]` (Fig. 4 uses 3–10 ms).
    Uniform {
        /// Lower bound.
        lo: SimDuration,
        /// Upper bound.
        hi: SimDuration,
    },
    /// Log-normal with the given median and sigma of the underlying normal;
    /// models heavy-ish tails seen in interactive services.
    LogNormal {
        /// Median service time (`exp(mu)` of the underlying normal).
        median: SimDuration,
        /// Sigma of the underlying normal distribution.
        sigma: f64,
    },
}

impl ServiceDist {
    /// Draws one service time.
    pub fn sample(&self, rng: &mut SimRng) -> SimDuration {
        match *self {
            ServiceDist::Deterministic(d) => d,
            ServiceDist::Exponential { mean } => {
                let m = mean.as_secs_f64();
                SimDuration::from_secs_f64(rng.exp(1.0 / m))
            }
            ServiceDist::Uniform { lo, hi } => {
                debug_assert!(lo <= hi, "uniform bounds inverted");
                let s = rng.uniform_range(lo.as_secs_f64(), hi.as_secs_f64());
                SimDuration::from_secs_f64(s)
            }
            ServiceDist::LogNormal { median, sigma } => {
                let mu = median.as_secs_f64().ln();
                let z = rng.normal(0.0, 1.0);
                SimDuration::from_secs_f64((mu + sigma * z).exp())
            }
        }
    }

    /// The distribution's mean service time.
    pub fn mean(&self) -> SimDuration {
        match *self {
            ServiceDist::Deterministic(d) => d,
            ServiceDist::Exponential { mean } => mean,
            ServiceDist::Uniform { lo, hi } => (lo + hi) / 2,
            ServiceDist::LogNormal { median, sigma } => {
                SimDuration::from_secs_f64(median.as_secs_f64() * (sigma * sigma / 2.0).exp())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_mean(d: &ServiceDist, n: usize) -> f64 {
        let mut rng = SimRng::seed_from(42);
        (0..n)
            .map(|_| d.sample(&mut rng).as_secs_f64())
            .sum::<f64>()
            / n as f64
    }

    #[test]
    fn deterministic_is_exact() {
        let d = ServiceDist::Deterministic(SimDuration::from_millis(7));
        assert_eq!(d.mean(), SimDuration::from_millis(7));
        assert!((sample_mean(&d, 10) - 0.007).abs() < 1e-12);
    }

    #[test]
    fn exponential_mean_converges() {
        let d = ServiceDist::Exponential {
            mean: SimDuration::from_millis(5),
        };
        let m = sample_mean(&d, 100_000);
        assert!((m - 0.005).abs() < 0.0002, "mean {m}");
    }

    #[test]
    fn uniform_stays_in_bounds() {
        let d = ServiceDist::Uniform {
            lo: SimDuration::from_millis(3),
            hi: SimDuration::from_millis(10),
        };
        let mut rng = SimRng::seed_from(9);
        for _ in 0..10_000 {
            let s = d.sample(&mut rng);
            assert!(s >= SimDuration::from_millis(3) && s <= SimDuration::from_millis(10));
        }
        assert_eq!(d.mean(), SimDuration::from_micros(6_500));
    }

    #[test]
    fn lognormal_mean_formula() {
        let d = ServiceDist::LogNormal {
            median: SimDuration::from_millis(10),
            sigma: 0.5,
        };
        let analytic = d.mean().as_secs_f64();
        let empirical = sample_mean(&d, 200_000);
        assert!(
            (empirical - analytic).abs() / analytic < 0.02,
            "{empirical} vs {analytic}"
        );
    }
}
