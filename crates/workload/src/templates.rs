//! Job templates: recipes that stamp out [`JobDag`]s with sampled service
//! times (§III-C's web-request and search examples, plus random DAGs).

use holdcsim_des::rng::SimRng;
use holdcsim_des::time::SimDuration;

use crate::dag::{JobDag, TaskSpec};
use crate::service::ServiceDist;

/// A recipe for generating job DAGs.
///
/// # Examples
///
/// ```
/// use holdcsim_workload::templates::JobTemplate;
/// use holdcsim_workload::service::ServiceDist;
/// use holdcsim_des::rng::SimRng;
/// use holdcsim_des::time::SimDuration;
///
/// let tmpl = JobTemplate::two_tier(
///     ServiceDist::Deterministic(SimDuration::from_millis(2)),
///     ServiceDist::Deterministic(SimDuration::from_millis(6)),
///     64 * 1024,
/// );
/// let mut rng = SimRng::seed_from(1);
/// let dag = tmpl.generate(&mut rng);
/// assert_eq!(dag.len(), 2);
/// assert_eq!(dag.edges().len(), 1);
/// ```
#[derive(Debug, Clone)]
pub enum JobTemplate {
    /// One task per job (the paper's Fig. 4–6 and validation studies).
    SingleTask {
        /// Service-time distribution.
        service: ServiceDist,
        /// Compute intensiveness of the task.
        intensity: f64,
    },
    /// App-server task followed by a database task (§III-C's web request).
    TwoTier {
        /// Front-tier (app server) service time.
        app: ServiceDist,
        /// Back-tier (database) service time.
        db: ServiceDist,
        /// Result bytes shipped from app to db task.
        transfer_bytes: u64,
    },
    /// Root fans out to `width` leaf tasks whose results are aggregated by
    /// a final task (web search scatter-gather, §II).
    FanOutFanIn {
        /// Root (request parsing / scatter) service time.
        root: ServiceDist,
        /// Leaf (index shard) service time.
        leaf: ServiceDist,
        /// Aggregator service time.
        agg: ServiceDist,
        /// Number of leaves.
        width: u32,
        /// Bytes from each leaf to the aggregator.
        transfer_bytes: u64,
    },
    /// A random layered DAG: `layers` layers of up to `max_width` tasks,
    /// each task depending on 1..=2 tasks of the previous layer. Exercises
    /// arbitrary spatial/temporal dependence.
    RandomDag {
        /// Per-task service time.
        service: ServiceDist,
        /// Number of layers (≥ 1).
        layers: u32,
        /// Maximum tasks per layer (≥ 1).
        max_width: u32,
        /// Bytes per dependency edge.
        transfer_bytes: u64,
    },
}

impl JobTemplate {
    /// A single-task, fully compute-bound template.
    pub fn single(service: ServiceDist) -> Self {
        JobTemplate::SingleTask {
            service,
            intensity: 1.0,
        }
    }

    /// A two-tier web-request template.
    pub fn two_tier(app: ServiceDist, db: ServiceDist, transfer_bytes: u64) -> Self {
        JobTemplate::TwoTier {
            app,
            db,
            transfer_bytes,
        }
    }

    /// Stamps out one job DAG into `dag`, reusing its allocations where the
    /// template shape allows (single-task jobs — the scalability hot path);
    /// other shapes fall back to [`generate`](Self::generate).
    pub fn generate_into(&self, rng: &mut SimRng, dag: &mut JobDag) {
        match self {
            JobTemplate::SingleTask { service, intensity } => dag.reset_single(TaskSpec {
                service: service.sample(rng),
                intensity: *intensity,
                server_class: None,
            }),
            other => *dag = other.generate(rng),
        }
    }

    /// Stamps out one job DAG, sampling all service times.
    pub fn generate(&self, rng: &mut SimRng) -> JobDag {
        match self {
            JobTemplate::SingleTask { service, intensity } => JobDag::single(TaskSpec {
                service: service.sample(rng),
                intensity: *intensity,
                server_class: None,
            }),
            JobTemplate::TwoTier {
                app,
                db,
                transfer_bytes,
            } => JobDag::builder()
                .task(TaskSpec {
                    service: app.sample(rng),
                    intensity: 1.0,
                    server_class: Some(0),
                })
                .task(TaskSpec {
                    service: db.sample(rng),
                    intensity: 0.6,
                    server_class: Some(1),
                })
                .edge(0, 1, *transfer_bytes)
                .build()
                .expect("two-tier template is statically acyclic"),
            JobTemplate::FanOutFanIn {
                root,
                leaf,
                agg,
                width,
                transfer_bytes,
            } => {
                let width = (*width).max(1);
                let mut b = JobDag::builder().task(TaskSpec::compute(root.sample(rng)));
                for i in 0..width {
                    b = b
                        .task(TaskSpec::compute(leaf.sample(rng)))
                        .edge(0, i + 1, *transfer_bytes);
                }
                b = b.task(TaskSpec::compute(agg.sample(rng)));
                let agg_idx = width + 1;
                for i in 0..width {
                    b = b.edge(i + 1, agg_idx, *transfer_bytes);
                }
                b.build().expect("fan-out template is statically acyclic")
            }
            JobTemplate::RandomDag {
                service,
                layers,
                max_width,
                transfer_bytes,
            } => {
                let layers = (*layers).max(1);
                let max_width = (*max_width).max(1);
                let mut b = JobDag::builder();
                let mut layer_tasks: Vec<Vec<u32>> = Vec::new();
                let mut next_idx = 0u32;
                for l in 0..layers {
                    let width = 1 + rng.below(max_width as u64) as u32;
                    let mut this_layer = Vec::new();
                    for _ in 0..width {
                        b = b.task(TaskSpec::compute(service.sample(rng)));
                        let idx = next_idx;
                        next_idx += 1;
                        if l > 0 {
                            let prev = &layer_tasks[(l - 1) as usize];
                            let deps = 1 + rng.below(2.min(prev.len() as u64)) as usize;
                            let mut picked = prev.clone();
                            rng.shuffle(&mut picked);
                            for &p in picked.iter().take(deps) {
                                b = b.edge(p, idx, *transfer_bytes);
                            }
                        }
                        this_layer.push(idx);
                    }
                    layer_tasks.push(this_layer);
                }
                b.build()
                    .expect("layered random DAG is acyclic by construction")
            }
        }
    }

    /// Expected total work per job (sum of mean service times), useful for
    /// utilization calculations with multi-task jobs.
    pub fn mean_total_work(&self) -> SimDuration {
        match self {
            JobTemplate::SingleTask { service, .. } => service.mean(),
            JobTemplate::TwoTier { app, db, .. } => app.mean() + db.mean(),
            JobTemplate::FanOutFanIn {
                root,
                leaf,
                agg,
                width,
                ..
            } => root.mean() + leaf.mean() * (*width).max(1) as u64 + agg.mean(),
            JobTemplate::RandomDag {
                service,
                layers,
                max_width,
                ..
            } => {
                // Expected width = (1 + max_width)/2.
                let exp_tasks = (*layers).max(1) as f64 * (1.0 + (*max_width).max(1) as f64) / 2.0;
                service.mean().mul_f64(exp_tasks)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det(ms: u64) -> ServiceDist {
        ServiceDist::Deterministic(SimDuration::from_millis(ms))
    }

    #[test]
    fn single_task_generates_one_task() {
        let mut rng = SimRng::seed_from(1);
        let dag = JobTemplate::single(det(5)).generate(&mut rng);
        assert_eq!(dag.len(), 1);
        assert!(dag.edges().is_empty());
        assert_eq!(dag.task(0).service, SimDuration::from_millis(5));
    }

    #[test]
    fn two_tier_shape_and_classes() {
        let mut rng = SimRng::seed_from(2);
        let dag = JobTemplate::two_tier(det(2), det(6), 1024).generate(&mut rng);
        assert_eq!(dag.len(), 2);
        assert_eq!(dag.roots(), &[0]);
        assert_eq!(dag.task(0).server_class, Some(0));
        assert_eq!(dag.task(1).server_class, Some(1));
        assert_eq!(dag.edge_bytes(0, 1), Some(1024));
        assert_eq!(dag.critical_path(), SimDuration::from_millis(8));
    }

    #[test]
    fn fan_out_fan_in_shape() {
        let mut rng = SimRng::seed_from(3);
        let tmpl = JobTemplate::FanOutFanIn {
            root: det(1),
            leaf: det(4),
            agg: det(2),
            width: 8,
            transfer_bytes: 512,
        };
        let dag = tmpl.generate(&mut rng);
        assert_eq!(dag.len(), 10);
        assert_eq!(dag.roots(), &[0]);
        assert_eq!(dag.successors(0).len(), 8);
        assert_eq!(dag.predecessors(9).len(), 8);
        assert_eq!(dag.critical_path(), SimDuration::from_millis(7));
        assert_eq!(tmpl.mean_total_work(), SimDuration::from_millis(1 + 32 + 2));
    }

    #[test]
    fn random_dag_is_valid_and_layered() {
        let mut rng = SimRng::seed_from(4);
        for _ in 0..50 {
            let dag = JobTemplate::RandomDag {
                service: det(1),
                layers: 4,
                max_width: 3,
                transfer_bytes: 10,
            }
            .generate(&mut rng);
            assert!(dag.len() >= 4);
            assert!(dag.len() <= 12);
            // Built successfully => acyclic; every non-root has a predecessor.
            let roots = dag.roots().len();
            assert!(roots >= 1);
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let tmpl = JobTemplate::RandomDag {
            service: ServiceDist::Exponential {
                mean: SimDuration::from_millis(5),
            },
            layers: 3,
            max_width: 4,
            transfer_bytes: 7,
        };
        let a = tmpl.generate(&mut SimRng::seed_from(9));
        let b = tmpl.generate(&mut SimRng::seed_from(9));
        assert_eq!(a, b);
    }
}
