//! Job arrival processes (§III-D): Poisson, 2-state MMPP (bursty), and
//! trace replay.

use holdcsim_des::rng::SimRng;
use holdcsim_des::time::{SimDuration, SimTime};

/// A source of job inter-arrival gaps.
///
/// Implementations are exhausted when they return `None` (trace replay);
/// stochastic processes are unbounded.
pub trait ArrivalProcess: std::fmt::Debug {
    /// The gap between the previous arrival and the next one, or `None`
    /// when the source is exhausted.
    fn next_gap(&mut self, rng: &mut SimRng) -> Option<SimDuration>;

    /// The long-run mean arrival rate in jobs/second, if known (used for
    /// utilization bookkeeping and reports).
    fn mean_rate(&self) -> Option<f64> {
        None
    }
}

/// Poisson arrivals: i.i.d. exponential gaps with rate λ (jobs/second).
///
/// # Examples
///
/// ```
/// use holdcsim_workload::arrivals::{ArrivalProcess, PoissonArrivals};
/// use holdcsim_des::rng::SimRng;
///
/// let mut p = PoissonArrivals::new(100.0);
/// let mut rng = SimRng::seed_from(1);
/// assert!(p.next_gap(&mut rng).is_some());
/// assert_eq!(p.mean_rate(), Some(100.0));
/// ```
#[derive(Debug, Clone)]
pub struct PoissonArrivals {
    rate: f64,
}

impl PoissonArrivals {
    /// Creates a Poisson process with `rate` jobs/second.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive and finite.
    pub fn new(rate: f64) -> Self {
        assert!(
            rate.is_finite() && rate > 0.0,
            "arrival rate must be positive"
        );
        PoissonArrivals { rate }
    }

    /// The arrival rate λ that produces system utilization `rho` on
    /// `n_servers` servers of `n_cores` cores with mean service time
    /// `mean_service` (the paper's ρ = λ / (µ · nServers · nCores)).
    pub fn rate_for_utilization(
        rho: f64,
        n_servers: usize,
        n_cores: usize,
        mean_service: SimDuration,
    ) -> f64 {
        let mu = 1.0 / mean_service.as_secs_f64();
        rho * mu * n_servers as f64 * n_cores as f64
    }
}

impl ArrivalProcess for PoissonArrivals {
    fn next_gap(&mut self, rng: &mut SimRng) -> Option<SimDuration> {
        Some(SimDuration::from_secs_f64(rng.exp(self.rate)))
    }

    fn mean_rate(&self) -> Option<f64> {
        Some(self.rate)
    }
}

/// Which MMPP state the modulating Markov chain is in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MmppState {
    Bursty,
    Calm,
}

/// 2-state Markov-Modulated Poisson Process (§III-D): a bursty state with
/// arrival rate λ_h and a calm state with λ_l, with exponential dwell times.
///
/// Burstiness is tuned by the rate ratio `R_a = λ_h/λ_l` and the fraction
/// of time spent bursty.
#[derive(Debug, Clone)]
pub struct Mmpp2Arrivals {
    lambda_h: f64,
    lambda_l: f64,
    /// Rate of leaving the bursty state (1/mean bursty dwell).
    exit_bursty: f64,
    /// Rate of leaving the calm state.
    exit_calm: f64,
    state: MmppState,
    /// Time left until the pending state switch.
    until_switch: f64,
}

impl Mmpp2Arrivals {
    /// Creates an MMPP(2) with bursty/calm arrival rates (jobs/s) and mean
    /// dwell times in each state (seconds).
    ///
    /// # Panics
    ///
    /// Panics if any rate or dwell is not strictly positive and finite.
    pub fn new(lambda_h: f64, lambda_l: f64, mean_bursty_dwell: f64, mean_calm_dwell: f64) -> Self {
        for (name, v) in [
            ("lambda_h", lambda_h),
            ("lambda_l", lambda_l),
            ("mean_bursty_dwell", mean_bursty_dwell),
            ("mean_calm_dwell", mean_calm_dwell),
        ] {
            assert!(v.is_finite() && v > 0.0, "{name} must be positive");
        }
        Mmpp2Arrivals {
            lambda_h,
            lambda_l,
            exit_bursty: 1.0 / mean_bursty_dwell,
            exit_calm: 1.0 / mean_calm_dwell,
            state: MmppState::Calm,
            until_switch: 0.0,
        }
    }

    /// Convenience constructor from a base rate, burst ratio
    /// `R_a = λ_h/λ_l`, and the long-run fraction of time spent bursty.
    ///
    /// The long-run mean rate equals
    /// `base_rate` (i.e. λ_l and λ_h are chosen so the weighted average is
    /// `base_rate`), letting experiments hold utilization constant while
    /// sweeping burstiness.
    ///
    /// # Panics
    ///
    /// Panics if `burst_ratio < 1`, `bursty_fraction` is outside (0, 1), or
    /// any derived rate is non-positive.
    pub fn with_burstiness(
        base_rate: f64,
        burst_ratio: f64,
        bursty_fraction: f64,
        mean_bursty_dwell: f64,
    ) -> Self {
        assert!(burst_ratio >= 1.0, "burst ratio must be >= 1");
        assert!(
            bursty_fraction > 0.0 && bursty_fraction < 1.0,
            "bursty fraction must be in (0, 1)"
        );
        // base = f*λh + (1-f)*λl, with λh = R*λl.
        let lambda_l = base_rate / (bursty_fraction * burst_ratio + (1.0 - bursty_fraction));
        let lambda_h = burst_ratio * lambda_l;
        let mean_calm_dwell = mean_bursty_dwell * (1.0 - bursty_fraction) / bursty_fraction;
        Self::new(lambda_h, lambda_l, mean_bursty_dwell, mean_calm_dwell)
    }

    fn current_lambda(&self) -> f64 {
        match self.state {
            MmppState::Bursty => self.lambda_h,
            MmppState::Calm => self.lambda_l,
        }
    }

    fn current_exit(&self) -> f64 {
        match self.state {
            MmppState::Bursty => self.exit_bursty,
            MmppState::Calm => self.exit_calm,
        }
    }
}

impl ArrivalProcess for Mmpp2Arrivals {
    fn next_gap(&mut self, rng: &mut SimRng) -> Option<SimDuration> {
        // Competing exponentials: next arrival vs next state switch; walk
        // through switches until an arrival wins.
        let mut gap = 0.0;
        loop {
            if self.until_switch <= 0.0 {
                self.until_switch = rng.exp(self.current_exit());
            }
            let to_arrival = rng.exp(self.current_lambda());
            if to_arrival < self.until_switch {
                self.until_switch -= to_arrival;
                gap += to_arrival;
                return Some(SimDuration::from_secs_f64(gap));
            }
            gap += self.until_switch;
            self.until_switch = 0.0;
            self.state = match self.state {
                MmppState::Bursty => MmppState::Calm,
                MmppState::Calm => MmppState::Bursty,
            };
        }
    }

    fn mean_rate(&self) -> Option<f64> {
        // Stationary fraction bursty = exit_calm/(exit_calm+exit_bursty)
        // (dwell-time weighted).
        let f_bursty = (1.0 / self.exit_bursty) / (1.0 / self.exit_bursty + 1.0 / self.exit_calm);
        Some(f_bursty * self.lambda_h + (1.0 - f_bursty) * self.lambda_l)
    }
}

/// Replays a fixed sequence of arrival instants (trace-based simulation,
/// §III-D). Produces gaps between consecutive timestamps, then `None`.
#[derive(Debug, Clone)]
pub struct TraceArrivals {
    times: Vec<SimTime>,
    next: usize,
    last: SimTime,
}

impl TraceArrivals {
    /// Creates a replay source from arrival instants.
    ///
    /// The timestamps are sorted internally; duplicates are allowed (two
    /// jobs in the same instant).
    pub fn new(mut times: Vec<SimTime>) -> Self {
        times.sort_unstable();
        TraceArrivals {
            times,
            next: 0,
            last: SimTime::ZERO,
        }
    }

    /// Number of arrivals remaining.
    pub fn remaining(&self) -> usize {
        self.times.len() - self.next
    }

    /// Total number of arrivals in the trace.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// `true` if the trace has no arrivals.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }
}

impl ArrivalProcess for TraceArrivals {
    fn next_gap(&mut self, _rng: &mut SimRng) -> Option<SimDuration> {
        let t = *self.times.get(self.next)?;
        self.next += 1;
        let gap = t.saturating_duration_since(self.last);
        self.last = t;
        Some(gap)
    }

    fn mean_rate(&self) -> Option<f64> {
        let (first, last) = (self.times.first()?, self.times.last()?);
        let span = last.saturating_duration_since(*first).as_secs_f64();
        if span <= 0.0 {
            return None;
        }
        Some((self.times.len() - 1) as f64 / span)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_rate(p: &mut dyn ArrivalProcess, n: usize, seed: u64) -> f64 {
        let mut rng = SimRng::seed_from(seed);
        let total: f64 = (0..n)
            .map(|_| p.next_gap(&mut rng).unwrap().as_secs_f64())
            .sum();
        n as f64 / total
    }

    #[test]
    fn poisson_rate_converges() {
        let mut p = PoissonArrivals::new(50.0);
        let r = drain_rate(&mut p, 100_000, 1);
        assert!((r - 50.0).abs() < 1.0, "rate {r}");
    }

    #[test]
    fn rate_for_utilization_matches_paper_formula() {
        // rho = lambda/(mu*nServers*nCores)
        let lambda = PoissonArrivals::rate_for_utilization(0.3, 50, 4, SimDuration::from_millis(5));
        assert!((lambda - 0.3 * 200.0 * 200.0).abs() < 1e-9); // mu=200/s
    }

    #[test]
    fn mmpp_mean_rate_matches_empirical() {
        let mut p = Mmpp2Arrivals::new(200.0, 20.0, 0.5, 2.0);
        let analytic = p.mean_rate().unwrap();
        let empirical = drain_rate(&mut p, 200_000, 2);
        assert!(
            (empirical - analytic).abs() / analytic < 0.05,
            "{empirical} vs {analytic}"
        );
    }

    #[test]
    fn mmpp_with_burstiness_preserves_base_rate() {
        let mut p = Mmpp2Arrivals::with_burstiness(100.0, 10.0, 0.2, 1.0);
        let analytic = p.mean_rate().unwrap();
        assert!((analytic - 100.0).abs() < 1e-9, "analytic {analytic}");
        let empirical = drain_rate(&mut p, 200_000, 3);
        assert!((empirical - 100.0).abs() < 5.0, "empirical {empirical}");
    }

    #[test]
    fn mmpp_is_burstier_than_poisson() {
        // Squared coefficient of variation of gaps: Poisson = 1, MMPP > 1.
        let mut rng = SimRng::seed_from(4);
        let mut p = Mmpp2Arrivals::with_burstiness(100.0, 20.0, 0.1, 0.5);
        let gaps: Vec<f64> = (0..100_000)
            .map(|_| p.next_gap(&mut rng).unwrap().as_secs_f64())
            .collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / gaps.len() as f64;
        let scv = var / (mean * mean);
        assert!(scv > 1.5, "scv {scv}");
    }

    #[test]
    fn trace_replay_produces_exact_gaps() {
        let mut t = TraceArrivals::new(vec![
            SimTime::from_millis(10),
            SimTime::from_millis(5),
            SimTime::from_millis(30),
        ]);
        let mut rng = SimRng::seed_from(0);
        assert_eq!(t.len(), 3);
        assert_eq!(t.next_gap(&mut rng), Some(SimDuration::from_millis(5)));
        assert_eq!(t.next_gap(&mut rng), Some(SimDuration::from_millis(5)));
        assert_eq!(t.next_gap(&mut rng), Some(SimDuration::from_millis(20)));
        assert_eq!(t.next_gap(&mut rng), None);
        assert_eq!(t.remaining(), 0);
    }

    #[test]
    fn trace_mean_rate() {
        let t = TraceArrivals::new((0..=10).map(SimTime::from_secs).collect());
        assert_eq!(t.mean_rate(), Some(1.0));
        assert_eq!(TraceArrivals::new(vec![]).mean_rate(), None);
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn poisson_rejects_zero_rate() {
        let _ = PoissonArrivals::new(0.0);
    }
}
