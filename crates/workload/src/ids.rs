//! Identifiers for jobs and tasks.

use std::fmt;

/// Identifies one job (one user service request) for the lifetime of a
/// simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct JobId(pub u64);

/// Identifies one task within a job: the pair of the owning [`JobId`] and
/// the task's index in the job's DAG.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId {
    /// The owning job.
    pub job: JobId,
    /// Index of the task within the job's DAG (dense, 0-based).
    pub index: u32,
}

impl TaskId {
    /// Creates a task id.
    pub fn new(job: JobId, index: u32) -> Self {
        TaskId { job, index }
    }
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job#{}", self.0)
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.t{}", self.job, self.index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let t = TaskId::new(JobId(7), 2);
        assert_eq!(t.to_string(), "job#7.t2");
    }

    #[test]
    fn ordering_is_by_job_then_index() {
        let a = TaskId::new(JobId(1), 9);
        let b = TaskId::new(JobId(2), 0);
        assert!(a < b);
    }
}
