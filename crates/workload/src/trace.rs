//! Synthetic request traces standing in for the paper's proprietary inputs.
//!
//! The paper drives several case studies from the Wikipedia request trace
//! \[59\] and the NLANR HTTP trace \[2\]; neither is redistributable here, so
//! this module generates statistically similar arrival-time vectors (see
//! DESIGN.md §2 for the substitution argument):
//!
//! * [`SyntheticTrace::wikipedia_like`] — diurnal sinusoid + slow weekly
//!   modulation + multiplicative noise over an inhomogeneous Poisson
//!   process (Lewis thinning).
//! * [`SyntheticTrace::nlanr_like`] — bursty MMPP-driven arrivals typical
//!   of aggregated HTTP gateways.
//!
//! Traces serialize to/from a one-timestamp-per-line text format so users
//! can swap in real traces.

use holdcsim_des::rng::SimRng;
use holdcsim_des::time::{SimDuration, SimTime};

use crate::arrivals::{ArrivalProcess, Mmpp2Arrivals};

/// Generators for synthetic arrival traces.
#[derive(Debug)]
pub struct SyntheticTrace;

impl SyntheticTrace {
    /// A Wikipedia-style trace: base rate with a diurnal sinusoid, a weekly
    /// envelope, and lognormal-ish noise, realized by thinning.
    ///
    /// * `duration` — covered time span.
    /// * `base_rate` — long-run mean arrival rate (jobs/s).
    /// * `diurnal_amplitude` — peak-to-mean swing in `[0, 1)` (0.5 means
    ///   the rate swings ±50 % over a day).
    /// * `day` — length of the modeled "day" (compressible so short
    ///   simulations still see full diurnal cycles).
    ///
    /// # Panics
    ///
    /// Panics if `base_rate <= 0`, `diurnal_amplitude ∉ [0, 1)`, or `day`
    /// is zero.
    pub fn wikipedia_like(
        duration: SimDuration,
        base_rate: f64,
        diurnal_amplitude: f64,
        day: SimDuration,
        rng: &mut SimRng,
    ) -> Vec<SimTime> {
        assert!(base_rate > 0.0, "base_rate must be positive");
        assert!(
            (0.0..1.0).contains(&diurnal_amplitude),
            "diurnal amplitude must be in [0, 1)"
        );
        assert!(!day.is_zero(), "day length must be positive");
        let week = day * 7;
        let noise_amp = 0.08;
        let rate = |t: f64| -> f64 {
            let daily =
                1.0 + diurnal_amplitude * (std::f64::consts::TAU * t / day.as_secs_f64()).sin();
            let weekly = 1.0 + 0.15 * (std::f64::consts::TAU * t / week.as_secs_f64()).sin();
            base_rate * daily * weekly
        };
        // Thinning bound: the max of the modulation envelope plus noise.
        let lambda_max = base_rate * (1.0 + diurnal_amplitude) * 1.15 * (1.0 + noise_amp);
        let horizon = duration.as_secs_f64();
        let mut times = Vec::new();
        let mut t = 0.0;
        loop {
            t += rng.exp(lambda_max);
            if t >= horizon {
                break;
            }
            let jitter = 1.0 + noise_amp * (2.0 * rng.uniform_f64() - 1.0);
            if rng.uniform_f64() < (rate(t) * jitter) / lambda_max {
                times.push(SimTime::from_nanos((t * 1e9) as u64));
            }
        }
        times
    }

    /// An NLANR-style trace: bursty HTTP arrivals from an MMPP(2) source.
    ///
    /// # Panics
    ///
    /// Panics if `base_rate <= 0`.
    pub fn nlanr_like(duration: SimDuration, base_rate: f64, rng: &mut SimRng) -> Vec<SimTime> {
        assert!(base_rate > 0.0, "base_rate must be positive");
        let mut p = Mmpp2Arrivals::with_burstiness(base_rate, 8.0, 0.15, 5.0);
        let mut times = Vec::new();
        let mut t = SimTime::ZERO;
        while let Some(gap) = p.next_gap(rng) {
            t += gap;
            if t > SimTime::ZERO + duration {
                break;
            }
            times.push(t);
        }
        times
    }
}

/// Serializes a trace as one fractional-seconds timestamp per line.
pub fn to_text(times: &[SimTime]) -> String {
    let mut out = String::with_capacity(times.len() * 12);
    for t in times {
        out.push_str(&format!("{:.9}\n", t.as_secs_f64()));
    }
    out
}

/// Errors from [`from_text`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    /// 1-based line number of the offending entry.
    pub line: usize,
}

impl std::fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid timestamp on line {}", self.line)
    }
}

impl std::error::Error for ParseTraceError {}

/// Parses a trace produced by [`to_text`] (or a real-world trace in the
/// same one-timestamp-per-line format). Blank lines and `#` comments are
/// skipped.
///
/// # Errors
///
/// Returns [`ParseTraceError`] with the offending line number if a line is
/// not a non-negative decimal number of seconds.
pub fn from_text(text: &str) -> Result<Vec<SimTime>, ParseTraceError> {
    let mut times = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let secs: f64 = line.parse().map_err(|_| ParseTraceError { line: i + 1 })?;
        if !secs.is_finite() || secs < 0.0 {
            return Err(ParseTraceError { line: i + 1 });
        }
        times.push(SimTime::from_nanos((secs * 1e9).round() as u64));
    }
    Ok(times)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wikipedia_like_hits_target_rate() {
        let mut rng = SimRng::seed_from(1);
        let dur = SimDuration::from_secs(2_000);
        let times =
            SyntheticTrace::wikipedia_like(dur, 40.0, 0.5, SimDuration::from_secs(500), &mut rng);
        let rate = times.len() as f64 / 2_000.0;
        assert!((rate - 40.0).abs() < 4.0, "rate {rate}");
        // Sorted and within the horizon.
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        assert!(times.last().unwrap().as_secs_f64() < 2_000.0);
    }

    #[test]
    fn wikipedia_like_shows_diurnal_swing() {
        let mut rng = SimRng::seed_from(2);
        let day = SimDuration::from_secs(1_000);
        let times =
            SyntheticTrace::wikipedia_like(SimDuration::from_secs(1_000), 50.0, 0.8, day, &mut rng);
        // First quarter of the "day" is the sinusoid's rising peak; third
        // quarter is the trough.
        let peak = times
            .iter()
            .filter(|t| (0.0..250.0).contains(&t.as_secs_f64()))
            .count();
        let trough = times
            .iter()
            .filter(|t| (500.0..750.0).contains(&t.as_secs_f64()))
            .count();
        assert!(
            peak as f64 > 2.0 * trough as f64,
            "peak {peak} vs trough {trough}"
        );
    }

    #[test]
    fn nlanr_like_is_bounded_and_sorted() {
        let mut rng = SimRng::seed_from(3);
        let times = SyntheticTrace::nlanr_like(SimDuration::from_secs(500), 30.0, &mut rng);
        assert!(!times.is_empty());
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        assert!(times.last().unwrap().as_secs_f64() <= 500.0);
    }

    #[test]
    fn text_round_trip() {
        let times = vec![
            SimTime::from_millis(1),
            SimTime::from_millis(2500),
            SimTime::from_secs(7),
        ];
        let text = to_text(&times);
        assert_eq!(from_text(&text).unwrap(), times);
    }

    #[test]
    fn from_text_skips_comments_and_blanks() {
        let parsed = from_text("# header\n\n0.5\n 1.5 \n").unwrap();
        assert_eq!(
            parsed,
            vec![SimTime::from_millis(500), SimTime::from_millis(1500)]
        );
    }

    #[test]
    fn from_text_reports_bad_line() {
        let err = from_text("0.5\nnot-a-number\n").unwrap_err();
        assert_eq!(err.line, 2);
        let err = from_text("-1.0\n").unwrap_err();
        assert_eq!(err.line, 1);
    }
}
