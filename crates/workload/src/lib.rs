//! # holdcsim-workload
//!
//! Workload modeling for HolDCSim-RS (§III-C/D of the paper): arrival
//! processes (Poisson, 2-state MMPP, trace replay), synthetic trace
//! generators standing in for the Wikipedia/NLANR traces, service-time
//! distributions, and DAG-structured jobs with spatial and temporal
//! dependence.
//!
//! ```
//! use holdcsim_workload::prelude::*;
//! use holdcsim_des::rng::SimRng;
//!
//! let mut rng = SimRng::seed_from(7);
//! let tmpl = WorkloadPreset::WebSearch.template();
//! let dag = tmpl.generate(&mut rng);
//! assert_eq!(dag.len(), 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod arrivals;
pub mod dag;
pub mod ids;
pub mod presets;
pub mod service;
pub mod templates;
pub mod trace;

pub use arrivals::{ArrivalProcess, Mmpp2Arrivals, PoissonArrivals, TraceArrivals};
pub use dag::{BuildDagError, DagEdge, JobDag, JobDagBuilder, TaskSpec};
pub use ids::{JobId, TaskId};
pub use presets::WorkloadPreset;
pub use service::ServiceDist;
pub use templates::JobTemplate;

/// Convenience re-exports for downstream crates.
pub mod prelude {
    pub use crate::arrivals::{ArrivalProcess, Mmpp2Arrivals, PoissonArrivals, TraceArrivals};
    pub use crate::dag::{JobDag, TaskSpec};
    pub use crate::ids::{JobId, TaskId};
    pub use crate::presets::WorkloadPreset;
    pub use crate::service::ServiceDist;
    pub use crate::templates::JobTemplate;
    pub use crate::trace::SyntheticTrace;
}
