//! DES kernel microbenchmarks: calendar throughput and a dense M/M/1-style
//! event chain — the raw event rate behind Table I's scalability.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use holdcsim_des::engine::{Context, Engine, Model};
use holdcsim_des::queue::EventQueue;
use holdcsim_des::rng::SimRng;
use holdcsim_des::time::{SimDuration, SimTime};

fn queue_push_pop(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    for n in [1_000u64, 100_000] {
        g.throughput(Throughput::Elements(n));
        g.bench_function(format!("push_pop_{n}"), |b| {
            b.iter_batched(
                || {
                    let mut rng = SimRng::seed_from(1);
                    let times: Vec<SimTime> =
                        (0..n).map(|_| SimTime::from_nanos(rng.next_u64() >> 20)).collect();
                    times
                },
                |times| {
                    let mut q = EventQueue::new();
                    for &t in &times {
                        q.push(t, ());
                    }
                    while q.pop().is_some() {}
                },
                BatchSize::SmallInput,
            );
        });
    }
    g.finish();
}

struct Pingpong {
    remaining: u64,
    rng: SimRng,
}

impl Model for Pingpong {
    type Event = ();
    fn handle(&mut self, ctx: &mut Context<'_, ()>, _: ()) {
        if self.remaining > 0 {
            self.remaining -= 1;
            let gap = SimDuration::from_nanos(1 + (self.rng.next_u64() & 0xFFFF));
            ctx.schedule_in(gap, ());
        }
    }
}

fn engine_event_chain(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    let n = 100_000u64;
    g.throughput(Throughput::Elements(n));
    g.bench_function("event_chain_100k", |b| {
        b.iter(|| {
            let mut e = Engine::new(Pingpong { remaining: n, rng: SimRng::seed_from(3) });
            e.schedule_at(SimTime::ZERO, ());
            e.run();
            assert_eq!(e.events_processed(), n + 1);
        });
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = queue_push_pop, engine_event_chain
}
criterion_main!(benches);
