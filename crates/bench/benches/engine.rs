//! DES kernel microbenchmarks: calendar throughput and a dense M/M/1-style
//! event chain — the raw event rate behind Table I's scalability.
//!
//! Run with `cargo bench --bench engine` (add `-- --quick` for a reduced
//! sample count); compiled in CI via `cargo bench --no-run`.

use holdcsim_bench::{bench, quick_mode};
use holdcsim_des::engine::{Context, Engine, Model};
use holdcsim_des::queue::EventQueue;
use holdcsim_des::rng::SimRng;
use holdcsim_des::time::{SimDuration, SimTime};

fn queue_push_pop(samples: u32) {
    for n in [1_000u64, 100_000] {
        let mut rng = SimRng::seed_from(1);
        let times: Vec<SimTime> = (0..n)
            .map(|_| SimTime::from_nanos(rng.next_u64() >> 20))
            .collect();
        bench(
            &format!("event_queue/push_pop_{n}"),
            samples,
            Some(n),
            || {
                let mut q = EventQueue::new();
                for &t in &times {
                    q.push(t, ());
                }
                while q.pop().is_some() {}
            },
        );
    }
}

struct Pingpong {
    remaining: u64,
    rng: SimRng,
}

impl Model for Pingpong {
    type Event = ();
    fn handle(&mut self, ctx: &mut Context<'_, ()>, _: ()) {
        if self.remaining > 0 {
            self.remaining -= 1;
            let gap = SimDuration::from_nanos(1 + (self.rng.next_u64() & 0xFFFF));
            ctx.schedule_in(gap, ());
        }
    }
}

fn engine_event_chain(samples: u32) {
    let n = 100_000u64;
    bench("engine/event_chain_100k", samples, Some(n), || {
        let mut e = Engine::new(Pingpong {
            remaining: n,
            rng: SimRng::seed_from(3),
        });
        e.schedule_at(SimTime::ZERO, ());
        e.run();
        assert_eq!(e.events_processed(), n + 1);
    });
}

fn main() {
    let samples = if quick_mode() { 3 } else { 20 };
    queue_push_pop(samples);
    engine_event_chain(samples);
}
