//! End-to-end scalability: events/second for full farm simulations at
//! increasing server counts (Table I's >20 K-server claim; the 20 480
//! point runs in the `table1_scalability` binary to keep `cargo bench`
//! fast).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use holdcsim::config::{PolicyKind, SimConfig};
use holdcsim::sim::Simulation;
use holdcsim_des::time::SimDuration;
use holdcsim_workload::presets::WorkloadPreset;

fn farm_bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("scalability");
    g.sample_size(10);
    for servers in [100usize, 1_000, 4_000] {
        // Fix the simulated horizon; jobs scale with the farm.
        let cfg = SimConfig::server_farm(
            servers,
            4,
            0.3,
            WorkloadPreset::WebSearch.template(),
            SimDuration::from_millis(100),
        )
        .with_policy(PolicyKind::RoundRobin);
        // Measure throughput in processed events.
        let events = Simulation::new(cfg.clone()).run().events_processed;
        g.throughput(Throughput::Elements(events));
        g.bench_function(format!("farm_{servers}"), |b| {
            b.iter(|| Simulation::new(cfg.clone()).run().events_processed);
        });
    }
    g.finish();
}

criterion_group!(benches, farm_bench);
criterion_main!(benches);
