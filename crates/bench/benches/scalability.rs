//! End-to-end scalability: events/second for full farm simulations at
//! increasing server counts (Table I's >20 K-server claim; the 20 480
//! point runs in the `table1_scalability` binary to keep `cargo bench`
//! fast, and `holdcsim bench-scale` records the tracked baseline).
//!
//! Run with `cargo bench --bench scalability` (add `-- --quick` for a
//! reduced grid); compiled in CI via `cargo bench --no-run`.

use holdcsim::config::{PolicyKind, SimConfig};
use holdcsim::sim::Simulation;
use holdcsim_bench::{bench, quick_mode};
use holdcsim_des::time::SimDuration;
use holdcsim_workload::presets::WorkloadPreset;

fn main() {
    let quick = quick_mode();
    let samples = if quick { 3 } else { 10 };
    let sizes: &[usize] = if quick { &[100] } else { &[100, 1_000, 4_000] };
    for &servers in sizes {
        // Fix the simulated horizon; jobs scale with the farm.
        let cfg = SimConfig::server_farm(
            servers,
            4,
            0.3,
            WorkloadPreset::WebSearch.template(),
            SimDuration::from_millis(100),
        )
        .with_policy(PolicyKind::RoundRobin);
        // Measure throughput in processed events.
        let events = Simulation::new(cfg.clone()).run().events_processed;
        bench(
            &format!("scalability/farm_{servers}"),
            samples,
            Some(events),
            || Simulation::new(cfg.clone()).run().events_processed,
        );
    }
}
