//! Fair-share solver microbenchmarks: the add/remove/re-solve microcosts
//! of all three [`holdcsim_network::flow::FlowSolverKind`] arms over a
//! fat tree — a steady churn of random-pair flows, plus an
//! overloaded-fabric incast scenario (many flows per bottleneck link)
//! where the per-flow arms pay O(flows) per rate shift and the cohort
//! arm pays O(links) — the isolated cost of what `FlowNet` does once
//! per admission and completion in flow mode.
//!
//! Run with `cargo bench --bench flow_solver` (add `-- --quick` for a
//! reduced grid); compiled in CI via `cargo bench --no-run`.

use holdcsim_bench::{bench, quick_mode};
use holdcsim_des::rng::SimRng;
use holdcsim_des::time::{SimDuration, SimTime};
use holdcsim_network::flow::{FlowNet, FlowSolverKind};
use holdcsim_network::ids::FlowId;
use holdcsim_network::routing::Router;
use holdcsim_network::topologies::{fat_tree, LinkSpec};

/// One churn run: fill the fabric with `live` flows, then sustain
/// `steps` of add + complete-next at steady state. Returns the number of
/// solver invocations (adds + completion batches).
fn churn(kind: FlowSolverKind, k: usize, live: usize, steps: usize, seed: u64) -> u64 {
    let built = fat_tree(k, LinkSpec::gigabit());
    let topo = built.topology;
    let hosts = built.hosts;
    let mut router = Router::new();
    let mut net = FlowNet::with_solver(&topo, kind);
    let mut rng = SimRng::seed_from(seed);
    let mut now = SimTime::ZERO;
    let mut next_id = 0u64;
    let mut admit = |net: &mut FlowNet, now: SimTime, rng: &mut SimRng, next_id: &mut u64| {
        let i = rng.below(hosts.len() as u64) as usize;
        let j = (i + 1 + rng.below(hosts.len() as u64 - 1) as usize) % hosts.len();
        let links = router.route(&topo, hosts[i], hosts[j], *next_id).unwrap();
        net.add_flow(
            now,
            FlowId(*next_id),
            hosts[i],
            hosts[j],
            &links.links,
            64 * 1024,
        );
        *next_id += 1;
    };
    for _ in 0..live {
        admit(&mut net, now, &mut rng, &mut next_id);
    }
    let mut ops = live as u64;
    for _ in 0..steps {
        now += SimDuration::from_micros(1 + rng.below(20));
        admit(&mut net, now, &mut rng, &mut next_id);
        if let Some(due) = net.next_due() {
            now = now.max(due);
            net.advance_due(due);
            net.take_completed();
        }
        ops += 2;
    }
    ops
}

/// One overloaded-fabric run: `fan_in` concurrent senders per receiver
/// converge on each of `sinks` hot hosts (every hot downlink carries one
/// big bottleneck cohort), then sustain `steps` of add-into-the-incast +
/// complete-next. Every admission and completion shifts a whole
/// cohort's fair share, so the per-flow arms settle/retime `fan_in`
/// flows per op while the cohort arm updates one cell.
fn incast(
    kind: FlowSolverKind,
    k: usize,
    sinks: usize,
    fan_in: usize,
    steps: usize,
    seed: u64,
) -> u64 {
    let built = fat_tree(k, LinkSpec::gigabit());
    let topo = built.topology;
    let hosts = built.hosts;
    let mut router = Router::new();
    let mut net = FlowNet::with_solver(&topo, kind);
    let mut rng = SimRng::seed_from(seed);
    let mut now = SimTime::ZERO;
    let mut next_id = 0u64;
    let mut admit = |net: &mut FlowNet, now: SimTime, rng: &mut SimRng, next_id: &mut u64| {
        let sink = (*next_id as usize) % sinks;
        let mut i = rng.below(hosts.len() as u64) as usize;
        if i == sink {
            i = (i + 1) % hosts.len();
        }
        let links = router
            .route(&topo, hosts[i], hosts[sink], *next_id)
            .unwrap();
        net.add_flow(
            now,
            FlowId(*next_id),
            hosts[i],
            hosts[sink],
            &links.links,
            256 * 1024,
        );
        *next_id += 1;
    };
    for _ in 0..sinks * fan_in {
        admit(&mut net, now, &mut rng, &mut next_id);
    }
    let mut ops = (sinks * fan_in) as u64;
    for _ in 0..steps {
        now += SimDuration::from_micros(1 + rng.below(20));
        admit(&mut net, now, &mut rng, &mut next_id);
        if let Some(due) = net.next_due() {
            now = now.max(due);
            net.advance_due(due);
            net.take_completed();
        }
        ops += 2;
    }
    ops
}

const KINDS: [FlowSolverKind; 3] = [
    FlowSolverKind::Incremental,
    FlowSolverKind::Reference,
    FlowSolverKind::Cohort,
];

fn main() {
    let quick = quick_mode();
    let samples = if quick { 3 } else { 10 };
    let steps = if quick { 500 } else { 5_000 };
    for &(k, live) in if quick {
        &[(4, 64)][..]
    } else {
        &[(4, 64), (8, 512), (8, 2048)][..]
    } {
        for kind in KINDS {
            let label = format!("flow_solver/{}/k{k}_live{live}", kind.label());
            let ops = churn(kind, k, live, steps, 42);
            bench(&label, samples, Some(ops), || {
                churn(kind, k, live, steps, 42)
            });
        }
    }
    // Overloaded fabric: few hot links, many flows per bottleneck.
    for &(k, sinks, fan_in) in if quick {
        &[(4, 2, 32)][..]
    } else {
        &[(4, 2, 64), (8, 4, 128)][..]
    } {
        for kind in KINDS {
            let label = format!(
                "flow_solver/{}/incast_k{k}_s{sinks}_f{fan_in}",
                kind.label()
            );
            let ops = incast(kind, k, sinks, fan_in, steps, 42);
            bench(&label, samples, Some(ops), || {
                incast(kind, k, sinks, fan_in, steps, 42)
            });
        }
    }
}
