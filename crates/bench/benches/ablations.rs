//! Design-choice ablations (DESIGN.md §6): flow vs packet communication
//! granularity, and unified vs per-core local queues.
//!
//! Run with `cargo bench --bench ablations` (add `-- --quick` for a
//! reduced sample count); compiled in CI via `cargo bench --no-run`.

use holdcsim::config::{ArrivalConfig, CommModel, NetworkConfig, SimConfig};
use holdcsim::sim::Simulation;
use holdcsim_bench::{bench, quick_mode};
use holdcsim_des::time::{SimDuration, SimTime};
use holdcsim_server::server::LocalQueueMode;
use holdcsim_workload::presets::WorkloadPreset;
use holdcsim_workload::service::ServiceDist;
use holdcsim_workload::templates::JobTemplate;

/// Fat-tree DAG workload once with flows, once with packets. The flow
/// model should be dramatically cheaper in events for the same traffic.
fn comm_granularity(samples: u32) {
    let template = JobTemplate::two_tier(
        ServiceDist::Exponential {
            mean: SimDuration::from_millis(5),
        },
        ServiceDist::Exponential {
            mean: SimDuration::from_millis(10),
        },
        300_000, // 300 kB per edge: 200 packets
    );
    let base = |comm: CommModel| {
        let mut cfg =
            SimConfig::server_farm(16, 4, 0.2, template.clone(), SimDuration::from_secs(2));
        let mut rng = holdcsim_des::rng::SimRng::seed_from(5);
        let mut t = SimTime::ZERO;
        let times: Vec<SimTime> = (0..400)
            .map(|_| {
                t += SimDuration::from_secs_f64(rng.exp(400.0));
                t
            })
            .collect();
        cfg.arrivals = ArrivalConfig::Trace(times);
        let mut net = NetworkConfig::fat_tree(4);
        net.comm = comm;
        cfg.network = Some(net);
        cfg
    };
    let flow_cfg = base(CommModel::Flow);
    bench("comm_granularity/flow", samples, None, || {
        Simulation::new(flow_cfg.clone()).run().events_processed
    });
    let packet_cfg = base(CommModel::Packet {
        mtu: 1_500,
        buffer_bytes: 1 << 20,
    });
    bench("comm_granularity/packet", samples, None, || {
        Simulation::new(packet_cfg.clone()).run().events_processed
    });
}

/// Unified vs per-core local queues ([37]'s tail-latency question); the
/// bench reports runtime, the printed p99 shows the latency effect.
fn local_queue(samples: u32) {
    let base = |mode: LocalQueueMode| {
        let mut cfg = SimConfig::server_farm(
            8,
            4,
            0.7,
            WorkloadPreset::WebSearch.template(),
            SimDuration::from_secs(3),
        );
        cfg.queue_mode = mode;
        cfg
    };
    // Print the latency comparison once, outside measurement.
    let uni = Simulation::new(base(LocalQueueMode::Unified)).run();
    let per = Simulation::new(base(LocalQueueMode::PerCore)).run();
    eprintln!(
        "# local-queue ablation @ rho=0.7: unified p99 {:.2} ms, per-core p99 {:.2} ms",
        uni.latency.p99 * 1e3,
        per.latency.p99 * 1e3
    );
    let uni_cfg = base(LocalQueueMode::Unified);
    bench("local_queue/unified", samples, None, || {
        Simulation::new(uni_cfg.clone()).run().jobs_completed
    });
    let per_cfg = base(LocalQueueMode::PerCore);
    bench("local_queue/per_core", samples, None, || {
        Simulation::new(per_cfg.clone()).run().jobs_completed
    });
}

fn main() {
    let samples = if quick_mode() { 3 } else { 10 };
    comm_granularity(samples);
    local_queue(samples);
}
