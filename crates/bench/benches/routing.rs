//! Routing benchmarks and the path-cache ablation (DESIGN.md §6.1):
//! BFS-on-demand vs the cached distance fields, on fat-tree and BCube.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use holdcsim_des::rng::SimRng;
use holdcsim_network::routing::Router;
use holdcsim_network::topologies::{bcube, fat_tree, LinkSpec};

fn route_benches(c: &mut Criterion) {
    let ft = fat_tree(8, LinkSpec::ten_gigabit());
    let bc = bcube(4, 2, LinkSpec::gigabit());
    let mut g = c.benchmark_group("routing");
    let n_pairs = 256u64;
    g.throughput(Throughput::Elements(n_pairs));

    for (name, built) in [("fat_tree_k8", &ft), ("bcube_4_2", &bc)] {
        // Ablation arm 1: cold cache per batch (dynamic routing).
        g.bench_function(format!("{name}_cold_cache"), |b| {
            b.iter(|| {
                let mut router = Router::new();
                let mut rng = SimRng::seed_from(7);
                for i in 0..n_pairs {
                    let a = *rng.choose(&built.hosts).unwrap();
                    let z = *rng.choose(&built.hosts).unwrap();
                    let _ = router.route(&built.topology, a, z, i);
                }
            });
        });
        // Ablation arm 2: warm cache (static routes).
        g.bench_function(format!("{name}_warm_cache"), |b| {
            let mut router = Router::new();
            // Pre-warm every destination.
            for &h in &built.hosts {
                let _ = router.distance(&built.topology, built.hosts[0], h);
            }
            b.iter(|| {
                let mut rng = SimRng::seed_from(7);
                for i in 0..n_pairs {
                    let a = *rng.choose(&built.hosts).unwrap();
                    let z = *rng.choose(&built.hosts).unwrap();
                    let _ = router.route(&built.topology, a, z, i);
                }
            });
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = route_benches
}
criterion_main!(benches);
