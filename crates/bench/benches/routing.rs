//! Routing benchmarks and the path-cache ablation (DESIGN.md §6.1):
//! BFS-on-demand vs the cached distance fields, on fat-tree and BCube.
//!
//! Run with `cargo bench --bench routing` (add `-- --quick` for a reduced
//! sample count); compiled in CI via `cargo bench --no-run`.

use holdcsim_bench::{bench, quick_mode};
use holdcsim_des::rng::SimRng;
use holdcsim_network::routing::Router;
use holdcsim_network::topologies::{bcube, fat_tree, LinkSpec};

fn main() {
    let samples = if quick_mode() { 3 } else { 15 };
    let ft = fat_tree(8, LinkSpec::ten_gigabit());
    let bc = bcube(4, 2, LinkSpec::gigabit());
    let n_pairs = 256u64;

    for (name, built) in [("fat_tree_k8", &ft), ("bcube_4_2", &bc)] {
        // Ablation arm 1: cold cache per batch (dynamic routing).
        bench(
            &format!("routing/{name}_cold_cache"),
            samples,
            Some(n_pairs),
            || {
                let mut router = Router::new();
                let mut rng = SimRng::seed_from(7);
                for i in 0..n_pairs {
                    let a = *rng.choose(&built.hosts).unwrap();
                    let z = *rng.choose(&built.hosts).unwrap();
                    let _ = router.route(&built.topology, a, z, i);
                }
            },
        );
        // Ablation arm 2: warm cache (static routes).
        let mut router = Router::new();
        // Pre-warm every destination.
        for &h in &built.hosts {
            let _ = router.distance(&built.topology, built.hosts[0], h);
        }
        bench(
            &format!("routing/{name}_warm_cache"),
            samples,
            Some(n_pairs),
            || {
                let mut rng = SimRng::seed_from(7);
                for i in 0..n_pairs {
                    let a = *rng.choose(&built.hosts).unwrap();
                    let z = *rng.choose(&built.hosts).unwrap();
                    let _ = router.route(&built.topology, a, z, i);
                }
            },
        );
    }
}
