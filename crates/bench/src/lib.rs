//! # holdcsim-bench
//!
//! Figure/table regeneration binaries (`src/bin/`) and dependency-free
//! benchmarks (`benches/`, `harness = false`) for HolDCSim-RS. Each binary
//! prints the rows or series of one table/figure from the paper; see
//! DESIGN.md §5 for the index and EXPERIMENTS.md for recorded
//! paper-vs-measured outcomes.
//!
//! Binaries accept `--quick` to run a reduced-scale version (useful in CI).
//! Benchmarks use the [`bench()`] mini-harness below (best-of-N wall-clock
//! timing via `std::time::Instant`), so `cargo bench` needs no external
//! benchmarking crate and CI's `cargo bench --no-run` keeps the sources
//! compiling.

use std::time::Instant;

/// `true` if the process arguments request a reduced-scale run.
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Times `f` for `samples` runs after one warm-up and prints the best and
/// mean wall-clock per run, plus throughput when `elements` is given (the
/// number of items one run processes). Returns the best seconds/run.
#[allow(clippy::disallowed_methods)] // wall-clock is the measurement itself
pub fn bench<R>(name: &str, samples: u32, elements: Option<u64>, mut f: impl FnMut() -> R) -> f64 {
    std::hint::black_box(f()); // warm-up
    let mut best = f64::MAX;
    let mut total = 0.0;
    for _ in 0..samples.max(1) {
        let t0 = Instant::now();
        std::hint::black_box(f());
        let dt = t0.elapsed().as_secs_f64();
        best = best.min(dt);
        total += dt;
    }
    let mean = total / samples.max(1) as f64;
    match elements {
        Some(n) => println!(
            "{name:<40} best {best:>11.6} s  mean {mean:>11.6} s  {:>12.0} elem/s",
            n as f64 / best.max(1e-12)
        ),
        None => println!("{name:<40} best {best:>11.6} s  mean {mean:>11.6} s"),
    }
    best
}

/// Scales a full-size parameter down in quick mode.
pub fn scaled(full: u64, quick: u64) -> u64 {
    if quick_mode() {
        quick
    } else {
        full
    }
}

/// Prints a markdown-style table row.
pub fn row(cells: &[String]) {
    println!("| {} |", cells.join(" | "));
}

#[cfg(test)]
mod tests {
    #[test]
    fn scaled_picks_full_without_flag() {
        // Test binaries carry extra args, but never `--quick`.
        assert_eq!(super::scaled(10, 1), 10);
    }
}
