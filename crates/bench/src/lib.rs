//! # holdcsim-bench
//!
//! Figure/table regeneration binaries (`src/bin/`) and Criterion
//! benchmarks (`benches/`) for HolDCSim-RS. Each binary prints the rows or
//! series of one table/figure from the paper; see DESIGN.md §5 for the
//! index and EXPERIMENTS.md for recorded paper-vs-measured outcomes.
//!
//! Binaries accept `--quick` to run a reduced-scale version (useful in CI).

/// `true` if the process arguments request a reduced-scale run.
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Scales a full-size parameter down in quick mode.
pub fn scaled(full: u64, quick: u64) -> u64 {
    if quick_mode() {
        quick
    } else {
        full
    }
}

/// Prints a markdown-style table row.
pub fn row(cells: &[String]) {
    println!("| {} |", cells.join(" | "));
}

#[cfg(test)]
mod tests {
    #[test]
    fn scaled_picks_full_without_flag() {
        // Test binaries carry extra args, but never `--quick`.
        assert_eq!(super::scaled(10, 1), 10);
    }
}
