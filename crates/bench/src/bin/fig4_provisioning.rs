//! Fig. 4: number of active jobs and active servers over time under the
//! dynamic provisioning policy (50 × 4-core servers, Wikipedia-like trace,
//! 3–10 ms tasks).

use holdcsim::experiments::fig4_provisioning;
use holdcsim_bench::{quick_mode, scaled};
use holdcsim_des::time::SimDuration;

fn main() {
    let servers = scaled(50, 10) as usize;
    let duration = SimDuration::from_secs(scaled(1_200, 60));
    eprintln!("# Fig. 4 — provisioning ({servers} servers, {duration}, quick={})", quick_mode());
    let r = fig4_provisioning(servers, duration, 42);

    println!("time_s,active_jobs,active_servers");
    // Decimate to ~200 printed points.
    let stride = (r.time_s.len() / 200).max(1);
    for i in (0..r.time_s.len()).step_by(stride) {
        println!("{:.0},{:.1},{:.0}", r.time_s[i], r.active_jobs[i], r.active_servers[i]);
    }
    let min = r.active_servers.iter().copied().fold(f64::MAX, f64::min);
    let max = r.active_servers.iter().copied().fold(0.0, f64::max);
    eprintln!(
        "# active servers ranged {min:.0}..{max:.0} of {servers}; {} jobs completed; p95 {:.1} ms",
        r.report.jobs_completed,
        r.report.latency.p95 * 1e3,
    );
}
