//! Fig. 4: number of active jobs and active servers over time under the
//! dynamic provisioning policy (50 × 4-core servers, Wikipedia-like trace,
//! 3–10 ms tasks).
//!
//! Thin shim over `holdcsim-harness` (also available as `holdcsim fig 4`).

use holdcsim_harness::exec::default_threads;
use holdcsim_harness::figs::{fig4, FigScale};

fn main() {
    fig4(&FigScale {
        quick: holdcsim_bench::quick_mode(),
        threads: default_threads(),
        seed: 42,
    });
}
