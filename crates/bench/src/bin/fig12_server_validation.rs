//! Fig. 12: server power validation — simulated 10-core Xeon E5-2680
//! package power vs the reference model, replaying an NLANR-like trace.

use holdcsim::validation::server_power_validation;
use holdcsim_bench::scaled;
use holdcsim_des::time::SimDuration;

fn main() {
    let duration = SimDuration::from_secs(scaled(1_000, 60));
    eprintln!("# Fig. 12 — server power validation ({duration})");
    let r = server_power_validation(duration, 42);

    println!("time_s,simulated_W,reference_W");
    let stride = (r.simulated_w.len() / 200).max(1);
    for i in (0..r.simulated_w.len()).step_by(stride) {
        println!("{i},{:.3},{:.3}", r.simulated_w[i], r.reference_w[i]);
    }
    eprintln!(
        "# mean |diff| = {:.3} W ({:.2}% of mean power), diff sd = {:.3} W (paper: 0.22 W / ~1.3%)",
        r.mean_abs_diff_w,
        100.0 * r.mean_abs_diff_w / r.mean_reference_w,
        r.diff_std_w
    );
}
