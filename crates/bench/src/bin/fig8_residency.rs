//! Fig. 8: servers' state residency (Active / Wake-up / Idle / Pkg C6 /
//! Sys Sleep) under the workload-adaptive energy-latency framework, for
//! utilizations 0.1–0.9, on a 10-server × 10-core farm.

use holdcsim::experiments::fig8_residency;
use holdcsim_bench::scaled;
use holdcsim_des::time::SimDuration;
use holdcsim_workload::presets::WorkloadPreset;

fn main() {
    let duration = SimDuration::from_secs(scaled(120, 30));
    let servers = scaled(10, 4) as usize;
    let cores = scaled(10, 4) as u32;
    let rhos: Vec<f64> = (1..=9).map(|i| i as f64 / 10.0).collect();
    for preset in [WorkloadPreset::WebSearch, WorkloadPreset::WebServing] {
        eprintln!("# Fig. 8 — {preset} ({servers} servers x {cores} cores, {duration})");
        println!("rho,active,wakeup,idle,pkg_c6,sys_sleep,p90_ms");
        for bar in fig8_residency(preset, &rhos, servers, cores, duration, 42) {
            let (a, w, i, c6, s3) = bar.bands;
            println!(
                "{:.1},{:.3},{:.3},{:.3},{:.3},{:.3},{:.2}",
                bar.rho, a, w, i, c6, s3, bar.p90_s * 1e3
            );
        }
    }
}
