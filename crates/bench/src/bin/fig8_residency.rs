//! Fig. 8: servers' state residency (Active / Wake-up / Idle / Pkg C6 /
//! Sys Sleep) under the workload-adaptive energy-latency framework, for
//! utilizations 0.1–0.9, on a 10-server × 10-core farm.
//!
//! Thin shim over `holdcsim-harness` (also available as `holdcsim fig 8`).

use holdcsim_harness::exec::default_threads;
use holdcsim_harness::figs::{fig8, FigScale};

fn main() {
    fig8(&FigScale {
        quick: holdcsim_bench::quick_mode(),
        threads: default_threads(),
        seed: 42,
    });
}
