//! Footnote 1 of §IV-B: the single delay timer under bursty (MMPP)
//! arrivals — energy stays low but QoS collapses as bursts catch servers
//! in deep sleep, motivating the workload-adaptive framework of §IV-C.

use holdcsim::experiments::footnote1_burstiness;
use holdcsim_bench::scaled;
use holdcsim_des::time::SimDuration;
use holdcsim_workload::presets::WorkloadPreset;

fn main() {
    let servers = scaled(50, 8) as usize;
    let duration = SimDuration::from_secs(scaled(150, 40));
    let ratios = [1.0, 2.0, 5.0, 10.0, 20.0];
    eprintln!("# Footnote 1 — delay timer (tau = 0.4 s) under MMPP bursts");
    println!("burst_ratio,energy_MJ,p95_ms,p99_ms");
    for p in footnote1_burstiness(
        WorkloadPreset::WebSearch,
        0.3,
        &ratios,
        0.4,
        servers,
        4,
        duration,
        42,
    ) {
        println!(
            "{},{:.4},{:.1},{:.1}",
            p.burst_ratio,
            p.energy_j / 1e6,
            p.p95_s * 1e3,
            p.p99_s * 1e3
        );
    }
}
