//! Fig. 9: per-server energy breakdown (CPU / DRAM / platform) under the
//! delay-timer policy vs the workload-adaptive two-pool scheduler
//! (10 servers × 10 cores, Wikipedia-like trace).
//!
//! Thin shim over `holdcsim-harness` (also available as `holdcsim fig 9`).

use holdcsim_harness::exec::default_threads;
use holdcsim_harness::figs::{fig9, FigScale};

fn main() {
    fig9(&FigScale {
        quick: holdcsim_bench::quick_mode(),
        threads: default_threads(),
        seed: 42,
    });
}
