//! Fig. 9: per-server energy breakdown (CPU / DRAM / platform) under the
//! delay-timer policy vs the workload-adaptive two-pool scheduler
//! (10 servers × 10 cores, Wikipedia-like trace).

use holdcsim::experiments::fig9_breakdown;
use holdcsim_bench::scaled;
use holdcsim_des::time::SimDuration;

fn main() {
    let servers = scaled(10, 4) as usize;
    let cores = scaled(10, 4) as u32;
    let duration = SimDuration::from_secs(scaled(300, 40));
    eprintln!("# Fig. 9 — breakdown ({servers} servers x {cores} cores, {duration})");
    let r = fig9_breakdown(servers, cores, duration, 42);

    println!("strategy,server,cpu_kJ,dram_kJ,platform_kJ");
    for (i, (c, d, p)) in r.delay_timer.iter().enumerate() {
        println!("delay-timer,{},{:.2},{:.2},{:.2}", i + 1, c / 1e3, d / 1e3, p / 1e3);
    }
    for (i, (c, d, p)) in r.adaptive.iter().enumerate() {
        println!("workload-adaptive,{},{:.2},{:.2},{:.2}", i + 1, c / 1e3, d / 1e3, p / 1e3);
    }
    eprintln!(
        "# totals: delay-timer {:.1} kJ, adaptive {:.1} kJ -> {:.1}% saving (paper: 39%)",
        r.total_delay_timer_j / 1e3,
        r.total_adaptive_j / 1e3,
        r.adaptive_saving() * 100.0
    );
}
