//! Fig. 11: server & network power for Server-Load-Balance vs
//! Server-Network-Aware placement on a fat-tree (k=4), plus the job
//! response-time CDF for 2000 jobs with 100 MB inter-task flows.

use holdcsim::experiments::fig11_joint;
use holdcsim_bench::{row, scaled};
use holdcsim_des::time::SimDuration;

fn main() {
    let jobs = scaled(2_000, 300) as usize;
    let flow_bytes = scaled(100_000_000, 10_000_000);
    let drain = SimDuration::from_secs(scaled(30, 10));

    row(&["rho".into(), "policy".into(), "server W".into(), "network W".into(),
          "p95 ms".into(), "jobs".into()]);
    let mut cdfs = Vec::new();
    for rho in [0.3, 0.6] {
        let r = fig11_joint(rho, jobs, flow_bytes, drain, 42);
        for (name, p) in [("server-load-balance", &r.balanced), ("server-network-aware", &r.aware)] {
            row(&[
                format!("{rho}"),
                name.into(),
                format!("{:.1}", p.server_power_w),
                format!("{:.1}", p.network_power_w),
                format!("{:.1}", p.p95_s * 1e3),
                p.jobs.to_string(),
            ]);
        }
        eprintln!(
            "# rho={rho}: server saving {:.1}%, network saving {:.1}% (paper: ~20% / ~18%)",
            r.server_saving() * 100.0,
            r.network_saving() * 100.0
        );
        cdfs.push((rho, r));
    }

    // Fig. 11b: latency CDF for rho = 0.3.
    if let Some((rho, r)) = cdfs.first() {
        println!();
        println!("# CDF at rho={rho}: cdf_fraction,balanced_latency_s,aware_latency_s");
        let n = 50;
        for i in 1..=n {
            let q = i as f64 / n as f64;
            let pick = |cdf: &[(f64, f64)]| -> f64 {
                let idx = ((q * cdf.len() as f64).ceil() as usize).clamp(1, cdf.len());
                cdf[idx - 1].0
            };
            println!(
                "{:.2},{:.4},{:.4}",
                q,
                pick(&r.balanced.latency_cdf),
                pick(&r.aware.latency_cdf)
            );
        }
    }
}
