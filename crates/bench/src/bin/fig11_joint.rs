//! Fig. 11: server & network power for Server-Load-Balance vs
//! Server-Network-Aware placement on a fat-tree (k=4), plus the job
//! response-time CDF for 2000 jobs with 100 MB inter-task flows.
//!
//! Thin shim over `holdcsim-harness` (also available as `holdcsim fig 11`).

use holdcsim_harness::exec::default_threads;
use holdcsim_harness::figs::{fig11, FigScale};

fn main() {
    fig11(&FigScale {
        quick: holdcsim_bench::quick_mode(),
        threads: default_threads(),
        seed: 42,
    });
}
