//! Fig. 5: farm energy vs single delay-timer τ for web search (5 ms) and
//! web serving (120 ms) at ρ ∈ {0.1, 0.3, 0.6} — the U-shaped curves whose
//! optimum is stable across utilizations.

use holdcsim::experiments::fig5_delay_timer;
use holdcsim_bench::scaled;
use holdcsim_des::time::SimDuration;
use holdcsim_workload::presets::WorkloadPreset;

fn main() {
    let servers = scaled(50, 8) as usize;
    let duration = SimDuration::from_secs(scaled(150, 30));
    let rhos = [0.1, 0.3, 0.6];

    for (preset, taus) in [
        (
            WorkloadPreset::WebSearch,
            vec![0.05, 0.1, 0.2, 0.4, 0.8, 1.6, 3.0, 5.0],
        ),
        (
            WorkloadPreset::WebServing,
            vec![0.2, 0.5, 1.2, 2.4, 4.8, 8.0, 14.0, 20.0],
        ),
    ] {
        eprintln!("# Fig. 5 — {preset} ({servers} servers x 4 cores, {duration})");
        let curves = fig5_delay_timer(preset, &rhos, &taus, servers, 4, duration, 42);
        print!("tau_s");
        for c in &curves {
            print!(",energy_MJ_rho{}", c.rho);
        }
        println!();
        for (i, &tau) in taus.iter().enumerate() {
            print!("{tau}");
            for c in &curves {
                print!(",{:.4}", c.points[i].1 / 1e6);
            }
            println!();
        }
        for c in &curves {
            eprintln!("#   rho={}: optimal tau = {:.2} s", c.rho, c.optimal_tau_s());
        }
    }
}
