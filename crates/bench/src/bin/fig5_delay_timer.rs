//! Fig. 5: farm energy vs single delay-timer τ for web search (5 ms) and
//! web serving (120 ms) at ρ ∈ {0.1, 0.3, 0.6} — the U-shaped curves whose
//! optimum is stable across utilizations.
//!
//! Thin shim over `holdcsim-harness`: the sweep itself is a
//! [`holdcsim_harness::grid::SweepPlan`] run in parallel (also available
//! as `holdcsim fig 5`).

use holdcsim_harness::exec::default_threads;
use holdcsim_harness::figs::{fig5, FigScale};

fn main() {
    fig5(&FigScale {
        quick: holdcsim_bench::quick_mode(),
        threads: default_threads(),
        seed: 42,
    });
}
