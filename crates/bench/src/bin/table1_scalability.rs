//! Table I (scalability row): HolDCSim handles >20 K servers. Runs
//! server-only farms of increasing size and reports event throughput.
//!
//! Thin shim over `holdcsim-harness` (also available as
//! `holdcsim fig table1`).

use holdcsim_harness::exec::default_threads;
use holdcsim_harness::figs::{table1, FigScale};

fn main() {
    table1(&FigScale {
        quick: holdcsim_bench::quick_mode(),
        threads: default_threads(),
        seed: 42,
    });
}
