//! Table I (scalability row): HolDCSim handles >20 K servers. Runs
//! server-only farms of increasing size and reports event throughput.

use holdcsim::experiments::scalability;
use holdcsim_bench::{quick_mode, row, scaled};
use holdcsim_des::time::SimDuration;

fn main() {
    let sizes: Vec<usize> = if quick_mode() {
        vec![100, 1_000]
    } else {
        vec![1_000, 5_000, 20_480]
    };
    let duration = SimDuration::from_millis(scaled(2_000, 200));
    eprintln!("# Table I — scalability ({duration} simulated per size)");
    row(&["servers".into(), "events".into(), "wall s".into(), "events/s".into(), "jobs".into()]);
    for p in scalability(&sizes, duration, 42) {
        row(&[
            p.servers.to_string(),
            p.events.to_string(),
            format!("{:.2}", p.wall_s),
            format!("{:.0}", p.events_per_s),
            p.jobs.to_string(),
        ]);
    }
}
