//! Fig. 6: energy reduction of the dual-delay-timer policy vs the
//! Active-Idle baseline for web search / web serving at ρ ∈ {0.1, 0.3,
//! 0.6}, with 20 and 100 simulated servers.
//!
//! Thin shim over `holdcsim-harness`: the three policy arms of every cell
//! run concurrently (also available as `holdcsim fig 6`).

use holdcsim_harness::exec::default_threads;
use holdcsim_harness::figs::{fig6, FigScale};

fn main() {
    fig6(&FigScale {
        quick: holdcsim_bench::quick_mode(),
        threads: default_threads(),
        seed: 42,
    });
}
