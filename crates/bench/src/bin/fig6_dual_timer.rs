//! Fig. 6: energy reduction of the dual-delay-timer policy vs the
//! Active-Idle baseline for web search / web serving at ρ ∈ {0.1, 0.3,
//! 0.6}, with 20 and 100 simulated servers.

use holdcsim::experiments::fig6_dual_timer;
use holdcsim_bench::{row, scaled};
use holdcsim_des::time::SimDuration;
use holdcsim_workload::presets::WorkloadPreset;

fn main() {
    let duration = SimDuration::from_secs(scaled(120, 30));
    let farms = if holdcsim_bench::quick_mode() { vec![8] } else { vec![20, 100] };
    row(&["farm".into(), "workload".into(), "rho".into(),
          "E(active-idle) MJ".into(), "E(single) MJ".into(), "E(dual) MJ".into(),
          "reduction vs AI".into(), "reduction vs single".into(), "p95 dual ms".into()]);
    for &servers in &farms {
        for (preset, tau) in [
            (WorkloadPreset::WebSearch, 0.4),
            (WorkloadPreset::WebServing, 4.8),
        ] {
            for rho in [0.1, 0.3, 0.6] {
                let r = fig6_dual_timer(preset, rho, servers, 4, tau, duration, 42);
                row(&[
                    servers.to_string(),
                    preset.to_string(),
                    format!("{rho}"),
                    format!("{:.4}", r.energy_active_idle_j / 1e6),
                    format!("{:.4}", r.energy_single_j / 1e6),
                    format!("{:.4}", r.energy_dual_j / 1e6),
                    format!("{:.1}%", r.reduction_vs_active_idle() * 100.0),
                    format!("{:.1}%", r.reduction_vs_single() * 100.0),
                    format!("{:.1}", r.p95_dual_s * 1e3),
                ]);
            }
        }
    }
}
