//! Fig. 13/14: switch power validation — a 24-port Cisco WS-C2960-24-S
//! star serving a Wikipedia-like trace for 2 hours, simulated switch power
//! vs the log-driven reference model.

use holdcsim::validation::switch_power_validation;
use holdcsim_bench::scaled;
use holdcsim_des::time::SimDuration;

fn main() {
    let duration = SimDuration::from_secs(scaled(7_200, 120));
    eprintln!("# Fig. 13 — switch power validation ({duration})");
    let r = switch_power_validation(duration, 42);

    println!("time_s,simulated_W,reference_W");
    let stride = (r.simulated_w.len() / 240).max(1);
    for i in (0..r.simulated_w.len()).step_by(stride) {
        println!("{i},{:.3},{:.3}", r.simulated_w[i], r.reference_w[i]);
    }
    eprintln!(
        "# mean |diff| = {:.3} W, diff sd = {:.3} W (paper: <0.12 W, sd 0.04 W); mean power {:.2} W",
        r.mean_abs_diff_w, r.diff_std_w, r.mean_simulated_w
    );
}
