//! Fixture tests: every lint id is demonstrated by a pair of source
//! files under `tests/fixtures/` — one that must trigger it and one
//! that must stay clean — run through [`holdcsim_analysis::analyze_source`]
//! with pretend workspace paths that select the lint's scope. A second
//! group round-trips findings through an `analysis.toml` allowlist,
//! including the stale-entry ⇒ error contract.

use holdcsim_analysis::{analyze_source, config, Finding};

/// Lint ids present in `findings`, deduped, in first-seen order.
fn ids(findings: &[Finding]) -> Vec<&'static str> {
    let mut seen = Vec::new();
    for f in findings {
        if !seen.contains(&f.lint) {
            seen.push(f.lint);
        }
    }
    seen
}

fn assert_only(findings: &[Finding], lint: &str) {
    assert!(
        !findings.is_empty(),
        "expected at least one {lint} finding, got none"
    );
    for f in findings {
        assert_eq!(
            f.lint, lint,
            "expected only {lint} findings, got {} at {}:{} ({})",
            f.lint, f.path, f.line, f.message
        );
    }
}

// ---------------------------------------------------------------------
// D001 — HashMap/HashSet iteration in simulation crates.
// ---------------------------------------------------------------------

#[test]
fn d001_triggers_on_hash_iteration_in_sim_crate() {
    let findings = analyze_source(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/d001_trigger.rs"),
    );
    assert_only(&findings, "D001");
    // Both the `for .. in pending.iter()` loop and the `.keys()` chain.
    assert_eq!(findings.len(), 2, "{findings:#?}");
    assert!(findings[0].message.contains("`pending`"));
    assert!(findings[1].message.contains("`index`"));
    assert!(findings.iter().all(|f| !f.hint.is_empty() && f.line > 0));
}

#[test]
fn d001_clean_btreemap_lookups_and_test_models_pass() {
    let findings = analyze_source(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/d001_clean.rs"),
    );
    assert_eq!(ids(&findings), Vec::<&str>::new(), "{findings:#?}");
}

#[test]
fn d001_out_of_scope_outside_sim_crates() {
    // Same triggering source, but in the observability crate: D001 only
    // polices crates whose state drives the simulation trajectory.
    let findings = analyze_source(
        "crates/obs/src/fixture.rs",
        include_str!("fixtures/d001_trigger.rs"),
    );
    assert!(findings.is_empty(), "{findings:#?}");
}

// ---------------------------------------------------------------------
// D002 — wall-clock reads outside obs/harness timing.
// ---------------------------------------------------------------------

#[test]
fn d002_triggers_on_wall_clock_in_sim_crate() {
    let findings = analyze_source(
        "crates/network/src/fixture.rs",
        include_str!("fixtures/d002_trigger.rs"),
    );
    assert_only(&findings, "D002");
    assert_eq!(findings.len(), 2, "{findings:#?}");
    assert!(findings[0].message.contains("Instant::now"));
    assert!(findings[1].message.contains("SystemTime::now"));
}

#[test]
fn d002_clean_sim_time_only_passes() {
    let findings = analyze_source(
        "crates/network/src/fixture.rs",
        include_str!("fixtures/d002_clean.rs"),
    );
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn d002_out_of_scope_in_obs_crate() {
    let findings = analyze_source(
        "crates/obs/src/fixture.rs",
        include_str!("fixtures/d002_trigger.rs"),
    );
    assert!(findings.is_empty(), "{findings:#?}");
}

// ---------------------------------------------------------------------
// D003 — RNG construction bypassing substream derivation.
// ---------------------------------------------------------------------

#[test]
fn d003_triggers_on_raw_rng_construction() {
    let findings = analyze_source(
        "crates/sched/src/fixture.rs",
        include_str!("fixtures/d003_trigger.rs"),
    );
    assert_only(&findings, "D003");
    assert_eq!(findings.len(), 2, "{findings:#?}");
    assert!(findings[0].message.contains("seed_from"));
    assert!(findings[1].message.contains("SimRng::new"));
}

#[test]
fn d003_clean_substream_derivation_passes() {
    let findings = analyze_source(
        "crates/sched/src/fixture.rs",
        include_str!("fixtures/d003_clean.rs"),
    );
    assert!(findings.is_empty(), "{findings:#?}");
}

// ---------------------------------------------------------------------
// D004 — order-sensitive f64 accumulation in report paths.
// ---------------------------------------------------------------------

#[test]
fn d004_triggers_on_hash_order_accumulation_in_report_path() {
    // The obs crate is outside D001's scope, so the report path isolates
    // D004: both the chained `.sum()` and the `for`-body `+=` forms.
    let findings = analyze_source(
        "crates/obs/src/export.rs",
        include_str!("fixtures/d004_trigger.rs"),
    );
    assert_only(&findings, "D004");
    assert_eq!(findings.len(), 2, "{findings:#?}");
    assert!(findings[0].message.contains("`samples`"));
    assert!(findings[1].message.contains("`per_server`"));
}

#[test]
fn d004_clean_sorted_accumulation_passes() {
    let findings = analyze_source(
        "crates/obs/src/export.rs",
        include_str!("fixtures/d004_clean.rs"),
    );
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn d004_out_of_scope_outside_report_paths() {
    // Outside report/stats paths the accumulation is D001's business
    // (and here the crate is outside D001's scope too).
    let findings = analyze_source(
        "crates/obs/src/fixture.rs",
        include_str!("fixtures/d004_trigger.rs"),
    );
    assert!(findings.is_empty(), "{findings:#?}");
}

// ---------------------------------------------------------------------
// U001 — `unsafe` without a SAFETY comment.
// ---------------------------------------------------------------------

#[test]
fn u001_triggers_on_uncommented_unsafe() {
    let findings = analyze_source(
        "crates/workload/src/fixture.rs",
        include_str!("fixtures/u001_trigger.rs"),
    );
    assert_only(&findings, "U001");
    assert_eq!(findings.len(), 1, "{findings:#?}");
}

#[test]
fn u001_clean_safety_comment_passes() {
    let findings = analyze_source(
        "crates/workload/src/fixture.rs",
        include_str!("fixtures/u001_clean.rs"),
    );
    assert!(findings.is_empty(), "{findings:#?}");
}

// ---------------------------------------------------------------------
// P001 — panics in engine hot-path modules.
// ---------------------------------------------------------------------

#[test]
fn p001_triggers_on_panics_in_hot_path_module() {
    let findings = analyze_source(
        "crates/des/src/engine.rs",
        include_str!("fixtures/p001_trigger.rs"),
    );
    assert_only(&findings, "P001");
    assert_eq!(findings.len(), 3, "{findings:#?}");
    assert!(findings[0].message.contains("unwrap"));
    assert!(findings[1].message.contains("expect"));
    assert!(findings[2].message.contains("panic!"));
}

#[test]
fn p001_clean_option_propagation_and_test_asserts_pass() {
    let findings = analyze_source(
        "crates/des/src/engine.rs",
        include_str!("fixtures/p001_clean.rs"),
    );
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn p001_out_of_scope_outside_hot_path_modules() {
    let findings = analyze_source(
        "crates/core/src/model.rs",
        include_str!("fixtures/p001_trigger.rs"),
    );
    assert!(findings.is_empty(), "{findings:#?}");
}

// ---------------------------------------------------------------------
// Allowlist round-trip: suppression, contains-narrowing, stale ⇒ error.
// ---------------------------------------------------------------------

fn trigger_findings() -> Vec<Finding> {
    analyze_source(
        "crates/des/src/engine.rs",
        include_str!("fixtures/p001_trigger.rs"),
    )
}

#[test]
fn allowlist_suppresses_matching_findings() {
    let entries = config::parse(
        r#"
        [[allow]]
        lint = "P001"
        path = "crates/des/src/engine.rs"
        reason = "fixture: documented invariants"
        "#,
    )
    .expect("valid allowlist");
    let applied = config::apply(trigger_findings(), &entries);
    assert!(
        applied.unsuppressed.is_empty(),
        "{:#?}",
        applied.unsuppressed
    );
    assert_eq!(applied.suppressed, 3);
    assert!(applied.stale.is_empty());
}

#[test]
fn allowlist_contains_narrows_to_matching_lines() {
    let entries = config::parse(
        r#"
        [[allow]]
        lint = "P001"
        path = "crates/des/src/engine.rs"
        contains = "expect("
        reason = "fixture: only the documented expect"
        "#,
    )
    .expect("valid allowlist");
    let applied = config::apply(trigger_findings(), &entries);
    // The unwrap and the panic! survive; only the expect is suppressed.
    assert_eq!(applied.suppressed, 1);
    assert_eq!(applied.unsuppressed.len(), 2, "{:#?}", applied.unsuppressed);
    assert!(applied
        .unsuppressed
        .iter()
        .all(|f| !f.line_text.contains("expect(")));
}

#[test]
fn allowlist_subtree_prefix_matches_whole_directory() {
    let entries = config::parse(
        r#"
        [[allow]]
        lint = "P001"
        path = "crates/des/"
        reason = "fixture: whole-kernel waiver"
        "#,
    )
    .expect("valid allowlist");
    let applied = config::apply(trigger_findings(), &entries);
    assert_eq!(applied.suppressed, 3);
    assert!(applied.unsuppressed.is_empty());
}

#[test]
fn stale_allowlist_entry_is_an_error() {
    let entries = config::parse(
        r#"
        [[allow]]
        lint = "P001"
        path = "crates/des/src/engine.rs"
        reason = "fixture: matches everything here"

        [[allow]]
        lint = "D001"
        path = "crates/core/src/nonexistent.rs"
        reason = "fixture: matches nothing, must surface as stale"
        "#,
    )
    .expect("valid allowlist");
    let applied = config::apply(trigger_findings(), &entries);
    assert!(applied.unsuppressed.is_empty());
    // The unmatched entry comes back as stale — the gate treats any
    // stale entry as a hard error so the allowlist shrinks over time.
    assert_eq!(applied.stale.len(), 1);
    assert_eq!(applied.stale[0].lint, "D001");
    assert_eq!(applied.stale[0].path, "crates/core/src/nonexistent.rs");
}

#[test]
fn allowlist_rejects_missing_or_empty_reason() {
    let missing = config::parse(
        r#"
        [[allow]]
        lint = "P001"
        path = "crates/des/src/engine.rs"
        "#,
    );
    assert!(missing.is_err(), "entry without reason must be rejected");
    let empty = config::parse(
        r#"
        [[allow]]
        lint = "P001"
        path = "crates/des/src/engine.rs"
        reason = "   "
        "#,
    );
    assert!(empty.is_err(), "blank reason must be rejected");
}

#[test]
fn allowlist_rejects_unknown_lint_ids() {
    let bad = config::parse(
        r#"
        [[allow]]
        lint = "D999"
        path = "crates/des/src/engine.rs"
        reason = "fixture"
        "#,
    );
    assert!(bad.is_err(), "unknown lint id must be rejected");
}
