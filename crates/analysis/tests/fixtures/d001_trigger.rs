//! D001 trigger: iterating a `HashMap` in a simulation crate. Hash
//! order is arbitrary per process, so anything downstream of this loop
//! inherits a nondeterministic order.
use std::collections::HashMap;

pub fn drain_completions(pending: &HashMap<u64, f64>) -> Vec<u64> {
    let mut done = Vec::new();
    for (&id, &remaining) in pending.iter() {
        if remaining <= 0.0 {
            done.push(id);
        }
    }
    done
}

pub fn first_key(index: &HashMap<u64, u32>) -> Option<u64> {
    index.keys().next().copied()
}
