//! D004 trigger: summing `f64`s out of a `HashMap` in a report path.
//! Float addition is not associative, so hash order makes the total
//! machine-dependent at the last few ulps — enough to break bitwise
//! report comparison.
use std::collections::HashMap;

pub fn mean_latency(samples: &HashMap<u64, f64>) -> f64 {
    let total: f64 = samples.values().sum();
    total / samples.len().max(1) as f64
}

pub fn total_energy(per_server: &HashMap<u32, f64>) -> f64 {
    let mut total = 0.0;
    for (_, &joules) in per_server.iter() {
        total += joules;
    }
    total
}
