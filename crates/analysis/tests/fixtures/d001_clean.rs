//! D001 clean: same logic over a `BTreeMap`, whose iteration order is
//! the key order — deterministic on every machine. Point lookups into
//! a `HashMap` (no iteration) are also fine.
use std::collections::{BTreeMap, HashMap};

pub fn drain_completions(pending: &BTreeMap<u64, f64>) -> Vec<u64> {
    let mut done = Vec::new();
    for (&id, &remaining) in pending.iter() {
        if remaining <= 0.0 {
            done.push(id);
        }
    }
    done
}

pub fn lookup(index: &HashMap<u64, u32>, id: u64) -> Option<u32> {
    index.get(&id).copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Test-only iteration is out of scope: a reference model may hash.
    #[test]
    fn model_matches() {
        let mut reference = HashMap::new();
        reference.insert(1u64, 2u32);
        for (k, v) in reference.iter() {
            assert_eq!(lookup(&reference, *k), Some(*v));
        }
    }
}
