//! D003 clean: component streams are substreams of the run's root RNG,
//! keyed by stable coordinates — independent of call order.

const SERVICE_STREAM: u64 = 7;

pub fn service_jitter(root: &SimRng, job: u64) -> f64 {
    let mut rng = root.substream_path(&[SERVICE_STREAM, job]);
    rng.next_f64()
}
