//! D002 clean: simulation logic keeps time in sim-time units passed in
//! by the engine; no host clock anywhere.

pub struct StepTimer {
    started_sim_s: f64,
}

impl StepTimer {
    pub fn start(now_sim_s: f64) -> Self {
        Self {
            started_sim_s: now_sim_s,
        }
    }

    pub fn elapsed_sim_s(&self, now_sim_s: f64) -> f64 {
        now_sim_s - self.started_sim_s
    }
}
