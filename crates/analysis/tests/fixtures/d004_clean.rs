//! D004 clean: accumulate in key order via `BTreeMap`, so every machine
//! adds the same floats in the same order and the report is bitwise
//! stable.
use std::collections::BTreeMap;

pub fn mean_latency(samples: &BTreeMap<u64, f64>) -> f64 {
    let total: f64 = samples.values().sum();
    total / samples.len().max(1) as f64
}

pub fn total_energy(per_server: &BTreeMap<u32, f64>) -> f64 {
    let mut total = 0.0;
    for (_, &joules) in per_server.iter() {
        total += joules;
    }
    total
}
