//! U001 trigger: an `unsafe` block with no `// SAFETY:` comment nearby.
//! The soundness argument lives only in the author's head.

pub fn first_unchecked(xs: &[u64]) -> u64 {
    unsafe { *xs.as_ptr() }
}
