//! P001 clean: the hot path propagates absence instead of panicking;
//! test code may still assert freely (tests are out of P001's scope).

pub fn pop_front(queue: &mut Vec<u64>) -> Option<u64> {
    queue.pop()
}

pub fn head(queue: &[u64]) -> Option<u64> {
    queue.first().copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_order() {
        let mut q = vec![1u64, 2];
        assert_eq!(pop_front(&mut q).unwrap(), 2);
        assert_eq!(head(&q).expect("one left"), 1);
    }
}
