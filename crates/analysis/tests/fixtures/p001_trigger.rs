//! P001 trigger: panicking operators in what the driver treats as an
//! engine hot-path module. One poisoned `Option` aborts a multi-hour
//! sweep.

pub fn pop_front(queue: &mut Vec<u64>) -> u64 {
    queue.pop().unwrap()
}

pub fn head(queue: &[u64]) -> u64 {
    *queue.first().expect("queue is never empty")
}

pub fn check(depth: usize) {
    if depth > 1_000_000 {
        panic!("queue depth exploded");
    }
}
