//! U001 clean: the same block, with the invariant that makes it sound
//! written down where the reviewer (and the lint) can see it.

pub fn first_unchecked(xs: &[u64]) -> u64 {
    debug_assert!(!xs.is_empty());
    // SAFETY: callers uphold `!xs.is_empty()` (debug-asserted above),
    // so the first slot is in bounds and initialized.
    unsafe { *xs.as_ptr() }
}
