//! D002 trigger: wall-clock reads in a simulation crate. Anything the
//! host clock feeds becomes machine-dependent state.
use std::time::{Instant, SystemTime};

pub struct StepTimer {
    started: Instant,
}

impl StepTimer {
    pub fn start() -> Self {
        Self {
            started: Instant::now(),
        }
    }

    pub fn elapsed_secs(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }
}

pub fn stamp_epoch() -> u64 {
    SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}
