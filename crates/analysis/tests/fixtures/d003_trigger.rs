//! D003 trigger: constructing a `SimRng` from an ad-hoc seed instead of
//! deriving a substream. The stream now depends on call order, not on
//! the component's coordinates.

pub fn service_jitter(seed: u64, job: u64) -> f64 {
    let mut rng = SimRng::seed_from(seed ^ job);
    rng.next_f64()
}

pub fn fresh_stream() -> SimRng {
    SimRng::new(42)
}
