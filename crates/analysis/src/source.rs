//! Per-file source model: tokens, comments, and which tokens live in
//! test code.
//!
//! Most lints skip `#[cfg(test)]` modules and `#[test]` functions: a
//! `HashMap` iterated inside a property test's *reference model* is not
//! a determinism hazard (the test sorts before comparing), and flagging
//! it would bury the real findings. The mask is computed once per file
//! by brace-matching the item that follows any attribute mentioning
//! `test`.

use crate::lexer::{self, Comment, Token};

/// A lexed source file plus the derived facts lints need.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators (stable across OSes,
    /// used for allowlist matching).
    pub rel_path: String,
    /// Crate the file belongs to: `"des"`, `"core"`, ... for
    /// `crates/<name>/src`, `"holdcsim-rs"` for the umbrella `src/`,
    /// `"xtask"` for the task runner.
    pub crate_name: String,
    /// Token stream (comments excluded — see [`SourceFile::comments`]).
    pub tokens: Vec<Token>,
    /// All comments with line spans, for `// SAFETY:` detection.
    pub comments: Vec<Comment>,
    /// Raw source lines, for reporting the offending line text.
    pub lines: Vec<String>,
    /// `in_test[i]` is true when `tokens[i]` is inside a `#[cfg(test)]`
    /// module / `#[test]` function (or any item under an attribute that
    /// mentions `test`).
    pub in_test: Vec<bool>,
}

impl SourceFile {
    /// Lexes `src` and computes the test mask. `rel_path` is the
    /// workspace-relative path the findings will report.
    pub fn parse(rel_path: &str, src: &str) -> SourceFile {
        let (tokens, comments) = lexer::lex(src);
        let in_test = test_mask(&tokens);
        SourceFile {
            crate_name: crate_of(rel_path),
            rel_path: rel_path.to_string(),
            lines: src.lines().map(|l| l.to_string()).collect(),
            tokens,
            comments,
            in_test,
        }
    }

    /// The trimmed text of 1-based `line`, or `""` past end of file.
    pub fn line_text(&self, line: u32) -> &str {
        self.lines
            .get(line.saturating_sub(1) as usize)
            .map(|s| s.trim())
            .unwrap_or("")
    }

    /// True when a comment containing `needle` ends within `window`
    /// lines before `line` (or on `line` itself, for trailing comments).
    pub fn comment_near(&self, line: u32, window: u32, needle: &str) -> bool {
        self.comments
            .iter()
            .any(|c| c.end_line <= line && c.end_line + window >= line && c.text.contains(needle))
    }
}

/// Maps a workspace-relative path to its crate name.
fn crate_of(rel_path: &str) -> String {
    let mut parts = rel_path.split('/');
    match parts.next() {
        Some("crates") => parts.next().unwrap_or("").to_string(),
        Some("xtask") => "xtask".to_string(),
        Some("src") => "holdcsim-rs".to_string(),
        _ => String::new(),
    }
}

/// Index of the `}` matching the `{` at `open`, or the last token if the
/// file is unbalanced (a linter must not panic on odd input).
pub fn matching_brace(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0i64;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        if t.kind == lexer::TokKind::Punct {
            match t.text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return i;
                    }
                }
                _ => {}
            }
        }
    }
    tokens.len().saturating_sub(1)
}

fn is_punct(t: &Token, c: &str) -> bool {
    t.kind == lexer::TokKind::Punct && t.text == c
}

/// Computes the per-token test mask by scanning for attributes whose
/// argument tokens mention `test` and masking the braced item (or the
/// braceless item up to `;`) that follows.
fn test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        // An attribute: `#` `[` ... `]` (also `#![...]`, which we treat
        // the same — an inner `#![cfg(test)]` masks from there on).
        if !is_punct(&tokens[i], "#") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        let inner = j < tokens.len() && is_punct(&tokens[j], "!");
        if inner {
            j += 1;
        }
        if j >= tokens.len() || !is_punct(&tokens[j], "[") {
            i += 1;
            continue;
        }
        // Find the closing `]` (attributes can nest brackets: cfg(all(..))).
        let mut depth = 0i64;
        let mut end = j;
        let mut mentions_test = false;
        while end < tokens.len() {
            let t = &tokens[end];
            if is_punct(t, "[") {
                depth += 1;
            } else if is_punct(t, "]") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if t.kind == lexer::TokKind::Ident && t.text == "test" {
                mentions_test = true;
            }
            end += 1;
        }
        if !mentions_test {
            i = end + 1;
            continue;
        }
        if inner {
            // `#![cfg(test)]`: everything after is test code.
            for m in mask.iter_mut().skip(end + 1) {
                *m = true;
            }
            return mask;
        }
        // Mask the item following the attribute: scan past further
        // attributes and visibility/keywords for the body `{`, tracking
        // parens so a fn's argument list cannot fool us; a `;` at depth
        // zero before any `{` means a braceless item.
        let mut k = end + 1;
        let mut paren = 0i64;
        let mut body_open = None;
        while k < tokens.len() {
            let t = &tokens[k];
            if is_punct(t, "(") || is_punct(t, "[") || is_punct(t, "<") {
                paren += 1;
            } else if is_punct(t, ")") || is_punct(t, "]") || is_punct(t, ">") {
                paren -= 1;
            } else if paren <= 0 && is_punct(t, "{") {
                body_open = Some(k);
                break;
            } else if paren <= 0 && is_punct(t, ";") {
                break;
            }
            k += 1;
        }
        let close = match body_open {
            Some(open) => matching_brace(tokens, open),
            None => k,
        };
        for m in mask.iter_mut().take(close + 1).skip(i) {
            *m = true;
        }
        i = close + 1;
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_module_is_masked() {
        let src = "fn live() { a(); }\n#[cfg(test)]\nmod tests {\n    fn t() { b(); }\n}\nfn also_live() {}\n";
        let f = SourceFile::parse("crates/core/src/x.rs", src);
        let masked: Vec<_> = f
            .tokens
            .iter()
            .zip(&f.in_test)
            .filter(|(_, &m)| m)
            .map(|(t, _)| t.text.clone())
            .collect();
        assert!(masked.contains(&"b".to_string()));
        assert!(!masked.contains(&"a".to_string()));
        assert!(!masked.contains(&"also_live".to_string()));
    }

    #[test]
    fn test_fn_is_masked_but_sibling_is_not() {
        let src = "#[test]\nfn t() { x(); }\nfn live() { y(); }\n";
        let f = SourceFile::parse("crates/core/src/x.rs", src);
        let live_idx = f.tokens.iter().position(|t| t.text == "y").expect("y");
        let test_idx = f.tokens.iter().position(|t| t.text == "x").expect("x");
        assert!(f.in_test[test_idx]);
        assert!(!f.in_test[live_idx]);
    }

    #[test]
    fn cfg_all_test_and_braceless_items() {
        let src = "#[cfg(all(test, feature = \"slow\"))]\nmod heavy;\nfn live() {}\n#[cfg(test)]\nuse std::fmt;\nfn live2() { z(); }\n";
        let f = SourceFile::parse("crates/core/src/x.rs", src);
        let z = f.tokens.iter().position(|t| t.text == "z").expect("z");
        assert!(!f.in_test[z]);
        let fmt = f.tokens.iter().position(|t| t.text == "fmt").expect("fmt");
        assert!(f.in_test[fmt]);
    }

    #[test]
    fn crate_names_from_paths() {
        assert_eq!(crate_of("crates/des/src/engine.rs"), "des");
        assert_eq!(crate_of("src/lib.rs"), "holdcsim-rs");
        assert_eq!(crate_of("xtask/src/main.rs"), "xtask");
    }

    #[test]
    fn comment_near_window() {
        let src = "// SAFETY: fine\nlet a = 1;\n\n\n\nlet b = 2;\n";
        let f = SourceFile::parse("crates/des/src/x.rs", src);
        assert!(f.comment_near(2, 2, "SAFETY"));
        assert!(!f.comment_near(6, 2, "SAFETY"));
    }
}
