//! A dependency-free Rust lexer, just deep enough for lint pattern
//! matching.
//!
//! The workspace deliberately carries zero external dependencies, so the
//! lint engine cannot use `syn`. It does not need to: every lint in
//! [`crate::lints`] matches short token sequences (`Instant :: now`,
//! `name . iter ( )`, an `unsafe` keyword without a nearby `// SAFETY:`
//! comment), which only requires a lexer that is *exactly right* about
//! what is code and what is not — strings, char literals vs lifetimes,
//! nested block comments, raw strings — plus line numbers for reporting.
//!
//! Comments are not discarded: they are returned alongside the token
//! stream because the `U001` lint inspects them (a `// SAFETY:` comment
//! must precede every `unsafe` block) and doc-comment code fences must
//! *not* produce tokens (a `HashMap` iteration inside a `///` example is
//! not a finding).

/// What kind of token a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`for`, `unsafe`, `HashMap`, ...).
    Ident,
    /// A single punctuation character (`.`, `:`, `{`, ...). Multi-char
    /// operators are matched by the lints as adjacent punct tokens.
    Punct,
    /// String literal of any flavor (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Character literal (`'x'`, `'\n'`).
    Char,
    /// Numeric literal (`42`, `1.5e-3`, `0xFF_u64`).
    Num,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token class.
    pub kind: TokKind,
    /// Raw text. For [`TokKind::Punct`] this is a single character; for
    /// string literals it is the *unquoted interior* (enough for lints,
    /// which never re-emit source).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

/// A comment (line, doc, or block) with its line span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based line the comment ends on (same as `line` for `//`).
    pub end_line: u32,
    /// Comment text without the `//` / `/*` markers.
    pub text: String,
}

/// Lexes Rust source into tokens plus the comment list.
///
/// The lexer is total: malformed input (an unterminated string, say)
/// never panics — it consumes to end of input and returns what it has,
/// which is the right behavior for a linter that may see fixture files
/// engineered to be odd.
pub fn lex(src: &str) -> (Vec<Token>, Vec<Comment>) {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        tokens: Vec::new(),
        comments: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    tokens: Vec<Token>,
    comments: Vec<Comment>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32) {
        self.tokens.push(Token { kind, text, line });
    }

    fn run(mut self) -> (Vec<Token>, Vec<Comment>) {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string(line),
                'r' | 'b' if self.raw_or_byte_prefix() => self.prefixed_literal(line),
                '\'' => self.char_or_lifetime(line),
                c if c.is_ascii_digit() => self.number(line),
                c if c.is_alphabetic() || c == '_' => self.ident(line),
                _ => {
                    self.bump();
                    self.push(TokKind::Punct, c.to_string(), line);
                }
            }
        }
        (self.tokens, self.comments)
    }

    /// True when the cursor sits on an `r"`, `r#"`, `b"`, `br"`, `br#"`
    /// literal prefix rather than an identifier starting with r/b.
    fn raw_or_byte_prefix(&self) -> bool {
        let mut i = 1;
        if self.peek(0) == Some('b') && self.peek(1) == Some('r') {
            i = 2;
        }
        loop {
            match self.peek(i) {
                Some('#') => i += 1,
                Some('"') => return true,
                Some('\'') if i == 1 && self.peek(0) == Some('b') => return true,
                _ => return false,
            }
        }
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let mut text = String::new();
        self.bump();
        self.bump();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.comments.push(Comment {
            line,
            end_line: line,
            text,
        });
    }

    fn block_comment(&mut self) {
        let line = self.line;
        let mut text = String::new();
        self.bump();
        self.bump();
        let mut depth = 1u32;
        while let Some(c) = self.bump() {
            if c == '/' && self.peek(0) == Some('*') {
                self.bump();
                depth += 1;
            } else if c == '*' && self.peek(0) == Some('/') {
                self.bump();
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
            }
        }
        self.comments.push(Comment {
            line,
            end_line: self.line,
            text,
        });
    }

    fn string(&mut self, line: u32) {
        let mut text = String::new();
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    // Skip the escaped char so an escaped quote cannot
                    // terminate the literal.
                    if let Some(e) = self.bump() {
                        text.push(e);
                    }
                }
                '"' => break,
                _ => text.push(c),
            }
        }
        self.push(TokKind::Str, text, line);
    }

    /// Raw strings (`r#"…"#`), byte strings (`b"…"`), raw byte strings
    /// and byte char literals (`b'x'`).
    fn prefixed_literal(&mut self, line: u32) {
        if self.peek(0) == Some('b') {
            self.bump();
        }
        if self.peek(0) == Some('\'') {
            // Byte char literal b'x'.
            self.char_literal(line);
            return;
        }
        if self.peek(0) != Some('r') {
            self.string(line);
            return;
        }
        self.bump(); // r
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening quote
        let mut text = String::new();
        'outer: while let Some(c) = self.bump() {
            if c == '"' {
                // A closing quote must be followed by `hashes` hashes.
                for k in 0..hashes {
                    if self.peek(k) != Some('#') {
                        text.push('"');
                        continue 'outer;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
            text.push(c);
        }
        self.push(TokKind::Str, text, line);
    }

    fn char_or_lifetime(&mut self, line: u32) {
        // `'a` followed by anything but a closing quote is a lifetime;
        // `'a'` is a char literal.
        let first = self.peek(1);
        let second = self.peek(2);
        let is_lifetime =
            matches!(first, Some(c) if c.is_alphabetic() || c == '_') && second != Some('\'');
        if is_lifetime {
            self.bump(); // '
            let mut text = String::new();
            while let Some(c) = self.peek(0) {
                if c.is_alphanumeric() || c == '_' {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push(TokKind::Lifetime, text, line);
        } else {
            self.char_literal(line);
        }
    }

    fn char_literal(&mut self, line: u32) {
        let mut text = String::new();
        self.bump(); // opening '
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    if let Some(e) = self.bump() {
                        text.push(e);
                    }
                }
                '\'' => break,
                _ => text.push(c),
            }
        }
        self.push(TokKind::Char, text, line);
    }

    fn number(&mut self, line: u32) {
        let mut text = String::new();
        let mut seen_dot = false;
        while let Some(c) = self.peek(0) {
            match c {
                '0'..='9' | '_' => {
                    text.push(c);
                    self.bump();
                }
                // Hex/oct/bin digits, type suffixes (u64, f64), exponents.
                'a'..='z' | 'A'..='Z' => {
                    text.push(c);
                    self.bump();
                    // Exponent sign: 1e-3, 2.5E+10.
                    if (c == 'e' || c == 'E')
                        && matches!(self.peek(0), Some('+') | Some('-'))
                        && matches!(self.peek(1), Some(d) if d.is_ascii_digit())
                    {
                        text.push(self.bump().unwrap_or('+'));
                    }
                }
                '.' => {
                    // `1.5` continues the number; `1..n` is a range and
                    // `1.method()` is a call — both end it.
                    if seen_dot || !matches!(self.peek(1), Some(d) if d.is_ascii_digit()) {
                        break;
                    }
                    seen_dot = true;
                    text.push(c);
                    self.bump();
                }
                _ => break,
            }
        }
        self.push(TokKind::Num, text, line);
    }

    fn ident(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokKind::Ident, text, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .0
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_do_not_produce_tokens() {
        let src = "// HashMap iter()\n/* unsafe */ let x = 1; /// Instant::now\n";
        let (toks, comments) = lex(src);
        assert_eq!(
            idents("// HashMap\nlet x = 1;"),
            vec!["let".to_string(), "x".to_string()]
        );
        assert!(toks
            .iter()
            .all(|t| t.text != "HashMap" && t.text != "unsafe"));
        assert_eq!(comments.len(), 3);
        assert!(comments[0].text.contains("HashMap"));
    }

    #[test]
    fn nested_block_comments() {
        let (toks, comments) = lex("/* a /* b */ c */ fn f() {}");
        assert_eq!(toks[0].text, "fn");
        assert_eq!(comments.len(), 1);
    }

    #[test]
    fn strings_hide_their_contents_from_ident_matching() {
        let (toks, _) = lex(r#"let s = "HashMap.iter() unsafe"; let r = r#line"#);
        assert!(toks
            .iter()
            .all(|t| t.kind != TokKind::Ident || (t.text != "HashMap" && t.text != "unsafe")));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let (toks, _) = lex(r###"let s = r#"quote " inside"#; done"###);
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Str && t.text.contains("quote")));
        assert!(toks.iter().any(|t| t.text == "done"));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let (toks, _) = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        let chars: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::Char).collect();
        assert_eq!(lifetimes.len(), 2);
        assert_eq!(chars.len(), 2);
    }

    #[test]
    fn numbers_ranges_and_floats() {
        let (toks, _) = lex("for i in 0..10 { let x = 1.5e-3; let h = 0xFF_u64; }");
        let nums: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Num)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(nums, vec!["0", "10", "1.5e-3", "0xFF_u64"]);
    }

    #[test]
    fn line_numbers_are_tracked() {
        let (toks, comments) = lex("let a = 1;\n// c\nlet b = 2;\n");
        let b = toks.iter().find(|t| t.text == "b").expect("b token");
        assert_eq!(b.line, 3);
        assert_eq!(comments[0].line, 2);
    }

    #[test]
    fn byte_literals() {
        let (toks, _) = lex(r#"let a = b"bytes"; let c = b'x'; let r = br"raw";"#);
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Str).count(), 2);
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Char).count(), 1);
    }
}
