//! The `analysis.toml` allowlist: parsing, matching, staleness.
//!
//! The workspace carries no external dependencies, so this is a strict
//! parser for the *subset* of TOML the allowlist needs: `[[allow]]`
//! table arrays with basic-string values and `#` comments. Strictness
//! is a feature — an allowlist that silently ignored a typoed key would
//! be a hole in the gate, so unknown sections, unknown keys, bare
//! values, and duplicate keys are all hard errors.
//!
//! Every entry must carry a non-empty `reason`: suppressions without
//! recorded justification rot instantly. Entries that no longer match
//! any finding are *stale* and also hard errors — the allowlist shrinks
//! as hazards are fixed, never accretes.

use crate::lints::{is_known_lint, Finding};

/// One `[[allow]]` entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Lint id the entry suppresses (`"D001"`, ...).
    pub lint: String,
    /// Workspace-relative file path, or a directory prefix ending in
    /// `/` which suppresses for the whole subtree.
    pub path: String,
    /// Optional substring that must appear in the finding's line text,
    /// scoping the entry to specific call forms (e.g. `"expect("`).
    pub contains: Option<String>,
    /// Non-empty justification. Required.
    pub reason: String,
    /// 1-based line of the entry's `[[allow]]` header, for stale
    /// reporting.
    pub line: u32,
}

impl AllowEntry {
    /// True when this entry suppresses `f`.
    pub fn matches(&self, f: &Finding) -> bool {
        if self.lint != f.lint {
            return false;
        }
        let path_ok = if self.path.ends_with('/') {
            f.path.starts_with(&self.path)
        } else {
            f.path == self.path
        };
        if !path_ok {
            return false;
        }
        match &self.contains {
            Some(needle) => f.line_text.contains(needle.as_str()),
            None => true,
        }
    }
}

/// Parses allowlist text. Returns every entry or the first error,
/// with its 1-based line number.
pub fn parse(text: &str) -> Result<Vec<AllowEntry>, String> {
    let mut entries: Vec<AllowEntry> = Vec::new();
    let mut current: Option<PartialEntry> = None;
    for (i, raw) in text.lines().enumerate() {
        let lineno = (i + 1) as u32;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[allow]]" {
            if let Some(p) = current.take() {
                entries.push(p.finish()?);
            }
            current = Some(PartialEntry::new(lineno));
            continue;
        }
        if line.starts_with('[') {
            return Err(format!(
                "analysis.toml:{lineno}: unsupported section `{line}` (only [[allow]] \
                 table arrays are recognized)"
            ));
        }
        let Some(p) = current.as_mut() else {
            return Err(format!(
                "analysis.toml:{lineno}: key outside any [[allow]] entry"
            ));
        };
        let Some(eq) = line.find('=') else {
            return Err(format!(
                "analysis.toml:{lineno}: expected `key = \"value\"`"
            ));
        };
        let key = line[..eq].trim();
        let value = parse_basic_string(line[eq + 1..].trim())
            .map_err(|e| format!("analysis.toml:{lineno}: {e}"))?;
        p.set(key, value, lineno)?;
    }
    if let Some(p) = current.take() {
        entries.push(p.finish()?);
    }
    Ok(entries)
}

/// Parses a TOML basic string (`"..."` with `\"`/`\\` escapes),
/// tolerating a trailing `#` comment after the closing quote.
fn parse_basic_string(s: &str) -> Result<String, String> {
    let mut chars = s.chars();
    if chars.next() != Some('"') {
        return Err(format!("expected a quoted string value, got `{s}`"));
    }
    let mut out = String::new();
    let mut closed = false;
    while let Some(c) = chars.next() {
        match c {
            '\\' => match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                other => return Err(format!("unsupported escape `\\{}`", other.unwrap_or(' '))),
            },
            '"' => {
                closed = true;
                break;
            }
            _ => out.push(c),
        }
    }
    if !closed {
        return Err("unterminated string".to_string());
    }
    let rest = chars.as_str().trim();
    if !rest.is_empty() && !rest.starts_with('#') {
        return Err(format!("trailing content after string: `{rest}`"));
    }
    Ok(out)
}

#[derive(Debug)]
struct PartialEntry {
    line: u32,
    lint: Option<String>,
    path: Option<String>,
    contains: Option<String>,
    reason: Option<String>,
}

impl PartialEntry {
    fn new(line: u32) -> Self {
        PartialEntry {
            line,
            lint: None,
            path: None,
            contains: None,
            reason: None,
        }
    }

    fn set(&mut self, key: &str, value: String, lineno: u32) -> Result<(), String> {
        let slot = match key {
            "lint" => &mut self.lint,
            "path" => &mut self.path,
            "contains" => &mut self.contains,
            "reason" => &mut self.reason,
            other => {
                return Err(format!(
                    "analysis.toml:{lineno}: unknown key `{other}` (expected lint/path/contains/reason)"
                ))
            }
        };
        if slot.is_some() {
            return Err(format!("analysis.toml:{lineno}: duplicate key `{key}`"));
        }
        *slot = Some(value);
        Ok(())
    }

    fn finish(self) -> Result<AllowEntry, String> {
        let line = self.line;
        let lint = self
            .lint
            .ok_or_else(|| format!("analysis.toml:{line}: [[allow]] entry is missing `lint`"))?;
        if !is_known_lint(&lint) {
            return Err(format!("analysis.toml:{line}: unknown lint id `{lint}`"));
        }
        let path = self
            .path
            .ok_or_else(|| format!("analysis.toml:{line}: [[allow]] entry is missing `path`"))?;
        let reason = self
            .reason
            .ok_or_else(|| format!("analysis.toml:{line}: [[allow]] entry is missing `reason`"))?;
        if reason.trim().is_empty() {
            return Err(format!(
                "analysis.toml:{line}: `reason` must be non-empty — every suppression \
                 records why it is sound"
            ));
        }
        Ok(AllowEntry {
            lint,
            path,
            contains: self.contains,
            reason,
            line,
        })
    }
}

/// The result of applying an allowlist to a finding set.
#[derive(Debug)]
pub struct Applied {
    /// Findings no entry suppressed — these fail the gate.
    pub unsuppressed: Vec<Finding>,
    /// How many findings were suppressed.
    pub suppressed: usize,
    /// Entries that matched nothing: stale, and themselves an error.
    pub stale: Vec<AllowEntry>,
}

/// Partitions `findings` by the allowlist and reports stale entries.
pub fn apply(findings: Vec<Finding>, entries: &[AllowEntry]) -> Applied {
    let mut used = vec![false; entries.len()];
    let mut unsuppressed = Vec::new();
    let mut suppressed = 0usize;
    for f in findings {
        let mut hit = false;
        for (i, e) in entries.iter().enumerate() {
            if e.matches(&f) {
                used[i] = true;
                hit = true;
            }
        }
        if hit {
            suppressed += 1;
        } else {
            unsuppressed.push(f);
        }
    }
    let stale = entries
        .iter()
        .zip(&used)
        .filter(|(_, &u)| !u)
        .map(|(e, _)| e.clone())
        .collect();
    Applied {
        unsuppressed,
        suppressed,
        stale,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(lint: &str, path: &str, contains: Option<&str>) -> AllowEntry {
        AllowEntry {
            lint: lint.into(),
            path: path.into(),
            contains: contains.map(|s| s.into()),
            reason: "test".into(),
            line: 1,
        }
    }

    fn finding(lint: &'static str, path: &str, text: &str) -> Finding {
        Finding {
            lint,
            path: path.into(),
            line: 10,
            message: String::new(),
            hint: "",
            line_text: text.into(),
        }
    }

    #[test]
    fn parses_entries_and_comments() {
        let text = "# top comment\n\n[[allow]]\nlint = \"D002\"\npath = \"crates/core/src/sim.rs\"\nreason = \"summary-only\"  # trailing\n\n[[allow]]\nlint = \"P001\"\npath = \"crates/network/src/flow.rs\"\ncontains = \"expect(\"\nreason = \"documented invariants\"\n";
        let entries = parse(text).expect("parses");
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].lint, "D002");
        assert_eq!(entries[1].contains.as_deref(), Some("expect("));
    }

    #[test]
    fn empty_reason_is_an_error() {
        let text = "[[allow]]\nlint = \"D001\"\npath = \"x.rs\"\nreason = \"  \"\n";
        assert!(parse(text).unwrap_err().contains("non-empty"));
    }

    #[test]
    fn missing_reason_unknown_lint_unknown_key() {
        assert!(parse("[[allow]]\nlint = \"D001\"\npath = \"x.rs\"\n")
            .unwrap_err()
            .contains("missing `reason`"));
        assert!(
            parse("[[allow]]\nlint = \"Z999\"\npath = \"x\"\nreason = \"r\"\n")
                .unwrap_err()
                .contains("unknown lint id")
        );
        assert!(
            parse("[[allow]]\nlint = \"D001\"\nfile = \"x\"\nreason = \"r\"\n")
                .unwrap_err()
                .contains("unknown key")
        );
    }

    #[test]
    fn bare_values_and_foreign_sections_rejected() {
        assert!(parse("[[allow]]\nlint = D001\n").is_err());
        assert!(parse("[lints]\n")
            .unwrap_err()
            .contains("unsupported section"));
    }

    #[test]
    fn matching_path_prefix_and_contains() {
        let f = finding("P001", "crates/network/src/flow.rs", "x.expect(\"live\")");
        assert!(entry("P001", "crates/network/src/flow.rs", None).matches(&f));
        assert!(entry("P001", "crates/network/src/", None).matches(&f));
        assert!(entry("P001", "crates/network/src/flow.rs", Some("expect(")).matches(&f));
        assert!(!entry("P001", "crates/network/src/flow.rs", Some("unwrap(")).matches(&f));
        assert!(!entry("D001", "crates/network/src/flow.rs", None).matches(&f));
        assert!(!entry("P001", "crates/network/", None).matches(&finding(
            "P001",
            "crates/net",
            ""
        )));
    }

    #[test]
    fn apply_reports_stale_entries() {
        let entries = vec![
            entry("P001", "crates/network/src/flow.rs", None),
            entry("D001", "crates/nowhere.rs", None),
        ];
        let findings = vec![finding("P001", "crates/network/src/flow.rs", "a.unwrap()")];
        let applied = apply(findings, &entries);
        assert_eq!(applied.suppressed, 1);
        assert!(applied.unsuppressed.is_empty());
        assert_eq!(applied.stale.len(), 1);
        assert_eq!(applied.stale[0].path, "crates/nowhere.rs");
    }
}
