//! The lint family: repo-specific determinism and hygiene rules.
//!
//! Every lint here encodes a contract the simulator has already paid
//! for breaking once, or is about to depend on for the parallelism
//! work:
//!
//! * **D001** — iteration over `HashMap`/`HashSet` in simulation crates.
//!   PR 3 fixed a real bug of exactly this class: `FlowNet` collected
//!   completions in `HashMap` iteration order, so same-seed runs
//!   diverged in-process. Simulation state must iterate in a
//!   deterministic order (`SlotWindow`, `BTreeMap`, or sorted keys).
//! * **D002** — wall-clock reads (`Instant::now`, `SystemTime::now`)
//!   outside the observability/harness timing modules. Sim-crate logic
//!   must depend only on sim time.
//! * **D003** — RNG construction (`SimRng::seed_from`/`new`) that
//!   bypasses `SimRng::substream_path`. Ad-hoc seeding couples streams
//!   to call order instead of grid coordinates.
//! * **D004** — order-sensitive `f64` accumulation over unordered
//!   collections in report/stats paths. Float addition does not
//!   commute bitwise; summing a `HashMap` in hash order makes reports
//!   machine-dependent.
//! * **U001** — `unsafe` without a `// SAFETY:` comment within the
//!   three preceding lines.
//! * **P001** — `unwrap`/`expect`/`panic!` in the enumerated engine
//!   hot-path modules; invariants there should be documented (and
//!   allowlisted) or converted to recoverable forms.
//!
//! Lints run over the token stream of [`SourceFile`]; all but U001 skip
//! `#[cfg(test)]`/`#[test]` regions (see [`crate::source`]).

use crate::lexer::{TokKind, Token};
use crate::source::{matching_brace, SourceFile};

/// One lint hit: where, what, and how to fix it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Lint id (`"D001"`, ...).
    pub lint: &'static str,
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// What was found.
    pub message: String,
    /// How to fix it.
    pub hint: &'static str,
    /// Trimmed text of the offending line (allowlist `contains` matches
    /// against this).
    pub line_text: String,
}

/// `(id, summary)` for every lint, for `holdcsim-lint --list`.
pub const LINTS: &[(&str, &str)] = &[
    (
        "D001",
        "iteration over HashMap/HashSet in simulation crates (des/core/network/sched/cluster)",
    ),
    (
        "D002",
        "wall-clock read (Instant::now / SystemTime::now) outside obs/harness timing modules",
    ),
    (
        "D003",
        "RNG constructed via SimRng::seed_from/new instead of SimRng::substream_path",
    ),
    (
        "D004",
        "order-sensitive f64 accumulation over an unordered collection in report/stats paths",
    ),
    ("U001", "`unsafe` without a `// SAFETY:` comment nearby"),
    ("P001", "unwrap/expect/panic! in an engine hot-path module"),
];

/// True when `id` names a known lint.
pub fn is_known_lint(id: &str) -> bool {
    LINTS.iter().any(|(l, _)| *l == id)
}

/// Crates whose state drives the simulation trajectory: D001 scope.
const SIM_CRATES: &[&str] = &["des", "core", "network", "sched", "cluster"];

/// Crates allowed to read the wall clock (benchmark timing, the
/// observability layer, the analysis tooling itself).
const WALL_CLOCK_CRATES: &[&str] = &["obs", "harness", "bench", "analysis", "xtask"];

/// Engine hot-path modules: P001 scope. These are the files on the
/// per-event path where a panic aborts a multi-hour sweep.
const HOT_PATH_FILES: &[&str] = &[
    "crates/des/src/engine.rs",
    "crates/des/src/queue.rs",
    "crates/des/src/slot_window.rs",
    "crates/des/src/lazy_heap.rs",
    "crates/network/src/flow.rs",
    "crates/network/src/routing.rs",
    "crates/network/src/switch.rs",
    "crates/network/src/packet.rs",
    "crates/core/src/sim.rs",
    "crates/sched/src/queue.rs",
    "crates/cluster/src/federation.rs",
    "crates/cluster/src/wan.rs",
];

/// Methods that observe a hash collection's (arbitrary) order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
];

/// True when `rel_path` is a report/stats path: D004 scope.
fn is_report_path(rel_path: &str) -> bool {
    rel_path.contains("/stats/")
        || rel_path.ends_with("report.rs")
        || rel_path.ends_with("export.rs")
        || rel_path.ends_with("agg.rs")
        || rel_path.ends_with("metrics.rs")
}

/// Runs every lint over one file.
pub fn run_lints(f: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    let sites = hash_iteration_sites(f);
    d001(f, &sites, &mut out);
    d002(f, &mut out);
    d003(f, &mut out);
    d004(f, &sites, &mut out);
    u001(f, &mut out);
    p001(f, &mut out);
    out.sort_by(|a, b| (a.line, a.lint).cmp(&(b.line, b.lint)));
    out
}

fn finding(
    f: &SourceFile,
    lint: &'static str,
    line: u32,
    message: String,
    hint: &'static str,
) -> Finding {
    Finding {
        lint,
        path: f.rel_path.clone(),
        line,
        message,
        hint,
        line_text: f.line_text(line).to_string(),
    }
}

fn is_punct(t: &Token, c: &str) -> bool {
    t.kind == TokKind::Punct && t.text == c
}

fn is_ident(t: &Token, name: &str) -> bool {
    t.kind == TokKind::Ident && t.text == name
}

/// Names in this file bound to a `HashMap`/`HashSet`: struct fields and
/// parameters (`name: HashMap<..>`), let-bindings (`let name =
/// HashMap::new()`), including `std::collections::`-qualified forms.
fn hash_typed_names(f: &SourceFile) -> Vec<String> {
    let toks = &f.tokens;
    let mut names = Vec::new();
    for i in 0..toks.len() {
        if !(is_ident(&toks[i], "HashMap") || is_ident(&toks[i], "HashSet")) {
            continue;
        }
        // Rewind over a `std :: collections ::` path prefix.
        let mut p = i;
        while p >= 3
            && is_punct(&toks[p - 1], ":")
            && is_punct(&toks[p - 2], ":")
            && toks[p - 3].kind == TokKind::Ident
        {
            p -= 3;
        }
        // ...and over reference sigils: `name: &'a mut HashMap<..>`.
        while p >= 1
            && (is_punct(&toks[p - 1], "&")
                || is_ident(&toks[p - 1], "mut")
                || toks[p - 1].kind == TokKind::Lifetime)
        {
            p -= 1;
        }
        if p == 0 {
            continue;
        }
        let before = &toks[p - 1];
        // `name : HashMap<..>` — a field, param, or ascribed binding.
        // (A single colon: `p - 2` must not also be a colon, which would
        // be a path we already rewound past.)
        if is_punct(before, ":")
            && p >= 2
            && !is_punct(&toks[p - 2], ":")
            && toks[p - 2].kind == TokKind::Ident
        {
            names.push(toks[p - 2].text.clone());
        }
        // `let [mut] name = HashMap::new()` and friends.
        if is_punct(before, "=") && p >= 2 && toks[p - 2].kind == TokKind::Ident {
            names.push(toks[p - 2].text.clone());
        }
    }
    names.sort();
    names.dedup();
    names
}

/// A place where a hash collection's order becomes observable.
struct IterSite {
    /// Token index of the *collection name* identifier.
    name_idx: usize,
    name: String,
    /// Token index just past the iteration call (for D004's chained-
    /// accumulation scan): the `(` of `.iter()` etc., or the name itself
    /// for a bare `for _ in map` loop.
    after_idx: usize,
}

/// Finds iteration sites over the file's hash-typed names: direct
/// method calls (`m.iter()`, `m.keys()`, ...) and `for` loops whose
/// iterated expression mentions a hash-typed name.
fn hash_iteration_sites(f: &SourceFile) -> Vec<IterSite> {
    let toks = &f.tokens;
    let names = hash_typed_names(f);
    if names.is_empty() {
        return Vec::new();
    }
    let mut sites: Vec<IterSite> = Vec::new();
    let mut claimed = vec![false; toks.len()];
    for i in 0..toks.len() {
        if toks[i].kind != TokKind::Ident || !names.iter().any(|n| n == &toks[i].text) {
            continue;
        }
        if i + 3 < toks.len()
            && is_punct(&toks[i + 1], ".")
            && toks[i + 2].kind == TokKind::Ident
            && ITER_METHODS.contains(&toks[i + 2].text.as_str())
            && is_punct(&toks[i + 3], "(")
        {
            claimed[i] = true;
            sites.push(IterSite {
                name_idx: i,
                name: toks[i].text.clone(),
                after_idx: i + 3,
            });
        }
    }
    // `for pat in <expr mentioning a hash name> {`
    for i in 0..toks.len() {
        if !is_ident(&toks[i], "for") {
            continue;
        }
        // Find `in` at bracket depth 0 (the pattern may destructure).
        let mut depth = 0i64;
        let mut j = i + 1;
        let mut in_idx = None;
        while j < toks.len() && j < i + 64 {
            let t = &toks[j];
            if is_punct(t, "(") || is_punct(t, "[") {
                depth += 1;
            } else if is_punct(t, ")") || is_punct(t, "]") {
                depth -= 1;
            } else if depth == 0 && is_ident(t, "in") {
                in_idx = Some(j);
                break;
            } else if is_punct(t, "{") || is_punct(t, ";") {
                break;
            }
            j += 1;
        }
        let Some(in_idx) = in_idx else { continue };
        // Scan the iterated expression up to the loop body `{`.
        let mut k = in_idx + 1;
        let mut depth = 0i64;
        while k < toks.len() {
            let t = &toks[k];
            if is_punct(t, "(") || is_punct(t, "[") {
                depth += 1;
            } else if is_punct(t, ")") || is_punct(t, "]") {
                depth -= 1;
            } else if depth == 0 && is_punct(t, "{") {
                break;
            } else if t.kind == TokKind::Ident && !claimed[k] && names.iter().any(|n| n == &t.text)
            {
                claimed[k] = true;
                sites.push(IterSite {
                    name_idx: k,
                    name: t.text.clone(),
                    after_idx: k,
                });
            }
            k += 1;
        }
    }
    sites.sort_by_key(|s| s.name_idx);
    sites
}

fn d001(f: &SourceFile, sites: &[IterSite], out: &mut Vec<Finding>) {
    if !SIM_CRATES.contains(&f.crate_name.as_str()) {
        return;
    }
    for s in sites {
        if f.in_test[s.name_idx] {
            continue;
        }
        let line = f.tokens[s.name_idx].line;
        out.push(finding(
            f,
            "D001",
            line,
            format!(
                "iteration over HashMap/HashSet `{}`: order is arbitrary and varies per process",
                s.name
            ),
            "use SlotWindow/BTreeMap, or collect and sort keys before iterating; \
             if order provably cannot reach simulation state or outputs, allowlist \
             in analysis.toml with a reason",
        ));
    }
}

fn d002(f: &SourceFile, out: &mut Vec<Finding>) {
    if WALL_CLOCK_CRATES.contains(&f.crate_name.as_str()) {
        return;
    }
    let toks = &f.tokens;
    for i in 0..toks.len().saturating_sub(3) {
        if (is_ident(&toks[i], "Instant") || is_ident(&toks[i], "SystemTime"))
            && is_punct(&toks[i + 1], ":")
            && is_punct(&toks[i + 2], ":")
            && is_ident(&toks[i + 3], "now")
            && !f.in_test[i]
        {
            out.push(finding(
                f,
                "D002",
                toks[i].line,
                format!(
                    "wall-clock read `{}::now` in a simulation crate",
                    toks[i].text
                ),
                "simulation logic must depend only on sim time; move timing into the \
                 obs/harness layer, or allowlist summary-only uses (never serialized \
                 into reports) in analysis.toml with a reason",
            ));
        }
    }
}

fn d003(f: &SourceFile, out: &mut Vec<Finding>) {
    if WALL_CLOCK_CRATES.contains(&f.crate_name.as_str()) || f.rel_path == "crates/des/src/rng.rs" {
        return;
    }
    let toks = &f.tokens;
    for i in 0..toks.len().saturating_sub(3) {
        if is_ident(&toks[i], "SimRng")
            && is_punct(&toks[i + 1], ":")
            && is_punct(&toks[i + 2], ":")
            && (is_ident(&toks[i + 3], "seed_from") || is_ident(&toks[i + 3], "new"))
            && !f.in_test[i]
        {
            out.push(finding(
                f,
                "D003",
                toks[i].line,
                format!("raw RNG construction `SimRng::{}`", toks[i + 3].text),
                "derive component streams from the run's root seed via \
                 SimRng::substream_path so streams depend on coordinates, not call \
                 order; allowlist root-seed entry points in analysis.toml with a reason",
            ));
        }
    }
}

fn d004(f: &SourceFile, sites: &[IterSite], out: &mut Vec<Finding>) {
    if !is_report_path(&f.rel_path) {
        return;
    }
    let toks = &f.tokens;
    for s in sites {
        if f.in_test[s.name_idx] {
            continue;
        }
        if !accumulates(f, s) {
            continue;
        }
        out.push(finding(
            f,
            "D004",
            toks[s.name_idx].line,
            format!(
                "f64 accumulation over unordered `{}` in a report/stats path: float \
                 addition is order-sensitive, so the result is machine-dependent",
                s.name
            ),
            "iterate in sorted order (BTreeMap / sorted keys) before summing, or \
             accumulate with an order-insensitive scheme",
        ));
    }
}

/// True when the iteration at `s` feeds an accumulation: the call chain
/// reaches `.sum(` / `.fold(` / `.product(` before the statement ends,
/// or the site is a `for` loop whose body contains `+=` / `-=` / `*=`.
fn accumulates(f: &SourceFile, s: &IterSite) -> bool {
    let toks = &f.tokens;
    // Chained accumulation: scan to end of statement at depth 0.
    let mut depth = 0i64;
    let mut k = s.after_idx;
    while k + 2 < toks.len() {
        let t = &toks[k];
        if is_punct(t, "(") || is_punct(t, "[") || is_punct(t, "{") {
            depth += 1;
        } else if is_punct(t, ")") || is_punct(t, "]") || is_punct(t, "}") {
            depth -= 1;
            if depth < 0 {
                break;
            }
        } else if depth == 0 && is_punct(t, ";") {
            break;
        } else if is_punct(t, ".")
            && (is_ident(&toks[k + 1], "sum")
                || is_ident(&toks[k + 1], "fold")
                || is_ident(&toks[k + 1], "product"))
        {
            return true;
        }
        k += 1;
    }
    // `for` body accumulation: find the body `{` after the site, then
    // look for a compound assignment inside it.
    let mut k = s.name_idx;
    let mut depth = 0i64;
    while k < toks.len() {
        let t = &toks[k];
        if is_punct(t, "(") || is_punct(t, "[") {
            depth += 1;
        } else if is_punct(t, ")") || is_punct(t, "]") {
            depth -= 1;
        } else if depth <= 0 && is_punct(t, "{") {
            let close = matching_brace(toks, k);
            return toks[k..close].windows(2).any(|w| {
                (is_punct(&w[0], "+") || is_punct(&w[0], "-") || is_punct(&w[0], "*"))
                    && is_punct(&w[1], "=")
            });
        } else if depth <= 0 && is_punct(t, ";") {
            break;
        }
        k += 1;
    }
    false
}

fn u001(f: &SourceFile, out: &mut Vec<Finding>) {
    for t in &f.tokens {
        if !(t.kind == TokKind::Ident && t.text == "unsafe") {
            continue;
        }
        if f.comment_near(t.line, 3, "SAFETY") {
            continue;
        }
        out.push(finding(
            f,
            "U001",
            t.line,
            "`unsafe` without a `// SAFETY:` comment".to_string(),
            "state the invariant that makes this sound in a `// SAFETY:` comment \
             within the three lines above the `unsafe` keyword",
        ));
    }
}

fn p001(f: &SourceFile, out: &mut Vec<Finding>) {
    if !HOT_PATH_FILES.contains(&f.rel_path.as_str()) {
        return;
    }
    let toks = &f.tokens;
    for i in 0..toks.len() {
        if f.in_test[i] {
            continue;
        }
        let hit = if i + 2 < toks.len()
            && is_punct(&toks[i], ".")
            && (is_ident(&toks[i + 1], "unwrap") || is_ident(&toks[i + 1], "expect"))
            && is_punct(&toks[i + 2], "(")
        {
            Some(toks[i + 1].text.clone())
        } else if i + 1 < toks.len() && is_ident(&toks[i], "panic") && is_punct(&toks[i + 1], "!") {
            Some("panic!".to_string())
        } else {
            None
        };
        if let Some(what) = hit {
            out.push(finding(
                f,
                "P001",
                toks[i].line,
                format!("`{what}` in an engine hot-path module"),
                "a panic here aborts a whole sweep; return a Result, use a checked \
                 accessor with a default, or allowlist the documented invariant in \
                 analysis.toml with a reason",
            ));
        }
    }
}
