//! `holdcsim-analysis`: repo-specific determinism lints for the
//! HolDCSim-RS source tree.
//!
//! The simulator's core contract is byte-identical reports at any
//! worker count. PR 6 built the *dynamic* half of enforcing that
//! (fingerprints + `trace-diff` bisection); this crate is the *static*
//! half: a dependency-free AST-lite walker ([`lexer`] + [`source`])
//! over every workspace crate, running the lint family in [`lints`]
//! (D001–D004, U001, P001) under a checked-in `analysis.toml`
//! allowlist ([`config`]) where every suppression carries a reason and
//! stale entries are errors.
//!
//! Entry points: the `holdcsim-lint` binary, `cargo xtask analyze
//! --deny` (the CI gate), and [`analyze_tree`] / [`gate`] for tests
//! and tooling.

pub mod config;
pub mod lexer;
pub mod lints;
pub mod source;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub use config::{parse as parse_allowlist, AllowEntry, Applied};
pub use lints::{Finding, LINTS};

/// Lints a single source text as if it lived at `rel_path` (workspace-
/// relative, `/`-separated). The path determines lint scope (crate,
/// hot-path module, report path), which is what lets fixture tests
/// exercise every scope without touching the real tree.
pub fn analyze_source(rel_path: &str, src: &str) -> Vec<Finding> {
    lints::run_lints(&source::SourceFile::parse(rel_path, src))
}

/// Walks the workspace source tree under `root` (`crates/*/src`,
/// `xtask/src`, and the umbrella `src/`) and lints every `.rs` file.
/// Traversal order is sorted, so findings are deterministic — the lint
/// engine holds itself to the contract it enforces.
pub fn analyze_tree(root: &Path) -> io::Result<Vec<Finding>> {
    let mut files: Vec<PathBuf> = Vec::new();
    for dir in source_roots(root)? {
        collect_rs(&dir, &mut files)?;
    }
    files.sort();
    let mut findings = Vec::new();
    for path in files {
        let rel = rel_unix(root, &path);
        let src = fs::read_to_string(&path)?;
        findings.extend(analyze_source(&rel, &src));
    }
    findings.sort_by(|a, b| (&a.path, a.line, a.lint).cmp(&(&b.path, b.line, b.lint)));
    Ok(findings)
}

/// The directories that hold lintable source: every `crates/<name>/src`
/// plus `src/` and `xtask/src` when present.
fn source_roots(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut roots = Vec::new();
    for top in ["src", "xtask/src"] {
        let p = root.join(top);
        if p.is_dir() {
            roots.push(p);
        }
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut names: Vec<PathBuf> = fs::read_dir(&crates)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .collect();
        names.sort();
        for c in names {
            let src = c.join("src");
            if src.is_dir() {
                roots.push(src);
            }
        }
    }
    Ok(roots)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            collect_rs(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

fn rel_unix(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Outcome of a full gate run: findings after the allowlist, plus the
/// errors that fail the gate regardless of findings.
#[derive(Debug)]
pub struct GateOutcome {
    /// Findings no allowlist entry covers.
    pub unsuppressed: Vec<Finding>,
    /// Count of allowlisted findings.
    pub suppressed: usize,
    /// Allowlist entries that matched nothing (always an error).
    pub stale: Vec<AllowEntry>,
    /// Allowlist parse/validation error, if any.
    pub config_error: Option<String>,
}

impl GateOutcome {
    /// True when the tree passes under `--deny`: no unsuppressed
    /// findings, no stale entries, no config error.
    pub fn clean(&self) -> bool {
        self.unsuppressed.is_empty() && self.stale.is_empty() && self.config_error.is_none()
    }

    /// Renders the outcome as the CLI/xtask report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if let Some(e) = &self.config_error {
            out.push_str(&format!("error: {e}\n"));
            return out;
        }
        for f in &self.unsuppressed {
            out.push_str(&format!(
                "{}:{}: {} {}\n    {}\n    hint: {}\n",
                f.path, f.line, f.lint, f.message, f.line_text, f.hint
            ));
        }
        for e in &self.stale {
            out.push_str(&format!(
                "analysis.toml:{}: error: stale [[allow]] entry (lint {}, path {}) matches \
                 no finding — remove it\n",
                e.line, e.lint, e.path
            ));
        }
        let mut counts: Vec<(&str, usize)> = Vec::new();
        for f in &self.unsuppressed {
            match counts.iter_mut().find(|(l, _)| *l == f.lint) {
                Some((_, n)) => *n += 1,
                None => counts.push((f.lint, 1)),
            }
        }
        let per_lint = counts
            .iter()
            .map(|(l, n)| format!("{l}×{n}"))
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!(
            "holdcsim-lint: {} finding(s){}{}; {} suppressed by analysis.toml; {} stale entr{}\n",
            self.unsuppressed.len(),
            if per_lint.is_empty() { "" } else { " (" },
            if per_lint.is_empty() {
                String::new()
            } else {
                format!("{per_lint})")
            },
            self.suppressed,
            self.stale.len(),
            if self.stale.len() == 1 { "y" } else { "ies" },
        ));
        out
    }
}

/// Runs the full gate: lint the tree under `root`, apply the allowlist
/// at `config_path` (an absent file means an empty allowlist).
pub fn gate(root: &Path, config_path: &Path) -> io::Result<GateOutcome> {
    let entries = if config_path.is_file() {
        match config::parse(&fs::read_to_string(config_path)?) {
            Ok(e) => e,
            Err(msg) => {
                return Ok(GateOutcome {
                    unsuppressed: Vec::new(),
                    suppressed: 0,
                    stale: Vec::new(),
                    config_error: Some(msg),
                })
            }
        }
    } else {
        Vec::new()
    };
    let findings = analyze_tree(root)?;
    let applied = config::apply(findings, &entries);
    Ok(GateOutcome {
        unsuppressed: applied.unsuppressed,
        suppressed: applied.suppressed,
        stale: applied.stale,
        config_error: None,
    })
}
