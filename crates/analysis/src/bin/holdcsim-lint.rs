//! `holdcsim-lint`: run the repo's determinism lints over the
//! workspace tree.
//!
//! ```text
//! holdcsim-lint [--root DIR] [--config FILE] [--deny] [--list]
//! ```
//!
//! * `--root DIR`    workspace root to lint (default: `.`, walking up
//!   to the directory that contains `Cargo.toml` + `crates/`)
//! * `--config FILE` allowlist (default: `<root>/analysis.toml`)
//! * `--deny`        exit non-zero on any unsuppressed finding (the CI
//!   gate; without it findings are reported but the exit code is 0)
//! * `--list`        print the lint ids and exit
//!
//! Exit codes: 0 clean (or findings without `--deny`); 1 unsuppressed
//! findings under `--deny`; 2 allowlist error (parse failure, empty
//! reason, stale entry) — allowlist errors fail even without `--deny`.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root = PathBuf::from(".");
    let mut config: Option<PathBuf> = None;
    let mut deny = false;
    let mut i = 0usize;
    while i < args.len() {
        match args[i].as_str() {
            "--list" => {
                for (id, what) in holdcsim_analysis::LINTS {
                    println!("{id}  {what}");
                }
                return ExitCode::SUCCESS;
            }
            "--deny" => deny = true,
            "--root" => {
                i += 1;
                let Some(v) = args.get(i) else {
                    eprintln!("--root needs a directory");
                    return ExitCode::from(2);
                };
                root = PathBuf::from(v);
            }
            "--config" => {
                i += 1;
                let Some(v) = args.get(i) else {
                    eprintln!("--config needs a file");
                    return ExitCode::from(2);
                };
                config = Some(PathBuf::from(v));
            }
            other => {
                eprintln!("unknown argument `{other}` (try --list, --deny, --root, --config)");
                return ExitCode::from(2);
            }
        }
        i += 1;
    }
    // Walk up from --root to the workspace root so the tool works from
    // any crate directory.
    let mut ws = root.clone();
    for _ in 0..6 {
        if ws.join("Cargo.toml").is_file() && ws.join("crates").is_dir() {
            break;
        }
        ws = ws.join("..");
    }
    let config = config.unwrap_or_else(|| ws.join("analysis.toml"));
    let outcome = match holdcsim_analysis::gate(&ws, &config) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("holdcsim-lint: io error: {e}");
            return ExitCode::from(2);
        }
    };
    print!("{}", outcome.render());
    if outcome.config_error.is_some() || !outcome.stale.is_empty() {
        ExitCode::from(2)
    } else if deny && !outcome.unsuppressed.is_empty() {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
