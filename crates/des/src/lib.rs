//! # holdcsim-des
//!
//! The discrete-event simulation kernel underpinning HolDCSim-RS: a
//! deterministic event calendar with cancellable timers, an engine driving a
//! user-supplied [`engine::Model`], a reproducible random-number generator,
//! the generic [`slot_window::SlotWindow`] behind every hot-path table
//! (sequentially-keyed, hash-free, straggler-compacting), and the
//! statistics toolkit the simulator reports with.
//!
//! Everything here is domain-agnostic: no servers, switches, or jobs — those
//! live in the crates layered on top.
//!
//! ## Example: an M/M/1 queue in ~40 lines
//!
//! ```
//! use holdcsim_des::engine::{Context, Engine, Model};
//! use holdcsim_des::rng::SimRng;
//! use holdcsim_des::stats::Tally;
//! use holdcsim_des::time::{SimDuration, SimTime};
//!
//! enum Ev { Arrival, Departure }
//!
//! struct Mm1 {
//!     rng: SimRng,
//!     lambda: f64,
//!     mu: f64,
//!     in_system: u32,
//!     arrivals_left: u32,
//!     latencies: Tally,
//!     queue: Vec<SimTime>,
//! }
//!
//! impl Model for Mm1 {
//!     type Event = Ev;
//!     fn handle(&mut self, ctx: &mut Context<'_, Ev>, ev: Ev) {
//!         match ev {
//!             Ev::Arrival => {
//!                 self.queue.push(ctx.now());
//!                 self.in_system += 1;
//!                 if self.in_system == 1 {
//!                     let s = SimDuration::from_secs_f64(self.rng.exp(self.mu));
//!                     ctx.schedule_in(s, Ev::Departure);
//!                 }
//!                 self.arrivals_left -= 1;
//!                 if self.arrivals_left > 0 {
//!                     let gap = SimDuration::from_secs_f64(self.rng.exp(self.lambda));
//!                     ctx.schedule_in(gap, Ev::Arrival);
//!                 }
//!             }
//!             Ev::Departure => {
//!                 let arrived = self.queue.remove(0);
//!                 self.latencies.record((ctx.now() - arrived).as_secs_f64());
//!                 self.in_system -= 1;
//!                 if self.in_system > 0 {
//!                     let s = SimDuration::from_secs_f64(self.rng.exp(self.mu));
//!                     ctx.schedule_in(s, Ev::Departure);
//!                 }
//!             }
//!         }
//!     }
//! }
//!
//! let model = Mm1 {
//!     rng: SimRng::seed_from(1),
//!     lambda: 0.5,
//!     mu: 1.0,
//!     in_system: 0,
//!     arrivals_left: 5_000,
//!     latencies: Tally::new(),
//!     queue: Vec::new(),
//! };
//! let mut engine = Engine::new(model);
//! engine.schedule_at(SimTime::ZERO, Ev::Arrival);
//! engine.run();
//! // M/M/1 with rho=0.5: E[T] = 1/(mu-lambda) = 2.
//! let mean = engine.model().latencies.mean();
//! assert!((mean - 2.0).abs() < 0.2, "mean latency {mean}");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analysis;
pub mod engine;
pub mod lazy_heap;
pub mod queue;
pub mod rng;
pub mod slot_window;
pub mod stats;
pub mod time;

pub use engine::{Context, Engine, EventObserver, Model, NoObserver};
pub use lazy_heap::LazyHeap;
pub use queue::{EventQueue, EventToken};
pub use rng::SimRng;
pub use slot_window::SlotWindow;
pub use time::{SimDuration, SimTime};
