//! The simulation engine: drives a [`Model`] by popping events off the
//! calendar and handing them to the model's handler together with a
//! [`Context`] through which the handler schedules follow-up events.

use crate::queue::{EventQueue, EventToken};
use crate::time::{SimDuration, SimTime};

/// A simulation model: owns all domain state and interprets events.
///
/// The engine owns the clock and the calendar; the model owns everything
/// else. Handlers receive a [`Context`] for reading the clock and scheduling
/// or cancelling future events.
///
/// # Examples
///
/// ```
/// use holdcsim_des::engine::{Context, Engine, Model};
/// use holdcsim_des::time::SimDuration;
///
/// struct Counter {
///     fired: u32,
/// }
///
/// impl Model for Counter {
///     type Event = ();
///     fn handle(&mut self, ctx: &mut Context<'_, ()>, _ev: ()) {
///         self.fired += 1;
///         if self.fired < 3 {
///             ctx.schedule_in(SimDuration::from_secs(1), ());
///         }
///     }
/// }
///
/// let mut engine = Engine::new(Counter { fired: 0 });
/// engine.schedule_in(SimDuration::ZERO, ());
/// engine.run();
/// assert_eq!(engine.model().fired, 3);
/// ```
pub trait Model: Sized {
    /// The event alphabet of this model.
    type Event;

    /// Processes one event occurring at `ctx.now()`.
    fn handle(&mut self, ctx: &mut Context<'_, Self::Event>, event: Self::Event);
}

/// The handler-side view of the engine: the current clock plus scheduling.
#[derive(Debug)]
pub struct Context<'a, E> {
    now: SimTime,
    queue: &'a mut EventQueue<E>,
    stop: &'a mut bool,
}

impl<'a, E> Context<'a, E> {
    /// The current simulation time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` to fire `delay` after now.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) -> EventToken {
        self.queue.push(self.now + delay, event)
    }

    /// Schedules `event` at the absolute instant `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past (before `self.now()`): scheduling into
    /// the past would corrupt causality.
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> EventToken {
        assert!(
            at >= self.now,
            "cannot schedule into the past: {at} < {}",
            self.now
        );
        self.queue.push(at, event)
    }

    /// Cancels a previously scheduled event. No-op if it already fired.
    pub fn cancel(&mut self, token: EventToken) -> bool {
        self.queue.cancel(token)
    }

    /// Requests the engine stop after this handler returns.
    pub fn stop(&mut self) {
        *self.stop = true;
    }
}

/// The discrete-event engine: event calendar + clock + a [`Model`].
#[derive(Debug)]
pub struct Engine<M: Model> {
    model: M,
    queue: EventQueue<M::Event>,
    now: SimTime,
    processed: u64,
    stopped: bool,
}

impl<M: Model> Engine<M> {
    /// Creates an engine at time zero with an empty calendar.
    pub fn new(model: M) -> Self {
        Engine {
            model,
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            processed: 0,
            stopped: false,
        }
    }

    /// The current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Shared access to the model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Exclusive access to the model.
    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }

    /// Consumes the engine, returning the model.
    pub fn into_model(self) -> M {
        self.model
    }

    /// Schedules an event before or between runs.
    pub fn schedule_at(&mut self, at: SimTime, event: M::Event) -> EventToken {
        assert!(at >= self.now, "cannot schedule into the past");
        self.queue.push(at, event)
    }

    /// Schedules an event `delay` after the current clock.
    pub fn schedule_in(&mut self, delay: SimDuration, event: M::Event) -> EventToken {
        self.queue.push(self.now + delay, event)
    }

    /// Processes a single event. Returns `false` when the calendar is empty
    /// or a handler called [`Context::stop`].
    pub fn step(&mut self) -> bool {
        if self.stopped {
            return false;
        }
        let Some((at, event)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(at >= self.now, "event calendar went backwards");
        self.now = at;
        self.processed += 1;
        let mut ctx = Context {
            now: self.now,
            queue: &mut self.queue,
            stop: &mut self.stopped,
        };
        self.model.handle(&mut ctx, event);
        !self.stopped
    }

    /// Runs until the calendar drains or a handler stops the engine.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Runs until the clock would pass `deadline` (events at exactly
    /// `deadline` are processed), the calendar drains, or a handler stops
    /// the engine. The clock is advanced to `deadline` if the calendar
    /// outlives it.
    pub fn run_until(&mut self, deadline: SimTime) {
        loop {
            if self.stopped {
                return;
            }
            match self.queue.peek_time() {
                Some(t) if t <= deadline => {
                    self.step();
                }
                Some(_) => {
                    self.now = deadline;
                    return;
                }
                None => {
                    if self.now < deadline {
                        self.now = deadline;
                    }
                    return;
                }
            }
        }
    }

    /// The instant of the next scheduled event, if any (and the engine has
    /// not been stopped).
    ///
    /// This is the coordination primitive for running several engines in
    /// lockstep — e.g. a multi-datacenter federation advancing the site
    /// whose calendar holds the globally earliest event.
    pub fn peek_next_time(&mut self) -> Option<SimTime> {
        if self.stopped {
            return None;
        }
        self.queue.peek_time()
    }

    /// `true` once a handler has called [`Context::stop`].
    pub fn is_stopped(&self) -> bool {
        self.stopped
    }

    /// Number of live events still scheduled.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Recorder {
        seen: Vec<(SimTime, u32)>,
        stop_at: Option<u32>,
    }

    impl Model for Recorder {
        type Event = u32;
        fn handle(&mut self, ctx: &mut Context<'_, u32>, ev: u32) {
            self.seen.push((ctx.now(), ev));
            if Some(ev) == self.stop_at {
                ctx.stop();
            }
        }
    }

    fn recorder() -> Engine<Recorder> {
        Engine::new(Recorder {
            seen: Vec::new(),
            stop_at: None,
        })
    }

    #[test]
    fn processes_in_order_and_advances_clock() {
        let mut e = recorder();
        e.schedule_at(SimTime::from_secs(2), 2);
        e.schedule_at(SimTime::from_secs(1), 1);
        e.run();
        assert_eq!(
            e.model().seen,
            vec![(SimTime::from_secs(1), 1), (SimTime::from_secs(2), 2)]
        );
        assert_eq!(e.now(), SimTime::from_secs(2));
        assert_eq!(e.events_processed(), 2);
    }

    #[test]
    fn stop_halts_run() {
        let mut e = recorder();
        e.model_mut().stop_at = Some(1);
        e.schedule_at(SimTime::from_secs(1), 1);
        e.schedule_at(SimTime::from_secs(2), 2);
        e.run();
        assert_eq!(e.model().seen.len(), 1);
        assert!(e.is_stopped());
        assert_eq!(e.pending_events(), 1);
    }

    #[test]
    fn run_until_stops_at_deadline_and_advances_clock() {
        let mut e = recorder();
        e.schedule_at(SimTime::from_secs(1), 1);
        e.schedule_at(SimTime::from_secs(5), 5);
        e.run_until(SimTime::from_secs(3));
        assert_eq!(e.model().seen, vec![(SimTime::from_secs(1), 1)]);
        assert_eq!(e.now(), SimTime::from_secs(3));
        // The remaining event still fires on the next run.
        e.run();
        assert_eq!(e.model().seen.len(), 2);
    }

    #[test]
    fn run_until_processes_events_at_deadline() {
        let mut e = recorder();
        e.schedule_at(SimTime::from_secs(3), 3);
        e.run_until(SimTime::from_secs(3));
        assert_eq!(e.model().seen.len(), 1);
    }

    #[test]
    fn handler_scheduled_events_fire() {
        struct Chain {
            hops: u32,
        }
        impl Model for Chain {
            type Event = ();
            fn handle(&mut self, ctx: &mut Context<'_, ()>, _: ()) {
                self.hops += 1;
                if self.hops < 10 {
                    ctx.schedule_in(SimDuration::from_millis(10), ());
                }
            }
        }
        let mut e = Engine::new(Chain { hops: 0 });
        e.schedule_in(SimDuration::ZERO, ());
        e.run();
        assert_eq!(e.model().hops, 10);
        assert_eq!(e.now(), SimTime::from_nanos(90 * 1_000_000));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        struct Bad;
        impl Model for Bad {
            type Event = ();
            fn handle(&mut self, ctx: &mut Context<'_, ()>, _: ()) {
                ctx.schedule_at(SimTime::ZERO, ());
            }
        }
        let mut e = Engine::new(Bad);
        e.schedule_at(SimTime::from_secs(1), ());
        e.run();
    }

    #[test]
    fn run_until_with_empty_calendar_advances_clock() {
        let mut e = recorder();
        e.run_until(SimTime::from_secs(9));
        assert_eq!(e.now(), SimTime::from_secs(9));
    }
}
