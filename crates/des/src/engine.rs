//! The simulation engine: drives a [`Model`] by popping events off the
//! calendar and handing them to the model's handler together with a
//! [`Context`] through which the handler schedules follow-up events.

use crate::queue::{EventQueue, EventToken};
use crate::time::{SimDuration, SimTime};

/// A simulation model: owns all domain state and interprets events.
///
/// The engine owns the clock and the calendar; the model owns everything
/// else. Handlers receive a [`Context`] for reading the clock and scheduling
/// or cancelling future events.
///
/// # Examples
///
/// ```
/// use holdcsim_des::engine::{Context, Engine, Model};
/// use holdcsim_des::time::SimDuration;
///
/// struct Counter {
///     fired: u32,
/// }
///
/// impl Model for Counter {
///     type Event = ();
///     fn handle(&mut self, ctx: &mut Context<'_, ()>, _ev: ()) {
///         self.fired += 1;
///         if self.fired < 3 {
///             ctx.schedule_in(SimDuration::from_secs(1), ());
///         }
///     }
/// }
///
/// let mut engine = Engine::new(Counter { fired: 0 });
/// engine.schedule_in(SimDuration::ZERO, ());
/// engine.run();
/// assert_eq!(engine.model().fired, 3);
/// ```
pub trait Model: Sized {
    /// The event alphabet of this model.
    type Event;

    /// Processes one event occurring at `ctx.now()`.
    fn handle(&mut self, ctx: &mut Context<'_, Self::Event>, event: Self::Event);
}

/// A passive tap on the engine's event stream.
///
/// The engine calls [`on_event`](EventObserver::on_event) once per processed
/// event, after the clock has advanced to the event's instant and before the
/// model's handler runs. The observer is a type parameter of [`Engine`], so
/// the default [`NoObserver`] monomorphizes every call to a no-op — the
/// uninstrumented engine pays nothing for this hook.
///
/// When [`PANIC_HOOK`](EventObserver::PANIC_HOOK) is `true`, the engine also
/// wraps handler dispatch in a drop guard so that a panicking handler calls
/// [`on_panic`](EventObserver::on_panic) while unwinding — the observer can
/// then report the sim time and the event it just saw instead of leaving only
/// a bare backtrace.
pub trait EventObserver<M: Model> {
    /// When `true`, the engine arms a panic-context guard around every
    /// handler dispatch (one `mem::forget` on the happy path).
    const PANIC_HOOK: bool;

    /// Called for every processed event, before the model handles it.
    fn on_event(&mut self, now: SimTime, event: &M::Event, model: &M);

    /// Called while unwinding from a panicking handler (only if
    /// [`PANIC_HOOK`](EventObserver::PANIC_HOOK) is `true`).
    fn on_panic(&self, now: SimTime);
}

/// The default observer: observes nothing, compiles away entirely.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoObserver;

impl<M: Model> EventObserver<M> for NoObserver {
    const PANIC_HOOK: bool = false;

    #[inline(always)]
    fn on_event(&mut self, _now: SimTime, _event: &M::Event, _model: &M) {}

    #[inline(always)]
    fn on_panic(&self, _now: SimTime) {}
}

/// Calls [`EventObserver::on_panic`] if dropped during unwind; forgotten on
/// the happy path so the hook only fires when a handler actually panicked.
struct PanicGuard<'a, M: Model, O: EventObserver<M>> {
    observer: &'a O,
    now: SimTime,
    _model: std::marker::PhantomData<fn(M)>,
}

impl<M: Model, O: EventObserver<M>> Drop for PanicGuard<'_, M, O> {
    fn drop(&mut self) {
        self.observer.on_panic(self.now);
    }
}

/// The handler-side view of the engine: the current clock plus scheduling.
#[derive(Debug)]
pub struct Context<'a, E> {
    now: SimTime,
    queue: &'a mut EventQueue<E>,
    stop: &'a mut bool,
}

impl<'a, E> Context<'a, E> {
    /// The current simulation time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` to fire `delay` after now.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) -> EventToken {
        self.queue.push(self.now + delay, event)
    }

    /// Schedules `event` at the absolute instant `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past (before `self.now()`): scheduling into
    /// the past would corrupt causality.
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> EventToken {
        assert!(
            at >= self.now,
            "cannot schedule into the past: {at} < {}",
            self.now
        );
        self.queue.push(at, event)
    }

    /// Cancels a previously scheduled event. No-op if it already fired.
    pub fn cancel(&mut self, token: EventToken) -> bool {
        self.queue.cancel(token)
    }

    /// Requests the engine stop after this handler returns.
    pub fn stop(&mut self) {
        *self.stop = true;
    }
}

/// The discrete-event engine: event calendar + clock + a [`Model`], plus an
/// optional [`EventObserver`] tap (defaulting to the free [`NoObserver`]).
#[derive(Debug)]
pub struct Engine<M: Model, O: EventObserver<M> = NoObserver> {
    model: M,
    observer: O,
    queue: EventQueue<M::Event>,
    now: SimTime,
    processed: u64,
    stopped: bool,
}

impl<M: Model> Engine<M> {
    /// Creates an unobserved engine at time zero with an empty calendar.
    pub fn new(model: M) -> Self {
        Engine::with_observer(model, NoObserver)
    }
}

impl<M: Model, O: EventObserver<M>> Engine<M, O> {
    /// Creates an engine at time zero whose event stream is tapped by
    /// `observer`.
    pub fn with_observer(model: M, observer: O) -> Self {
        Engine {
            model,
            observer,
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            processed: 0,
            stopped: false,
        }
    }

    /// The current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Shared access to the model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Exclusive access to the model.
    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }

    /// Consumes the engine, returning the model.
    pub fn into_model(self) -> M {
        self.model
    }

    /// Shared access to the observer.
    pub fn observer(&self) -> &O {
        &self.observer
    }

    /// Exclusive access to the observer.
    pub fn observer_mut(&mut self) -> &mut O {
        &mut self.observer
    }

    /// Consumes the engine, returning the model and the observer.
    pub fn into_parts(self) -> (M, O) {
        (self.model, self.observer)
    }

    /// Schedules an event before or between runs.
    pub fn schedule_at(&mut self, at: SimTime, event: M::Event) -> EventToken {
        assert!(at >= self.now, "cannot schedule into the past");
        self.queue.push(at, event)
    }

    /// Schedules an event `delay` after the current clock.
    pub fn schedule_in(&mut self, delay: SimDuration, event: M::Event) -> EventToken {
        self.queue.push(self.now + delay, event)
    }

    /// Processes a single event. Returns `false` when the calendar is empty
    /// or a handler called [`Context::stop`].
    pub fn step(&mut self) -> bool {
        if self.stopped {
            return false;
        }
        let Some((at, event)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(at >= self.now, "event calendar went backwards");
        self.now = at;
        self.processed += 1;
        self.observer.on_event(self.now, &event, &self.model);
        let mut ctx = Context {
            now: self.now,
            queue: &mut self.queue,
            stop: &mut self.stopped,
        };
        if O::PANIC_HOOK {
            let guard = PanicGuard::<M, O> {
                observer: &self.observer,
                now: self.now,
                _model: std::marker::PhantomData,
            };
            self.model.handle(&mut ctx, event);
            std::mem::forget(guard);
        } else {
            self.model.handle(&mut ctx, event);
        }
        !self.stopped
    }

    /// Runs until the calendar drains or a handler stops the engine.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Runs until the clock would pass `deadline` (events at exactly
    /// `deadline` are processed), the calendar drains, or a handler stops
    /// the engine. The clock is advanced to `deadline` if the calendar
    /// outlives it.
    pub fn run_until(&mut self, deadline: SimTime) {
        loop {
            if self.stopped {
                return;
            }
            match self.queue.peek_time() {
                Some(t) if t <= deadline => {
                    self.step();
                }
                Some(_) => {
                    self.now = deadline;
                    return;
                }
                None => {
                    if self.now < deadline {
                        self.now = deadline;
                    }
                    return;
                }
            }
        }
    }

    /// Processes every event at or before `cap` — including events that
    /// handlers schedule *inside* the window — and returns how many fired.
    ///
    /// Unlike [`run_until`](Engine::run_until), the clock is **not**
    /// advanced to `cap`: it stays at the last processed event, so a later
    /// window (or a final `run_until(horizon)`) resumes seamlessly. This
    /// is the conservative-window primitive for running several engines
    /// concurrently: each engine burns down its calendar to a horizon that
    /// no cross-engine message can precede, independently of the others.
    pub fn run_window(&mut self, cap: SimTime) -> u64 {
        let before = self.processed;
        while !self.stopped && self.queue.peek_time().is_some_and(|t| t <= cap) {
            self.step();
        }
        self.processed - before
    }

    /// The instant of the next scheduled event, if any (and the engine has
    /// not been stopped).
    ///
    /// This is the coordination primitive for running several engines
    /// together — e.g. a multi-datacenter federation computing the next
    /// safe window from the globally earliest event.
    pub fn peek_next_time(&mut self) -> Option<SimTime> {
        if self.stopped {
            return None;
        }
        self.queue.peek_time()
    }

    /// `true` once a handler has called [`Context::stop`].
    pub fn is_stopped(&self) -> bool {
        self.stopped
    }

    /// Number of live events still scheduled.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Recorder {
        seen: Vec<(SimTime, u32)>,
        stop_at: Option<u32>,
    }

    impl Model for Recorder {
        type Event = u32;
        fn handle(&mut self, ctx: &mut Context<'_, u32>, ev: u32) {
            self.seen.push((ctx.now(), ev));
            if Some(ev) == self.stop_at {
                ctx.stop();
            }
        }
    }

    fn recorder() -> Engine<Recorder> {
        Engine::new(Recorder {
            seen: Vec::new(),
            stop_at: None,
        })
    }

    #[test]
    fn processes_in_order_and_advances_clock() {
        let mut e = recorder();
        e.schedule_at(SimTime::from_secs(2), 2);
        e.schedule_at(SimTime::from_secs(1), 1);
        e.run();
        assert_eq!(
            e.model().seen,
            vec![(SimTime::from_secs(1), 1), (SimTime::from_secs(2), 2)]
        );
        assert_eq!(e.now(), SimTime::from_secs(2));
        assert_eq!(e.events_processed(), 2);
    }

    #[test]
    fn stop_halts_run() {
        let mut e = recorder();
        e.model_mut().stop_at = Some(1);
        e.schedule_at(SimTime::from_secs(1), 1);
        e.schedule_at(SimTime::from_secs(2), 2);
        e.run();
        assert_eq!(e.model().seen.len(), 1);
        assert!(e.is_stopped());
        assert_eq!(e.pending_events(), 1);
    }

    #[test]
    fn run_until_stops_at_deadline_and_advances_clock() {
        let mut e = recorder();
        e.schedule_at(SimTime::from_secs(1), 1);
        e.schedule_at(SimTime::from_secs(5), 5);
        e.run_until(SimTime::from_secs(3));
        assert_eq!(e.model().seen, vec![(SimTime::from_secs(1), 1)]);
        assert_eq!(e.now(), SimTime::from_secs(3));
        // The remaining event still fires on the next run.
        e.run();
        assert_eq!(e.model().seen.len(), 2);
    }

    #[test]
    fn run_until_processes_events_at_deadline() {
        let mut e = recorder();
        e.schedule_at(SimTime::from_secs(3), 3);
        e.run_until(SimTime::from_secs(3));
        assert_eq!(e.model().seen.len(), 1);
    }

    #[test]
    fn handler_scheduled_events_fire() {
        struct Chain {
            hops: u32,
        }
        impl Model for Chain {
            type Event = ();
            fn handle(&mut self, ctx: &mut Context<'_, ()>, _: ()) {
                self.hops += 1;
                if self.hops < 10 {
                    ctx.schedule_in(SimDuration::from_millis(10), ());
                }
            }
        }
        let mut e = Engine::new(Chain { hops: 0 });
        e.schedule_in(SimDuration::ZERO, ());
        e.run();
        assert_eq!(e.model().hops, 10);
        assert_eq!(e.now(), SimTime::from_nanos(90 * 1_000_000));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        struct Bad;
        impl Model for Bad {
            type Event = ();
            fn handle(&mut self, ctx: &mut Context<'_, ()>, _: ()) {
                ctx.schedule_at(SimTime::ZERO, ());
            }
        }
        let mut e = Engine::new(Bad);
        e.schedule_at(SimTime::from_secs(1), ());
        e.run();
    }

    #[test]
    fn run_window_processes_inclusive_cap_without_advancing_clock() {
        let mut e = recorder();
        e.schedule_at(SimTime::from_secs(1), 1);
        e.schedule_at(SimTime::from_secs(3), 3);
        e.schedule_at(SimTime::from_secs(5), 5);
        assert_eq!(e.run_window(SimTime::from_secs(3)), 2);
        assert_eq!(
            e.model().seen,
            vec![(SimTime::from_secs(1), 1), (SimTime::from_secs(3), 3)]
        );
        // The clock parks at the last event, not the cap.
        assert_eq!(e.now(), SimTime::from_secs(3));
        assert_eq!(e.peek_next_time(), Some(SimTime::from_secs(5)));
        // An empty window fires nothing and moves nothing.
        assert_eq!(e.run_window(SimTime::from_secs(4)), 0);
        assert_eq!(e.now(), SimTime::from_secs(3));
        assert_eq!(e.run_window(SimTime::from_secs(5)), 1);
        assert_eq!(e.now(), SimTime::from_secs(5));
    }

    #[test]
    fn run_window_follows_handler_scheduled_events() {
        struct Chain {
            hops: u32,
        }
        impl Model for Chain {
            type Event = ();
            fn handle(&mut self, ctx: &mut Context<'_, ()>, _: ()) {
                self.hops += 1;
                ctx.schedule_in(SimDuration::from_secs(1), ());
            }
        }
        let mut e = Engine::new(Chain { hops: 0 });
        e.schedule_at(SimTime::from_secs(1), ());
        // Events bred inside the window run inside the window.
        assert_eq!(e.run_window(SimTime::from_secs(4)), 4);
        assert_eq!(e.model().hops, 4);
        assert_eq!(e.now(), SimTime::from_secs(4));
        assert_eq!(e.peek_next_time(), Some(SimTime::from_secs(5)));
    }

    #[test]
    fn run_until_with_empty_calendar_advances_clock() {
        let mut e = recorder();
        e.run_until(SimTime::from_secs(9));
        assert_eq!(e.now(), SimTime::from_secs(9));
    }

    /// Observer used by the hook tests: records the stream and keeps the
    /// last event in a cell the panic hook can read during unwind.
    struct Tap {
        seen: Vec<(SimTime, u32)>,
        last: std::cell::Cell<u32>,
        panicked_at: std::rc::Rc<std::cell::Cell<Option<(SimTime, u32)>>>,
    }

    impl EventObserver<Recorder> for Tap {
        const PANIC_HOOK: bool = true;
        fn on_event(&mut self, now: SimTime, event: &u32, _model: &Recorder) {
            self.seen.push((now, *event));
            self.last.set(*event);
        }
        fn on_panic(&self, now: SimTime) {
            self.panicked_at.set(Some((now, self.last.get())));
        }
    }

    #[test]
    fn observer_sees_every_event_in_order() {
        let tap = Tap {
            seen: Vec::new(),
            last: std::cell::Cell::new(0),
            panicked_at: Default::default(),
        };
        let mut e = Engine::with_observer(
            Recorder {
                seen: Vec::new(),
                stop_at: None,
            },
            tap,
        );
        e.schedule_at(SimTime::from_secs(2), 20);
        e.schedule_at(SimTime::from_secs(1), 10);
        e.run();
        // The observer saw exactly what the model saw, in the same order.
        assert_eq!(e.observer().seen, e.model().seen);
        let (model, tap) = e.into_parts();
        assert_eq!(model.seen.len(), 2);
        assert_eq!(tap.seen.len(), 2);
    }

    #[test]
    fn panic_guard_reports_time_and_event_of_panicking_handler() {
        struct Bomb;
        impl Model for Bomb {
            type Event = u32;
            fn handle(&mut self, _ctx: &mut Context<'_, u32>, ev: u32) {
                if ev == 7 {
                    panic!("boom");
                }
            }
        }
        struct BombTap {
            last: std::cell::Cell<u32>,
            panicked_at: std::rc::Rc<std::cell::Cell<Option<(SimTime, u32)>>>,
        }
        impl EventObserver<Bomb> for BombTap {
            const PANIC_HOOK: bool = true;
            fn on_event(&mut self, _now: SimTime, event: &u32, _model: &Bomb) {
                self.last.set(*event);
            }
            fn on_panic(&self, now: SimTime) {
                self.panicked_at.set(Some((now, self.last.get())));
            }
        }
        let report = std::rc::Rc::new(std::cell::Cell::new(None));
        let tap = BombTap {
            last: std::cell::Cell::new(0),
            panicked_at: report.clone(),
        };
        let mut e = Engine::with_observer(Bomb, tap);
        e.schedule_at(SimTime::from_secs(1), 1);
        e.schedule_at(SimTime::from_secs(5), 7);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| e.run()));
        assert!(r.is_err());
        // The guard fired during unwind with the offending event's context.
        assert_eq!(report.get(), Some((SimTime::from_secs(5), 7)));
    }

    #[test]
    fn panic_guard_does_not_fire_on_the_happy_path() {
        let report = std::rc::Rc::new(std::cell::Cell::new(None));
        let tap = Tap {
            seen: Vec::new(),
            last: std::cell::Cell::new(0),
            panicked_at: report.clone(),
        };
        let mut e = Engine::with_observer(
            Recorder {
                seen: Vec::new(),
                stop_at: None,
            },
            tap,
        );
        e.schedule_at(SimTime::from_secs(1), 1);
        e.run();
        assert_eq!(report.get(), None);
    }
}
