//! Simulation clock types.
//!
//! All simulation time is integer **nanoseconds**. Using integers (rather
//! than `f64` seconds) keeps event ordering exact and runs reproducible:
//! adding durations is associative and never loses precision over long
//! simulated horizons (a `u64` of nanoseconds covers ~584 years).

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulation clock, in nanoseconds since simulation start.
///
/// # Examples
///
/// ```
/// use holdcsim_des::time::{SimTime, SimDuration};
///
/// let t = SimTime::ZERO + SimDuration::from_millis(5);
/// assert_eq!(t.as_secs_f64(), 0.005);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulation time, in nanoseconds.
///
/// # Examples
///
/// ```
/// use holdcsim_des::time::SimDuration;
///
/// let d = SimDuration::from_secs_f64(1.5);
/// assert_eq!(d, SimDuration::from_millis(1500));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The maximum representable instant; useful as an "infinity" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw nanoseconds since simulation start.
    #[inline]
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates an instant from whole seconds since simulation start.
    #[inline]
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000_000)
    }

    /// Creates an instant from whole milliseconds since simulation start.
    #[inline]
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000_000)
    }

    /// Raw nanoseconds since simulation start.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float (may round for very large values).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The span from `earlier` to `self`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is after `self`.
    #[inline]
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(earlier.0 <= self.0, "duration_since: earlier > self");
        SimDuration(self.0 - earlier.0)
    }

    /// The span from `earlier` to `self`, or zero if `earlier` is later.
    #[inline]
    pub fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Adds a duration, saturating at [`SimTime::MAX`].
    #[inline]
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The maximum representable span; useful as an "infinity" sentinel.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a span from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a span from whole microseconds.
    #[inline]
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a span from whole milliseconds.
    #[inline]
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a span from whole seconds.
    #[inline]
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Creates a span from float seconds, rounding to the nearest nanosecond.
    ///
    /// Negative or non-finite inputs clamp to zero; values beyond the
    /// representable range clamp to [`SimDuration::MAX`].
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs.is_nan() || secs <= 0.0 {
            return SimDuration::ZERO;
        }
        let nanos = secs * 1e9;
        if nanos >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(nanos.round() as u64)
        }
    }

    /// Raw nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The span in float seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// `true` if this is the zero-length span.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplies by a non-negative float factor, rounding to nanoseconds.
    #[inline]
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * factor)
    }

    /// Adds, saturating at [`SimDuration::MAX`].
    #[inline]
    pub fn saturating_add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }

    /// Subtracts, saturating at zero.
    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl From<SimDuration> for SimTime {
    #[inline]
    fn from(d: SimDuration) -> SimTime {
        SimTime(d.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t = SimTime::from_secs(3);
        let d = SimDuration::from_millis(250);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
    }

    #[test]
    fn from_secs_f64_rounds_to_nanos() {
        assert_eq!(
            SimDuration::from_secs_f64(0.000_000_001),
            SimDuration::from_nanos(1)
        );
        assert_eq!(SimDuration::from_secs_f64(1.0), SimDuration::from_secs(1));
    }

    #[test]
    fn from_secs_f64_clamps_bad_inputs() {
        assert_eq!(SimDuration::from_secs_f64(-5.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::MAX);
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_secs(1)),
            SimTime::MAX
        );
        assert_eq!(
            SimTime::ZERO.saturating_duration_since(SimTime::from_secs(1)),
            SimDuration::ZERO
        );
        assert_eq!(
            SimDuration::from_secs(1).saturating_sub(SimDuration::from_secs(2)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn mul_f64_scales() {
        let d = SimDuration::from_millis(100);
        assert_eq!(d.mul_f64(2.0), SimDuration::from_millis(200));
        assert_eq!(d.mul_f64(0.5), SimDuration::from_millis(50));
    }

    #[test]
    fn display_is_seconds() {
        assert_eq!(SimTime::from_secs(2).to_string(), "2.000000s");
        assert_eq!(SimDuration::from_millis(1).to_string(), "0.001000s");
    }

    #[test]
    fn ordering_follows_nanos() {
        assert!(SimTime::from_nanos(5) < SimTime::from_nanos(6));
        assert!(SimDuration::from_micros(1) > SimDuration::from_nanos(999));
    }
}
