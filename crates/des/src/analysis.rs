//! Closed-form queueing-theory references for validating the simulator.
//!
//! A discrete-event simulator earns trust by reproducing the systems whose
//! answers are known exactly. This module provides M/M/1 and M/M/c
//! formulas (Erlang C) that the integration tests compare simulation
//! output against.

/// Exact M/M/1 results for arrival rate λ and service rate µ.
///
/// # Examples
///
/// ```
/// use holdcsim_des::analysis::MM1;
///
/// let q = MM1::new(0.5, 1.0);
/// assert_eq!(q.utilization(), 0.5);
/// assert_eq!(q.mean_time_in_system(), 2.0); // 1/(mu - lambda)
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MM1 {
    lambda: f64,
    mu: f64,
}

impl MM1 {
    /// Creates the queue model.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < lambda < mu` (the queue must be stable).
    pub fn new(lambda: f64, mu: f64) -> Self {
        assert!(
            lambda > 0.0 && mu > lambda,
            "M/M/1 requires 0 < lambda < mu"
        );
        MM1 { lambda, mu }
    }

    /// Server utilization ρ = λ/µ.
    pub fn utilization(self) -> f64 {
        self.lambda / self.mu
    }

    /// Mean number in system, L = ρ/(1−ρ).
    pub fn mean_in_system(self) -> f64 {
        let rho = self.utilization();
        rho / (1.0 - rho)
    }

    /// Mean time in system, W = 1/(µ−λ).
    pub fn mean_time_in_system(self) -> f64 {
        1.0 / (self.mu - self.lambda)
    }

    /// Mean waiting time (excluding service), W_q = ρ/(µ−λ).
    pub fn mean_wait(self) -> f64 {
        self.utilization() / (self.mu - self.lambda)
    }

    /// The `q`-quantile of time in system (exponential with rate µ−λ).
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1)`.
    pub fn time_in_system_quantile(self, q: f64) -> f64 {
        assert!((0.0..1.0).contains(&q), "quantile out of [0,1)");
        -(1.0 - q).ln() / (self.mu - self.lambda)
    }
}

/// Exact M/M/c results (Erlang C) for arrival rate λ, per-server service
/// rate µ, and `c` servers.
///
/// # Examples
///
/// ```
/// use holdcsim_des::analysis::MMc;
///
/// let q = MMc::new(2.0, 1.0, 4);
/// assert_eq!(q.utilization(), 0.5);
/// // Waiting probability is small with this much headroom.
/// assert!(q.wait_probability() < 0.2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MMc {
    lambda: f64,
    mu: f64,
    c: u32,
}

impl MMc {
    /// Creates the queue model.
    ///
    /// # Panics
    ///
    /// Panics unless `c > 0` and `lambda < c·mu` (stability).
    pub fn new(lambda: f64, mu: f64, c: u32) -> Self {
        assert!(c > 0, "need at least one server");
        assert!(
            lambda > 0.0 && lambda < c as f64 * mu,
            "M/M/c requires 0 < lambda < c*mu"
        );
        MMc { lambda, mu, c }
    }

    /// Per-server utilization ρ = λ/(cµ).
    pub fn utilization(self) -> f64 {
        self.lambda / (self.c as f64 * self.mu)
    }

    /// Offered load in Erlangs, a = λ/µ.
    pub fn offered_load(self) -> f64 {
        self.lambda / self.mu
    }

    /// Erlang C: the probability an arrival must wait.
    pub fn wait_probability(self) -> f64 {
        let a = self.offered_load();
        let c = self.c as f64;
        // sum_{k=0}^{c-1} a^k/k!  computed iteratively for stability.
        let mut term = 1.0; // a^0/0!
        let mut sum = 1.0;
        for k in 1..self.c {
            term *= a / k as f64;
            sum += term;
        }
        let tail = term * a / c; // a^c/c!
        let tail = tail / (1.0 - self.utilization());
        tail / (sum + tail)
    }

    /// Mean waiting time W_q = C(c, a)/(cµ − λ).
    pub fn mean_wait(self) -> f64 {
        self.wait_probability() / (self.c as f64 * self.mu - self.lambda)
    }

    /// Mean time in system W = W_q + 1/µ.
    pub fn mean_time_in_system(self) -> f64 {
        self.mean_wait() + 1.0 / self.mu
    }

    /// Mean number in system L = λW (Little's law).
    pub fn mean_in_system(self) -> f64 {
        self.lambda * self.mean_time_in_system()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mm1_textbook_values() {
        let q = MM1::new(2.0, 3.0);
        assert!((q.utilization() - 2.0 / 3.0).abs() < 1e-12);
        assert!((q.mean_in_system() - 2.0).abs() < 1e-12);
        assert!((q.mean_time_in_system() - 1.0).abs() < 1e-12);
        assert!((q.mean_wait() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn mm1_little_law_consistency() {
        let q = MM1::new(0.7, 1.0);
        assert!((q.mean_in_system() - 0.7 * q.mean_time_in_system()).abs() < 1e-12);
    }

    #[test]
    fn mm1_quantiles_are_exponential() {
        let q = MM1::new(0.5, 1.0);
        // median = ln(2)/(mu-lambda)
        assert!((q.time_in_system_quantile(0.5) - 2.0 * std::f64::consts::LN_2).abs() < 1e-12);
        assert!(q.time_in_system_quantile(0.99) > q.time_in_system_quantile(0.9));
    }

    #[test]
    fn mmc_reduces_to_mm1_at_c1() {
        let mmc = MMc::new(0.6, 1.0, 1);
        let mm1 = MM1::new(0.6, 1.0);
        assert!((mmc.mean_time_in_system() - mm1.mean_time_in_system()).abs() < 1e-9);
        // For M/M/1 the waiting probability is rho.
        assert!((mmc.wait_probability() - 0.6).abs() < 1e-9);
    }

    #[test]
    fn mmc_erlang_c_known_value() {
        // Classic call-center example: a = 8 Erlang, c = 10 servers:
        // Erlang C ≈ 0.409.
        let q = MMc::new(8.0, 1.0, 10);
        let pc = q.wait_probability();
        assert!((pc - 0.409).abs() < 0.005, "Erlang C {pc}");
    }

    #[test]
    fn mmc_pooling_beats_mm1() {
        // Four pooled servers at the same utilization wait far less.
        let pooled = MMc::new(2.8, 1.0, 4);
        let single = MM1::new(0.7, 1.0);
        assert!(pooled.mean_wait() < single.mean_wait() / 2.0);
    }

    #[test]
    #[should_panic(expected = "requires 0 < lambda < c*mu")]
    fn unstable_mmc_rejected() {
        let _ = MMc::new(5.0, 1.0, 4);
    }
}
