//! Runtime statistics collection for simulations.
//!
//! * [`Tally`] — streaming mean/variance/min/max of discrete observations
//!   (e.g. per-job latency).
//! * [`TimeWeighted`] — integrals and time averages of piecewise-constant
//!   signals (e.g. queue length, watts → joules).
//! * [`Residency`] — time spent per state of a state machine (Fig. 8).
//! * [`SampleSet`] — exact/reservoir quantiles and CDFs (tail latency,
//!   Fig. 11b).
//! * [`LogHistogram`] — streaming log-linear quantiles with bounded memory
//!   (exact tails for the 20 K-server runs).
//! * [`TimeSeries`] — fixed-interval sampled traces (power traces,
//!   Fig. 4/12/13).

mod histogram;
mod quantile;
mod residency;
mod series;
mod tally;
mod timeweighted;

pub use histogram::LogHistogram;
pub use quantile::SampleSet;
pub use residency::Residency;
pub use series::{mean_abs_diff, TimeSeries};
pub use tally::Tally;
pub use timeweighted::TimeWeighted;
