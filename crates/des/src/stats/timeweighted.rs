//! Time-weighted value tracking: integrals and averages of piecewise-constant
//! signals such as queue length, active-server count, or power draw.

use crate::time::{SimDuration, SimTime};

/// Integrates a piecewise-constant signal over simulation time.
///
/// Typical uses: time-averaged queue length, energy (integral of watts).
///
/// # Examples
///
/// ```
/// use holdcsim_des::stats::TimeWeighted;
/// use holdcsim_des::time::SimTime;
///
/// let mut queue_len = TimeWeighted::new(SimTime::ZERO, 0.0);
/// queue_len.set(SimTime::from_secs(10), 4.0); // 0 for 10 s
/// queue_len.set(SimTime::from_secs(30), 0.0); // 4 for 20 s
/// assert_eq!(queue_len.integral(SimTime::from_secs(30)), 80.0);
/// assert_eq!(queue_len.time_average(SimTime::from_secs(40)), 2.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TimeWeighted {
    last_change: SimTime,
    value: f64,
    integral: f64,
    start: SimTime,
    max: f64,
    min: f64,
}

impl TimeWeighted {
    /// Starts tracking at `start` with initial `value`.
    pub fn new(start: SimTime, value: f64) -> Self {
        TimeWeighted {
            last_change: start,
            value,
            integral: 0.0,
            start,
            max: value,
            min: value,
        }
    }

    /// The current value of the signal.
    pub fn value(&self) -> f64 {
        self.value
    }

    /// Largest value ever set.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Smallest value ever set.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Updates the signal to `value` effective at `now`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `now` precedes the previous update.
    pub fn set(&mut self, now: SimTime, value: f64) {
        debug_assert!(now >= self.last_change, "TimeWeighted updated out of order");
        self.integral += self.value
            * now
                .saturating_duration_since(self.last_change)
                .as_secs_f64();
        self.last_change = now;
        self.value = value;
        self.max = self.max.max(value);
        self.min = self.min.min(value);
    }

    /// Adds `delta` to the current value at `now` (convenience for counters).
    pub fn add(&mut self, now: SimTime, delta: f64) {
        let v = self.value + delta;
        self.set(now, v);
    }

    /// The integral of the signal from start through `now`
    /// (value · seconds).
    pub fn integral(&self, now: SimTime) -> f64 {
        self.integral
            + self.value
                * now
                    .saturating_duration_since(self.last_change)
                    .as_secs_f64()
    }

    /// The time average of the signal from start through `now`.
    /// Returns the current value if no time has elapsed.
    pub fn time_average(&self, now: SimTime) -> f64 {
        let elapsed = now.saturating_duration_since(self.start);
        if elapsed.is_zero() {
            self.value
        } else {
            self.integral(now) / elapsed.as_secs_f64()
        }
    }

    /// Time elapsed since tracking began.
    pub fn elapsed(&self, now: SimTime) -> SimDuration {
        now.saturating_duration_since(self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_signal_integrates_linearly() {
        let tw = TimeWeighted::new(SimTime::ZERO, 3.0);
        assert_eq!(tw.integral(SimTime::from_secs(10)), 30.0);
        assert_eq!(tw.time_average(SimTime::from_secs(10)), 3.0);
    }

    #[test]
    fn steps_accumulate() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 1.0);
        tw.set(SimTime::from_secs(5), 2.0);
        tw.set(SimTime::from_secs(10), 0.0);
        assert_eq!(tw.integral(SimTime::from_secs(20)), 5.0 + 10.0);
        assert_eq!(tw.time_average(SimTime::from_secs(15)), 1.0);
    }

    #[test]
    fn add_is_relative() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 0.0);
        tw.add(SimTime::from_secs(1), 2.0);
        tw.add(SimTime::from_secs(2), -1.0);
        assert_eq!(tw.value(), 1.0);
        assert_eq!(tw.max(), 2.0);
        assert_eq!(tw.min(), 0.0);
    }

    #[test]
    fn zero_elapsed_average_is_current_value() {
        let tw = TimeWeighted::new(SimTime::from_secs(5), 7.0);
        assert_eq!(tw.time_average(SimTime::from_secs(5)), 7.0);
    }

    #[test]
    fn late_start_ignores_earlier_time() {
        let tw = TimeWeighted::new(SimTime::from_secs(100), 2.0);
        assert_eq!(tw.integral(SimTime::from_secs(110)), 20.0);
        assert_eq!(
            tw.elapsed(SimTime::from_secs(110)),
            SimDuration::from_secs(10)
        );
    }
}
