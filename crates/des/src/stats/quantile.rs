//! Latency-distribution collection: exact quantiles with optional reservoir
//! downsampling for very long runs.

use crate::rng::SimRng;

/// Collects scalar samples and answers quantile queries.
///
/// Stores samples exactly up to `capacity`, then switches to uniform
/// reservoir sampling (Vitter's algorithm R) so memory stays bounded while
/// quantiles remain unbiased estimates.
///
/// # Examples
///
/// ```
/// use holdcsim_des::stats::SampleSet;
///
/// let mut s = SampleSet::unbounded();
/// for i in 1..=100 {
///     s.record(i as f64);
/// }
/// assert_eq!(s.quantile(0.5), Some(50.0));
/// assert_eq!(s.quantile(0.99), Some(99.0));
/// assert_eq!(s.quantile(1.0), Some(100.0));
/// ```
#[derive(Debug, Clone)]
pub struct SampleSet {
    samples: Vec<f64>,
    capacity: usize,
    seen: u64,
    rng: SimRng,
    sum: f64,
}

impl SampleSet {
    /// A set that stores every sample exactly (no downsampling).
    pub fn unbounded() -> Self {
        Self::with_capacity(usize::MAX)
    }

    /// A set that reservoir-samples beyond `capacity` stored values.
    pub fn with_capacity(capacity: usize) -> Self {
        SampleSet {
            samples: Vec::new(),
            capacity: capacity.max(1),
            seen: 0,
            rng: SimRng::seed_from(0x5A4D_17E5_0CA7_B0A5),
            sum: 0.0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, x: f64) {
        self.seen += 1;
        self.sum += x;
        if self.samples.len() < self.capacity {
            self.samples.push(x);
        } else {
            // Reservoir: replace a random slot with probability capacity/seen.
            let j = self.rng.below(self.seen);
            if (j as usize) < self.capacity {
                self.samples[j as usize] = x;
            }
        }
    }

    /// Total number of samples ever recorded.
    pub fn count(&self) -> u64 {
        self.seen
    }

    /// Mean over all recorded samples (exact even when downsampled).
    pub fn mean(&self) -> f64 {
        if self.seen == 0 {
            0.0
        } else {
            self.sum / self.seen as f64
        }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) using nearest-rank on retained
    /// samples. Returns `None` if empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile out of [0,1]");
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        Some(sorted[rank - 1])
    }

    /// Convenience: several quantiles in one sort.
    pub fn quantiles(&self, qs: &[f64]) -> Vec<Option<f64>> {
        if self.samples.is_empty() {
            return qs.iter().map(|_| None).collect();
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
        qs.iter()
            .map(|&q| {
                assert!((0.0..=1.0).contains(&q), "quantile out of [0,1]");
                let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
                Some(sorted[rank - 1])
            })
            .collect()
    }

    /// Empirical CDF as `(value, cumulative fraction)` points over retained
    /// samples, suitable for plotting (Fig. 11b style).
    pub fn cdf_points(&self) -> Vec<(f64, f64)> {
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
        let n = sorted.len() as f64;
        sorted
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, (i + 1) as f64 / n))
            .collect()
    }

    /// The retained samples (order unspecified).
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_set_has_no_quantiles() {
        let s = SampleSet::unbounded();
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn exact_quantiles_small() {
        let mut s = SampleSet::unbounded();
        for x in [5.0, 1.0, 3.0, 2.0, 4.0] {
            s.record(x);
        }
        assert_eq!(s.quantile(0.0), Some(1.0));
        assert_eq!(s.quantile(0.5), Some(3.0));
        assert_eq!(s.quantile(1.0), Some(5.0));
        assert_eq!(s.mean(), 3.0);
    }

    #[test]
    fn reservoir_keeps_capacity_and_exact_mean() {
        let mut s = SampleSet::with_capacity(100);
        for i in 0..10_000 {
            s.record(i as f64);
        }
        assert_eq!(s.samples().len(), 100);
        assert_eq!(s.count(), 10_000);
        assert!((s.mean() - 4_999.5).abs() < 1e-9);
        // Median of uniform 0..10000 should be near 5000.
        let med = s.quantile(0.5).unwrap();
        assert!((med - 5_000.0).abs() < 1_500.0, "median {med}");
    }

    #[test]
    fn cdf_points_monotone() {
        let mut s = SampleSet::unbounded();
        for x in [3.0, 1.0, 2.0] {
            s.record(x);
        }
        let cdf = s.cdf_points();
        assert_eq!(cdf, vec![(1.0, 1.0 / 3.0), (2.0, 2.0 / 3.0), (3.0, 1.0)]);
    }

    #[test]
    fn batch_quantiles_match_single() {
        let mut s = SampleSet::unbounded();
        for i in 1..=1000 {
            s.record(i as f64);
        }
        let qs = s.quantiles(&[0.5, 0.9, 0.95, 0.99]);
        assert_eq!(qs[0], s.quantile(0.5));
        assert_eq!(qs[3], s.quantile(0.99));
    }

    #[test]
    #[should_panic(expected = "quantile out of")]
    fn quantile_rejects_out_of_range() {
        let mut s = SampleSet::unbounded();
        s.record(1.0);
        let _ = s.quantile(1.5);
    }
}
