//! Streaming scalar statistics (Welford's online algorithm).

use std::fmt;

/// Accumulates count, mean, variance, min, and max of observations without
/// storing them.
///
/// # Examples
///
/// ```
/// use holdcsim_des::stats::Tally;
///
/// let mut t = Tally::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     t.record(x);
/// }
/// assert_eq!(t.count(), 8);
/// assert_eq!(t.mean(), 5.0);
/// assert_eq!(t.population_std_dev(), 2.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Tally {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl Tally {
    /// Creates an empty tally.
    pub fn new() -> Self {
        Tally {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 if fewer than 2 observations).
    pub fn population_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance with Bessel's correction (0 if fewer than 2).
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn population_std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Sample standard deviation.
    pub fn sample_std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Smallest observation (`None` if empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation (`None` if empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another tally into this one (parallel-friendly).
    pub fn merge(&mut self, other: &Tally) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.mean = (n1 * self.mean + n2 * other.mean) / total;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for Tally {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.6} sd={:.6} min={:.6} max={:.6}",
            self.count,
            self.mean(),
            self.sample_std_dev(),
            self.min.min(f64::INFINITY),
            self.max.max(f64::NEG_INFINITY),
        )
    }
}

impl FromIterator<f64> for Tally {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut t = Tally::new();
        for x in iter {
            t.record(x);
        }
        t
    }
}

impl Extend<f64> for Tally {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.record(x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tally_is_benign() {
        let t = Tally::new();
        assert_eq!(t.count(), 0);
        assert_eq!(t.mean(), 0.0);
        assert_eq!(t.population_variance(), 0.0);
        assert_eq!(t.min(), None);
        assert_eq!(t.max(), None);
    }

    #[test]
    fn single_observation() {
        let t: Tally = [5.0].into_iter().collect();
        assert_eq!(t.mean(), 5.0);
        assert_eq!(t.min(), Some(5.0));
        assert_eq!(t.max(), Some(5.0));
        assert_eq!(t.sample_variance(), 0.0);
    }

    #[test]
    fn merge_matches_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let whole: Tally = data.iter().copied().collect();
        let mut left: Tally = data[..37].iter().copied().collect();
        let right: Tally = data[37..].iter().copied().collect();
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.population_variance() - whole.population_variance()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut t: Tally = [1.0, 2.0].into_iter().collect();
        t.merge(&Tally::new());
        assert_eq!(t.count(), 2);
        let mut e = Tally::new();
        e.merge(&t);
        assert_eq!(e.count(), 2);
        assert_eq!(e.mean(), 1.5);
    }

    #[test]
    fn extend_accumulates() {
        let mut t = Tally::new();
        t.extend([1.0, 3.0]);
        assert_eq!(t.mean(), 2.0);
        assert_eq!(t.sum(), 4.0);
    }
}
