//! Per-state residency tracking: how long a component spends in each state.

use std::collections::BTreeMap;

use crate::time::{SimDuration, SimTime};

/// Accumulates time spent in each state of a state machine.
///
/// `S` is typically a small `Copy` enum (power states, server modes).
///
/// # Examples
///
/// ```
/// use holdcsim_des::stats::Residency;
/// use holdcsim_des::time::SimTime;
///
/// #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
/// enum Mode { Busy, Idle }
///
/// let mut r = Residency::new(SimTime::ZERO, Mode::Idle);
/// r.transition(SimTime::from_secs(4), Mode::Busy);
/// r.transition(SimTime::from_secs(10), Mode::Idle);
/// assert_eq!(r.time_in(Mode::Busy).as_secs_f64(), 6.0);
/// assert_eq!(r.fraction_in(Mode::Idle, SimTime::from_secs(10)), 0.4);
/// ```
#[derive(Debug, Clone)]
pub struct Residency<S> {
    current: S,
    since: SimTime,
    start: SimTime,
    accumulated: BTreeMap<S, SimDuration>,
    transitions: u64,
}

impl<S: Copy + Ord> Residency<S> {
    /// Starts tracking at `start` in `initial` state.
    pub fn new(start: SimTime, initial: S) -> Self {
        Residency {
            current: initial,
            since: start,
            start,
            accumulated: BTreeMap::new(),
            transitions: 0,
        }
    }

    /// The current state.
    pub fn current(&self) -> S {
        self.current
    }

    /// When the current state was entered.
    pub fn since(&self) -> SimTime {
        self.since
    }

    /// Number of state transitions recorded.
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// Moves to `next` at time `now`. A self-transition is a no-op.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `now` precedes the previous transition.
    pub fn transition(&mut self, now: SimTime, next: S) {
        debug_assert!(now >= self.since, "Residency transition out of order");
        if next == self.current {
            return;
        }
        let spent = now.saturating_duration_since(self.since);
        *self.accumulated.entry(self.current).or_default() += spent;
        self.current = next;
        self.since = now;
        self.transitions += 1;
    }

    /// Total time spent in `state` (not counting the still-open interval).
    pub fn time_in(&self, state: S) -> SimDuration {
        self.accumulated.get(&state).copied().unwrap_or_default()
    }

    /// Total time spent in `state` through `now`, including the open interval.
    pub fn time_in_through(&self, state: S, now: SimTime) -> SimDuration {
        let mut t = self.time_in(state);
        if state == self.current {
            t += now.saturating_duration_since(self.since);
        }
        t
    }

    /// Fraction of elapsed time spent in `state` through `now` (0 if no time
    /// has elapsed).
    pub fn fraction_in(&self, state: S, now: SimTime) -> f64 {
        let elapsed = now.saturating_duration_since(self.start);
        if elapsed.is_zero() {
            return 0.0;
        }
        self.time_in_through(state, now).as_secs_f64() / elapsed.as_secs_f64()
    }

    /// Iterates over `(state, closed residency)` pairs in ascending state
    /// order — deterministic, so residency tables can feed reports directly.
    pub fn iter(&self) -> impl Iterator<Item = (S, SimDuration)> + '_ {
        self.accumulated.iter().map(|(s, d)| (*s, *d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
    enum St {
        A,
        B,
        C,
    }

    #[test]
    fn accumulates_per_state() {
        let mut r = Residency::new(SimTime::ZERO, St::A);
        r.transition(SimTime::from_secs(2), St::B);
        r.transition(SimTime::from_secs(5), St::A);
        r.transition(SimTime::from_secs(6), St::C);
        assert_eq!(r.time_in(St::A), SimDuration::from_secs(3));
        assert_eq!(r.time_in(St::B), SimDuration::from_secs(3));
        assert_eq!(r.time_in(St::C), SimDuration::ZERO);
        assert_eq!(r.transitions(), 3);
    }

    #[test]
    fn open_interval_counts_through_now() {
        let mut r = Residency::new(SimTime::ZERO, St::A);
        r.transition(SimTime::from_secs(1), St::B);
        assert_eq!(
            r.time_in_through(St::B, SimTime::from_secs(4)),
            SimDuration::from_secs(3)
        );
    }

    #[test]
    fn self_transition_is_noop() {
        let mut r = Residency::new(SimTime::ZERO, St::A);
        r.transition(SimTime::from_secs(1), St::A);
        assert_eq!(r.transitions(), 0);
        assert_eq!(r.since(), SimTime::ZERO);
    }

    #[test]
    fn fractions_sum_to_one() {
        let mut r = Residency::new(SimTime::ZERO, St::A);
        r.transition(SimTime::from_secs(3), St::B);
        r.transition(SimTime::from_secs(7), St::C);
        let now = SimTime::from_secs(10);
        let total: f64 = [St::A, St::B, St::C]
            .iter()
            .map(|&s| r.fraction_in(s, now))
            .sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_elapsed_fraction_is_zero() {
        let r = Residency::new(SimTime::from_secs(2), St::A);
        assert_eq!(r.fraction_in(St::A, SimTime::from_secs(2)), 0.0);
    }
}
