//! A streaming log-linear histogram: bounded memory, ~2 % relative error
//! quantiles, no per-sample allocation. Complements [`super::SampleSet`]
//! for very long runs where reservoir sampling blurs the extreme tail.

/// Log-linear histogram over positive values: each power-of-two range is
/// split into 64 linear sub-buckets (≈ 1.6 % relative resolution).
///
/// # Examples
///
/// ```
/// use holdcsim_des::stats::LogHistogram;
///
/// let mut h = LogHistogram::new();
/// for i in 1..=10_000u64 {
///     h.record(i as f64);
/// }
/// let p99 = h.quantile(0.99).unwrap();
/// assert!((p99 / 9_900.0 - 1.0).abs() < 0.05, "p99 {p99}");
/// ```
#[derive(Debug, Clone)]
pub struct LogHistogram {
    /// Bucket counts keyed by (exponent, sub-bucket).
    counts: std::collections::BTreeMap<(i16, u8), u64>,
    total: u64,
    sum: f64,
    min: f64,
    max: f64,
    zeros: u64,
}

const SUBBUCKETS: u8 = 64;

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            counts: std::collections::BTreeMap::new(),
            total: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            zeros: 0,
        }
    }

    /// Records one sample. Non-positive and non-finite samples count into a
    /// dedicated zero bucket (they have no logarithm) but still contribute
    /// to `count`.
    pub fn record(&mut self, x: f64) {
        self.total += 1;
        if !x.is_finite() || x <= 0.0 {
            self.zeros += 1;
            self.min = self.min.min(0.0);
            self.max = self.max.max(0.0);
            return;
        }
        self.sum += x;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        let exp = x.log2().floor() as i16;
        // Position within [2^exp, 2^(exp+1)): fraction in [1, 2).
        let frac = x / (2f64).powi(exp as i32);
        let sub = (((frac - 1.0) * SUBBUCKETS as f64) as u8).min(SUBBUCKETS - 1);
        *self.counts.entry((exp, sub)).or_insert(0) += 1;
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean of the positive samples (0 if none).
    pub fn mean(&self) -> f64 {
        let positives = self.total - self.zeros;
        if positives == 0 {
            0.0
        } else {
            self.sum / positives as f64
        }
    }

    /// Smallest sample (`None` if empty).
    pub fn min(&self) -> Option<f64> {
        (self.total > 0).then_some(self.min)
    }

    /// Largest sample (`None` if empty).
    pub fn max(&self) -> Option<f64> {
        (self.total > 0).then_some(self.max)
    }

    /// The `q`-quantile (nearest rank over buckets; bucket midpoint
    /// returned). `None` if empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile out of [0,1]");
        if self.total == 0 {
            return None;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = self.zeros;
        if rank <= seen {
            return Some(0.0);
        }
        for (&(exp, sub), &c) in &self.counts {
            seen += c;
            if rank <= seen {
                let lo = (2f64).powi(exp as i32) * (1.0 + sub as f64 / SUBBUCKETS as f64);
                let hi = (2f64).powi(exp as i32) * (1.0 + (sub as f64 + 1.0) / SUBBUCKETS as f64);
                return Some((lo + hi) / 2.0);
            }
        }
        Some(self.max)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (&k, &c) in &other.counts {
            *self.counts.entry(k).or_insert(0) += c;
        }
        self.total += other.total;
        self.zeros += other.zeros;
        self.sum += other.sum;
        if other.total > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// Number of occupied buckets (memory proxy).
    pub fn bucket_count(&self) -> usize {
        self.counts.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    #[test]
    fn empty_histogram() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.min(), None);
    }

    #[test]
    fn quantiles_have_bounded_relative_error() {
        let mut h = LogHistogram::new();
        for i in 1..=100_000u64 {
            h.record(i as f64 / 1000.0);
        }
        for q in [0.5, 0.9, 0.99, 0.999] {
            let est = h.quantile(q).unwrap();
            let exact = q * 100.0;
            assert!(
                (est / exact - 1.0).abs() < 0.02,
                "q={q}: est {est} vs exact {exact}"
            );
        }
    }

    #[test]
    fn exponential_tail_matches_sampleset() {
        let mut rng = SimRng::seed_from(5);
        let mut h = LogHistogram::new();
        let mut exact = crate::stats::SampleSet::unbounded();
        for _ in 0..50_000 {
            let x = rng.exp(1.0);
            h.record(x);
            exact.record(x);
        }
        let (hq, eq) = (h.quantile(0.99).unwrap(), exact.quantile(0.99).unwrap());
        assert!((hq / eq - 1.0).abs() < 0.03, "hist {hq} vs exact {eq}");
        assert!((h.mean() - exact.mean()).abs() < 0.01);
    }

    #[test]
    fn zeros_and_negatives_go_to_zero_bucket() {
        let mut h = LogHistogram::new();
        h.record(0.0);
        h.record(-5.0);
        h.record(f64::NAN);
        h.record(10.0);
        assert_eq!(h.count(), 4);
        assert_eq!(h.quantile(0.5).unwrap(), 0.0);
        assert!(h.quantile(1.0).unwrap() > 9.0);
    }

    #[test]
    fn merge_equals_combined_stream() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut whole = LogHistogram::new();
        for i in 1..=1000u64 {
            let x = i as f64;
            whole.record(x);
            if i % 2 == 0 {
                a.record(x);
            } else {
                b.record(x);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.quantile(0.9), whole.quantile(0.9));
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn memory_stays_bounded() {
        let mut h = LogHistogram::new();
        let mut rng = SimRng::seed_from(9);
        for _ in 0..1_000_000 {
            h.record(rng.exp(0.001)); // spans ~6 decades
        }
        assert!(h.bucket_count() < 2_000, "buckets {}", h.bucket_count());
    }

    #[test]
    fn span_many_orders_of_magnitude() {
        let mut h = LogHistogram::new();
        for x in [1e-9, 1e-3, 1.0, 1e3, 1e9] {
            h.record(x);
        }
        assert!((h.quantile(0.0).unwrap() / 1e-9 - 1.0).abs() < 0.02);
        assert_eq!(h.max(), Some(1e9));
    }
}
