//! Sampled time series: fixed-interval snapshots of a signal for plotting
//! power traces, active-server counts, etc.

use crate::time::{SimDuration, SimTime};

/// A fixed-interval time series of `f64` samples.
///
/// The caller pushes `(time, value)` observations; the series records the
/// value prevailing at each sample tick (zero-order hold). This mirrors how
/// the paper's power traces are produced (e.g. 1-second sampling in §V).
///
/// # Examples
///
/// ```
/// use holdcsim_des::stats::TimeSeries;
/// use holdcsim_des::time::{SimDuration, SimTime};
///
/// let mut ts = TimeSeries::new(SimDuration::from_secs(1));
/// ts.observe(SimTime::ZERO, 10.0);
/// ts.observe(SimTime::from_secs(2), 20.0);
/// ts.finish(SimTime::from_secs(3));
/// assert_eq!(ts.values(), &[10.0, 10.0, 20.0, 20.0]);
/// ```
#[derive(Debug, Clone)]
pub struct TimeSeries {
    interval: SimDuration,
    values: Vec<f64>,
    current: Option<f64>,
    next_tick: SimTime,
}

impl TimeSeries {
    /// Creates a series sampling every `interval` starting at t = 0.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn new(interval: SimDuration) -> Self {
        assert!(!interval.is_zero(), "sampling interval must be positive");
        TimeSeries {
            interval,
            values: Vec::new(),
            current: None,
            next_tick: SimTime::ZERO,
        }
    }

    /// Reports that the signal takes `value` from `now` onward, emitting any
    /// sample ticks that elapsed since the last observation.
    pub fn observe(&mut self, now: SimTime, value: f64) {
        self.advance_to(now);
        self.current = Some(value);
    }

    /// Emits pending samples up to and including `end`.
    pub fn finish(&mut self, end: SimTime) {
        // Emit ticks strictly before `end`, then one at `end` if due.
        self.advance_to(end);
        if self.next_tick == end {
            if let Some(v) = self.current {
                self.values.push(v);
                self.next_tick += self.interval;
            }
        }
    }

    fn advance_to(&mut self, now: SimTime) {
        while self.next_tick < now {
            match self.current {
                Some(v) => self.values.push(v),
                None => self.values.push(0.0),
            }
            self.next_tick += self.interval;
        }
    }

    /// The sampled values so far.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The sampling interval.
    pub fn interval(&self) -> SimDuration {
        self.interval
    }

    /// `(time_seconds, value)` pairs for plotting.
    pub fn points(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        let step = self.interval.as_secs_f64();
        self.values
            .iter()
            .enumerate()
            .map(move |(i, &v)| (i as f64 * step, v))
    }

    /// Mean of the sampled values (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().sum::<f64>() / self.values.len() as f64
        }
    }

    /// Population standard deviation of the sampled values.
    pub fn std_dev(&self) -> f64 {
        if self.values.len() < 2 {
            return 0.0;
        }
        let mean = self.mean();
        let var = self
            .values
            .iter()
            .map(|&v| (v - mean) * (v - mean))
            .sum::<f64>()
            / self.values.len() as f64;
        var.sqrt()
    }
}

/// Mean absolute difference between two equally-sampled series, over the
/// common prefix. Used by the validation harness (Fig. 12/13).
pub fn mean_abs_diff(a: &TimeSeries, b: &TimeSeries) -> f64 {
    let n = a.values().len().min(b.values().len());
    if n == 0 {
        return 0.0;
    }
    (0..n)
        .map(|i| (a.values()[i] - b.values()[i]).abs())
        .sum::<f64>()
        / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_order_hold() {
        let mut ts = TimeSeries::new(SimDuration::from_secs(1));
        ts.observe(SimTime::ZERO, 1.0);
        ts.observe(SimTime::from_millis(2500), 5.0);
        ts.finish(SimTime::from_secs(5));
        // Ticks at 0,1,2 hold 1.0; ticks at 3,4,5 hold 5.0.
        assert_eq!(ts.values(), &[1.0, 1.0, 1.0, 5.0, 5.0, 5.0]);
    }

    #[test]
    fn unobserved_prefix_is_zero() {
        let mut ts = TimeSeries::new(SimDuration::from_secs(1));
        ts.observe(SimTime::from_millis(1500), 2.0);
        ts.finish(SimTime::from_secs(3));
        assert_eq!(ts.values(), &[0.0, 0.0, 2.0, 2.0]);
    }

    #[test]
    fn points_carry_time() {
        let mut ts = TimeSeries::new(SimDuration::from_millis(500));
        ts.observe(SimTime::ZERO, 1.0);
        ts.finish(SimTime::from_secs(1));
        let pts: Vec<(f64, f64)> = ts.points().collect();
        assert_eq!(pts, vec![(0.0, 1.0), (0.5, 1.0), (1.0, 1.0)]);
    }

    #[test]
    fn stats_over_samples() {
        let mut ts = TimeSeries::new(SimDuration::from_secs(1));
        ts.observe(SimTime::ZERO, 2.0);
        ts.observe(SimTime::from_secs(2), 4.0);
        ts.finish(SimTime::from_secs(3));
        assert_eq!(ts.values(), &[2.0, 2.0, 4.0, 4.0]);
        assert_eq!(ts.mean(), 3.0);
        assert_eq!(ts.std_dev(), 1.0);
    }

    #[test]
    fn mean_abs_diff_over_common_prefix() {
        let mut a = TimeSeries::new(SimDuration::from_secs(1));
        a.observe(SimTime::ZERO, 1.0);
        a.finish(SimTime::from_secs(3));
        let mut b = TimeSeries::new(SimDuration::from_secs(1));
        b.observe(SimTime::ZERO, 2.0);
        b.finish(SimTime::from_secs(2));
        assert_eq!(mean_abs_diff(&a, &b), 1.0);
    }

    #[test]
    #[should_panic(expected = "interval must be positive")]
    fn zero_interval_rejected() {
        let _ = TimeSeries::new(SimDuration::ZERO);
    }
}
