//! Deterministic random numbers for reproducible simulations.
//!
//! The kernel ships its own small generator (Xoshiro256++) instead of pulling
//! in an external RNG crate: runs must be bit-reproducible across platforms
//! and dependency upgrades. Independent substreams are derived with
//! SplitMix64 so each simulated component can own its own stream without
//! cross-contamination when component counts change.

/// Xoshiro256++ pseudo-random generator with convenience samplers for the
/// distributions the simulator needs.
///
/// # Examples
///
/// ```
/// use holdcsim_des::rng::SimRng;
///
/// let mut rng = SimRng::seed_from(42);
/// let u = rng.uniform_f64();
/// assert!((0.0..1.0).contains(&u));
/// // Same seed, same sequence:
/// assert_eq!(SimRng::seed_from(42).next_u64(), SimRng::seed_from(42).next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed (expanded via SplitMix64).
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Derives an independent substream for component `stream`.
    ///
    /// Streams derived from the same generator with different ids are
    /// statistically independent; the parent is not advanced.
    pub fn substream(&self, stream: u64) -> SimRng {
        // Mix the current state with the stream id through SplitMix64.
        let mut sm = self.s[0] ^ self.s[2] ^ stream.wrapping_mul(0xA076_1D64_78BD_642F);
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Derives an independent substream along a whole `path` of ids by
    /// folding [`SimRng::substream`] over it.
    ///
    /// This is the hierarchical form used by the experiment harness: a
    /// sweep derives `root.substream_path(&[point, replicate])` so every
    /// trial owns a stream that depends only on its grid coordinates —
    /// never on scheduling order or thread count.
    pub fn substream_path(&self, path: &[u64]) -> SimRng {
        path.iter().fold(self.clone(), |rng, &id| rng.substream(id))
    }

    /// The next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// A uniform float in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn uniform_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform float in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is not finite.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo.is_finite() && hi.is_finite() && lo <= hi,
            "bad uniform range"
        );
        lo + (hi - lo) * self.uniform_f64()
    }

    /// A uniform integer in `[0, n)` using Lemire's rejection method.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        // Widening-multiply rejection sampling (unbiased).
        let threshold = n.wrapping_neg() % n;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (n as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// An exponentially distributed sample with the given `rate` (λ), i.e.
    /// mean `1/rate`, via inverse-CDF.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive and finite.
    pub fn exp(&mut self, rate: f64) -> f64 {
        assert!(rate.is_finite() && rate > 0.0, "exp rate must be positive");
        // 1 - U in (0, 1] avoids ln(0).
        let u = 1.0 - self.uniform_f64();
        -u.ln() / rate
    }

    /// A Bernoulli trial that succeeds with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform_f64() < p.clamp(0.0, 1.0)
    }

    /// Picks a uniformly random element of `slice`.
    ///
    /// Returns `None` for an empty slice.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.below(slice.len() as u64) as usize])
        }
    }

    /// Fisher–Yates shuffles `slice` in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// A standard normal sample (Box–Muller; one value per call).
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        let u1 = 1.0 - self.uniform_f64();
        let u2 = self.uniform_f64();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        mean + std_dev * z
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let a: Vec<u64> = {
            let mut r = SimRng::seed_from(7);
            (0..16).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SimRng::seed_from(7);
            (0..16).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(
            SimRng::seed_from(1).next_u64(),
            SimRng::seed_from(2).next_u64()
        );
    }

    #[test]
    fn substreams_are_independent_and_stable() {
        let root = SimRng::seed_from(99);
        let mut a = root.substream(0);
        let mut b = root.substream(1);
        assert_ne!(a.next_u64(), b.next_u64());
        // Re-deriving yields the same stream.
        let mut a2 = root.substream(0);
        assert_eq!(SimRng::seed_from(99).substream(0).next_u64(), a2.next_u64());
    }

    #[test]
    fn substream_path_folds_and_is_order_sensitive() {
        let root = SimRng::seed_from(1234);
        // Path derivation is the fold of single substream steps.
        assert_eq!(root.substream_path(&[3, 7]), root.substream(3).substream(7));
        // Empty path is the identity.
        assert_eq!(root.substream_path(&[]), root);
        // Coordinates are not interchangeable.
        assert_ne!(
            root.substream_path(&[3, 7]).next_u64(),
            root.substream_path(&[7, 3]).next_u64()
        );
    }

    #[test]
    fn uniform_is_in_unit_interval() {
        let mut r = SimRng::seed_from(3);
        for _ in 0..10_000 {
            let u = r.uniform_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn exp_mean_is_close() {
        let mut r = SimRng::seed_from(5);
        let n = 200_000;
        let rate = 4.0;
        let mean: f64 = (0..n).map(|_| r.exp(rate)).sum::<f64>() / n as f64;
        assert!((mean - 0.25).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn below_is_in_range_and_roughly_uniform() {
        let mut r = SimRng::seed_from(11);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[r.below(10) as usize] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "count {c}");
        }
    }

    #[test]
    fn normal_moments() {
        let mut r = SimRng::seed_from(13);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal(2.0, 3.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
        assert!((var - 9.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn choose_and_shuffle() {
        let mut r = SimRng::seed_from(17);
        assert_eq!(r.choose::<u8>(&[]), None);
        let items = [1, 2, 3];
        assert!(items.contains(r.choose(&items).unwrap()));
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed_from(19);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }
}
