//! A lazy-deletion min-heap over densely-indexed items — the bottleneck
//! selector behind incremental solvers.
//!
//! # Design note
//!
//! Iterative solvers (progressive filling, label-correcting searches,
//! earliest-deadline scans) repeatedly ask "which item currently has the
//! smallest priority?" while priorities of a few items change per round.
//! A comparison heap supports this, but eager `decrease-key` needs
//! per-item heap positions. [`LazyHeap`] instead pairs every pushed entry
//! with the item's *generation* at push time: updating or removing an
//! item just bumps its generation, and [`LazyHeap::pop`] discards entries
//! whose generation is stale. Each update costs one O(log n) push; stale
//! entries are garbage-collected as they surface.
//!
//! Ties are broken by item index, so pop order is fully deterministic —
//! a requirement for reproducible simulation, where the pop order decides
//! floating-point evaluation order.
//!
//! Priorities only need a total order on the values actually inserted
//! (`PartialOrd`; `f64` works as long as no NaN is pushed — NaN
//! priorities panic in debug builds and lose ordering guarantees in
//! release).

/// One heap entry: `(priority, item, generation at push time)`.
#[derive(Debug, Clone, Copy)]
struct Entry<P> {
    pri: P,
    item: u32,
    gen: u32,
}

/// A min-heap over items `0..n` with lazy deletion by generation:
/// O(log n) [`update`](LazyHeap::update)/[`remove`](LazyHeap::remove)/
/// [`pop`](LazyHeap::pop), deterministic tie-breaking by item index, and
/// reusable storage ([`clear`](LazyHeap::clear) keeps capacity).
///
/// # Examples
///
/// ```
/// use holdcsim_des::lazy_heap::LazyHeap;
///
/// let mut h: LazyHeap<f64> = LazyHeap::new();
/// h.update(3, 2.0);
/// h.update(7, 1.0);
/// h.update(3, 0.5); // re-prioritize: the old entry goes stale
/// assert_eq!(h.pop(), Some((3, 0.5)));
/// h.remove(7);
/// assert_eq!(h.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct LazyHeap<P> {
    entries: Vec<Entry<P>>,
    /// Current generation per item; an entry is live iff its generation
    /// matches. Odd trick-free: generations simply count updates/removals.
    gens: Vec<u32>,
}

impl<P: PartialOrd + Copy> Default for LazyHeap<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P: PartialOrd + Copy> LazyHeap<P> {
    /// Creates an empty heap.
    pub fn new() -> Self {
        LazyHeap {
            entries: Vec::new(),
            gens: Vec::new(),
        }
    }

    /// `(a, ia)` strictly precedes `(b, ib)` in pop order.
    #[inline]
    fn before(a: P, ia: u32, b: P, ib: u32) -> bool {
        debug_assert!(
            a.partial_cmp(&b).is_some(),
            "LazyHeap priorities must be totally ordered (no NaN)"
        );
        a < b || (a == b && ia < ib)
    }

    /// Sets `item`'s priority, superseding any previous entry for it.
    pub fn update(&mut self, item: usize, pri: P) {
        let gen = self.bump(item);
        let idx = u32::try_from(item).expect("LazyHeap items are dense u32 indices");
        self.entries.push(Entry {
            pri,
            item: idx,
            gen,
        });
        self.sift_up(self.entries.len() - 1);
    }

    /// Drops `item` from the heap (its entries go stale; no new entry is
    /// pushed). A later [`update`](Self::update) re-inserts it.
    pub fn remove(&mut self, item: usize) {
        self.bump(item);
    }

    /// Pops the live entry with the smallest `(priority, item)`, if any.
    pub fn pop(&mut self) -> Option<(usize, P)> {
        loop {
            let e = *self.entries.first()?;
            self.pop_root();
            if self.gens[e.item as usize] == e.gen {
                // Consume it: the item must be re-`update`d to reappear.
                self.gens[e.item as usize] = e.gen.wrapping_add(1);
                return Some((e.item as usize, e.pri));
            }
        }
    }

    /// Returns the live entry with the smallest `(priority, item)`
    /// without consuming it: the item stays in the heap and will be
    /// returned again by the next [`peek`](Self::peek) or
    /// [`pop`](Self::pop) unless superseded. Stale entries surfacing at
    /// the root are garbage-collected on the way (hence `&mut self`).
    ///
    /// This is the "what fires next?" query for schedulers that must
    /// report the next deadline exactly without committing to it — e.g.
    /// a due-time heap asked for `next_due` between mutations.
    pub fn peek(&mut self) -> Option<(usize, P)> {
        loop {
            let e = *self.entries.first()?;
            if self.gens[e.item as usize] == e.gen {
                return Some((e.item as usize, e.pri));
            }
            self.pop_root();
        }
    }

    /// `true` if no live entries remain (stale entries may still occupy
    /// storage until popped or cleared).
    pub fn is_empty(&mut self) -> bool {
        loop {
            let Some(e) = self.entries.first() else {
                return true;
            };
            if self.gens[e.item as usize] == e.gen {
                return false;
            }
            self.pop_root();
        }
    }

    /// Empties the heap, invalidating every item. Keeps allocations.
    ///
    /// O(1) in the item space: generations survive the clear (an entry
    /// can only appear via [`update`](Self::update), which bumps its
    /// item's generation first, so stale generations can never validate
    /// a fresh entry). Callers that clear per solve over a small working
    /// set must not pay for the full index range.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Bumps and returns `item`'s new generation, growing the index space
    /// on first sight.
    fn bump(&mut self, item: usize) -> u32 {
        if item >= self.gens.len() {
            self.gens.resize(item + 1, 0);
        }
        self.gens[item] = self.gens[item].wrapping_add(1);
        self.gens[item]
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            let (c, p) = (self.entries[i], self.entries[parent]);
            if Self::before(c.pri, c.item, p.pri, p.item) {
                self.entries.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    /// Removes the root entry, restoring the heap property.
    fn pop_root(&mut self) {
        let last = self.entries.len() - 1;
        self.entries.swap(0, last);
        self.entries.pop();
        let n = self.entries.len();
        let mut i = 0;
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            if l >= n {
                break;
            }
            let mut m = l;
            if r < n {
                let (a, b) = (self.entries[r], self.entries[l]);
                if Self::before(a.pri, a.item, b.pri, b.item) {
                    m = r;
                }
            }
            let (c, p) = (self.entries[m], self.entries[i]);
            if Self::before(c.pri, c.item, p.pri, p.item) {
                self.entries.swap(i, m);
                i = m;
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Miri interprets ~100x slower than native; shrink churn counts
    /// under `cfg(miri)` while keeping them above the compaction
    /// threshold (`COMPACT_SLACK`) so every structural path still fires.
    fn scaled(native: u64, miri: u64) -> u64 {
        if cfg!(miri) {
            miri
        } else {
            native
        }
    }
    use crate::rng::SimRng;

    #[test]
    fn pops_in_priority_then_index_order() {
        let mut h: LazyHeap<f64> = LazyHeap::new();
        h.update(5, 3.0);
        h.update(2, 1.0);
        h.update(9, 1.0);
        h.update(1, 2.0);
        assert_eq!(h.pop(), Some((2, 1.0)), "ties break by item index");
        assert_eq!(h.pop(), Some((9, 1.0)));
        assert_eq!(h.pop(), Some((1, 2.0)));
        assert_eq!(h.pop(), Some((5, 3.0)));
        assert_eq!(h.pop(), None);
    }

    #[test]
    fn update_supersedes_and_remove_deletes() {
        let mut h: LazyHeap<f64> = LazyHeap::new();
        h.update(0, 1.0);
        h.update(1, 2.0);
        h.update(0, 5.0); // worsen 0's priority
        h.remove(1);
        assert_eq!(h.pop(), Some((0, 5.0)));
        assert_eq!(h.pop(), None);
        // Re-inserting a removed/popped item works.
        h.update(1, 0.25);
        h.update(0, 0.5);
        assert_eq!(h.pop(), Some((1, 0.25)));
        assert_eq!(h.pop(), Some((0, 0.5)));
    }

    #[test]
    fn pop_consumes_the_item() {
        let mut h: LazyHeap<i64> = LazyHeap::new();
        h.update(4, 10);
        assert_eq!(h.pop(), Some((4, 10)));
        // No duplicate delivery from any stale path.
        assert_eq!(h.pop(), None);
        assert!(h.is_empty());
    }

    #[test]
    fn peek_is_non_consuming_and_tracks_updates() {
        let mut h: LazyHeap<u64> = LazyHeap::new();
        assert_eq!(h.peek(), None);
        h.update(3, 20);
        h.update(5, 10);
        assert_eq!(h.peek(), Some((5, 10)));
        assert_eq!(h.peek(), Some((5, 10)), "peek must not consume");
        h.update(5, 30); // head re-prioritized: stale root pruned by peek
        assert_eq!(h.peek(), Some((3, 20)));
        h.remove(3);
        assert_eq!(h.peek(), Some((5, 30)));
        assert_eq!(h.pop(), Some((5, 30)));
        assert_eq!(h.peek(), None);
    }

    #[test]
    fn clear_resets_but_keeps_working() {
        let mut h: LazyHeap<f64> = LazyHeap::new();
        for i in 0..100 {
            h.update(i, i as f64);
        }
        h.clear();
        assert!(h.is_empty());
        assert_eq!(h.pop(), None);
        h.update(3, 1.5);
        assert_eq!(h.pop(), Some((3, 1.5)));
    }

    /// Randomized model check against a scan-based reference: arbitrary
    /// interleavings of update/remove/pop must match a linear scan with
    /// the same `(priority, item)` order.
    #[test]
    fn random_interleavings_match_scan_reference() {
        let root = SimRng::seed_from(0x4EA9);
        for trial in 0..scaled(20, 4) {
            let mut rng = root.substream(trial);
            let mut h: LazyHeap<f64> = LazyHeap::new();
            // Reference: current priority per item, None = absent.
            let mut model: Vec<Option<f64>> = vec![None; 64];
            for _ in 0..scaled(2_000, 300) {
                match rng.below(10) {
                    0..=5 => {
                        let item = rng.below(64) as usize;
                        // Coarse priorities force plenty of exact ties.
                        let pri = rng.below(8) as f64;
                        h.update(item, pri);
                        model[item] = Some(pri);
                    }
                    6..=7 => {
                        let item = rng.below(64) as usize;
                        h.remove(item);
                        model[item] = None;
                    }
                    _ => {
                        let want = model
                            .iter()
                            .enumerate()
                            .filter_map(|(i, p)| p.map(|p| (i, p)))
                            .min_by(|(ia, pa), (ib, pb)| {
                                pa.partial_cmp(pb).unwrap().then(ia.cmp(ib))
                            });
                        assert_eq!(h.pop(), want);
                        if let Some((i, _)) = want {
                            model[i] = None;
                        }
                    }
                }
            }
            // Drain fully and compare the tail order.
            let mut rest: Vec<(usize, f64)> = model
                .iter()
                .enumerate()
                .filter_map(|(i, p)| p.map(|p| (i, p)))
                .collect();
            rest.sort_by(|(ia, pa), (ib, pb)| pa.partial_cmp(pb).unwrap().then(ia.cmp(ib)));
            let drained: Vec<(usize, f64)> = std::iter::from_fn(|| h.pop()).collect();
            assert_eq!(drained, rest, "trial {trial}");
        }
    }
}
