//! A sliding window of sequentially-keyed slots with straggler compaction
//! — the shared kernel behind every "mostly-FIFO lifetime" table in the
//! simulator.
//!
//! # Design note
//!
//! Discrete-event simulations are full of tables whose keys are allocated
//! sequentially and whose entries mostly die in allocation order: event
//! calendars (sequence numbers), job tables (job ids), transfer and
//! dispatch ledgers (per-edge slots). A hash map supports them but pays a
//! hash probe per event on the hottest paths. [`SlotWindow`] exploits the
//! allocation pattern instead:
//!
//! * **Dense window.** Entries with keys in `[base, base + dense_len)`
//!   live in a [`VecDeque`] of `Option<T>` slots; a lookup is one bounds
//!   check and one index. Removing an entry leaves a `None` until the
//!   front of the window drains past it, so removal order may be
//!   arbitrary.
//! * **Sparse overflow.** One long-lived straggler must not pin the dense
//!   window to O(keys allocated since). When the window is dominated by
//!   dead slots (`dense_len > 4 × len + `[`COMPACT_SLACK`]), the sparse
//!   survivors at its front are *compacted* into a side [`BTreeMap`];
//!   steady-state churn (window ≈ live entries) never compacts, and a
//!   compacted entry keeps full `get`/`get_mut`/`remove` semantics.
//! * **Monotonic keys.** Keys are `u64`s issued by [`SlotWindow::insert`]
//!   in increasing order and never reused, so they double as age: the
//!   smallest live key is the oldest entry (the FIFO property sub-queue
//!   indices rely on).
//!
//! All operations are O(1) amortized; compaction is amortized against the
//! inserts that grew the window. The event calendar
//! ([`crate::queue::EventQueue`]) and the simulator's job/transfer/
//! dispatch tables are all thin wrappers over this type, which is also the
//! unit that a future intra-simulation parallelism pass would shard: the
//! window bounds the live key range each shard must track.

use std::collections::BTreeMap;
use std::collections::VecDeque;

/// Dense-window slack: compaction triggers only once the window exceeds
/// this many slots beyond four windows' worth of live entries, so small
/// tables and steady-state churn never compact.
pub const COMPACT_SLACK: usize = 1024;

/// A map from sequentially-issued `u64` keys to values, optimized for
/// mostly-FIFO lifetimes: O(1) amortized insert/get/remove with no hashing
/// on the dense path, and straggler compaction so one long-lived entry
/// cannot pin memory.
///
/// # Examples
///
/// ```
/// use holdcsim_des::slot_window::SlotWindow;
///
/// let mut w = SlotWindow::new();
/// let a = w.insert("alpha");
/// let b = w.insert("beta");
/// assert_eq!(w.get(a), Some(&"alpha"));
/// assert_eq!(w.remove(a), Some("alpha"));
/// assert_eq!(w.remove(a), None, "keys are never revived");
/// assert_eq!(w.len(), 1);
/// assert_eq!(w.remove(b), Some("beta"));
/// ```
#[derive(Debug, Clone)]
pub struct SlotWindow<T> {
    /// Slots for keys in `[base, base + slots.len())`; removed entries
    /// leave a `None` until the front of the window drains past them.
    slots: VecDeque<Option<T>>,
    /// Key of the first dense slot.
    base: u64,
    /// Sparse entries below `base`: long-lived stragglers compacted out of
    /// the dense window (rare — one per straggler).
    overflow: BTreeMap<u64, T>,
    /// The key the next `insert` will issue. Monotonic, survives `clear`.
    next_key: u64,
    /// Live entries (dense `Some`s plus overflow).
    live: usize,
}

impl<T> Default for SlotWindow<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> SlotWindow<T> {
    /// Creates an empty window whose first key will be `0`.
    pub fn new() -> Self {
        SlotWindow {
            slots: VecDeque::new(),
            base: 0,
            overflow: BTreeMap::new(),
            next_key: 0,
            live: 0,
        }
    }

    /// The key the next [`insert`](Self::insert) will return.
    pub fn next_key(&self) -> u64 {
        self.next_key
    }

    /// Inserts `value`, returning its key. Keys are issued sequentially
    /// and never reused (not even after [`clear`](Self::clear)).
    pub fn insert(&mut self, value: T) -> u64 {
        let key = self.next_key;
        self.next_key += 1;
        self.live += 1;
        self.slots.push_back(Some(value));
        if self.slots.len() > 4 * self.live + COMPACT_SLACK {
            self.compact();
        }
        key
    }

    /// Moves sparse stragglers at the front of a removal-dominated window
    /// into `overflow`, bounding the dense window to O(live). Amortized
    /// O(1) per insert; never triggered while the window is mostly alive.
    fn compact(&mut self) {
        let keep = 2 * self.live + COMPACT_SLACK / 2;
        while self.slots.len() > keep {
            let Some(slot) = self.slots.pop_front() else {
                break;
            };
            if let Some(value) = slot {
                self.overflow.insert(self.base, value);
            }
            self.base += 1;
        }
    }

    /// Shared access to the entry at `key`, if live.
    pub fn get(&self, key: u64) -> Option<&T> {
        if key >= self.base {
            self.slots
                .get((key - self.base) as usize)
                .and_then(|s| s.as_ref())
        } else {
            self.overflow.get(&key)
        }
    }

    /// Mutable access to the entry at `key`, if live.
    pub fn get_mut(&mut self, key: u64) -> Option<&mut T> {
        if key >= self.base {
            self.slots
                .get_mut((key - self.base) as usize)
                .and_then(|s| s.as_mut())
        } else {
            self.overflow.get_mut(&key)
        }
    }

    /// `true` if `key` is live.
    pub fn contains(&self, key: u64) -> bool {
        self.get(key).is_some()
    }

    /// Removes and returns the entry at `key`. Returns `None` if the key
    /// was never issued or its entry was already removed.
    pub fn remove(&mut self, key: u64) -> Option<T> {
        let value = if key >= self.base {
            let slot = self.slots.get_mut((key - self.base) as usize)?;
            let taken = slot.take()?;
            // Trim the drained front so the window tracks the live span.
            while let Some(None) = self.slots.front() {
                self.slots.pop_front();
                self.base += 1;
            }
            taken
        } else {
            self.overflow.remove(&key)?
        };
        self.live -= 1;
        Some(value)
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.live
    }

    /// `true` if no entries are live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Removes all entries. Key issuance stays monotonic: keys issued
    /// before the clear are dead, not recycled.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.overflow.clear();
        self.base = self.next_key;
        self.live = 0;
    }

    /// Iterates over live `(key, &value)` pairs in ascending key order:
    /// compacted stragglers (whose keys all precede the dense window's
    /// base) first, then the dense window front to back. Deterministic
    /// iteration order is a contract here — every hot-path table in the
    /// simulator is built on this type, so an arbitrary order would
    /// leak straight into event processing and reports.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &T)> {
        let base = self.base;
        self.overflow.iter().map(|(&k, v)| (k, v)).chain(
            self.slots
                .iter()
                .enumerate()
                .filter_map(move |(i, s)| s.as_ref().map(|v| (base + i as u64, v))),
        )
    }

    /// Iterates over live `(key, &mut value)` pairs in ascending key
    /// order (see [`SlotWindow::iter`] for why order is a contract).
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (u64, &mut T)> {
        let base = self.base;
        self.overflow.iter_mut().map(|(&k, v)| (k, v)).chain(
            self.slots
                .iter_mut()
                .enumerate()
                .filter_map(move |(i, s)| s.as_mut().map(|v| (base + i as u64, v))),
        )
    }

    /// Slots currently held by the dense window (live + not-yet-drained
    /// dead); an observability hook for compaction tests and memory
    /// accounting.
    pub fn dense_len(&self) -> usize {
        self.slots.len()
    }

    /// Stragglers currently parked in the sparse overflow.
    pub fn overflow_len(&self) -> usize {
        self.overflow.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    // The randomized model test checks SlotWindow *against* a HashMap
    // reference on purpose; order never leaves the test.
    #[allow(clippy::disallowed_types)]
    use std::collections::HashMap;

    /// Miri interprets ~100x slower than native; shrink churn counts
    /// under `cfg(miri)` while keeping them above the compaction
    /// threshold (`COMPACT_SLACK`) so every structural path still fires.
    fn scaled(native: u64, miri: u64) -> u64 {
        if cfg!(miri) {
            miri
        } else {
            native
        }
    }
    use crate::rng::SimRng;

    #[test]
    fn keys_are_sequential_and_unique() {
        let mut w = SlotWindow::new();
        assert_eq!(w.next_key(), 0);
        let a = w.insert(10);
        let b = w.insert(20);
        assert_eq!((a, b), (0, 1));
        assert_eq!(w.next_key(), 2);
        w.remove(a);
        let c = w.insert(30);
        assert_eq!(c, 2, "keys are never reused");
    }

    #[test]
    fn get_and_get_mut_address_live_entries() {
        let mut w = SlotWindow::new();
        let k = w.insert(5i32);
        assert_eq!(w.get(k), Some(&5));
        *w.get_mut(k).unwrap() = 7;
        assert_eq!(w.remove(k), Some(7));
        assert_eq!(w.get(k), None);
        assert_eq!(w.get_mut(k), None);
        assert_eq!(w.get(999), None, "never-issued keys are dead");
    }

    #[test]
    fn out_of_order_removal_leaves_holes_then_drains() {
        let mut w = SlotWindow::new();
        let keys: Vec<u64> = (0..4).map(|i| w.insert(i)).collect();
        assert_eq!(w.remove(keys[2]), Some(2));
        assert_eq!(w.remove(keys[0]), Some(0));
        // Front drained past key 0; key 1 is now the window base.
        assert_eq!(w.len(), 2);
        assert_eq!(w.get(keys[1]), Some(&1));
        assert_eq!(w.get(keys[3]), Some(&3));
        assert_eq!(w.remove(keys[2]), None, "double remove is dead");
    }

    #[test]
    fn clear_keeps_keys_monotonic() {
        let mut w = SlotWindow::new();
        let before = w.insert("x");
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.get(before), None);
        let after = w.insert("y");
        assert!(after > before);
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn straggler_compacts_into_overflow_and_stays_addressable() {
        // One never-removed entry at the window front while tens of
        // thousands of later entries churn: the window must compact the
        // straggler into the sparse overflow instead of growing per key.
        let mut w = SlotWindow::new();
        let anchor = w.insert(u64::MAX);
        for i in 0..scaled(50_000, 3_000) {
            let k = w.insert(i);
            assert_eq!(w.remove(k), Some(i));
        }
        assert!(
            w.dense_len() < 2 * COMPACT_SLACK + 16,
            "window should compact behind the straggler, got {} slots",
            w.dense_len()
        );
        assert_eq!(w.overflow_len(), 1);
        assert_eq!(w.len(), 1);
        // The compacted entry keeps full semantics.
        assert_eq!(w.get(anchor), Some(&u64::MAX));
        *w.get_mut(anchor).unwrap() = 9;
        assert_eq!(w.remove(anchor), Some(9));
        assert_eq!(w.remove(anchor), None);
        assert_eq!(w.overflow_len(), 0, "overflow drained after the remove");
    }

    #[test]
    fn reuse_after_compaction_keeps_working() {
        // After a compaction cycle the window must keep issuing keys and
        // addressing both dense and overflow entries correctly.
        let mut w = SlotWindow::new();
        let old = w.insert("old");
        for _ in 0..scaled(20_000, 3_000) {
            let k = w.insert("churn");
            w.remove(k);
        }
        assert_eq!(w.overflow_len(), 1);
        let young = w.insert("young");
        assert_eq!(w.get(old), Some(&"old"));
        assert_eq!(w.get(young), Some(&"young"));
        assert_eq!(w.remove(young), Some("young"));
        assert_eq!(w.remove(old), Some("old"));
        assert!(w.is_empty());
        // And it still grows a fresh dense window afterwards.
        let k = w.insert("fresh");
        assert_eq!(w.get(k), Some(&"fresh"));
    }

    #[test]
    fn iter_visits_dense_and_overflow_entries() {
        let mut w = SlotWindow::new();
        let straggler = w.insert(1_000u64);
        for i in 0..scaled(20_000, 3_000) {
            let k = w.insert(i);
            w.remove(k);
        }
        let keep = w.insert(2_000);
        assert!(w.overflow_len() > 0, "straggler compacted");
        let mut seen: Vec<(u64, u64)> = w.iter().map(|(k, &v)| (k, v)).collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![(straggler, 1_000), (keep, 2_000)]);
    }

    /// Randomized model test: a `SlotWindow` must agree with a `HashMap`
    /// reference under arbitrary interleavings of insert/get/remove,
    /// including removal orders that force holes, drains, and compaction.
    #[test]
    #[allow(clippy::disallowed_types)] // HashMap is the reference model here
    fn random_interleavings_match_hashmap_reference() {
        let root = SimRng::seed_from(0x51077);
        for trial in 0..scaled(20, 4) {
            let mut rng = root.substream(trial);
            let mut w: SlotWindow<u64> = SlotWindow::new();
            let mut model: HashMap<u64, u64> = HashMap::new();
            let mut issued: Vec<u64> = Vec::new();
            for step in 0..scaled(5_000, 600) {
                match rng.below(10) {
                    // Weighted toward inserts early, removes always.
                    0..=4 => {
                        let v = step ^ trial;
                        let k = w.insert(v);
                        assert_eq!(model.insert(k, v), None, "fresh key");
                        issued.push(k);
                    }
                    5..=8 => {
                        if issued.is_empty() {
                            continue;
                        }
                        let k = issued[rng.below(issued.len() as u64) as usize];
                        assert_eq!(w.remove(k), model.remove(&k));
                    }
                    _ => {
                        if issued.is_empty() {
                            continue;
                        }
                        let k = issued[rng.below(issued.len() as u64) as usize];
                        assert_eq!(w.get(k), model.get(&k));
                        assert_eq!(w.contains(k), model.contains_key(&k));
                    }
                }
                assert_eq!(w.len(), model.len());
            }
            // Full drain must agree too.
            for k in issued {
                assert_eq!(w.remove(k), model.remove(&k));
            }
            assert!(w.is_empty() && model.is_empty());
        }
    }
}
