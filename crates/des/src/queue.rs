//! The event calendar: a cancellable priority queue of timestamped events.
//!
//! Events at the same timestamp pop in insertion (FIFO) order, which makes
//! simulations deterministic regardless of heap internals. Cancellation is
//! O(1) amortized: cancelled entries are remembered in a set and skipped when
//! they reach the top ("lazy deletion"), so no heap surgery is ever needed.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::collections::HashSet;

use crate::time::SimTime;

/// A handle to a scheduled event, usable to cancel it before it fires.
///
/// Tokens are unique for the lifetime of a queue and never reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventToken(u64);

impl EventToken {
    /// The raw sequence number behind this token.
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

#[derive(Debug)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A cancellable min-priority queue of `(SimTime, E)` pairs with FIFO
/// tie-breaking.
///
/// # Examples
///
/// ```
/// use holdcsim_des::queue::EventQueue;
/// use holdcsim_des::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(2), "later");
/// let tok = q.push(SimTime::from_secs(1), "cancelled");
/// q.push(SimTime::from_secs(1), "sooner");
/// q.cancel(tok);
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1), "sooner")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(2), "later")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    cancelled: HashSet<u64>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` to fire at `at`, returning a cancellation token.
    pub fn push(&mut self, at: SimTime, event: E) -> EventToken {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
        EventToken(seq)
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the token had not already fired or been cancelled.
    /// Cancelling an already-popped token is a harmless no-op (`false`).
    pub fn cancel(&mut self, token: EventToken) -> bool {
        if token.0 >= self.next_seq {
            return false;
        }
        self.cancelled.insert(token.0)
    }

    /// Removes and returns the earliest live event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            if self.cancelled.remove(&entry.seq) {
                continue;
            }
            return Some((entry.at, entry.event));
        }
        None
    }

    /// The timestamp of the earliest live event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(entry) = self.heap.peek() {
            if self.cancelled.contains(&entry.seq) {
                let seq = entry.seq;
                self.heap.pop();
                self.cancelled.remove(&seq);
                continue;
            }
            return Some(entry.at);
        }
        None
    }

    /// Number of live (non-cancelled) events still queued.
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    /// `true` if no live events remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes all events.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.cancelled.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(30), 3);
        q.push(SimTime::from_nanos(10), 1);
        q.push(SimTime::from_nanos(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_skips_event() {
        let mut q = EventQueue::new();
        let tok = q.push(SimTime::from_nanos(1), "a");
        q.push(SimTime::from_nanos(2), "b");
        assert!(q.cancel(tok));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((SimTime::from_nanos(2), "b")));
    }

    #[test]
    fn cancel_twice_is_noop() {
        let mut q = EventQueue::new();
        let tok = q.push(SimTime::from_nanos(1), ());
        assert!(q.cancel(tok));
        assert!(!q.cancel(tok));
    }

    #[test]
    fn cancel_unknown_token_is_noop() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventToken(42)));
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let tok = q.push(SimTime::from_nanos(5), "x");
        q.push(SimTime::from_nanos(9), "y");
        q.cancel(tok);
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(9)));
    }

    #[test]
    fn len_accounts_for_cancellations() {
        let mut q = EventQueue::new();
        let a = q.push(SimTime::from_nanos(1), 1);
        q.push(SimTime::from_nanos(2), 2);
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.clear();
        assert!(q.is_empty());
    }
}
