//! The event calendar: a cancellable priority queue of timestamped events.
//!
//! Events at the same timestamp pop in insertion (FIFO) order, which makes
//! simulations deterministic regardless of heap internals. Cancellation is
//! O(1): every token's lifecycle (live → cancelled/consumed) is tracked in
//! a [`SlotWindow`] of per-sequence states, so cancelled entries are
//! skipped when they reach the top ("lazy deletion") without any heap
//! surgery — and, unlike a hash-set of cancelled sequences, the hot pop
//! path costs one array index per event instead of a hash probe. The
//! window's straggler compaction keeps one far-future timer from pinning
//! per-sequence state for every event pushed since (see
//! [`crate::slot_window`] for the shared machinery).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::slot_window::SlotWindow;
use crate::time::SimTime;

/// A handle to a scheduled event, usable to cancel it before it fires.
///
/// Tokens are unique for the lifetime of a queue and never reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventToken(u64);

impl EventToken {
    /// The raw sequence number behind this token.
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

#[derive(Debug)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Lifecycle of one issued sequence number still in the heap. A sequence
/// absent from the window has fired (or its cancelled entry was skipped).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SeqState {
    /// Still in the heap, will fire unless cancelled.
    Live,
    /// Cancelled before firing; its heap entry is skipped on pop.
    Cancelled,
}

/// A cancellable min-priority queue of `(SimTime, E)` pairs with FIFO
/// tie-breaking.
///
/// # Examples
///
/// ```
/// use holdcsim_des::queue::EventQueue;
/// use holdcsim_des::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(2), "later");
/// let tok = q.push(SimTime::from_secs(1), "cancelled");
/// q.push(SimTime::from_secs(1), "sooner");
/// q.cancel(tok);
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1), "sooner")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(2), "later")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    /// State of every sequence still in the heap; sequence numbers are the
    /// window's keys, so retiring a fired/skipped entry is a window
    /// removal and token uniqueness falls out of key monotonicity.
    window: SlotWindow<SeqState>,
    /// Cancelled entries still sitting in the heap.
    cancelled_pending: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            window: SlotWindow::new(),
            cancelled_pending: 0,
        }
    }

    /// Schedules `event` to fire at `at`, returning a cancellation token.
    pub fn push(&mut self, at: SimTime, event: E) -> EventToken {
        let seq = self.window.insert(SeqState::Live);
        self.heap.push(Entry { at, seq, event });
        EventToken(seq)
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the token had not already fired or been cancelled.
    /// Cancelling an already-popped or already-cancelled token is a
    /// harmless no-op (`false`).
    pub fn cancel(&mut self, token: EventToken) -> bool {
        match self.window.get_mut(token.0) {
            Some(state @ SeqState::Live) => {
                *state = SeqState::Cancelled;
                self.cancelled_pending += 1;
                true
            }
            // Already cancelled, already fired, or never issued.
            _ => false,
        }
    }

    /// Removes and returns the earliest live event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            let state = self.window.remove(entry.seq);
            debug_assert!(state.is_some(), "heap entry without window state");
            if state == Some(SeqState::Cancelled) {
                self.cancelled_pending -= 1;
                continue;
            }
            return Some((entry.at, entry.event));
        }
        None
    }

    /// The timestamp of the earliest live event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(entry) = self.heap.peek() {
            if self.cancelled_pending > 0
                && self.window.get(entry.seq) == Some(&SeqState::Cancelled)
            {
                let seq = entry.seq;
                self.heap.pop();
                self.window.remove(seq);
                self.cancelled_pending -= 1;
                continue;
            }
            return Some(entry.at);
        }
        None
    }

    /// Number of live (non-cancelled) events still queued.
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled_pending
    }

    /// `true` if no live events remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes all events.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.window.clear();
        self.cancelled_pending = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Miri interprets ~100x slower than native; shrink churn counts
    /// under `cfg(miri)` while keeping them above the compaction
    /// threshold (`COMPACT_SLACK`) so every structural path still fires.
    fn scaled(native: u64, miri: u64) -> u64 {
        if cfg!(miri) {
            miri
        } else {
            native
        }
    }
    use crate::slot_window::COMPACT_SLACK;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(30), 3);
        q.push(SimTime::from_nanos(10), 1);
        q.push(SimTime::from_nanos(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_skips_event() {
        let mut q = EventQueue::new();
        let tok = q.push(SimTime::from_nanos(1), "a");
        q.push(SimTime::from_nanos(2), "b");
        assert!(q.cancel(tok));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((SimTime::from_nanos(2), "b")));
    }

    #[test]
    fn cancel_twice_is_noop() {
        let mut q = EventQueue::new();
        let tok = q.push(SimTime::from_nanos(1), ());
        assert!(q.cancel(tok));
        assert!(!q.cancel(tok));
    }

    #[test]
    fn cancel_unknown_token_is_noop() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventToken(42)));
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        // Regression: cancelling an already-fired token used to insert its
        // seq into the cancelled set and return `true`, underflowing
        // `len()` on the next accounting.
        let mut q = EventQueue::new();
        let tok = q.push(SimTime::from_nanos(1), "a");
        q.push(SimTime::from_nanos(2), "b");
        assert_eq!(q.pop(), Some((SimTime::from_nanos(1), "a")));
        assert!(!q.cancel(tok), "token already fired");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((SimTime::from_nanos(2), "b")));
        assert_eq!(q.len(), 0);
        assert!(q.is_empty());
        // Still a no-op once the queue has fully drained.
        assert!(!q.cancel(tok));
    }

    #[test]
    fn cancel_after_fire_out_of_seq_order() {
        // Fired sequence numbers are not contiguous (pops follow time, not
        // insertion): retiring must handle a fired high seq before a live
        // low seq.
        let mut q = EventQueue::new();
        let slow = q.push(SimTime::from_nanos(100), "slow"); // seq 0
        let fast = q.push(SimTime::from_nanos(1), "fast"); // seq 1
        assert_eq!(q.pop(), Some((SimTime::from_nanos(1), "fast")));
        assert!(!q.cancel(fast), "fired token");
        assert!(q.cancel(slow), "still-live token");
        assert_eq!(q.len(), 0);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let tok = q.push(SimTime::from_nanos(5), "x");
        q.push(SimTime::from_nanos(9), "y");
        q.cancel(tok);
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(9)));
    }

    #[test]
    fn len_accounts_for_cancellations() {
        let mut q = EventQueue::new();
        let a = q.push(SimTime::from_nanos(1), 1);
        q.push(SimTime::from_nanos(2), 2);
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn push_after_clear_keeps_tokens_unique() {
        let mut q = EventQueue::new();
        let before = q.push(SimTime::from_nanos(1), 1);
        q.clear();
        let after = q.push(SimTime::from_nanos(1), 2);
        assert_ne!(before, after);
        assert!(!q.cancel(before), "cleared token is dead");
        assert!(q.cancel(after));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn far_future_event_does_not_pin_the_state_window() {
        // A single long-lived event must not hold the dense state window
        // open while millions of near events churn past: once the window
        // is dominated by dead entries it compacts, parking the anchor in
        // the sparse overflow with full cancel/fire semantics intact.
        let mut q = EventQueue::new();
        let anchor = q.push(SimTime::from_secs(1_000_000), u64::MAX);
        for i in 0..scaled(200_000, 3_000) {
            q.push(SimTime::from_nanos(i), i);
            q.pop();
        }
        assert!(
            q.window.dense_len() < 2 * COMPACT_SLACK + 16,
            "window should compact behind the anchor, got {} entries",
            q.window.dense_len()
        );
        assert_eq!(q.len(), 1);
        // The compacted anchor still cancels exactly once.
        assert!(q.cancel(anchor));
        assert!(!q.cancel(anchor));
        assert_eq!(q.len(), 0);
        assert_eq!(q.pop(), None);
        assert_eq!(q.window.overflow_len(), 0, "overflow drained after the pop");
    }

    #[test]
    fn compacted_event_still_fires() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(100), u64::MAX);
        for i in 0..scaled(50_000, 3_000) {
            q.push(SimTime::from_nanos(i), i);
            q.pop();
        }
        assert_eq!(q.pop(), Some((SimTime::from_secs(100), u64::MAX)));
        assert!(q.is_empty());
    }

    #[test]
    fn state_window_trims_behind_fired_events() {
        // A long-lived event keeps the window open; everything behind it is
        // trimmed once it fires.
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(100), u64::MAX); // the anchor
        for i in 0..1_000u64 {
            q.push(SimTime::from_nanos(i), i);
        }
        for _ in 0..1_000 {
            q.pop();
        }
        // Only the anchor (seq 0) holds the window; span is next_seq range.
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().map(|(_, e)| e), Some(u64::MAX));
        assert_eq!(q.window.dense_len(), 0, "window fully trimmed");
    }
}
