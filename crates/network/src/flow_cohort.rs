//! Cohort-cell backend for the [`Cohort`](crate::flow::FlowSolverKind)
//! solver arm: every bottleneck cohort — the flows fixed at one link's
//! fair share — is represented by a single *rate cell* carrying a
//! virtual-time clock, so a rate-level shift is O(1) bookkeeping per
//! affected *link* (update the cell's share) instead of O(flows)
//! settles and retimes.
//!
//! # The virtual-time cell model
//!
//! A cell accumulates `vclock = Σ share · dt` in exact progress units
//! (see [`PROGRESS_PER_BYTE`]): the progress *every* member has made,
//! since all members of a cell run at the cell's share by definition. A
//! member stores only `vfinish` — the cell virtual time at which its
//! payload has fully drained (`vclock`-at-join + payload) — so
//! admission, completion projection, and settling never touch the
//! member set:
//!
//! * a member's remaining payload is `vfinish − vclock`,
//! * its completion instant is `last_update + ceil((vfinish − vclock)
//!   / share)`,
//! * and the cell's earliest completion is read off a per-cell lazy
//!   min-heap of `(vfinish, key)` — the head that survives validation.
//!
//! Because progress is exact integer arithmetic (associative
//! multiply-subtracts), any schedule of cell settles lands on the same
//! remainders as the per-flow arms' per-flow settles, and the identity
//! `ceil((R − s·Δ)/s) = ceil(R/s) − Δ` makes completion instants
//! invariant under partial settles at constant share — which is what
//! lets this backend retrace the per-flow arms' trajectories
//! byte-for-byte while doing O(cells) work per re-solve.
//!
//! Flows materialize real timestamps only when they complete, migrate
//! cells (split/merge rebases their `vfinish` onto the new cell's
//! clock), or are observed (`completion_of`, `flow_progress`).
//!
//! The solve itself is the incremental bottleneck-aware engine of the
//! per-flow arm lifted to cell granularity: dirty *cells* are pulled via
//! a per-link bottleneck registry, link budgets come from the exact
//! share-weighted allocation aggregate, progressive filling pops
//! canonical `(share, link)` bottlenecks from a [`LazyHeap`], cells
//! whose members straddle a bottleneck are split (smaller half moves),
//! and cells fixed at the same `(bottleneck, share)` merge back
//! (smaller into larger) at commit. The post-solve audit that licenses
//! the dirty-set pruning runs at cell granularity too.

use holdcsim_des::lazy_heap::LazyHeap;
use holdcsim_des::slot_window::SlotWindow;
use holdcsim_des::time::SimTime;

use crate::flow::{
    drained_units, due_after, link_capacities, progress_units, CompletedFlow, RouteLinks,
    NO_BOTTLENECK, RATE_UNIT_PER_BPS,
};
use crate::ids::{FlowId, LinkId, NodeId};
use crate::topology::Topology;

/// Sentinel cell index.
const NO_CELL: u32 = u32::MAX;

/// One active flow: route, identity, and its position on its cell's
/// virtual clock. No rate, no progress remainder, no due-heap slot —
/// those all live in (or derive from) the cell.
#[derive(Debug, Clone)]
struct CFlow {
    id: FlowId,
    links: RouteLinks,
    /// The owning cell's virtual time at which this flow's payload has
    /// fully drained. Rebased on cell migration.
    vfinish: u128,
    /// Payload in progress units (for `flow_progress`).
    total: u128,
    /// The owning cell.
    cell: u32,
    /// This flow's index in the owning cell's member list.
    member_pos: u32,
    /// `true` once the flow's payload has drained but its completion is
    /// deferred (its cell's share did not change at the resolve that
    /// discovered it) — it completes at the next [`CohortNet::advance_due`]
    /// with its original due, parked in [`CohortNet::overdue`].
    overdue: bool,
    src: NodeId,
    dst: NodeId,
    started: SimTime,
}

/// A rate cell: one bottleneck cohort's shared rate and virtual clock.
#[derive(Debug, Clone, Default)]
struct Cell {
    live: bool,
    /// The committed fair share of every member, in rate units.
    share: u64,
    /// The share the in-progress solve assigned (synced back to `share`
    /// at commit so stale audit reads are safe).
    new_share: u64,
    /// Accumulated progress: `Σ share · dt` over the cell's lifetime,
    /// exact, as of `last_update`.
    vclock: u128,
    /// When `vclock` was last settled.
    last_update: SimTime,
    /// The link whose progressive-filling round fixed this cohort.
    bottleneck: u32,
    /// The bottleneck the in-progress solve assigned.
    new_bottleneck: u32,
    /// Outside a solve: `true`. Cells pulled into the dirty set flip to
    /// `false` until re-fixed.
    fixed: bool,
    /// Member flow keys (unordered; flows track their slot).
    members: Vec<u64>,
    /// `(link, member count crossing it)`, sorted by link — the cell's
    /// link footprint. `Σ share · count` over cells is each link's exact
    /// allocation aggregate.
    cross: Vec<(u32, u32)>,
    /// Lazy min-heap of `(vfinish, key)` over members: entries go stale
    /// when a member migrates, completes, or parks overdue, and are
    /// dropped on contact at the head.
    heap: Vec<(u128, u64)>,
    /// Audit-scan stamp: equal to the net's `scan_epoch` when this cell
    /// was already seen by the in-progress registry compaction, so
    /// duplicate registrations (possible across cell-slot reuse) are
    /// dropped on contact instead of accumulating.
    scan_mark: u64,
}

/// Sift-up push for the per-cell `(vfinish, key)` min-heap.
fn heap_push(h: &mut Vec<(u128, u64)>, e: (u128, u64)) {
    h.push(e);
    let mut i = h.len() - 1;
    while i > 0 {
        let p = (i - 1) / 2;
        if h[i] < h[p] {
            h.swap(i, p);
            i = p;
        } else {
            break;
        }
    }
}

/// Sift-down pop for the per-cell min-heap.
fn heap_pop(h: &mut Vec<(u128, u64)>) {
    let n = h.len();
    debug_assert!(n > 0);
    h.swap(0, n - 1);
    h.pop();
    let n = h.len();
    let mut i = 0;
    loop {
        let (l, r) = (2 * i + 1, 2 * i + 2);
        if l >= n {
            break;
        }
        let m = if r < n && h[r] < h[l] { r } else { l };
        if h[m] < h[i] {
            h.swap(i, m);
            i = m;
        } else {
            break;
        }
    }
}

/// Bumps `li`'s member count in a sorted cross list.
fn cross_inc(cross: &mut Vec<(u32, u32)>, li: u32) {
    match cross.binary_search_by_key(&li, |e| e.0) {
        Ok(p) => cross[p].1 += 1,
        Err(p) => cross.insert(p, (li, 1)),
    }
}

/// Drops one crossing of `li` (removing the entry at zero).
fn cross_dec(cross: &mut Vec<(u32, u32)>, li: u32) {
    match cross.binary_search_by_key(&li, |e| e.0) {
        Ok(p) => {
            cross[p].1 -= 1;
            if cross[p].1 == 0 {
                cross.remove(p);
            }
        }
        Err(_) => debug_assert!(false, "decrement of absent cross link"),
    }
}

/// How many members of `cell` cross `li`.
fn cross_of(cell: &Cell, li: u32) -> u32 {
    cell.cross
        .binary_search_by_key(&li, |e| e.0)
        .map_or(0, |p| cell.cross[p].1)
}

/// `true` if `(vf, key)` is a live, current, non-parked entry of
/// `cell_id`'s heap.
fn entry_valid(flows: &SlotWindow<CFlow>, cell_id: u32, vf: u128, key: u64) -> bool {
    flows
        .get(key)
        .is_some_and(|f| f.cell == cell_id && f.vfinish == vf && !f.overdue)
}

/// Advances `cell`'s virtual clock to `now`, extracting every member
/// whose payload drains within the window into `overdue` as `(exact
/// due, key, share at extraction)` — the due is computed from the
/// *pre-settle* state, so it is the member's true completion instant
/// (invariant under the settle by the ceiling identity). Extracted
/// members stay in the member set (they still hold their reservation
/// until unlinked); only their heap entry is consumed and their
/// `overdue` flag raised.
fn settle_cell(
    cell: &mut Cell,
    cell_id: u32,
    flows: &mut SlotWindow<CFlow>,
    now: SimTime,
    overdue: &mut Vec<(SimTime, u64, u64)>,
) {
    let dt = now.saturating_duration_since(cell.last_update).as_nanos();
    if dt == 0 {
        // Mirror the per-flow arm's settle exactly: the clock origin
        // moves to `now` even when `now` precedes `last_update` (a
        // resolve triggered by a stale past due), re-charging the
        // overlap — the oracle arms bank that same surplus, so tracing
        // them bit-for-bit means reproducing it.
        cell.last_update = now;
        return;
    }
    let v_new = cell.vclock + drained_units(cell.share, dt);
    while let Some(&(vf, key)) = cell.heap.first() {
        if vf > v_new {
            break;
        }
        let valid = entry_valid(flows, cell_id, vf, key);
        heap_pop(&mut cell.heap);
        if !valid {
            continue;
        }
        // vf ≤ v_new and vf > vclock (live-member invariant) ⇒ share > 0.
        debug_assert!(vf > cell.vclock, "member was already past due");
        let due = cell
            .last_update
            .saturating_add(due_after(vf - cell.vclock, cell.share));
        flows.get_mut(key).expect("validated live").overdue = true;
        overdue.push((due, key, cell.share));
    }
    cell.vclock = v_new;
    cell.last_update = now;
}

/// Recomputes `cell_id`'s entry in the cell-due heap from its surviving
/// head (dropping stale heads on the way). The cell-due heap must be
/// *exact* at rest — a spurious earlier entry would fire a spurious
/// calendar event and change the event trajectory — so every mutation
/// that can move a cell's head calls this eagerly.
fn refresh_cell_due(
    cell: &mut Cell,
    cell_id: u32,
    flows: &SlotWindow<CFlow>,
    cell_due: &mut LazyHeap<SimTime>,
) {
    while let Some(&(vf, key)) = cell.heap.first() {
        if entry_valid(flows, cell_id, vf, key) {
            break;
        }
        heap_pop(&mut cell.heap);
    }
    match cell.heap.first() {
        Some(&(vf, _)) if cell.share > 0 => {
            debug_assert!(vf > cell.vclock);
            let due = cell
                .last_update
                .saturating_add(due_after(vf - cell.vclock, cell.share));
            cell_due.update(cell_id as usize, due);
        }
        _ => cell_due.remove(cell_id as usize),
    }
}

/// The cohort-cell flow engine (the `cohort` arm's backend). Public
/// surface mirrors the per-flow backend exactly; see the module docs
/// for the model.
#[derive(Debug)]
pub(crate) struct CohortNet {
    /// Link capacities in rate units.
    capacity: Vec<u64>,
    flows: SlotWindow<CFlow>,
    cells: Vec<Cell>,
    free_cells: Vec<u32>,
    /// Σ share · crossing-count over live cells, per link — the exact
    /// committed allocation aggregate (the per-flow arms'
    /// `reserved_units`), the solver's O(1) budget source.
    alloc: Vec<u64>,
    /// Active-flow count per link (`flows_on_link`).
    nflows: Vec<u32>,
    /// Cells bottlenecked at each link — the dirty-set pull index.
    /// Entries are lazy (validated as `live && bottleneck == link` when
    /// drained); every re-solve re-registers its dirty cells.
    cells_at: Vec<Vec<u32>>,
    /// Cells crossing each link — the audit index. Entries are lazy
    /// (validated as `live && crosses link`), compacted in place by the
    /// audit scans that walk them.
    cells_crossing: Vec<Vec<u32>>,
    /// One entry per cell with a projected completion: the cell's
    /// earliest member due. Exact at rest (eagerly refreshed), so
    /// `next_due` is a peek.
    cell_due: LazyHeap<SimTime>,
    /// Parked past-due members: `(original due, key, share at parking)`.
    /// A parked flow completes at the next `advance_due` — or at the
    /// first commit that changes its cell's share away from the parked
    /// share, which is the cell-world image of the per-flow diff pass
    /// settling a rate-changed flow to zero remaining.
    overdue: Vec<(SimTime, u64, u64)>,
    completed: Vec<CompletedFlow>,
    total_admitted: u64,
    last_solve_touched: usize,
    /// Recycled flow states (route-vector allocations).
    pool: Vec<CFlow>,
    /// Pending re-solve seeds: links whose membership changed, and
    /// just-created singleton cells that must be rated.
    seed_links: Vec<usize>,
    seed_cells: Vec<u32>,
    /// Sim time of the pending admission batch (debug-asserted to never
    /// span two instants).
    pending_since: SimTime,
    // ---- solver scratch (all persistent; cleared per solve) ----
    /// Residual budget per dirty link during a fill.
    cap: Vec<u64>,
    /// Unfixed dirty-flow count per dirty link during a fill.
    cnt: Vec<u64>,
    /// Bottleneck selector: canonical `(share, link)` pops with lazy
    /// revalidation, exactly as in the per-flow incremental arm.
    heap: LazyHeap<u64>,
    dirty_links: Vec<usize>,
    dirty_mask: Vec<bool>,
    dirty_cells: Vec<u32>,
    /// Dirty cells crossing each dirty link (fill candidates; splits
    /// append, so fills iterate by index).
    dirty_list: Vec<Vec<u32>>,
    /// Σ share · crossing-count of dirty cells per dirty link: credited
    /// back against `alloc` to get the sub-problem budget.
    dirty_alloc: Vec<u64>,
    /// Dirty-flow (member) count per dirty link.
    dirty_weight: Vec<u64>,
    /// `(link, fair level)` per progressive-filling round, for the audit.
    levels: Vec<(usize, u64)>,
    /// Persistent per-link upper bound on any crossing cell's share —
    /// the audit's skip gate (see the per-flow arm).
    res_max: Vec<u64>,
    /// Split partition scratch (member keys).
    part_scratch: Vec<u64>,
    /// Monotonic audit-compaction counter (pairs with `Cell::scan_mark`
    /// to dedup registry entries in place; starts at 1 so a freshly
    /// zeroed mark never collides).
    scan_epoch: u64,
    /// Commit grouping scratch: `(new bottleneck, cell)` sorted.
    order_scratch: Vec<(u32, u32)>,
    /// Flows completing inside the current resolve (sorted by key).
    done_scratch: Vec<u64>,
    /// Advance harvest scratch: `(due, key)`.
    harvest: Vec<(SimTime, u64)>,
}

impl CohortNet {
    /// Creates a cohort-cell network over `topo`'s links.
    pub fn new(topo: &Topology) -> Self {
        let capacity = link_capacities(topo);
        let n = capacity.len();
        CohortNet {
            capacity,
            flows: SlotWindow::new(),
            cells: Vec::new(),
            free_cells: Vec::new(),
            alloc: vec![0; n],
            nflows: vec![0; n],
            cells_at: vec![Vec::new(); n],
            cells_crossing: vec![Vec::new(); n],
            cell_due: LazyHeap::new(),
            overdue: Vec::new(),
            completed: Vec::new(),
            total_admitted: 0,
            last_solve_touched: 0,
            pool: Vec::new(),
            seed_links: Vec::new(),
            seed_cells: Vec::new(),
            pending_since: SimTime::ZERO,
            cap: vec![0; n],
            cnt: vec![0; n],
            heap: LazyHeap::new(),
            dirty_links: Vec::new(),
            dirty_mask: vec![false; n],
            dirty_cells: Vec::new(),
            dirty_list: vec![Vec::new(); n],
            dirty_alloc: vec![0; n],
            dirty_weight: vec![0; n],
            levels: Vec::new(),
            res_max: vec![0; n],
            part_scratch: Vec::new(),
            scan_epoch: 1,
            order_scratch: Vec::new(),
            done_scratch: Vec::new(),
            harvest: Vec::new(),
        }
    }

    /// Allocates a blank live cell (recycling freed slots and their
    /// vector allocations), stamped at `now` with an empty footprint.
    fn alloc_cell(&mut self, now: SimTime) -> u32 {
        let c = match self.free_cells.pop() {
            Some(c) => c,
            None => {
                self.cells.push(Cell::default());
                (self.cells.len() - 1) as u32
            }
        };
        let cell = &mut self.cells[c as usize];
        debug_assert!(cell.members.is_empty() && cell.cross.is_empty() && cell.heap.is_empty());
        cell.live = true;
        cell.share = 0;
        cell.new_share = 0;
        cell.vclock = 0;
        cell.last_update = now;
        cell.bottleneck = NO_BOTTLENECK;
        cell.new_bottleneck = NO_BOTTLENECK;
        cell.fixed = true;
        cell.scan_mark = 0;
        c
    }

    /// Frees an empty (or fully-migrated) cell.
    fn free_cell(&mut self, c: u32) {
        let cell = &mut self.cells[c as usize];
        cell.live = false;
        cell.members.clear();
        cell.cross.clear();
        cell.heap.clear();
        self.cell_due.remove(c as usize);
        self.free_cells.push(c);
    }

    /// Admits a flow, re-solves, and returns its key (see the per-flow
    /// arm for the contract).
    ///
    /// # Panics
    ///
    /// Panics if the flow id is already active, the route is empty, or
    /// `bytes == 0`.
    pub fn add_flow(
        &mut self,
        now: SimTime,
        id: FlowId,
        src: NodeId,
        dst: NodeId,
        links: &[LinkId],
        bytes: u64,
    ) -> u64 {
        let key = self.add_flow_batched(now, id, src, dst, links, bytes);
        self.flush(now);
        key
    }

    /// Deferred-re-solve admission: each flow becomes a singleton cell
    /// (share 0, fresh clock) seeded for the next flush's solve, where
    /// the commit's merge pass folds it into its cohort's cell.
    ///
    /// # Panics
    ///
    /// As [`add_flow`](Self::add_flow); additionally (debug) if a batch
    /// spans two distinct sim times without an intervening flush.
    pub fn add_flow_batched(
        &mut self,
        now: SimTime,
        id: FlowId,
        src: NodeId,
        dst: NodeId,
        links: &[LinkId],
        bytes: u64,
    ) -> u64 {
        assert!(!links.is_empty(), "flow with empty route");
        assert!(bytes > 0, "flow with no data");
        debug_assert!(
            self.flows.iter().all(|(_, f)| f.id != id),
            "flow id {id} reused while active"
        );
        debug_assert!(
            self.seed_cells.is_empty() || self.pending_since == now,
            "a batch must not span sim times; flush first"
        );
        let c = self.alloc_cell(now);
        let mut st = self.pool.pop().unwrap_or_else(|| CFlow {
            id,
            links: RouteLinks::default(),
            vfinish: 0,
            total: 0,
            cell: NO_CELL,
            member_pos: 0,
            overdue: false,
            src,
            dst,
            started: now,
        });
        st.id = id;
        st.links.set(links);
        st.vfinish = progress_units(bytes);
        st.total = st.vfinish;
        st.cell = c;
        st.member_pos = 0;
        st.overdue = false;
        st.src = src;
        st.dst = dst;
        st.started = now;
        let key = self.flows.insert(st);
        let cell = &mut self.cells[c as usize];
        cell.members.push(key);
        heap_push(&mut cell.heap, (progress_units(bytes), key));
        for &l in links {
            cross_inc(&mut cell.cross, l.0);
        }
        for i in 0..self.cells[c as usize].cross.len() {
            let li = self.cells[c as usize].cross[i].0 as usize;
            self.cells_crossing[li].push(c);
        }
        for &l in links {
            let li = l.0 as usize;
            self.nflows[li] += 1;
            self.seed_links.push(li);
        }
        self.seed_cells.push(c);
        self.pending_since = now;
        self.total_admitted += 1;
        key
    }

    /// Re-solves any batched admissions. A no-op when none are pending.
    pub fn flush(&mut self, now: SimTime) {
        if self.seed_cells.is_empty() && self.seed_links.is_empty() {
            return;
        }
        debug_assert_eq!(self.pending_since, now, "batch flushed at a later instant");
        self.resolve(now);
    }

    /// The earliest projected completion among active flows: the
    /// cell-due head against the parked minimum. Exact and O(parked).
    pub fn next_due(&mut self) -> Option<SimTime> {
        debug_assert!(
            self.seed_cells.is_empty() && self.seed_links.is_empty(),
            "flush batched admissions before reading completions"
        );
        let CohortNet { overdue, flows, .. } = self;
        overdue.retain(|&(_, key, _)| flows.contains(key));
        let mut min = self.overdue.iter().map(|&(d, _, _)| d).min();
        if let Some((_, d)) = self.cell_due.peek() {
            min = Some(min.map_or(d, |m| m.min(d)));
        }
        min
    }

    /// Completes every flow due at or before `now` in `(due, key)`
    /// order, then re-solves the freed components in one batch.
    pub fn advance_due(&mut self, now: SimTime) {
        self.flush(now);
        self.seed_links.clear();
        self.seed_cells.clear();
        // Every cell whose head is due settles to `now`, extracting its
        // drained members (the cell-due heap is exact, so no other cell
        // can hold a due member).
        while let Some((c, due)) = self.cell_due.peek() {
            if due > now {
                break;
            }
            let c = c as u32;
            {
                let CohortNet {
                    cells,
                    flows,
                    overdue,
                    ..
                } = self;
                settle_cell(&mut cells[c as usize], c, flows, now, overdue);
            }
            let CohortNet {
                cells,
                flows,
                cell_due,
                ..
            } = self;
            refresh_cell_due(&mut cells[c as usize], c, flows, cell_due);
        }
        let mut harvest = std::mem::take(&mut self.harvest);
        harvest.clear();
        {
            let CohortNet { overdue, flows, .. } = self;
            overdue.retain(|&(due, key, _)| {
                if !flows.contains(key) {
                    return false;
                }
                debug_assert!(due <= now, "parked entries are past due by construction");
                harvest.push((due, key));
                false
            });
        }
        harvest.sort_unstable();
        for &(_, key) in &harvest {
            self.unlink(key, true);
        }
        let any = !harvest.is_empty();
        self.harvest = harvest;
        if any {
            self.resolve(now);
        }
    }

    /// Cancels a live flow (no completion is reported), re-solving the
    /// freed component. Returns `false` if the key is not live.
    pub fn remove_flow(&mut self, now: SimTime, flow: u64) -> bool {
        self.flush(now);
        if !self.flows.contains(flow) {
            return false;
        }
        self.seed_links.clear();
        self.seed_cells.clear();
        self.unlink(flow, false);
        self.resolve(now);
        true
    }

    /// Removes `flow` from its cell and the link tables, extending
    /// `seed_links` with its links and optionally reporting it
    /// completed. Frees the cell if this was its last member, else
    /// eagerly refreshes the cell's due entry (the head may have been
    /// this flow).
    fn unlink(&mut self, flow: u64, completed: bool) {
        let f = self.flows.remove(flow).expect("live flow");
        let c = f.cell;
        let pos = f.member_pos as usize;
        let cell = &mut self.cells[c as usize];
        debug_assert_eq!(cell.members[pos], flow);
        cell.members.swap_remove(pos);
        if pos < cell.members.len() {
            let moved = cell.members[pos];
            self.flows
                .get_mut(moved)
                .expect("member is live")
                .member_pos = pos as u32;
        }
        let share = self.cells[c as usize].share;
        for &l in f.links.as_slice() {
            let li = l.0 as usize;
            cross_dec(&mut self.cells[c as usize].cross, l.0);
            self.alloc[li] -= share;
            self.nflows[li] -= 1;
            self.seed_links.push(li);
        }
        if self.cells[c as usize].members.is_empty() {
            self.free_cell(c);
        } else {
            let CohortNet {
                cells,
                flows,
                cell_due,
                ..
            } = self;
            refresh_cell_due(&mut cells[c as usize], c, flows, cell_due);
        }
        if completed {
            self.completed.push(CompletedFlow {
                id: f.id,
                src: f.src,
                dst: f.dst,
                started: f.started,
            });
        }
        self.pool.push(f);
    }

    // ------------------------------------------------------------------
    // The cell-granular incremental solve. Structure and invariants
    // mirror the per-flow `IncrementalSolver` exactly — budgets from the
    // allocation aggregate, canonical `(share, link)` pops with lazy
    // revalidation, `res_max`-gated audit — with flows replaced by cells
    // and per-flow counts by cross counts.
    // ------------------------------------------------------------------

    /// Marks `li` dirty (idempotent), resetting its per-solve
    /// accumulators.
    fn mark_link(&mut self, li: usize) {
        if self.dirty_mask[li] {
            return;
        }
        self.dirty_mask[li] = true;
        self.dirty_links.push(li);
        self.dirty_list[li].clear();
        self.dirty_alloc[li] = 0;
        self.dirty_weight[li] = 0;
    }

    /// Pulls cell `c` into the dirty set (idempotent), dirtying its
    /// links and crediting its members' committed shares back to their
    /// budgets.
    fn pull_cell(&mut self, c: u32) {
        if !self.cells[c as usize].fixed {
            return;
        }
        self.cells[c as usize].fixed = false;
        self.dirty_cells.push(c);
        let share = self.cells[c as usize].share;
        for i in 0..self.cells[c as usize].cross.len() {
            let (li, k) = self.cells[c as usize].cross[i];
            let li = li as usize;
            self.mark_link(li);
            self.dirty_list[li].push(c);
            self.dirty_alloc[li] += share * k as u64;
            self.dirty_weight[li] += k as u64;
        }
    }

    /// Fixes cell `c` wholly at `(bl, share)`, charging its footprint
    /// against the fill's residuals.
    fn fix_cell(&mut self, c: u32, bl: u32, share: u64) {
        let CohortNet {
            cells,
            cap,
            cnt,
            res_max,
            ..
        } = self;
        let cell = &mut cells[c as usize];
        cell.fixed = true;
        cell.new_share = share;
        cell.new_bottleneck = bl;
        for &(li, k) in &cell.cross {
            let li = li as usize;
            cap[li] -= share * k as u64;
            cnt[li] -= k as u64;
            res_max[li] = res_max[li].max(share);
        }
    }

    /// Splits the members of dirty cell `c` that cross `bl` from those
    /// that do not, moving the smaller subset to a fresh cell
    /// (small-to-large amortization), and returns the cell now holding
    /// exactly the `bl`-crossing members. Both halves keep the source's
    /// pre-solve share and bottleneck, so every budget aggregate the
    /// solve derived from the source is preserved by the partition; the
    /// new cell starts a zero clock at `now` with members' `vfinish`
    /// rebased, which the settle-invariance identity makes transparent.
    fn split_cell(&mut self, c: u32, bl: u32, now: SimTime) -> u32 {
        {
            let CohortNet {
                cells,
                flows,
                overdue,
                ..
            } = self;
            settle_cell(&mut cells[c as usize], c, flows, now, overdue);
        }
        let mut part = std::mem::take(&mut self.part_scratch);
        part.clear();
        let crosses = |f: &CFlow| f.links.as_slice().iter().any(|l| l.0 == bl);
        for &k in &self.cells[c as usize].members {
            if crosses(self.flows.get(k).expect("member is live")) {
                part.push(k);
            }
        }
        let n = self.cells[c as usize].members.len();
        debug_assert!(!part.is_empty() && part.len() < n, "split must be proper");
        let move_crossing = part.len() * 2 <= n;
        if !move_crossing {
            part.clear();
            for &k in &self.cells[c as usize].members {
                if !crosses(self.flows.get(k).expect("member is live")) {
                    part.push(k);
                }
            }
        }
        let nc = self.alloc_cell(now);
        {
            let (src, dst) = (c as usize, nc as usize);
            let v_src = self.cells[src].vclock;
            self.cells[dst].share = self.cells[src].share;
            self.cells[dst].new_share = self.cells[src].share;
            self.cells[dst].bottleneck = self.cells[src].bottleneck;
            self.cells[dst].new_bottleneck = NO_BOTTLENECK;
            self.cells[dst].fixed = false;
            let CohortNet { cells, flows, .. } = self;
            for &k in &part {
                let f = flows.get_mut(k).expect("member is live");
                f.cell = nc;
                // Parked members rebase to the clock origin (their
                // vfinish is spent; the overdue list tracks them).
                f.vfinish = f.vfinish.saturating_sub(v_src);
                let (vf, od) = (f.vfinish, f.overdue);
                f.member_pos = cells[dst].members.len() as u32;
                cells[dst].members.push(k);
                if !od {
                    heap_push(&mut cells[dst].heap, (vf, k));
                }
                for &l in f.links.as_slice() {
                    cross_dec(&mut cells[src].cross, l.0);
                    cross_inc(&mut cells[dst].cross, l.0);
                }
            }
            // Compact the source member list and re-slot survivors.
            let flows = &self.flows;
            self.cells[src]
                .members
                .retain(|&k| flows.get(k).expect("member is live").cell == c);
            for pos in 0..self.cells[src].members.len() {
                let k = self.cells[src].members[pos];
                self.flows.get_mut(k).expect("member is live").member_pos = pos as u32;
            }
        }
        part.clear();
        self.part_scratch = part;
        // Register the new cell everywhere the source was: audit index,
        // dirty set, and the per-link fill candidate lists. The dirty
        // budget aggregates are untouched — the partition preserves
        // their sums.
        self.dirty_cells.push(nc);
        for i in 0..self.cells[nc as usize].cross.len() {
            let li = self.cells[nc as usize].cross[i].0 as usize;
            debug_assert!(self.dirty_mask[li], "split cell's links are all dirty");
            self.cells_crossing[li].push(nc);
            self.dirty_list[li].push(nc);
        }
        if move_crossing {
            nc
        } else {
            c
        }
    }

    /// The cell-granular incremental solve: pull, budget, fill, audit —
    /// see the per-flow arm for the phase-by-phase rationale. `now` is
    /// needed only by splits (their clock rebasing settles the source).
    fn solve_cells(&mut self, now: SimTime) {
        self.dirty_links.clear();
        self.dirty_cells.clear();
        for i in 0..self.seed_links.len() {
            let li = self.seed_links[i];
            self.mark_link(li);
        }
        for i in 0..self.seed_cells.len() {
            let c = self.seed_cells[i];
            self.pull_cell(c);
        }
        loop {
            // Pull phase: drain every dirty link's bottleneck cohort
            // registry; pulled cells dirty their links, which may expose
            // further registries. Drained entries lose nothing — every
            // dirty cell re-registers at commit.
            let mut i = 0;
            while i < self.dirty_links.len() {
                let li = self.dirty_links[i];
                i += 1;
                let mut list = std::mem::take(&mut self.cells_at[li]);
                for c in list.drain(..) {
                    let cell = &self.cells[c as usize];
                    if cell.live && cell.bottleneck == li as u32 {
                        self.pull_cell(c);
                    }
                }
                self.cells_at[li] = list;
            }
            // Budget phase: capacity minus the committed shares of
            // untouched cells, from the exact aggregates — O(1) per
            // dirty link.
            self.heap.clear();
            for i in 0..self.dirty_links.len() {
                let li = self.dirty_links[i];
                let reserved = self.alloc[li] - self.dirty_alloc[li];
                let budget = self.capacity[li]
                    .checked_sub(reserved)
                    .expect("reservations never exceed capacity");
                let w = self.dirty_weight[li];
                self.cap[li] = budget;
                self.cnt[li] = w;
                if let Some(share) = budget.checked_div(w) {
                    self.heap.update(li, share);
                }
            }
            // Fill phase: progressive filling over the sub-problem, by
            // cell. `unfixed` counts member flows so the termination
            // measure matches the per-flow arm's.
            self.levels.clear();
            let mut unfixed: u64 = self
                .dirty_cells
                .iter()
                .map(|&c| self.cells[c as usize].members.len() as u64)
                .sum();
            while unfixed > 0 {
                let Some((bl, stale_share)) = self.heap.pop() else {
                    // Defensive: cannot run dry while cells are unfixed
                    // (every dirty cell crosses a dirty link counting
                    // it). Park stragglers at zero on their first link.
                    for i in 0..self.dirty_cells.len() {
                        let c = self.dirty_cells[i] as usize;
                        if !self.cells[c].fixed {
                            self.cells[c].fixed = true;
                            self.cells[c].new_share = 0;
                            self.cells[c].new_bottleneck = self.cells[c]
                                .cross
                                .first()
                                .map_or(NO_BOTTLENECK, |&(l, _)| l);
                        }
                    }
                    break;
                };
                if self.cnt[bl] == 0 {
                    continue; // emptied passively since its last push
                }
                // Lazy revalidation (see the per-flow arm): the first
                // validated pop is the canonical (share, link) minimum.
                let share = self.cap[bl] / self.cnt[bl];
                if share != stale_share {
                    self.heap.update(bl, share);
                    continue;
                }
                self.levels.push((bl, share));
                let mut fixed_any = false;
                // By index: splits append their new cell to this list
                // when it crosses `bl`, and it must be fixed this round.
                let mut j = 0;
                while j < self.dirty_list[bl].len() {
                    let c = self.dirty_list[bl][j];
                    j += 1;
                    if self.cells[c as usize].fixed {
                        continue;
                    }
                    let k = cross_of(&self.cells[c as usize], bl as u32);
                    if k == 0 {
                        continue; // split remnant that left this link
                    }
                    let n = self.cells[c as usize].members.len() as u32;
                    let target = if k == n {
                        c
                    } else {
                        self.split_cell(c, bl as u32, now)
                    };
                    if self.cells[target as usize].fixed {
                        continue; // the split registered it here twice
                    }
                    self.fix_cell(target, bl as u32, share);
                    unfixed -= self.cells[target as usize].members.len() as u64;
                    fixed_any = true;
                }
                debug_assert!(fixed_any);
            }
            // Audit phase: pull any clean cell whose reserved share a
            // popped level undercut, and re-solve the grown sub-problem.
            // Scans compact their index in place.
            let mut grew = false;
            for level_idx in 0..self.levels.len() {
                let (li, level) = self.levels[level_idx];
                if self.res_max[li] <= level {
                    continue;
                }
                let mut seen_max = 0u64;
                let mut pulled_here = false;
                self.scan_epoch += 1;
                let epoch = self.scan_epoch;
                let mut list = std::mem::take(&mut self.cells_crossing[li]);
                let mut w = 0;
                for r in 0..list.len() {
                    let c = list[r];
                    let (live, on_link, share, new_share, bott) = {
                        let cell = &self.cells[c as usize];
                        (
                            cell.live,
                            cross_of(cell, li as u32) > 0,
                            cell.share,
                            cell.new_share,
                            cell.bottleneck,
                        )
                    };
                    if !live || !on_link {
                        continue; // stale registration: drop it
                    }
                    if self.cells[c as usize].scan_mark == epoch {
                        continue; // duplicate registration: drop it
                    }
                    self.cells[c as usize].scan_mark = epoch;
                    list[w] = c;
                    w += 1;
                    seen_max = seen_max.max(share.max(new_share));
                    // Dirty cells are recognized by their pre-solve
                    // bottleneck being dirty (pulling marks it);
                    // reservations keep a clean bottleneck.
                    let reserved = bott != NO_BOTTLENECK && !self.dirty_mask[bott as usize];
                    if reserved && share > level {
                        self.pull_cell(c);
                        grew = true;
                        pulled_here = true;
                    }
                }
                list.truncate(w);
                self.cells_crossing[li] = list;
                if !pulled_here {
                    self.res_max[li] = seen_max;
                }
            }
            if !grew {
                break;
            }
            for i in 0..self.dirty_cells.len() {
                let c = self.dirty_cells[i] as usize;
                self.cells[c].fixed = false;
            }
        }
        for i in 0..self.dirty_links.len() {
            let li = self.dirty_links[i];
            self.dirty_mask[li] = false;
        }
    }

    /// Commits the solve: applies new shares in canonical order (settling
    /// each changed cell's clock first), merges cells that converged on
    /// the same bottleneck level, rebuilds the bottleneck registries and
    /// due heap, and routes parked-overdue members whose share finally
    /// changed into the done set.
    fn commit(&mut self, now: SimTime) {
        let mut order = std::mem::take(&mut self.order_scratch);
        order.clear();
        let mut touched = 0usize;
        for i in 0..self.dirty_cells.len() {
            let c = self.dirty_cells[i];
            let cell = &self.cells[c as usize];
            if !cell.live {
                continue;
            }
            touched += cell.members.len();
            order.push((cell.new_bottleneck, c));
        }
        self.last_solve_touched = touched;
        order.sort_unstable();
        for &(_, c) in &order {
            self.apply_share(c, now);
        }
        // Merge runs that fixed at the same bottleneck: they now share a
        // rate and a constraining link, i.e. they are one cohort. The
        // largest member count hosts (small-to-large), ties to the
        // lowest cell id — the run is sorted ascending, so strict `>`
        // keeps the first on ties.
        let mut i = 0;
        while i < order.len() {
            let bl = order[i].0;
            let mut j = i + 1;
            while j < order.len() && order[j].0 == bl {
                j += 1;
            }
            if bl != NO_BOTTLENECK && j - i >= 2 {
                self.merge_run(&order[i..j], now);
            }
            i = j;
        }
        for &(_, c) in &order {
            let cell = &self.cells[c as usize];
            if !cell.live {
                continue; // absorbed by a merge
            }
            let bl = cell.bottleneck;
            if bl != NO_BOTTLENECK {
                self.cells_at[bl as usize].push(c);
            }
            let CohortNet {
                cells,
                flows,
                cell_due,
                ..
            } = self;
            refresh_cell_due(&mut cells[c as usize], c, flows, cell_due);
        }
        order.clear();
        self.order_scratch = order;
        // Parked-overdue members whose cell's share changed this solve
        // complete now — exactly the flows the per-flow diff pass would
        // have settled to zero remaining. Unchanged shares stay parked.
        let CohortNet {
            overdue,
            flows,
            cells,
            done_scratch,
            ..
        } = self;
        overdue.retain(|&(_, key, park_share)| {
            let Some(f) = flows.get(key) else {
                return false;
            };
            if cells[f.cell as usize].share != park_share {
                done_scratch.push(key);
                return false;
            }
            true
        });
    }

    /// Applies a dirty cell's solved `(new_share, new_bottleneck)`. A
    /// share change settles the clock first so drained progress is
    /// banked at the old rate; the bottleneck is promoted
    /// unconditionally, matching the per-flow diff pass.
    fn apply_share(&mut self, c: u32, now: SimTime) {
        let changed = self.cells[c as usize].new_share != self.cells[c as usize].share;
        if changed {
            {
                let CohortNet {
                    cells,
                    flows,
                    overdue,
                    ..
                } = self;
                settle_cell(&mut cells[c as usize], c, flows, now, overdue);
            }
            let (old, new) = {
                let cell = &self.cells[c as usize];
                (cell.share, cell.new_share)
            };
            for i in 0..self.cells[c as usize].cross.len() {
                let (li, k) = self.cells[c as usize].cross[i];
                let li = li as usize;
                self.alloc[li] = self.alloc[li] - old * k as u64 + new * k as u64;
            }
            self.cells[c as usize].share = new;
        }
        let cell = &mut self.cells[c as usize];
        cell.bottleneck = cell.new_bottleneck;
        cell.new_share = cell.share;
        cell.fixed = true;
    }

    /// Merges a committed run of same-bottleneck, same-share cells into
    /// the one with the most members.
    fn merge_run(&mut self, run: &[(u32, u32)], now: SimTime) {
        let mut target = run[0].1;
        for &(_, c) in &run[1..] {
            if self.cells[c as usize].members.len() > self.cells[target as usize].members.len() {
                target = c;
            }
        }
        for &(_, c) in run {
            if c != target {
                self.merge_into(target, c, now);
            }
        }
    }

    /// Folds cell `s` into cell `t` (same share, same bottleneck):
    /// settles both clocks, rebases member virtual deadlines onto `t`'s
    /// clock, and unions the cross-count footprints. The shared share
    /// makes the rebase exact — both clocks advance identically from
    /// `now` on.
    fn merge_into(&mut self, t: u32, s: u32, now: SimTime) {
        debug_assert_eq!(self.cells[t as usize].share, self.cells[s as usize].share);
        {
            let CohortNet {
                cells,
                flows,
                overdue,
                ..
            } = self;
            settle_cell(&mut cells[t as usize], t, flows, now, overdue);
            settle_cell(&mut cells[s as usize], s, flows, now, overdue);
        }
        let members = std::mem::take(&mut self.cells[s as usize].members);
        let cross = std::mem::take(&mut self.cells[s as usize].cross);
        let v_src = self.cells[s as usize].vclock;
        let v_tgt = self.cells[t as usize].vclock;
        for k in members {
            let f = self.flows.get_mut(k).expect("member is live");
            f.cell = t;
            f.vfinish = v_tgt + f.vfinish.saturating_sub(v_src);
            let (vf, od) = (f.vfinish, f.overdue);
            f.member_pos = self.cells[t as usize].members.len() as u32;
            self.cells[t as usize].members.push(k);
            if !od {
                heap_push(&mut self.cells[t as usize].heap, (vf, k));
            }
        }
        for (li, k) in cross {
            let tc = &mut self.cells[t as usize].cross;
            match tc.binary_search_by_key(&li, |&(l, _)| l) {
                Ok(pos) => tc[pos].1 += k,
                Err(pos) => {
                    tc.insert(pos, (li, k));
                    self.cells_crossing[li as usize].push(t);
                }
            }
        }
        self.cell_due.remove(s as usize);
        self.cells[s as usize].live = false;
        self.cells[s as usize].heap.clear();
        self.free_cells.push(s);
    }

    /// Re-solves after seeded changes and drains the completion cascade:
    /// freshly-unlinked flows relax their links, which may complete more
    /// flows, until a solve finishes nobody.
    fn resolve(&mut self, now: SimTime) {
        loop {
            self.solve_cells(now);
            self.seed_cells.clear();
            self.commit(now);
            self.seed_links.clear();
            let mut done = std::mem::take(&mut self.done_scratch);
            let finished = done.is_empty();
            done.sort_unstable();
            for &key in &done {
                self.unlink(key, true);
            }
            done.clear();
            self.done_scratch = done;
            if finished {
                return;
            }
        }
    }

    // ------------------------------------------------------------------
    // Observers — identical contracts to the per-flow arm. These are the
    // materialization points: reading a flow's rate, progress, or
    // projected completion converts the cell's virtual time into real
    // quantities on demand.
    // ------------------------------------------------------------------

    /// Drains the flows that have completed since the last call.
    pub fn take_completed(&mut self) -> Vec<CompletedFlow> {
        std::mem::take(&mut self.completed)
    }

    /// Drains the completed flows without surrendering the buffer.
    pub fn drain_completed(&mut self) -> std::vec::Drain<'_, CompletedFlow> {
        self.completed.drain(..)
    }

    /// The projected completion of a live flow with a positive rate.
    /// Parked-overdue flows report the instant their virtual deadline
    /// elapsed (the per-flow arm likewise projects from the flow's last
    /// settled state).
    pub fn completion_of(&self, flow: u64) -> Option<SimTime> {
        let f = self.flows.get(flow)?;
        if f.overdue {
            return self
                .overdue
                .iter()
                .find(|&&(_, k, _)| k == flow)
                .map(|&(due, _, _)| due);
        }
        let cell = &self.cells[f.cell as usize];
        if cell.share == 0 {
            return None;
        }
        Some(
            cell.last_update
                .saturating_add(due_after(f.vfinish.saturating_sub(cell.vclock), cell.share)),
        )
    }

    /// Number of active flows.
    pub fn active_flows(&self) -> usize {
        self.flows.len()
    }

    /// Total flows ever admitted.
    pub fn total_admitted(&self) -> u64 {
        self.total_admitted
    }

    /// Member flows covered by the most recent re-solve's dirty cell
    /// set — 0 before any solve. Comparable to the per-flow arm's
    /// touched count, though cohort work no longer scales with it.
    pub fn last_solve_touched(&self) -> usize {
        self.last_solve_touched
    }

    /// The current fair rate of `id` in bits/second, if active (a linear
    /// scan — an observer for tests and reports, not the event hot path).
    pub fn flow_rate_bps(&self, id: FlowId) -> Option<f64> {
        self.find(id)
            .map(|f| self.cells[f.cell as usize].share as f64 / RATE_UNIT_PER_BPS as f64)
    }

    /// Fraction of `id`'s bytes delivered by `now` (in `[0, 1]`), if
    /// active (a linear scan — an observer, not the event hot path).
    pub fn flow_progress(&self, id: FlowId, now: SimTime) -> Option<f64> {
        self.find(id).map(|f| {
            let cell = &self.cells[f.cell as usize];
            let dt = now.saturating_duration_since(cell.last_update).as_nanos();
            let v = cell.vclock + drained_units(cell.share, dt);
            let rem = f.vfinish.saturating_sub(v);
            1.0 - (rem as f64 / f.total as f64).clamp(0.0, 1.0)
        })
    }

    fn find(&self, id: FlowId) -> Option<&CFlow> {
        self.flows.iter().find(|(_, f)| f.id == id).map(|(_, f)| f)
    }

    /// Test-only state dump in the per-flow arm's shape: `(id, rate,
    /// bottleneck link, route)` per live flow, sorted by id.
    #[cfg(test)]
    pub(crate) fn dump(&self) -> Vec<(u64, u64, u32, Vec<u32>)> {
        let mut v: Vec<_> = self
            .flows
            .iter()
            .map(|(_, f)| {
                let cell = &self.cells[f.cell as usize];
                (
                    f.id.0,
                    cell.share,
                    cell.bottleneck,
                    f.links.as_slice().iter().map(|l| l.0).collect(),
                )
            })
            .collect();
        v.sort();
        v
    }

    /// Fraction of `link`'s capacity currently allocated.
    pub fn link_utilization(&self, link: LinkId) -> f64 {
        let cap = self.capacity[link.0 as usize];
        if cap == 0 {
            return 0.0;
        }
        self.alloc[link.0 as usize] as f64 / cap as f64
    }

    /// Number of active flows crossing `link`.
    pub fn flows_on_link(&self, link: LinkId) -> usize {
        self.nflows[link.0 as usize] as usize
    }
}

#[cfg(test)]
impl CohortNet {
    /// Live cell count — the structural observable the cohort arm's
    /// complexity claim rests on.
    fn live_cells(&self) -> usize {
        self.cells.iter().filter(|c| c.live).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::Router;
    use crate::topologies::{star, LinkSpec};
    use holdcsim_des::time::SimDuration;

    fn route(topo: &Topology, router: &mut Router, a: NodeId, b: NodeId, seed: u64) -> Vec<LinkId> {
        router.route(topo, a, b, seed).unwrap().links
    }

    /// Incast is the cohort arm's raison d'être: N senders converging on
    /// one receiver share the receiver's downlink fair share, so the
    /// whole hot set must coalesce into a single rate cell.
    #[test]
    fn incast_coalesces_into_one_cell() {
        let built = star(16, LinkSpec::gigabit());
        let topo = built.topology;
        let h = built.hosts.clone();
        let mut router = Router::new();
        let mut net = CohortNet::new(&topo);
        for i in 1..16u64 {
            let links = route(&topo, &mut router, h[i as usize], h[0], i);
            net.add_flow(
                SimTime::ZERO,
                FlowId(i),
                h[i as usize],
                h[0],
                &links,
                1_000_000,
            );
        }
        assert_eq!(net.active_flows(), 15);
        assert_eq!(net.live_cells(), 1, "one bottleneck, one cell");
        // All members finish together: one due instant drains them all.
        let due = net.next_due().expect("pending completions");
        net.advance_due(due);
        assert_eq!(net.take_completed().len(), 15);
        assert_eq!(net.active_flows(), 0);
        assert_eq!(net.live_cells(), 0);
    }

    /// A batched admission wave lands as singleton seeds and coalesces
    /// in the single flush-time solve.
    #[test]
    fn batched_incast_coalesces_on_flush() {
        let built = star(8, LinkSpec::gigabit());
        let topo = built.topology;
        let h = built.hosts.clone();
        let mut router = Router::new();
        let mut net = CohortNet::new(&topo);
        for i in 1..8u64 {
            let links = route(&topo, &mut router, h[i as usize], h[0], i);
            net.add_flow_batched(
                SimTime::ZERO,
                FlowId(i),
                h[i as usize],
                h[0],
                &links,
                500_000,
            );
        }
        net.flush(SimTime::ZERO);
        assert_eq!(net.live_cells(), 1);
    }

    /// Contention elsewhere peels a subset of a cohort off to a new
    /// bottleneck: the cell must split rather than drag the whole cohort
    /// to the lower share.
    #[test]
    fn contention_shift_splits_the_cell() {
        let built = star(6, LinkSpec::gigabit());
        let topo = built.topology;
        let h = built.hosts.clone();
        let mut router = Router::new();
        let mut net = CohortNet::new(&topo);
        // Two flows into h0: one cohort on h0's downlink at cap/2 each.
        for (i, src) in [(1u64, 1usize), (2, 2)] {
            let links = route(&topo, &mut router, h[src], h[0], i);
            net.add_flow(SimTime::ZERO, FlowId(i), h[src], h[0], &links, 10_000_000);
        }
        assert_eq!(net.live_cells(), 1);
        // Two more flows out of h1: h1's uplink now carries three flows
        // (cap/3 < cap/2), so flow 1 re-bottlenecks there and must leave
        // the downlink cohort.
        let t = SimTime::ZERO + SimDuration::from_millis(1);
        for (i, dst) in [(3u64, 3usize), (4, 4)] {
            let links = route(&topo, &mut router, h[1], h[dst], i);
            net.add_flow(t, FlowId(i), h[1], h[dst], &links, 10_000_000);
        }
        let third = 1_000_000_000.0 / 3.0;
        for i in [1u64, 3, 4] {
            let r = net.flow_rate_bps(FlowId(i)).unwrap();
            assert!((r - third).abs() < 2.0, "flow {i}: {r}");
        }
        // Flow 2 keeps the downlink's leftover share alone.
        let r2 = net.flow_rate_bps(FlowId(2)).unwrap();
        assert!((r2 - (1_000_000_000.0 - third)).abs() < 2.0, "{r2}");
    }

    /// A flow whose virtual deadline elapsed mid-settle while its share
    /// was unchanged stays parked with its original due and completes at
    /// the next `advance_due` — never earlier, never retimed.
    #[test]
    fn parked_overdue_flow_completes_at_original_due() {
        let built = star(2, LinkSpec::gigabit());
        let topo = built.topology;
        let h = built.hosts.clone();
        let mut router = Router::new();
        let mut net = CohortNet::new(&topo);
        let links = route(&topo, &mut router, h[1], h[0], 1);
        net.add_flow(SimTime::ZERO, FlowId(1), h[1], h[0], &links, 125_000);
        let due = net.next_due().unwrap();
        // 125 kB at 1 Gb/s = 1 ms exactly.
        assert_eq!(due, SimTime::ZERO + SimDuration::from_millis(1));
        // Drive the net well past the due via an unrelated observation
        // instant: the completion must still report the original due.
        net.advance_due(due + SimDuration::from_millis(5));
        let done = net.take_completed();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].id, FlowId(1));
    }
}
