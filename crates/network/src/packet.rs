//! Packet-level communication: store-and-forward transmission with per-port
//! output queues and tail-drop (§III-B's finer-grained communication model).
//!
//! Each directed link endpoint models an egress port with a transmission
//! backlog. Transmitting computes exact departure/arrival instants from the
//! port's `busy_until` horizon — no per-byte events — while the backlog
//! depth doubles as the queue-occupancy signal for tail-drop and LPI
//! decisions.

use std::sync::Arc;

use holdcsim_des::time::{SimDuration, SimTime};

use crate::ids::{LinkId, NodeId, PacketId};
use crate::routing::Route;
use crate::topology::Topology;

/// Default Ethernet MTU payload used when packetizing task transfers.
pub const DEFAULT_MTU_BYTES: u64 = 1_500;

/// A packet traversing a precomputed route.
///
/// The route is shared (`Arc`): every packet of a transfer — and, with
/// the router's route cache, every transfer along the same cached path —
/// points at one allocation instead of cloning the hop vectors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Unique id.
    pub id: PacketId,
    /// Payload size in bytes.
    pub bytes: u64,
    /// The route this packet follows.
    pub route: Arc<Route>,
    /// Next hop index into `route.links` (0 = about to leave the source).
    pub hop: usize,
}

impl Packet {
    /// Creates a packet at the head of its route.
    pub fn new(id: PacketId, bytes: u64, route: Arc<Route>) -> Self {
        Packet {
            id,
            bytes,
            route,
            hop: 0,
        }
    }

    /// The node currently holding the packet.
    pub fn current_node(&self) -> NodeId {
        self.route.nodes[self.hop]
    }

    /// The link the packet will traverse next, or `None` at the destination.
    pub fn next_link(&self) -> Option<LinkId> {
        self.route.links.get(self.hop).copied()
    }

    /// `true` once the packet has reached its destination.
    pub fn at_destination(&self) -> bool {
        self.hop == self.route.links.len()
    }
}

/// Splits `bytes` into MTU-sized segments (last may be short).
///
/// # Panics
///
/// Panics if `mtu == 0`.
pub fn segment(bytes: u64, mtu: u64) -> Vec<u64> {
    assert!(mtu > 0, "mtu must be positive");
    if bytes == 0 {
        return Vec::new();
    }
    let full = bytes / mtu;
    let tail = bytes % mtu;
    let mut v = vec![mtu; full as usize];
    if tail > 0 {
        v.push(tail);
    }
    v
}

/// Outcome of a transmission attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxOutcome {
    /// The packet will arrive at the far end at this instant.
    Forwarded {
        /// Arrival time at the next node (departure + propagation).
        arrives_at: SimTime,
    },
    /// The egress queue overflowed; the packet is dropped.
    Dropped,
}

/// Per-direction egress-port state.
#[derive(Debug, Clone, Copy)]
struct Egress {
    busy_until: SimTime,
}

/// The packet-level network: per-port transmission horizons and statistics.
///
/// # Examples
///
/// ```
/// use holdcsim_network::packet::{segment, PacketNet, TxOutcome};
/// use holdcsim_network::routing::Router;
/// use holdcsim_network::topologies::{star, LinkSpec};
/// use holdcsim_des::time::SimTime;
///
/// let built = star(2, LinkSpec::gigabit());
/// let mut router = Router::new();
/// let route = router
///     .route(&built.topology, built.hosts[0], built.hosts[1], 0)
///     .unwrap();
/// let mut net = PacketNet::new(&built.topology, 512 * 1024);
/// let out = net.transmit(SimTime::ZERO, &built.topology, route.links[0],
///                        built.hosts[0], 1_500);
/// assert!(matches!(out, TxOutcome::Forwarded { .. }));
/// ```
#[derive(Debug)]
pub struct PacketNet {
    /// Two egress ports per link: index `2*link` is the A-side egress,
    /// `2*link + 1` the B-side.
    egress: Vec<Egress>,
    buffer_bytes: u64,
    forwarded: u64,
    dropped: u64,
}

impl PacketNet {
    /// Creates a packet network with `buffer_bytes` of egress buffering per
    /// port.
    pub fn new(topo: &Topology, buffer_bytes: u64) -> Self {
        PacketNet {
            egress: vec![
                Egress {
                    busy_until: SimTime::ZERO
                };
                topo.links().len() * 2
            ],
            buffer_bytes,
            forwarded: 0,
            dropped: 0,
        }
    }

    /// Attempts to transmit `bytes` from `from` over `link` at `now`.
    ///
    /// On success the returned arrival instant accounts for queueing behind
    /// the port's backlog, serialization at the link rate, and propagation
    /// latency. On overflow the packet is dropped (tail-drop).
    ///
    /// # Panics
    ///
    /// Panics if `link` does not touch `from`.
    pub fn transmit(
        &mut self,
        now: SimTime,
        topo: &Topology,
        link: LinkId,
        from: NodeId,
        bytes: u64,
    ) -> TxOutcome {
        let l = topo.link(link);
        let from_a = if l.a.node == from {
            true
        } else if l.b.node == from {
            false
        } else {
            panic!("link {link} does not touch {from}");
        };
        let idx = link.0 as usize * 2 + usize::from(!from_a);
        let egress = &mut self.egress[idx];

        // Backlog currently queued (in bytes) behind this packet.
        let backlog = egress
            .busy_until
            .saturating_duration_since(now)
            .as_secs_f64();
        let queued_bytes = backlog * l.rate_bps as f64 / 8.0;
        if queued_bytes + bytes as f64 > self.buffer_bytes as f64 {
            self.dropped += 1;
            return TxOutcome::Dropped;
        }

        let start = egress.busy_until.max(now);
        let tx = SimDuration::from_secs_f64(bytes as f64 * 8.0 / l.rate_bps as f64);
        egress.busy_until = start + tx;
        self.forwarded += 1;
        TxOutcome::Forwarded {
            arrives_at: egress.busy_until + l.latency,
        }
    }

    /// The instant the egress of `link` on `from`'s side drains, given no
    /// further traffic (`now` if already idle).
    pub fn egress_idle_at(
        &self,
        topo: &Topology,
        link: LinkId,
        from: NodeId,
        now: SimTime,
    ) -> SimTime {
        let l = topo.link(link);
        let from_a = l.a.node == from;
        let idx = link.0 as usize * 2 + usize::from(!from_a);
        self.egress[idx].busy_until.max(now)
    }

    /// Packets forwarded successfully.
    pub fn forwarded(&self) -> u64 {
        self.forwarded
    }

    /// Packets dropped to tail-drop.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Drop fraction over all attempts (0 if none).
    pub fn drop_rate(&self) -> f64 {
        let total = self.forwarded + self.dropped;
        if total == 0 {
            0.0
        } else {
            self.dropped as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::Router;
    use crate::topologies::{star, LinkSpec};

    fn setup() -> (crate::topology::Topology, Vec<NodeId>, Route) {
        let built = star(2, LinkSpec::gigabit());
        let mut router = Router::new();
        let route = router
            .route(&built.topology, built.hosts[0], built.hosts[1], 0)
            .unwrap();
        (built.topology, built.hosts, route)
    }

    #[test]
    fn segment_splits_at_mtu() {
        assert_eq!(segment(0, 1500), Vec::<u64>::new());
        assert_eq!(segment(1500, 1500), vec![1500]);
        assert_eq!(segment(3100, 1500), vec![1500, 1500, 100]);
    }

    #[test]
    fn serialization_plus_propagation() {
        let (topo, hosts, route) = setup();
        let mut net = PacketNet::new(&topo, 1 << 20);
        // 1500 B at 1 Gb/s = 12 µs; + 5 µs propagation.
        let out = net.transmit(SimTime::ZERO, &topo, route.links[0], hosts[0], 1500);
        match out {
            TxOutcome::Forwarded { arrives_at } => {
                assert_eq!(arrives_at, SimTime::from_nanos(12_000 + 5_000));
            }
            TxOutcome::Dropped => panic!("dropped"),
        }
    }

    #[test]
    fn back_to_back_packets_queue() {
        let (topo, hosts, route) = setup();
        let mut net = PacketNet::new(&topo, 1 << 20);
        let l = route.links[0];
        let a1 = match net.transmit(SimTime::ZERO, &topo, l, hosts[0], 1500) {
            TxOutcome::Forwarded { arrives_at } => arrives_at,
            _ => panic!(),
        };
        let a2 = match net.transmit(SimTime::ZERO, &topo, l, hosts[0], 1500) {
            TxOutcome::Forwarded { arrives_at } => arrives_at,
            _ => panic!(),
        };
        // Second packet serializes after the first: +12 µs.
        assert_eq!(a2.as_nanos() - a1.as_nanos(), 12_000);
        assert_eq!(net.forwarded(), 2);
    }

    #[test]
    fn directions_are_independent() {
        let (topo, hosts, route) = setup();
        let mut net = PacketNet::new(&topo, 1 << 20);
        let l = route.links[0];
        net.transmit(SimTime::ZERO, &topo, l, hosts[0], 1500);
        // Reverse direction (switch -> host0) is not delayed by the forward tx.
        let sw = topo.link(l).opposite(hosts[0]);
        match net.transmit(SimTime::ZERO, &topo, l, sw, 1500) {
            TxOutcome::Forwarded { arrives_at } => {
                assert_eq!(arrives_at, SimTime::from_nanos(17_000));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn tail_drop_on_overflow() {
        let (topo, hosts, route) = setup();
        // Tiny 3 KB buffer: third 1500 B packet overflows.
        let mut net = PacketNet::new(&topo, 3_000);
        let l = route.links[0];
        assert!(matches!(
            net.transmit(SimTime::ZERO, &topo, l, hosts[0], 1500),
            TxOutcome::Forwarded { .. }
        ));
        assert!(matches!(
            net.transmit(SimTime::ZERO, &topo, l, hosts[0], 1500),
            TxOutcome::Forwarded { .. }
        ));
        assert_eq!(
            net.transmit(SimTime::ZERO, &topo, l, hosts[0], 1500),
            TxOutcome::Dropped
        );
        assert_eq!(net.dropped(), 1);
        assert!(net.drop_rate() > 0.3 && net.drop_rate() < 0.34);
    }

    #[test]
    fn queue_drains_over_time() {
        let (topo, hosts, route) = setup();
        let mut net = PacketNet::new(&topo, 3_000);
        let l = route.links[0];
        net.transmit(SimTime::ZERO, &topo, l, hosts[0], 1500);
        net.transmit(SimTime::ZERO, &topo, l, hosts[0], 1500);
        // After both serialize (24 µs), the port is free again.
        let later = SimTime::from_nanos(24_000);
        assert_eq!(net.egress_idle_at(&topo, l, hosts[0], later), later);
        assert!(matches!(
            net.transmit(later, &topo, l, hosts[0], 1500),
            TxOutcome::Forwarded { .. }
        ));
    }

    #[test]
    fn packet_walks_its_route() {
        let (_, _, route) = setup();
        let mut p = Packet::new(PacketId(1), 1500, Arc::new(route.clone()));
        assert_eq!(p.current_node(), route.nodes[0]);
        assert!(!p.at_destination());
        assert_eq!(p.next_link(), Some(route.links[0]));
        p.hop += 1;
        assert_eq!(p.next_link(), Some(route.links[1]));
        p.hop += 1;
        assert!(p.at_destination());
        assert_eq!(p.next_link(), None);
    }
}
