//! The topology graph: hosts, switches, and links (§III-B).
//!
//! A [`Topology`] is an undirected multigraph. Hosts are server NIC
//! endpoints; switches carry line cards and ports. Builders for the
//! paper's named topologies (fat tree, flattened butterfly, BCube,
//! CamCube, star) live in [`crate::topologies`].

use holdcsim_des::time::SimDuration;

use crate::ids::{LinkId, NodeId, PortRef};

/// What a node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// A server endpoint (the server itself is modeled in `holdcsim-server`).
    Host,
    /// A switch with `linecards × ports_per_card` ports.
    Switch {
        /// Number of line cards.
        linecards: u32,
        /// Ports per line card.
        ports_per_card: u32,
    },
}

impl NodeKind {
    /// `true` for switches.
    pub fn is_switch(self) -> bool {
        matches!(self, NodeKind::Switch { .. })
    }

    /// Total port capacity of the node (hosts have 1 by convention,
    /// CamCube hosts more — tracked by links, not kinds).
    pub fn port_capacity(self) -> u32 {
        match self {
            NodeKind::Host => u32::MAX, // hosts may multi-home (BCube, CamCube)
            NodeKind::Switch {
                linecards,
                ports_per_card,
            } => linecards * ports_per_card,
        }
    }
}

/// An undirected link joining two node ports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Link {
    /// One endpoint.
    pub a: PortRef,
    /// The other endpoint.
    pub b: PortRef,
    /// Capacity in bits per second (shared by both directions in the flow
    /// model; each direction gets the full rate in the packet model, as in
    /// full-duplex Ethernet).
    pub rate_bps: u64,
    /// Propagation + processing latency per traversal.
    pub latency: SimDuration,
}

impl Link {
    /// The endpoint on `node`, if the link touches it.
    pub fn endpoint_on(&self, node: NodeId) -> Option<PortRef> {
        if self.a.node == node {
            Some(self.a)
        } else if self.b.node == node {
            Some(self.b)
        } else {
            None
        }
    }

    /// The node opposite `node` over this link.
    ///
    /// # Panics
    ///
    /// Panics if the link does not touch `node`.
    pub fn opposite(&self, node: NodeId) -> NodeId {
        if self.a.node == node {
            self.b.node
        } else if self.b.node == node {
            self.a.node
        } else {
            panic!("link does not touch {node}")
        }
    }
}

/// Errors from [`TopologyBuilder`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// A link referenced a node that does not exist.
    UnknownNode(NodeId),
    /// A switch ran out of ports.
    PortsExhausted(NodeId),
    /// A link would connect a node to itself.
    SelfLink(NodeId),
}

impl std::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologyError::UnknownNode(n) => write!(f, "unknown node {n}"),
            TopologyError::PortsExhausted(n) => write!(f, "no free ports left on {n}"),
            TopologyError::SelfLink(n) => write!(f, "link would connect {n} to itself"),
        }
    }
}

impl std::error::Error for TopologyError {}

/// An immutable, validated network topology.
///
/// # Examples
///
/// ```
/// use holdcsim_network::topology::{NodeKind, Topology};
/// use holdcsim_des::time::SimDuration;
///
/// # fn main() -> Result<(), holdcsim_network::topology::TopologyError> {
/// let mut b = Topology::builder();
/// let sw = b.add_switch(1, 4);
/// let h1 = b.add_host();
/// let h2 = b.add_host();
/// b.link(sw, h1, 1_000_000_000, SimDuration::from_micros(5))?;
/// b.link(sw, h2, 1_000_000_000, SimDuration::from_micros(5))?;
/// let topo = b.build();
/// assert_eq!(topo.hosts().len(), 2);
/// assert_eq!(topo.switches().len(), 1);
/// assert_eq!(topo.neighbors(h1).count(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Topology {
    kinds: Vec<NodeKind>,
    links: Vec<Link>,
    adjacency: Vec<Vec<(NodeId, LinkId)>>,
    hosts: Vec<NodeId>,
    switches: Vec<NodeId>,
}

impl Topology {
    /// Starts building a topology.
    pub fn builder() -> TopologyBuilder {
        TopologyBuilder {
            kinds: Vec::new(),
            links: Vec::new(),
            used_ports: Vec::new(),
        }
    }

    /// Number of nodes (hosts + switches).
    pub fn node_count(&self) -> usize {
        self.kinds.len()
    }

    /// The kind of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn kind(&self, node: NodeId) -> NodeKind {
        self.kinds[node.0 as usize]
    }

    /// All host nodes, in insertion order (stable: builders create hosts in
    /// server-id order so `hosts()[i]` is server *i*'s NIC).
    pub fn hosts(&self) -> &[NodeId] {
        &self.hosts
    }

    /// All switch nodes, in insertion order.
    pub fn switches(&self) -> &[NodeId] {
        &self.switches
    }

    /// All links.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// The link with this id.
    ///
    /// # Panics
    ///
    /// Panics if `link` is out of range.
    pub fn link(&self, link: LinkId) -> &Link {
        &self.links[link.0 as usize]
    }

    /// Neighbors of `node` with the connecting link.
    pub fn neighbors(&self, node: NodeId) -> impl Iterator<Item = (NodeId, LinkId)> + '_ {
        self.adjacency[node.0 as usize].iter().copied()
    }

    /// Degree of `node`.
    pub fn degree(&self, node: NodeId) -> usize {
        self.adjacency[node.0 as usize].len()
    }

    /// `true` if every node can reach every other node.
    pub fn is_connected(&self) -> bool {
        if self.kinds.is_empty() {
            return true;
        }
        let mut seen = vec![false; self.kinds.len()];
        let mut stack = vec![NodeId(0)];
        seen[0] = true;
        let mut count = 1;
        while let Some(n) = stack.pop() {
            for (next, _) in self.neighbors(n) {
                if !seen[next.0 as usize] {
                    seen[next.0 as usize] = true;
                    count += 1;
                    stack.push(next);
                }
            }
        }
        count == self.kinds.len()
    }
}

/// Builder for [`Topology`].
#[derive(Debug, Clone)]
pub struct TopologyBuilder {
    kinds: Vec<NodeKind>,
    links: Vec<Link>,
    used_ports: Vec<u32>,
}

impl TopologyBuilder {
    /// Adds a host node, returning its id.
    pub fn add_host(&mut self) -> NodeId {
        let id = NodeId(self.kinds.len() as u32);
        self.kinds.push(NodeKind::Host);
        self.used_ports.push(0);
        id
    }

    /// Adds `n` hosts, returning their ids in order.
    pub fn add_hosts(&mut self, n: usize) -> Vec<NodeId> {
        (0..n).map(|_| self.add_host()).collect()
    }

    /// Adds a switch with `linecards × ports_per_card` ports.
    pub fn add_switch(&mut self, linecards: u32, ports_per_card: u32) -> NodeId {
        let id = NodeId(self.kinds.len() as u32);
        self.kinds.push(NodeKind::Switch {
            linecards,
            ports_per_card,
        });
        self.used_ports.push(0);
        id
    }

    /// Connects `a` and `b` with a link, allocating the next free port on
    /// each side.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError`] if either node is unknown, a switch has no
    /// free ports, or `a == b`.
    pub fn link(
        &mut self,
        a: NodeId,
        b: NodeId,
        rate_bps: u64,
        latency: SimDuration,
    ) -> Result<LinkId, TopologyError> {
        if a == b {
            return Err(TopologyError::SelfLink(a));
        }
        for n in [a, b] {
            let idx = n.0 as usize;
            if idx >= self.kinds.len() {
                return Err(TopologyError::UnknownNode(n));
            }
            if self.used_ports[idx] >= self.kinds[idx].port_capacity() {
                return Err(TopologyError::PortsExhausted(n));
            }
        }
        let pa = PortRef {
            node: a,
            port: self.used_ports[a.0 as usize],
        };
        let pb = PortRef {
            node: b,
            port: self.used_ports[b.0 as usize],
        };
        self.used_ports[a.0 as usize] += 1;
        self.used_ports[b.0 as usize] += 1;
        let id = LinkId(self.links.len() as u32);
        self.links.push(Link {
            a: pa,
            b: pb,
            rate_bps,
            latency,
        });
        Ok(id)
    }

    /// Finalizes the topology, computing adjacency.
    pub fn build(self) -> Topology {
        let mut adjacency = vec![Vec::new(); self.kinds.len()];
        for (i, l) in self.links.iter().enumerate() {
            adjacency[l.a.node.0 as usize].push((l.b.node, LinkId(i as u32)));
            adjacency[l.b.node.0 as usize].push((l.a.node, LinkId(i as u32)));
        }
        let mut hosts = Vec::new();
        let mut switches = Vec::new();
        for (i, k) in self.kinds.iter().enumerate() {
            match k {
                NodeKind::Host => hosts.push(NodeId(i as u32)),
                NodeKind::Switch { .. } => switches.push(NodeId(i as u32)),
            }
        }
        Topology {
            kinds: self.kinds,
            links: self.links,
            adjacency,
            hosts,
            switches,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GBE: u64 = 1_000_000_000;

    fn lat() -> SimDuration {
        SimDuration::from_micros(5)
    }

    #[test]
    fn star_builds_and_connects() {
        let mut b = Topology::builder();
        let sw = b.add_switch(1, 8);
        let hosts = b.add_hosts(4);
        for &h in &hosts {
            b.link(sw, h, GBE, lat()).unwrap();
        }
        let t = b.build();
        assert_eq!(t.node_count(), 5);
        assert_eq!(t.degree(sw), 4);
        assert!(t.is_connected());
        assert!(t.kind(sw).is_switch());
        assert!(!t.kind(hosts[0]).is_switch());
    }

    #[test]
    fn ports_allocate_densely_per_node() {
        let mut b = Topology::builder();
        let sw = b.add_switch(2, 2);
        let hosts = b.add_hosts(3);
        let mut port_ids = Vec::new();
        for &h in &hosts {
            let l = b.link(sw, h, GBE, lat()).unwrap();
            port_ids.push(l);
        }
        let t = b.build();
        let switch_ports: Vec<u32> = t
            .links()
            .iter()
            .map(|l| l.endpoint_on(sw).unwrap().port)
            .collect();
        assert_eq!(switch_ports, vec![0, 1, 2]);
    }

    #[test]
    fn switch_ports_exhaust() {
        let mut b = Topology::builder();
        let sw = b.add_switch(1, 1);
        let h1 = b.add_host();
        let h2 = b.add_host();
        b.link(sw, h1, GBE, lat()).unwrap();
        assert_eq!(
            b.link(sw, h2, GBE, lat()).unwrap_err(),
            TopologyError::PortsExhausted(sw)
        );
    }

    #[test]
    fn self_link_rejected() {
        let mut b = Topology::builder();
        let h = b.add_host();
        assert_eq!(
            b.link(h, h, GBE, lat()).unwrap_err(),
            TopologyError::SelfLink(h)
        );
    }

    #[test]
    fn unknown_node_rejected() {
        let mut b = Topology::builder();
        let h = b.add_host();
        assert_eq!(
            b.link(h, NodeId(99), GBE, lat()).unwrap_err(),
            TopologyError::UnknownNode(NodeId(99))
        );
    }

    #[test]
    fn disconnected_graph_detected() {
        let mut b = Topology::builder();
        b.add_host();
        b.add_host();
        let t = b.build();
        assert!(!t.is_connected());
    }

    #[test]
    fn link_opposite_and_endpoint() {
        let mut b = Topology::builder();
        let a = b.add_host();
        let c = b.add_host();
        b.link(a, c, GBE, lat()).unwrap();
        let t = b.build();
        let l = t.link(LinkId(0));
        assert_eq!(l.opposite(a), c);
        assert_eq!(l.opposite(c), a);
        assert_eq!(l.endpoint_on(a).unwrap().node, a);
        assert_eq!(l.endpoint_on(NodeId(42)), None);
    }
}
