//! Identifiers for network entities.

use std::fmt;

/// A node in the topology graph: either a host (server NIC) or a switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// An undirected link between two nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId(pub u32);

/// A port on a specific node (dense per-node index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PortRef {
    /// The owning node.
    pub node: NodeId,
    /// Port index on that node (0-based, dense).
    pub port: u32,
}

/// A network flow (one DAG edge's data transfer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId(pub u64);

/// A packet in the packet-level communication model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PacketId(pub u64);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

impl fmt::Display for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

impl fmt::Display for PacketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for PortRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.node, self.port)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(
            PortRef {
                node: NodeId(3),
                port: 2
            }
            .to_string(),
            "n3:2"
        );
        assert_eq!(FlowId(9).to_string(), "f9");
    }
}
