//! Builders for the paper's named topologies (§III-B): fat tree and
//! flattened butterfly (switch-only), CamCube (server-only), BCube
//! (hybrid), and star (validation setup of §V-B).

use holdcsim_des::time::SimDuration;

use crate::ids::NodeId;
use crate::topology::Topology;

/// Uniform link parameters used by the topology builders.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkSpec {
    /// Link capacity in bits per second.
    pub rate_bps: u64,
    /// Per-traversal latency.
    pub latency: SimDuration,
}

impl LinkSpec {
    /// 1 GbE with 5 µs latency.
    pub fn gigabit() -> Self {
        LinkSpec {
            rate_bps: 1_000_000_000,
            latency: SimDuration::from_micros(5),
        }
    }

    /// 10 GbE with 2 µs latency.
    pub fn ten_gigabit() -> Self {
        LinkSpec {
            rate_bps: 10_000_000_000,
            latency: SimDuration::from_micros(2),
        }
    }
}

impl Default for LinkSpec {
    fn default() -> Self {
        Self::gigabit()
    }
}

/// A built topology together with role metadata the schedulers need.
#[derive(Debug, Clone)]
pub struct BuiltTopology {
    /// The graph.
    pub topology: Topology,
    /// Host nodes in server-id order (`hosts[i]` is server *i*'s NIC).
    pub hosts: Vec<NodeId>,
    /// Human-readable name ("fat-tree(k=4)" etc.).
    pub name: String,
}

/// Builds a `k`-ary fat tree (Al-Fares et al. \[8\]): `k` pods of `k/2` edge
/// and `k/2` aggregation switches plus `(k/2)²` core switches, hosting
/// `k³/4` servers at full bisection bandwidth. This is the topology of the
/// paper's Fig. 10.
///
/// # Panics
///
/// Panics if `k` is odd or zero.
pub fn fat_tree(k: usize, link: LinkSpec) -> BuiltTopology {
    assert!(k > 0 && k.is_multiple_of(2), "fat tree requires even k");
    let half = k / 2;
    let mut b = Topology::builder();

    // Hosts first so host index == server id.
    let n_hosts = k * k * k / 4;
    let hosts = b.add_hosts(n_hosts);

    // Edge and aggregation switches per pod; k ports each (one linecard).
    let mut edge = Vec::with_capacity(k * half);
    let mut agg = Vec::with_capacity(k * half);
    for _pod in 0..k {
        for _ in 0..half {
            edge.push(b.add_switch(1, k as u32));
        }
        for _ in 0..half {
            agg.push(b.add_switch(1, k as u32));
        }
    }
    // Core switches.
    let cores: Vec<NodeId> = (0..half * half)
        .map(|_| b.add_switch(1, k as u32))
        .collect();

    // Hosts to edge switches: each edge switch serves k/2 hosts.
    for pod in 0..k {
        for e in 0..half {
            let esw = edge[pod * half + e];
            for h in 0..half {
                let host = hosts[pod * half * half + e * half + h];
                b.link(esw, host, link.rate_bps, link.latency)
                    .expect("fat-tree host link");
            }
            // Edge to aggregation within the pod.
            for a in 0..half {
                let asw = agg[pod * half + a];
                b.link(esw, asw, link.rate_bps, link.latency)
                    .expect("fat-tree pod link");
            }
        }
        // Aggregation to core: agg switch a connects to cores a*half..(a+1)*half.
        for a in 0..half {
            let asw = agg[pod * half + a];
            for c in 0..half {
                let core = cores[a * half + c];
                b.link(asw, core, link.rate_bps, link.latency)
                    .expect("fat-tree core link");
            }
        }
    }

    BuiltTopology {
        topology: b.build(),
        hosts,
        name: format!("fat-tree(k={k})"),
    }
}

/// Builds a 2-D flattened butterfly (Kim et al. \[34\]): a `k × k` grid of
/// switches, fully connected along each row and each column, with
/// `hosts_per_switch` servers per switch.
///
/// # Panics
///
/// Panics if `k == 0` or `hosts_per_switch == 0`.
pub fn flattened_butterfly(k: usize, hosts_per_switch: usize, link: LinkSpec) -> BuiltTopology {
    assert!(k > 0, "flattened butterfly requires k > 0");
    assert!(hosts_per_switch > 0, "need at least one host per switch");
    let mut b = Topology::builder();
    let hosts = b.add_hosts(k * k * hosts_per_switch);
    let ports = (hosts_per_switch + 2 * (k - 1)) as u32;
    let switches: Vec<NodeId> = (0..k * k).map(|_| b.add_switch(1, ports)).collect();

    for r in 0..k {
        for c in 0..k {
            let sw = switches[r * k + c];
            for h in 0..hosts_per_switch {
                let host = hosts[(r * k + c) * hosts_per_switch + h];
                b.link(sw, host, link.rate_bps, link.latency)
                    .expect("fb host link");
            }
            // Row links (to the right) and column links (downward) once each.
            for c2 in (c + 1)..k {
                b.link(sw, switches[r * k + c2], link.rate_bps, link.latency)
                    .expect("fb row link");
            }
            for r2 in (r + 1)..k {
                b.link(sw, switches[r2 * k + c], link.rate_bps, link.latency)
                    .expect("fb column link");
            }
        }
    }

    BuiltTopology {
        topology: b.build(),
        hosts,
        name: format!("flattened-butterfly(k={k},h={hosts_per_switch})"),
    }
}

/// Builds a BCube(n, levels) (Guo et al. \[26\]): a hybrid server-centric
/// network with `n^(levels+1)` hosts and `(levels+1) · n^levels` switches
/// of `n` ports each. `BCube(n, 0)` is `n` hosts on one switch;
/// `BCube(n, l)` joins `n` copies of `BCube(n, l-1)` with a new switch
/// layer.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn bcube(n: usize, levels: usize, link: LinkSpec) -> BuiltTopology {
    assert!(n >= 2, "BCube requires n >= 2");
    let n_hosts = n.pow(levels as u32 + 1);
    let mut b = Topology::builder();
    let hosts = b.add_hosts(n_hosts);

    // Level l has n^levels switches; switch j at level l connects hosts
    // whose index matches j in all digits except digit l (base-n indexing).
    for level in 0..=levels {
        let n_switches = n.pow(levels as u32);
        for j in 0..n_switches {
            let sw = b.add_switch(1, n as u32);
            // Expand j (a (levels)-digit base-n number) into a host index by
            // inserting digit d at position `level`.
            let low_mod = n.pow(level as u32);
            let low = j % low_mod;
            let high = j / low_mod;
            for d in 0..n {
                let host_idx = high * low_mod * n + d * low_mod + low;
                b.link(sw, hosts[host_idx], link.rate_bps, link.latency)
                    .expect("bcube link");
            }
        }
    }

    BuiltTopology {
        topology: b.build(),
        hosts,
        name: format!("bcube(n={n},l={levels})"),
    }
}

/// Builds a CamCube (Abu-Libdeh et al. \[6\]): a 3-D torus of servers with
/// direct server-to-server links (no switches at all).
///
/// # Panics
///
/// Panics if any dimension is zero.
pub fn camcube(x: usize, y: usize, z: usize, link: LinkSpec) -> BuiltTopology {
    assert!(
        x > 0 && y > 0 && z > 0,
        "CamCube dimensions must be positive"
    );
    let mut b = Topology::builder();
    let hosts = b.add_hosts(x * y * z);
    let idx = |i: usize, j: usize, k: usize| hosts[(i * y + j) * z + k];

    // Wrap-around neighbor links in each dimension, added once per pair.
    for i in 0..x {
        for j in 0..y {
            for k in 0..z {
                if x > 1 {
                    let ni = (i + 1) % x;
                    if ni != i && (i + 1 < x || x > 2) {
                        b.link(idx(i, j, k), idx(ni, j, k), link.rate_bps, link.latency)
                            .expect("camcube x link");
                    }
                }
                if y > 1 {
                    let nj = (j + 1) % y;
                    if nj != j && (j + 1 < y || y > 2) {
                        b.link(idx(i, j, k), idx(i, nj, k), link.rate_bps, link.latency)
                            .expect("camcube y link");
                    }
                }
                if z > 1 {
                    let nk = (k + 1) % z;
                    if nk != k && (k + 1 < z || z > 2) {
                        b.link(idx(i, j, k), idx(i, j, nk), link.rate_bps, link.latency)
                            .expect("camcube z link");
                    }
                }
            }
        }
    }

    BuiltTopology {
        topology: b.build(),
        hosts,
        name: format!("camcube({x}x{y}x{z})"),
    }
}

/// Builds a star: `n_hosts` servers on one switch (the §V-B validation
/// setup uses 24 hosts on a Cisco WS-C2960-24-S).
///
/// # Panics
///
/// Panics if `n_hosts == 0`.
pub fn star(n_hosts: usize, link: LinkSpec) -> BuiltTopology {
    assert!(n_hosts > 0, "star requires at least one host");
    let mut b = Topology::builder();
    let hosts = b.add_hosts(n_hosts);
    let sw = b.add_switch(1, n_hosts as u32);
    for &h in &hosts {
        b.link(sw, h, link.rate_bps, link.latency)
            .expect("star link");
    }
    BuiltTopology {
        topology: b.build(),
        hosts,
        name: format!("star(n={n_hosts})"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fat_tree_k4_counts_match_al_fares() {
        let t = fat_tree(4, LinkSpec::gigabit());
        // k=4: 16 hosts, 8 edge + 8 agg + 4 core = 20 switches.
        assert_eq!(t.hosts.len(), 16);
        assert_eq!(t.topology.switches().len(), 20);
        assert!(t.topology.is_connected());
        // Each edge switch: 2 hosts + 2 aggs = 4 used ports = k.
        for &sw in t.topology.switches() {
            assert!(t.topology.degree(sw) <= 4);
        }
        // Link count: hosts (16) + edge-agg (k * half*half = 16) + agg-core (16).
        assert_eq!(t.topology.links().len(), 48);
    }

    #[test]
    fn fat_tree_k8_scales() {
        let t = fat_tree(8, LinkSpec::ten_gigabit());
        assert_eq!(t.hosts.len(), 128);
        assert_eq!(t.topology.switches().len(), 80);
        assert!(t.topology.is_connected());
    }

    #[test]
    #[should_panic(expected = "even k")]
    fn fat_tree_rejects_odd_k() {
        let _ = fat_tree(3, LinkSpec::gigabit());
    }

    #[test]
    fn flattened_butterfly_full_row_column_mesh() {
        let t = flattened_butterfly(3, 2, LinkSpec::gigabit());
        assert_eq!(t.hosts.len(), 18);
        assert_eq!(t.topology.switches().len(), 9);
        assert!(t.topology.is_connected());
        // Every switch: 2 hosts + 2 row + 2 column neighbors = degree 6.
        for &sw in t.topology.switches() {
            assert_eq!(t.topology.degree(sw), 6);
        }
    }

    #[test]
    fn bcube_n2_l1_structure() {
        // BCube(2,1): 4 hosts, 4 switches of 2 ports, each host 2-homed.
        let t = bcube(2, 1, LinkSpec::gigabit());
        assert_eq!(t.hosts.len(), 4);
        assert_eq!(t.topology.switches().len(), 4);
        assert!(t.topology.is_connected());
        for &h in &t.hosts {
            assert_eq!(t.topology.degree(h), 2);
        }
    }

    #[test]
    fn bcube_n4_l1_structure() {
        let t = bcube(4, 1, LinkSpec::gigabit());
        assert_eq!(t.hosts.len(), 16);
        assert_eq!(t.topology.switches().len(), 8);
        assert!(t.topology.is_connected());
    }

    #[test]
    fn camcube_is_server_only_torus() {
        let t = camcube(3, 3, 3, LinkSpec::gigabit());
        assert_eq!(t.hosts.len(), 27);
        assert!(t.topology.switches().is_empty());
        assert!(t.topology.is_connected());
        // 3-D torus with all dims = 3: every host has degree 6.
        for &h in &t.hosts {
            assert_eq!(t.topology.degree(h), 6);
        }
    }

    #[test]
    fn camcube_degenerate_dims() {
        let t = camcube(2, 1, 1, LinkSpec::gigabit());
        assert_eq!(t.hosts.len(), 2);
        assert!(t.topology.is_connected());
    }

    #[test]
    fn star_validation_setup() {
        let t = star(24, LinkSpec::gigabit());
        assert_eq!(t.hosts.len(), 24);
        assert_eq!(t.topology.switches().len(), 1);
        assert!(t.topology.is_connected());
        assert_eq!(t.topology.degree(t.topology.switches()[0]), 24);
    }
}
