//! Switch devices: per-port and per-line-card power-state machines with
//! LPI and ALR mechanisms (§III-B), built on `holdcsim-power`.

use holdcsim_des::stats::TimeWeighted;
use holdcsim_des::time::{SimDuration, SimTime};
use holdcsim_power::machine::PowerStateMachine;
use holdcsim_power::states::{LineCardPowerState, PortPowerState};
use holdcsim_power::switch_profile::SwitchPowerProfile;

use crate::ids::NodeId;

/// One switch's power model: chassis + line cards + ports.
///
/// Wake/sleep timing model: port LPI exit and line-card wake latencies are
/// *charged to the traffic* (returned from [`SwitchDevice::wake_for_tx`] so
/// the caller delays the packet/flow) while the state flips immediately for
/// power accounting. At microsecond/millisecond scales this misattributes a
/// negligible sliver of energy and keeps every transition single-event.
///
/// # Examples
///
/// ```
/// use holdcsim_network::switch::SwitchDevice;
/// use holdcsim_network::ids::NodeId;
/// use holdcsim_power::switch_profile::SwitchPowerProfile;
/// use holdcsim_des::time::SimTime;
///
/// let profile = SwitchPowerProfile::cisco_ws_c2960_24s();
/// let sw = SwitchDevice::new(SimTime::ZERO, NodeId(0), 1, 24, profile);
/// // All ports active: 14.7 + 24 * 0.23.
/// assert!((sw.power_w() - 20.22).abs() < 1e-9);
/// ```
#[derive(Debug)]
pub struct SwitchDevice {
    node: NodeId,
    profile: SwitchPowerProfile,
    ports_per_card: u32,
    chassis: TimeWeighted,
    cards: Vec<PowerStateMachine<LineCardPowerState>>,
    ports: Vec<PowerStateMachine<PortPowerState>>,
    /// Per-port negotiated rate (None = full rate) for ALR.
    port_rates: Vec<Option<u64>>,
    /// Last time each port finished transmitting (LPI-policy input).
    last_tx_end: Vec<SimTime>,
    lpi_entries: u64,
    card_sleeps: u64,
}

impl SwitchDevice {
    /// Creates a switch with all cards and ports active.
    pub fn new(
        now: SimTime,
        node: NodeId,
        linecards: u32,
        ports_per_card: u32,
        profile: SwitchPowerProfile,
    ) -> Self {
        let n_ports = (linecards * ports_per_card) as usize;
        let cards = (0..linecards)
            .map(|_| {
                PowerStateMachine::new(now, LineCardPowerState::Active, profile.linecard.active_w)
            })
            .collect();
        let ports = (0..n_ports)
            .map(|_| PowerStateMachine::new(now, PortPowerState::Active, profile.port.active_w))
            .collect();
        SwitchDevice {
            node,
            chassis: TimeWeighted::new(now, profile.chassis_w),
            profile,
            ports_per_card,
            cards,
            ports,
            port_rates: vec![None; n_ports],
            last_tx_end: vec![now; n_ports],
            lpi_entries: 0,
            card_sleeps: 0,
        }
    }

    /// The topology node this switch occupies.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The power profile this device was built with.
    pub fn profile(&self) -> &SwitchPowerProfile {
        &self.profile
    }

    /// Number of ports.
    pub fn port_count(&self) -> usize {
        self.ports.len()
    }

    /// Number of line cards.
    pub fn card_count(&self) -> usize {
        self.cards.len()
    }

    /// The line card carrying `port`.
    pub fn card_of(&self, port: u32) -> usize {
        (port / self.ports_per_card) as usize
    }

    /// Current state of `port`.
    pub fn port_state(&self, port: u32) -> PortPowerState {
        self.ports[port as usize]
            .steady()
            .expect("port transitions are instantaneous")
    }

    /// Current state of line card `card`.
    pub fn card_state(&self, card: usize) -> LineCardPowerState {
        self.cards[card]
            .steady()
            .expect("card transitions are instantaneous")
    }

    /// Ensures `port` (and its line card) can transmit at `now`, flipping
    /// them active and returning the wake latency to charge the traffic
    /// (zero when already active).
    pub fn wake_for_tx(&mut self, now: SimTime, port: u32) -> SimDuration {
        let mut delay = SimDuration::ZERO;
        let card = self.card_of(port);
        match self.card_state(card) {
            LineCardPowerState::Active => {}
            LineCardPowerState::Sleep | LineCardPowerState::Off => {
                delay += self.profile.linecard.wake_latency;
                self.cards[card].set_state(
                    now,
                    LineCardPowerState::Active,
                    self.profile.linecard.active_w,
                );
                self.refresh_chassis(now);
            }
        }
        // A port parked at a reduced ALR rate renegotiates back to full
        // speed; the switching time is approximated by the LPI exit latency
        // (both are PHY resynchronizations of the same order).
        if self.port_rates[port as usize].is_some() {
            delay += self.profile.port.lpi_exit;
            self.port_rates[port as usize] = None;
        }
        let active_w = self.active_port_power(port);
        match self.port_state(port) {
            PortPowerState::Active => {
                // Power may have changed if only the rate was restored.
                self.ports[port as usize].set_power(now, active_w);
            }
            PortPowerState::Lpi => {
                delay += self.profile.port.lpi_exit;
                self.ports[port as usize].set_state(now, PortPowerState::Active, active_w);
            }
            PortPowerState::Off => {
                // Re-enabling a disabled port: modeled like a card wake.
                delay += self.profile.linecard.wake_latency;
                self.ports[port as usize].set_state(now, PortPowerState::Active, active_w);
            }
        }
        delay
    }

    /// The wake latency [`wake_for_tx`](Self::wake_for_tx) *would* charge,
    /// without changing any state (the network-aware scheduler's cost probe).
    pub fn wake_cost(&self, port: u32) -> SimDuration {
        let mut delay = SimDuration::ZERO;
        match self.card_state(self.card_of(port)) {
            LineCardPowerState::Active => {}
            _ => delay += self.profile.linecard.wake_latency,
        }
        match self.port_state(port) {
            PortPowerState::Active => {}
            PortPowerState::Lpi => delay += self.profile.port.lpi_exit,
            PortPowerState::Off => delay += self.profile.linecard.wake_latency,
        }
        delay
    }

    /// Records that `port` finished a transmission at `tx_end` (the LPI
    /// controller's idle-clock input).
    pub fn note_tx_end(&mut self, port: u32, tx_end: SimTime) {
        let slot = &mut self.last_tx_end[port as usize];
        *slot = (*slot).max(tx_end);
    }

    /// When `port` last finished transmitting.
    pub fn last_tx_end(&self, port: u32) -> SimTime {
        self.last_tx_end[port as usize]
    }

    /// Puts `port` into LPI at `now` if it is active and has been idle since
    /// before `now` (callers check their hold-time policy first).
    /// Returns `true` if the port entered LPI.
    pub fn enter_lpi(&mut self, now: SimTime, port: u32) -> bool {
        if self.port_state(port) == PortPowerState::Active && self.last_tx_end[port as usize] <= now
        {
            self.ports[port as usize].set_state(now, PortPowerState::Lpi, self.profile.port.lpi_w);
            self.lpi_entries += 1;
            true
        } else {
            false
        }
    }

    /// Puts line card `card` to sleep at `now` if all its ports are in LPI
    /// or off. Returns `true` on success.
    pub fn sleep_card(&mut self, now: SimTime, card: usize) -> bool {
        let lo = card as u32 * self.ports_per_card;
        let hi = lo + self.ports_per_card;
        let all_idle = (lo..hi).all(|p| self.port_state(p) != PortPowerState::Active);
        if all_idle && self.card_state(card) == LineCardPowerState::Active {
            self.cards[card].set_state(
                now,
                LineCardPowerState::Sleep,
                self.profile.linecard.sleep_w,
            );
            self.card_sleeps += 1;
            self.refresh_chassis(now);
            true
        } else {
            false
        }
    }

    /// Drops the chassis to its sleep draw once every card sleeps (and
    /// restores it on the first card wake).
    fn refresh_chassis(&mut self, now: SimTime) {
        let any_active = self
            .cards
            .iter()
            .any(|c| c.steady() == Some(LineCardPowerState::Active));
        let w = if any_active {
            self.profile.chassis_w
        } else {
            self.profile.chassis_sleep_w
        };
        self.chassis.set(now, w);
    }

    /// Administratively disables `port` (state Off, zero power).
    pub fn port_off(&mut self, now: SimTime, port: u32) {
        self.ports[port as usize].set_state(now, PortPowerState::Off, 0.0);
    }

    /// Negotiates `port` down/up to `rate_bps` (ALR), adjusting active
    /// power. Pass `None` to restore the full rate.
    pub fn set_port_rate(&mut self, now: SimTime, port: u32, rate_bps: Option<u64>) {
        self.port_rates[port as usize] = rate_bps;
        if self.port_state(port) == PortPowerState::Active {
            let w = self.active_port_power(port);
            self.ports[port as usize].set_power(now, w);
        }
    }

    /// The negotiated ALR rate of `port`, if reduced.
    pub fn port_rate(&self, port: u32) -> Option<u64> {
        self.port_rates[port as usize]
    }

    /// Instantaneous switch power (chassis + cards + ports).
    pub fn power_w(&self) -> f64 {
        self.chassis.value()
            + self.cards.iter().map(|c| c.power_w()).sum::<f64>()
            + self.ports.iter().map(|p| p.power_w()).sum::<f64>()
    }

    /// Total energy consumed through `now`, in joules (chassis included).
    pub fn energy_j(&self, now: SimTime) -> f64 {
        self.chassis.integral(now)
            + self.cards.iter().map(|c| c.energy_j(now)).sum::<f64>()
            + self.ports.iter().map(|p| p.energy_j(now)).sum::<f64>()
    }

    /// `(LPI entries, card sleeps)` counters.
    pub fn power_event_counts(&self) -> (u64, u64) {
        (self.lpi_entries, self.card_sleeps)
    }

    /// `true` if any port is active (the "switch is awake" predicate the
    /// network-aware policy uses).
    pub fn any_port_active(&self) -> bool {
        self.ports
            .iter()
            .any(|p| p.steady() == Some(PortPowerState::Active))
    }

    fn active_port_power(&self, port: u32) -> f64 {
        match self.port_rates[port as usize] {
            Some(rate) => self.profile.port.active_power_at_rate_w(rate),
            None => self.profile.port.active_w,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cisco(now: SimTime) -> SwitchDevice {
        SwitchDevice::new(
            now,
            NodeId(0),
            1,
            24,
            SwitchPowerProfile::cisco_ws_c2960_24s(),
        )
    }

    #[test]
    fn initial_power_matches_all_active() {
        let sw = cisco(SimTime::ZERO);
        assert!((sw.power_w() - 20.22).abs() < 1e-9);
        assert_eq!(sw.port_count(), 24);
        assert_eq!(sw.card_count(), 1);
    }

    #[test]
    fn lpi_entry_reduces_power_and_counts() {
        let mut sw = cisco(SimTime::ZERO);
        assert!(sw.enter_lpi(SimTime::from_secs(1), 0));
        let expected = 14.7 + 23.0 * 0.23 + 0.023;
        assert!((sw.power_w() - expected).abs() < 1e-9);
        assert_eq!(sw.power_event_counts().0, 1);
        assert_eq!(sw.port_state(0), PortPowerState::Lpi);
    }

    #[test]
    fn lpi_entry_refused_while_recently_active() {
        let mut sw = cisco(SimTime::ZERO);
        sw.note_tx_end(0, SimTime::from_secs(5));
        // A check firing earlier than the tx end must not idle the port.
        assert!(!sw.enter_lpi(SimTime::from_secs(2), 0));
        assert_eq!(sw.port_state(0), PortPowerState::Active);
    }

    #[test]
    fn wake_from_lpi_charges_exit_latency() {
        let mut sw = cisco(SimTime::ZERO);
        sw.enter_lpi(SimTime::from_secs(1), 3);
        let d = sw.wake_for_tx(SimTime::from_secs(2), 3);
        assert_eq!(d, SimDuration::from_micros(5));
        assert_eq!(sw.port_state(3), PortPowerState::Active);
        // Already active: no charge.
        assert_eq!(sw.wake_for_tx(SimTime::from_secs(2), 3), SimDuration::ZERO);
    }

    #[test]
    fn wake_cost_probe_is_side_effect_free() {
        let mut sw = cisco(SimTime::ZERO);
        sw.enter_lpi(SimTime::from_secs(1), 3);
        let cost = sw.wake_cost(3);
        assert_eq!(cost, SimDuration::from_micros(5));
        assert_eq!(sw.port_state(3), PortPowerState::Lpi);
    }

    #[test]
    fn card_sleep_requires_all_ports_idle() {
        let mut sw = SwitchDevice::new(
            SimTime::ZERO,
            NodeId(1),
            2,
            2,
            SwitchPowerProfile::datacenter_48port(),
        );
        let t = SimTime::from_secs(1);
        assert!(!sw.sleep_card(t, 0), "ports still active");
        sw.enter_lpi(t, 0);
        sw.enter_lpi(t, 1);
        assert!(sw.sleep_card(t, 0));
        assert_eq!(sw.card_state(0), LineCardPowerState::Sleep);
        // Waking port 0 also wakes the card, charging both latencies.
        let d = sw.wake_for_tx(SimTime::from_secs(2), 0);
        assert_eq!(
            d,
            SimDuration::from_millis(10) + SimDuration::from_micros(5)
        );
        assert_eq!(sw.card_state(0), LineCardPowerState::Active);
    }

    #[test]
    fn card_mapping() {
        let sw = SwitchDevice::new(
            SimTime::ZERO,
            NodeId(1),
            4,
            12,
            SwitchPowerProfile::datacenter_48port(),
        );
        assert_eq!(sw.card_of(0), 0);
        assert_eq!(sw.card_of(11), 0);
        assert_eq!(sw.card_of(12), 1);
        assert_eq!(sw.card_of(47), 3);
    }

    #[test]
    fn alr_scales_active_power() {
        let mut sw = SwitchDevice::new(
            SimTime::ZERO,
            NodeId(1),
            1,
            2,
            SwitchPowerProfile::datacenter_48port(),
        );
        let p_full = sw.power_w();
        sw.set_port_rate(SimTime::from_secs(1), 0, Some(1_000_000_000));
        assert!(sw.power_w() < p_full);
        assert_eq!(sw.port_rate(0), Some(1_000_000_000));
        sw.set_port_rate(SimTime::from_secs(2), 0, None);
        assert!((sw.power_w() - p_full).abs() < 1e-9);
    }

    #[test]
    fn chassis_sleeps_when_all_cards_sleep() {
        let mut sw = SwitchDevice::new(
            SimTime::ZERO,
            NodeId(1),
            2,
            2,
            SwitchPowerProfile::datacenter_48port(),
        );
        let t = SimTime::from_secs(1);
        for p in 0..4 {
            sw.enter_lpi(t, p);
        }
        assert!(sw.sleep_card(t, 0));
        let one_card = sw.power_w();
        assert!(sw.sleep_card(t, 1));
        let all_sleep = sw.power_w();
        // Chassis dropped from 52 W to 6.5 W on the last card sleep.
        assert!(
            one_card - all_sleep > 45.0,
            "one {one_card} all {all_sleep}"
        );
        // First wake restores the chassis.
        sw.wake_for_tx(SimTime::from_secs(2), 0);
        assert!(sw.power_w() > all_sleep + 45.0);
    }

    #[test]
    fn alr_restore_charges_renegotiation() {
        let mut sw = SwitchDevice::new(
            SimTime::ZERO,
            NodeId(1),
            1,
            2,
            SwitchPowerProfile::datacenter_48port(),
        );
        sw.set_port_rate(SimTime::from_secs(1), 0, Some(100_000_000));
        let d = sw.wake_for_tx(SimTime::from_secs(2), 0);
        assert_eq!(d, SimDuration::from_micros(5));
        assert_eq!(sw.port_rate(0), None, "rate restored to full");
    }

    #[test]
    fn energy_integrates_states() {
        let mut sw = cisco(SimTime::ZERO);
        // 24 ports active for 10 s, then all in LPI for 10 s.
        let t1 = SimTime::from_secs(10);
        for p in 0..24 {
            sw.enter_lpi(t1, p);
        }
        let t2 = SimTime::from_secs(20);
        let expected = 14.7 * 20.0 + 24.0 * (0.23 * 10.0 + 0.023 * 10.0);
        assert!((sw.energy_j(t2) - expected).abs() < 1e-6);
    }

    #[test]
    fn any_port_active_predicate() {
        let mut sw = cisco(SimTime::ZERO);
        assert!(sw.any_port_active());
        for p in 0..24 {
            sw.enter_lpi(SimTime::from_secs(1), p);
        }
        assert!(!sw.any_port_active());
    }
}
