//! Shortest-path routing with ECMP tie-breaking and a per-destination
//! distance cache (§III-B: "statically generated or dynamically computed"
//! routes).

// Router caches are keyed lookups only — never iterated, so hash order
// cannot leak into routes (lint D001); clearing is wholesale. The local
// waivers below are the clippy analogue of an analysis.toml entry.
#[allow(clippy::disallowed_types)]
use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::Arc;

use crate::ids::{LinkId, NodeId};
use crate::topology::Topology;

/// Folds an arbitrary flow/placement seed into one of `ways` ECMP buckets
/// (SplitMix64-mixed so every seed bit participates). Real switches hash
/// the flow tuple into a bounded next-hop table the same way; bounding the
/// seed space is what makes the [`Router::route_shared`] cache effective —
/// at most `ways` cached routes per (src, dst) pair.
pub fn ecmp_bucket(seed: u64, ways: u64) -> u64 {
    debug_assert!(ways > 0, "need at least one ECMP bucket");
    hash64(seed) % ways
}

/// A route: the traversed links in order, plus the visited nodes
/// (`nodes.len() == links.len() + 1`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Route {
    /// Visited nodes from source to destination inclusive.
    pub nodes: Vec<NodeId>,
    /// Traversed links, `links[i]` joining `nodes[i]` and `nodes[i+1]`.
    pub links: Vec<LinkId>,
}

impl Route {
    /// Number of hops (links traversed).
    pub fn hops(&self) -> usize {
        self.links.len()
    }

    /// Switches along the route (excludes host endpoints).
    pub fn switches(&self, topo: &Topology) -> Vec<NodeId> {
        self.nodes
            .iter()
            .copied()
            .filter(|&n| topo.kind(n).is_switch())
            .collect()
    }
}

/// Hop-count router with equal-cost multi-path support.
///
/// Distances are computed by BFS from each destination on first use and
/// cached (the "static routes" mode of the paper); [`Router::clear_cache`]
/// supports dynamic recomputation after topology-state changes.
///
/// # Examples
///
/// ```
/// use holdcsim_network::routing::Router;
/// use holdcsim_network::topologies::{star, LinkSpec};
///
/// let built = star(4, LinkSpec::gigabit());
/// let mut router = Router::new();
/// let r = router
///     .route(&built.topology, built.hosts[0], built.hosts[3], 0)
///     .expect("hosts are connected");
/// assert_eq!(r.hops(), 2); // host -> switch -> host
/// ```
#[derive(Debug)]
#[allow(clippy::disallowed_types)] // point-lookup caches; never iterated
pub struct Router {
    /// Per-destination distance maps: `dist[dst][node]` = hops to dst.
    dist_cache: HashMap<NodeId, Vec<u32>>,
    /// Shared complete routes keyed by `(src, dst, ecmp seed)`; callers
    /// that bound the seed space (see [`ecmp_bucket`]) get every
    /// steady-state route from here without allocating.
    route_cache: HashMap<(NodeId, NodeId, u64), Option<Arc<Route>>>,
    /// Cached routes are dropped wholesale past this many entries,
    /// bounding memory when callers pass unbounded seeds. Callers whose
    /// key space is bounded (see [`Router::set_route_cache_cap`]) should
    /// raise it above that space so sustained all-pairs traffic never
    /// thrashes.
    route_cache_cap: usize,
    /// Reusable equal-cost candidate buffer for path walks.
    scratch: Vec<(NodeId, LinkId)>,
    hits: u64,
    misses: u64,
    route_hits: u64,
    route_misses: u64,
}

/// Default shared-route cache capacity.
const DEFAULT_ROUTE_CACHE_CAP: usize = 1 << 16;

#[allow(clippy::disallowed_types)] // constructs the point-lookup caches
impl Default for Router {
    fn default() -> Self {
        Router {
            dist_cache: HashMap::new(),
            route_cache: HashMap::new(),
            route_cache_cap: DEFAULT_ROUTE_CACHE_CAP,
            scratch: Vec::new(),
            hits: 0,
            misses: 0,
            route_hits: 0,
            route_misses: 0,
        }
    }
}

impl Router {
    /// Creates a router with an empty cache.
    pub fn new() -> Self {
        Router::default()
    }

    /// Sets the shared-route cache capacity (entries kept before a
    /// wholesale drop). Size it at or above the caller's bounded key
    /// space — `hosts² × ECMP ways` — so steady-state all-pairs traffic
    /// never evicts hot routes; clamped to at least 1.
    pub fn set_route_cache_cap(&mut self, cap: usize) {
        self.route_cache_cap = cap.max(1);
    }

    /// Computes a shortest route from `src` to `dst`. Among equal-cost next
    /// hops the choice is a deterministic hash of `(node, ecmp_seed)`, so
    /// different flows (different seeds) spread over parallel paths while
    /// any given flow routes stably.
    ///
    /// Returns `None` if `dst` is unreachable from `src`.
    pub fn route(
        &mut self,
        topo: &Topology,
        src: NodeId,
        dst: NodeId,
        ecmp_seed: u64,
    ) -> Option<Route> {
        if src == dst {
            return Some(Route {
                nodes: vec![src],
                links: Vec::new(),
            });
        }
        let mut candidates = std::mem::take(&mut self.scratch);
        let dist = self.distances(topo, dst);
        if dist[src.0 as usize] == u32::MAX {
            self.scratch = candidates;
            return None;
        }
        let mut nodes = vec![src];
        let mut links = Vec::new();
        let mut cur = src;
        while cur != dst {
            let d = dist[cur.0 as usize];
            // Candidates one hop closer to dst (reusable scratch buffer).
            candidates.clear();
            candidates.extend(
                topo.neighbors(cur)
                    .filter(|(n, _)| dist[n.0 as usize] == d - 1),
            );
            debug_assert!(!candidates.is_empty(), "distance field is inconsistent");
            candidates.sort_by_key(|(n, l)| (n.0, l.0));
            let pick = (hash64(cur.0 as u64 ^ ecmp_seed.rotate_left(17)) % candidates.len() as u64)
                as usize;
            let (next, link) = candidates[pick];
            nodes.push(next);
            links.push(link);
            cur = next;
        }
        self.scratch = candidates;
        Some(Route { nodes, links })
    }

    /// [`route`](Self::route) behind a shared-ownership cache: the first
    /// call for a `(src, dst, ecmp_seed)` triple computes and stores the
    /// route, every later call clones the [`Arc`] — no path walk, no
    /// allocation. Unreachable pairs are cached too (negative caching).
    ///
    /// Callers with unbounded seeds (one per flow) should fold them
    /// through [`ecmp_bucket`] first, or every call misses; the cache
    /// drops all entries once it exceeds an internal cap, so even
    /// unbounded seeds cannot grow it without bound.
    pub fn route_shared(
        &mut self,
        topo: &Topology,
        src: NodeId,
        dst: NodeId,
        ecmp_seed: u64,
    ) -> Option<Arc<Route>> {
        if let Some(cached) = self.route_cache.get(&(src, dst, ecmp_seed)) {
            self.route_hits += 1;
            return cached.clone();
        }
        self.route_misses += 1;
        let route = self.route(topo, src, dst, ecmp_seed).map(Arc::new);
        if self.route_cache.len() >= self.route_cache_cap {
            self.route_cache.clear();
        }
        self.route_cache
            .insert((src, dst, ecmp_seed), route.clone());
        route
    }

    /// Computes a shortest route from `src` to `dst` on the surviving
    /// graph: nodes with `down_nodes[n]` set and links with
    /// `down_links[l]` set are treated as removed. Uncached — fault
    /// windows are transient, so each call runs a fresh masked BFS and
    /// the caller owns the result (wrapping it in an `Arc` if shared).
    ///
    /// Returns `None` if either endpoint is down or no surviving path
    /// exists.
    pub fn route_avoiding(
        &mut self,
        topo: &Topology,
        src: NodeId,
        dst: NodeId,
        ecmp_seed: u64,
        down_nodes: &[bool],
        down_links: &[bool],
    ) -> Option<Route> {
        if down_nodes[src.0 as usize] || down_nodes[dst.0 as usize] {
            return None;
        }
        if src == dst {
            return Some(Route {
                nodes: vec![src],
                links: Vec::new(),
            });
        }
        let mut dist = vec![u32::MAX; topo.node_count()];
        dist[dst.0 as usize] = 0;
        let mut q = VecDeque::new();
        q.push_back(dst);
        while let Some(n) = q.pop_front() {
            let d = dist[n.0 as usize];
            for (next, link) in topo.neighbors(n) {
                if down_links[link.0 as usize] || down_nodes[next.0 as usize] {
                    continue;
                }
                if dist[next.0 as usize] == u32::MAX {
                    dist[next.0 as usize] = d + 1;
                    q.push_back(next);
                }
            }
        }
        if dist[src.0 as usize] == u32::MAX {
            return None;
        }
        let mut candidates = std::mem::take(&mut self.scratch);
        let mut nodes = vec![src];
        let mut links = Vec::new();
        let mut cur = src;
        while cur != dst {
            let d = dist[cur.0 as usize];
            candidates.clear();
            candidates.extend(topo.neighbors(cur).filter(|(n, l)| {
                !down_links[l.0 as usize]
                    && !down_nodes[n.0 as usize]
                    && dist[n.0 as usize] == d - 1
            }));
            debug_assert!(
                !candidates.is_empty(),
                "masked distance field is inconsistent"
            );
            candidates.sort_by_key(|(n, l)| (n.0, l.0));
            let pick = (hash64(cur.0 as u64 ^ ecmp_seed.rotate_left(17)) % candidates.len() as u64)
                as usize;
            let (next, link) = candidates[pick];
            nodes.push(next);
            links.push(link);
            cur = next;
        }
        self.scratch = candidates;
        Some(Route { nodes, links })
    }

    /// Hop distance from `src` to `dst` (`None` if unreachable).
    pub fn distance(&mut self, topo: &Topology, src: NodeId, dst: NodeId) -> Option<u32> {
        let d = self.distances(topo, dst)[src.0 as usize];
        (d != u32::MAX).then_some(d)
    }

    /// Drops all cached distance fields and shared routes (call after
    /// links change state in dynamic-routing studies).
    pub fn clear_cache(&mut self) {
        self.dist_cache.clear();
        self.route_cache.clear();
    }

    /// `(cache hits, cache misses)` since creation — the path-cache
    /// ablation metric.
    pub fn cache_stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// `(hits, misses)` of the shared-route cache since creation.
    pub fn route_cache_stats(&self) -> (u64, u64) {
        (self.route_hits, self.route_misses)
    }

    fn distances(&mut self, topo: &Topology, dst: NodeId) -> &Vec<u32> {
        if self.dist_cache.contains_key(&dst) {
            self.hits += 1;
        } else {
            self.misses += 1;
            let mut dist = vec![u32::MAX; topo.node_count()];
            dist[dst.0 as usize] = 0;
            let mut q = VecDeque::new();
            q.push_back(dst);
            while let Some(n) = q.pop_front() {
                let d = dist[n.0 as usize];
                for (next, _) in topo.neighbors(n) {
                    if dist[next.0 as usize] == u32::MAX {
                        dist[next.0 as usize] = d + 1;
                        q.push_back(next);
                    }
                }
            }
            self.dist_cache.insert(dst, dist);
        }
        &self.dist_cache[&dst]
    }
}

#[inline]
fn hash64(mut x: u64) -> u64 {
    // SplitMix64 finalizer.
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
#[allow(clippy::disallowed_types)] // loop-detection / spread sets in tests
mod tests {
    use super::*;
    use crate::topologies::{bcube, camcube, fat_tree, star, LinkSpec};

    #[test]
    fn star_routes_via_switch() {
        let built = star(4, LinkSpec::gigabit());
        let mut r = Router::new();
        let route = r
            .route(&built.topology, built.hosts[0], built.hosts[1], 7)
            .unwrap();
        assert_eq!(route.hops(), 2);
        assert_eq!(route.nodes.len(), 3);
        assert_eq!(route.switches(&built.topology).len(), 1);
    }

    #[test]
    fn route_to_self_is_empty() {
        let built = star(2, LinkSpec::gigabit());
        let mut r = Router::new();
        let route = r
            .route(&built.topology, built.hosts[0], built.hosts[0], 0)
            .unwrap();
        assert_eq!(route.hops(), 0);
        assert_eq!(route.nodes, vec![built.hosts[0]]);
    }

    #[test]
    fn fat_tree_same_pod_distance() {
        let built = fat_tree(4, LinkSpec::gigabit());
        let mut r = Router::new();
        // Hosts 0 and 1 share an edge switch: 2 hops.
        assert_eq!(
            r.distance(&built.topology, built.hosts[0], built.hosts[1]),
            Some(2)
        );
        // Hosts 0 and 2 are in the same pod, different edge switch: 4 hops.
        assert_eq!(
            r.distance(&built.topology, built.hosts[0], built.hosts[2]),
            Some(4)
        );
        // Hosts in different pods traverse the core: 6 hops.
        assert_eq!(
            r.distance(&built.topology, built.hosts[0], built.hosts[15]),
            Some(6)
        );
    }

    #[test]
    fn ecmp_spreads_across_paths() {
        let built = fat_tree(4, LinkSpec::gigabit());
        let mut r = Router::new();
        // Cross-pod routes have 4 equal-cost core choices; different seeds
        // should exercise more than one.
        let mut first_links = std::collections::HashSet::new();
        for seed in 0..64 {
            let route = r
                .route(&built.topology, built.hosts[0], built.hosts[15], seed)
                .unwrap();
            assert_eq!(route.hops(), 6);
            first_links.insert(route.links[1]);
        }
        assert!(first_links.len() > 1, "ECMP never spread");
    }

    #[test]
    fn same_seed_routes_stably() {
        let built = fat_tree(4, LinkSpec::gigabit());
        let mut r = Router::new();
        let a = r
            .route(&built.topology, built.hosts[0], built.hosts[12], 5)
            .unwrap();
        let b = r
            .route(&built.topology, built.hosts[0], built.hosts[12], 5)
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn routes_are_consistent_paths() {
        let built = bcube(2, 1, LinkSpec::gigabit());
        let mut r = Router::new();
        for (i, &a) in built.hosts.iter().enumerate() {
            for &b in &built.hosts[i + 1..] {
                let route = r.route(&built.topology, a, b, 3).unwrap();
                assert_eq!(route.nodes.len(), route.links.len() + 1);
                for (j, &l) in route.links.iter().enumerate() {
                    let link = built.topology.link(l);
                    assert_eq!(link.opposite(route.nodes[j]), route.nodes[j + 1]);
                }
            }
        }
    }

    #[test]
    fn camcube_routes_without_switches() {
        let built = camcube(3, 3, 3, LinkSpec::gigabit());
        let mut r = Router::new();
        let route = r
            .route(&built.topology, built.hosts[0], built.hosts[26], 0)
            .unwrap();
        // Opposite corner of a 3x3x3 torus: 1 hop per dimension via wraparound.
        assert_eq!(route.hops(), 3);
        assert!(route.switches(&built.topology).is_empty());
    }

    #[test]
    fn unreachable_returns_none() {
        let mut b = crate::topology::Topology::builder();
        let a = b.add_host();
        let c = b.add_host();
        let t = b.build();
        let mut r = Router::new();
        assert_eq!(r.route(&t, a, c, 0), None);
        assert_eq!(r.distance(&t, a, c), None);
    }

    #[test]
    fn route_shared_caches_and_matches_route() {
        let built = fat_tree(4, LinkSpec::gigabit());
        let mut r = Router::new();
        for seed in 0..8 {
            let direct = r
                .route(&built.topology, built.hosts[0], built.hosts[15], seed)
                .unwrap();
            let shared = r
                .route_shared(&built.topology, built.hosts[0], built.hosts[15], seed)
                .unwrap();
            assert_eq!(*shared, direct, "cached route must equal the computed one");
            let again = r
                .route_shared(&built.topology, built.hosts[0], built.hosts[15], seed)
                .unwrap();
            assert!(Arc::ptr_eq(&shared, &again), "second call is a cache hit");
        }
        let (hits, misses) = r.route_cache_stats();
        assert_eq!((hits, misses), (8, 8));
        r.clear_cache();
        r.route_shared(&built.topology, built.hosts[0], built.hosts[15], 0);
        assert_eq!(r.route_cache_stats(), (8, 9), "clear_cache drops routes");
    }

    #[test]
    fn route_cache_cap_bounds_entries_and_recovers() {
        let built = star(8, LinkSpec::gigabit());
        let mut r = Router::new();
        r.set_route_cache_cap(2);
        for seed in 0..4 {
            r.route_shared(&built.topology, built.hosts[0], built.hosts[1], seed);
        }
        // Cap 2: the third insert clears; the cache never exceeds the cap
        // and keeps serving (4 misses, then a guaranteed hit on re-query).
        assert_eq!(r.route_cache_stats(), (0, 4));
        let again = r
            .route_shared(&built.topology, built.hosts[0], built.hosts[1], 3)
            .unwrap();
        assert_eq!(r.route_cache_stats(), (1, 4));
        assert_eq!(again.hops(), 2);
    }

    #[test]
    fn route_shared_negative_caches_unreachable() {
        let mut b = crate::topology::Topology::builder();
        let a = b.add_host();
        let c = b.add_host();
        let t = b.build();
        let mut r = Router::new();
        assert_eq!(r.route_shared(&t, a, c, 0), None);
        assert_eq!(r.route_shared(&t, a, c, 0), None);
        assert_eq!(r.route_cache_stats(), (1, 1));
    }

    #[test]
    fn ecmp_bucket_is_bounded_and_spreads() {
        let mut seen = std::collections::HashSet::new();
        for seed in 0..1_000u64 {
            let b = ecmp_bucket(seed, 64);
            assert!(b < 64);
            seen.insert(b);
        }
        assert!(seen.len() > 32, "bucketing should use most of the ways");
        assert_eq!(ecmp_bucket(7, 64), ecmp_bucket(7, 64), "deterministic");
    }

    #[test]
    fn route_avoiding_skips_dead_components() {
        let built = fat_tree(4, LinkSpec::gigabit());
        let mut r = Router::new();
        let mut down_nodes = vec![false; built.topology.node_count()];
        let mut down_links = vec![false; built.topology.links().len()];
        let base = r
            .route_avoiding(
                &built.topology,
                built.hosts[0],
                built.hosts[15],
                3,
                &down_nodes,
                &down_links,
            )
            .unwrap();
        assert_eq!(base.hops(), 6);
        // Kill the core switch the base route used: the reroute avoids it.
        let core = base.nodes[3];
        down_nodes[core.0 as usize] = true;
        let rerouted = r
            .route_avoiding(
                &built.topology,
                built.hosts[0],
                built.hosts[15],
                3,
                &down_nodes,
                &down_links,
            )
            .unwrap();
        assert_eq!(rerouted.hops(), 6);
        assert!(!rerouted.nodes.contains(&core));
        // Kill the destination's access link: now unreachable.
        down_links[rerouted.links[5].0 as usize] = true;
        assert!(r
            .route_avoiding(
                &built.topology,
                built.hosts[0],
                built.hosts[15],
                3,
                &down_nodes,
                &down_links,
            )
            .is_none());
        // A down endpoint short-circuits to None.
        down_nodes[built.hosts[0].0 as usize] = true;
        assert!(r
            .route_avoiding(
                &built.topology,
                built.hosts[0],
                built.hosts[1],
                0,
                &down_nodes,
                &down_links,
            )
            .is_none());
    }

    #[test]
    fn cache_hits_accumulate() {
        let built = star(8, LinkSpec::gigabit());
        let mut r = Router::new();
        r.route(&built.topology, built.hosts[0], built.hosts[1], 0);
        r.route(&built.topology, built.hosts[2], built.hosts[1], 0);
        let (hits, misses) = r.cache_stats();
        assert_eq!((hits, misses), (1, 1));
        r.clear_cache();
        r.route(&built.topology, built.hosts[2], built.hosts[1], 0);
        assert_eq!(r.cache_stats().1, 2);
    }
}
