//! # holdcsim-network
//!
//! The data-center network substrate of HolDCSim-RS (§III-B of the paper):
//! topology graphs and builders for fat tree, flattened butterfly, BCube,
//! CamCube, and star; hop-count ECMP routing with cached distance fields;
//! max-min fair flow-level communication; store-and-forward packet-level
//! communication; and switch devices with port LPI, line-card sleep, and
//! adaptive link rate built on `holdcsim-power`.
//!
//! ```
//! use holdcsim_network::prelude::*;
//!
//! let built = fat_tree(4, LinkSpec::gigabit());
//! assert_eq!(built.hosts.len(), 16);
//! let mut router = Router::new();
//! let route = router
//!     .route(&built.topology, built.hosts[0], built.hosts[15], 1)
//!     .unwrap();
//! assert_eq!(route.hops(), 6); // edge-agg-core-agg-edge across pods
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod flow;
mod flow_cohort;
pub mod ids;
pub mod packet;
pub mod routing;
pub mod switch;
pub mod topologies;
pub mod topology;

pub use flow::{CompletedFlow, FlowNet};
pub use ids::{FlowId, LinkId, NodeId, PacketId, PortRef};
pub use packet::{segment, Packet, PacketNet, TxOutcome, DEFAULT_MTU_BYTES};
pub use routing::{Route, Router};
pub use switch::SwitchDevice;
pub use topologies::{
    bcube, camcube, fat_tree, flattened_butterfly, star, BuiltTopology, LinkSpec,
};
pub use topology::{Link, NodeKind, Topology, TopologyBuilder, TopologyError};

/// Convenience re-exports for downstream crates.
pub mod prelude {
    pub use crate::flow::{CompletedFlow, FlowNet};
    pub use crate::ids::{FlowId, LinkId, NodeId, PacketId, PortRef};
    pub use crate::packet::{segment, Packet, PacketNet, TxOutcome};
    pub use crate::routing::{Route, Router};
    pub use crate::switch::SwitchDevice;
    pub use crate::topologies::{
        bcube, camcube, fat_tree, flattened_butterfly, star, BuiltTopology, LinkSpec,
    };
    pub use crate::topology::{Link, NodeKind, Topology, TopologyError};
}
