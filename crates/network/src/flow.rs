//! Flow-level communication: max-min fair bandwidth sharing (§III-B:
//! "Multiple flows ... can simultaneously travel along a link if it has not
//! yet been saturated").
//!
//! [`FlowNet`] tracks active flows and assigns each the max-min fair rate
//! over its route via progressive filling. Rates are recomputed on every
//! flow arrival/departure; the driving simulation keeps a single pending
//! completion event guarded by [`FlowNet::generation`] (stale events are
//! ignored, the standard lazy-cancellation pattern).
//!
//! Flow states live in a [`SlotWindow`] (no hash probe per lookup), the
//! recompute touches only links that actually carry flows, and all of its
//! working sets are persistent scratch buffers — steady-state admission
//! and completion perform no allocation (flow states, including their
//! route vectors, are recycled through a pool).

use holdcsim_des::slot_window::SlotWindow;
use holdcsim_des::time::{SimDuration, SimTime};

use crate::ids::{FlowId, LinkId, NodeId};
use crate::topology::Topology;

/// One active flow's state.
#[derive(Debug, Clone)]
struct FlowState {
    /// The caller's flow id, echoed back in [`CompletedFlow`].
    id: FlowId,
    links: Vec<LinkId>,
    remaining_bits: f64,
    rate_bps: f64,
    last_update: SimTime,
    src: NodeId,
    dst: NodeId,
    started: SimTime,
    total_bits: f64,
    /// Scratch flag of the progressive-filling recompute.
    fixed: bool,
}

/// A completed flow, as reported by [`FlowNet::take_completed`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompletedFlow {
    /// The flow that finished.
    pub id: FlowId,
    /// Source host.
    pub src: NodeId,
    /// Destination host.
    pub dst: NodeId,
    /// When the flow was admitted.
    pub started: SimTime,
}

/// Max-min fair flow-level network model.
///
/// # Examples
///
/// ```
/// use holdcsim_network::flow::FlowNet;
/// use holdcsim_network::ids::FlowId;
/// use holdcsim_network::routing::Router;
/// use holdcsim_network::topologies::{star, LinkSpec};
/// use holdcsim_des::time::SimTime;
///
/// let built = star(4, LinkSpec::gigabit());
/// let mut router = Router::new();
/// let mut net = FlowNet::new(&built.topology);
/// let route = router
///     .route(&built.topology, built.hosts[0], built.hosts[1], 0)
///     .unwrap();
/// let t0 = SimTime::ZERO;
/// net.add_flow(t0, FlowId(1), built.hosts[0], built.hosts[1], &route.links, 125_000_000);
/// // Alone on 1 GbE: 1 Gbit = 125 MB takes 1 s (+1 ns scheduling guard).
/// let (_, finish) = net.next_completion(t0).unwrap();
/// assert!((finish.as_secs_f64() - 1.0).abs() < 1e-6);
/// ```
#[derive(Debug)]
pub struct FlowNet {
    capacity_bps: Vec<f64>,
    /// Active flows, keyed by admission order (internal keys — callers
    /// address flows by their [`FlowId`], carried inside the state).
    flows: SlotWindow<FlowState>,
    flows_per_link: Vec<Vec<u64>>,
    /// Link indices that may carry flows, lazily pruned in `recompute` —
    /// the working set of the fair-share solve (sparse traffic touches a
    /// tiny fraction of a large fabric's links).
    used_links: Vec<usize>,
    used_mask: Vec<bool>,
    generation: u64,
    completed: Vec<CompletedFlow>,
    total_admitted: u64,
    /// Recycled flow states: completed flows return here so admissions
    /// reuse their route-vector allocations.
    pool: Vec<FlowState>,
    /// Residual capacity per link during a recompute (persistent scratch,
    /// refreshed only for used links).
    scratch_cap: Vec<f64>,
    /// Unfixed-flow count per link during a recompute.
    scratch_cnt: Vec<usize>,
    /// Flows fixed at the current bottleneck.
    scratch_fixed: Vec<u64>,
    /// Flows detected complete in the current advance.
    scratch_done: Vec<u64>,
}

impl FlowNet {
    /// Creates a flow network over `topo`'s links.
    pub fn new(topo: &Topology) -> Self {
        let capacity_bps = topo
            .links()
            .iter()
            .map(|l| l.rate_bps as f64)
            .collect::<Vec<_>>();
        let n = capacity_bps.len();
        FlowNet {
            capacity_bps,
            flows: SlotWindow::new(),
            flows_per_link: vec![Vec::new(); n],
            used_links: Vec::new(),
            used_mask: vec![false; n],
            generation: 0,
            completed: Vec::new(),
            total_admitted: 0,
            pool: Vec::new(),
            scratch_cap: vec![0.0; n],
            scratch_cnt: vec![0; n],
            scratch_fixed: Vec::new(),
            scratch_done: Vec::new(),
        }
    }

    /// Admits a flow of `bytes` over `links` at `now` and recomputes rates.
    ///
    /// Returns the new generation; any previously scheduled completion event
    /// is now stale.
    ///
    /// # Panics
    ///
    /// Panics if the flow id is already active, the route is empty (same-
    /// host transfers never reach the network), or `bytes == 0`.
    pub fn add_flow(
        &mut self,
        now: SimTime,
        id: FlowId,
        src: NodeId,
        dst: NodeId,
        links: &[LinkId],
        bytes: u64,
    ) -> u64 {
        assert!(!links.is_empty(), "flow with empty route");
        assert!(bytes > 0, "flow with no data");
        debug_assert!(
            self.flows.iter().all(|(_, f)| f.id != id),
            "flow id {id} reused while active"
        );
        self.settle(now);
        let mut st = self.pool.pop().unwrap_or_else(|| FlowState {
            id,
            links: Vec::new(),
            remaining_bits: 0.0,
            rate_bps: 0.0,
            last_update: now,
            src,
            dst,
            started: now,
            total_bits: 0.0,
            fixed: false,
        });
        st.id = id;
        st.links.clear();
        st.links.extend_from_slice(links);
        st.remaining_bits = bytes as f64 * 8.0;
        st.rate_bps = 0.0;
        st.last_update = now;
        st.src = src;
        st.dst = dst;
        st.started = now;
        st.total_bits = bytes as f64 * 8.0;
        st.fixed = false;
        let key = self.flows.insert(st);
        for &l in links {
            let li = l.0 as usize;
            if !self.used_mask[li] {
                self.used_mask[li] = true;
                self.used_links.push(li);
            }
            self.flows_per_link[li].push(key);
        }
        self.total_admitted += 1;
        self.recompute();
        self.generation
    }

    /// Advances all flows to `now`, moving any that finished into the
    /// completed list, and recomputes rates if anything completed.
    ///
    /// Returns the current generation.
    pub fn advance(&mut self, now: SimTime) -> u64 {
        self.settle(now);
        let mut done = std::mem::take(&mut self.scratch_done);
        done.clear();
        done.extend(
            self.flows
                .iter()
                .filter(|(_, f)| f.remaining_bits <= 0.5)
                .map(|(k, _)| k),
        );
        // The window's straggler overflow iterates in hash order, which
        // varies run to run; completions must reach the caller in a
        // deterministic (admission) order or same-seed simulations
        // diverge.
        done.sort_unstable();
        if !done.is_empty() {
            for &key in &done {
                let f = self.flows.remove(key).expect("flow disappeared");
                for &l in &f.links {
                    let v = &mut self.flows_per_link[l.0 as usize];
                    v.retain(|&x| x != key);
                }
                self.completed.push(CompletedFlow {
                    id: f.id,
                    src: f.src,
                    dst: f.dst,
                    started: f.started,
                });
                self.pool.push(f);
            }
            self.recompute();
        }
        self.scratch_done = done;
        self.generation
    }

    /// Drains the flows that have completed since the last call.
    pub fn take_completed(&mut self) -> Vec<CompletedFlow> {
        std::mem::take(&mut self.completed)
    }

    /// The earliest projected completion among active flows, as
    /// `(generation, completion time)`. Schedule one event at that time and
    /// discard it if the generation has moved on.
    pub fn next_completion(&self, now: SimTime) -> Option<(u64, SimTime)> {
        let mut best: Option<f64> = None;
        for (_, f) in self.flows.iter() {
            if f.rate_bps <= 0.0 {
                continue;
            }
            let secs = f.remaining_bits / f.rate_bps;
            best = Some(match best {
                Some(b) => b.min(secs),
                None => secs,
            });
        }
        best.map(|secs| {
            // Round up a nanosecond so the event lands at-or-after the
            // true completion (progress is settled exactly at event time).
            let d = SimDuration::from_secs_f64(secs) + SimDuration::from_nanos(1);
            (self.generation, now + d)
        })
    }

    /// Current generation: bumped on every rate recomputation.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of active flows.
    pub fn active_flows(&self) -> usize {
        self.flows.len()
    }

    /// Total flows ever admitted.
    pub fn total_admitted(&self) -> u64 {
        self.total_admitted
    }

    /// The current fair rate of `id` in bits/second, if active (a linear
    /// scan — an observer for tests and reports, not the event hot path).
    pub fn flow_rate_bps(&self, id: FlowId) -> Option<f64> {
        self.find(id).map(|f| f.rate_bps)
    }

    /// Fraction of `id`'s bytes already delivered (in `[0, 1]`), if active
    /// (a linear scan — an observer, not the event hot path).
    pub fn flow_progress(&self, id: FlowId) -> Option<f64> {
        self.find(id)
            .map(|f| 1.0 - (f.remaining_bits / f.total_bits).clamp(0.0, 1.0))
    }

    fn find(&self, id: FlowId) -> Option<&FlowState> {
        self.flows.iter().find(|(_, f)| f.id == id).map(|(_, f)| f)
    }

    /// Fraction of `link`'s capacity currently allocated.
    pub fn link_utilization(&self, link: LinkId) -> f64 {
        let cap = self.capacity_bps[link.0 as usize];
        if cap <= 0.0 {
            return 0.0;
        }
        let used: f64 = self.flows_per_link[link.0 as usize]
            .iter()
            .filter_map(|&k| self.flows.get(k))
            .map(|f| f.rate_bps)
            .sum();
        used / cap
    }

    /// Number of active flows crossing `link`.
    pub fn flows_on_link(&self, link: LinkId) -> usize {
        self.flows_per_link[link.0 as usize].len()
    }

    /// Advances progress of all flows to `now` without completing them.
    fn settle(&mut self, now: SimTime) {
        for (_, f) in self.flows.iter_mut() {
            let dt = now.saturating_duration_since(f.last_update).as_secs_f64();
            if dt > 0.0 {
                f.remaining_bits = (f.remaining_bits - f.rate_bps * dt).max(0.0);
            }
            f.last_update = now;
        }
    }

    /// Progressive-filling max-min fair allocation over the used-link
    /// working set. Allocation-free: residual capacities and counts live
    /// in persistent scratch refreshed only for links that carry flows.
    fn recompute(&mut self) {
        self.generation += 1;
        if self.flows.is_empty() {
            return;
        }
        let FlowNet {
            capacity_bps,
            flows,
            flows_per_link,
            used_links,
            used_mask,
            scratch_cap,
            scratch_cnt,
            scratch_fixed,
            ..
        } = self;
        // Prune links that stopped carrying flows; refresh the residual
        // capacity and unfixed count of the rest.
        used_links.retain(|&li| {
            if flows_per_link[li].is_empty() {
                used_mask[li] = false;
                false
            } else {
                scratch_cap[li] = capacity_bps[li];
                scratch_cnt[li] = flows_per_link[li].len();
                true
            }
        });
        let mut unfixed = flows.len();
        for (_, f) in flows.iter_mut() {
            f.fixed = false;
        }

        while unfixed > 0 {
            // Bottleneck link: minimal fair share among loaded links.
            let mut bottleneck: Option<(usize, f64)> = None;
            for &li in used_links.iter() {
                if scratch_cnt[li] == 0 {
                    continue;
                }
                let share = (scratch_cap[li] / scratch_cnt[li] as f64).max(0.0);
                if bottleneck.is_none_or(|(_, s)| share < s) {
                    bottleneck = Some((li, share));
                }
            }
            let Some((bl, share)) = bottleneck else {
                // No loaded links left: remaining flows are route-less (cannot
                // happen given add_flow's assertion) — fix them at 0.
                for (_, f) in flows.iter_mut() {
                    if !f.fixed {
                        f.fixed = true;
                        f.rate_bps = 0.0;
                    }
                }
                break;
            };
            // Fix every unfixed flow crossing the bottleneck at the share.
            scratch_fixed.clear();
            scratch_fixed.extend(
                flows_per_link[bl]
                    .iter()
                    .copied()
                    .filter(|&k| !flows.get(k).expect("indexed flow exists").fixed),
            );
            debug_assert!(!scratch_fixed.is_empty());
            for &key in scratch_fixed.iter() {
                let f = flows.get_mut(key).expect("flow exists");
                f.fixed = true;
                f.rate_bps = share;
                unfixed -= 1;
                for &l in &f.links {
                    let li = l.0 as usize;
                    scratch_cap[li] = (scratch_cap[li] - share).max(0.0);
                    scratch_cnt[li] -= 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::Router;
    use crate::topologies::{star, LinkSpec};
    use crate::topology::Topology;

    const GBE: u64 = 1_000_000_000;

    /// Two hosts joined by a single link through a switch.
    fn two_host_net() -> (Topology, Vec<NodeId>, Router) {
        let built = star(2, LinkSpec::gigabit());
        (built.topology, built.hosts, Router::new())
    }

    fn route_links(
        topo: &Topology,
        router: &mut Router,
        a: NodeId,
        b: NodeId,
        seed: u64,
    ) -> Vec<LinkId> {
        router.route(topo, a, b, seed).unwrap().links
    }

    #[test]
    fn single_flow_gets_full_rate() {
        let (topo, hosts, mut router) = two_host_net();
        let mut net = FlowNet::new(&topo);
        let links = route_links(&topo, &mut router, hosts[0], hosts[1], 0);
        net.add_flow(
            SimTime::ZERO,
            FlowId(1),
            hosts[0],
            hosts[1],
            &links,
            125_000_000,
        );
        assert_eq!(net.flow_rate_bps(FlowId(1)), Some(1e9));
        let (_, t) = net.next_completion(SimTime::ZERO).unwrap();
        assert!((t.as_secs_f64() - 1.0).abs() < 1e-6, "finish {t}");
    }

    #[test]
    fn two_flows_share_the_bottleneck_evenly() {
        let (topo, hosts, mut router) = two_host_net();
        let mut net = FlowNet::new(&topo);
        let links = route_links(&topo, &mut router, hosts[0], hosts[1], 0);
        net.add_flow(
            SimTime::ZERO,
            FlowId(1),
            hosts[0],
            hosts[1],
            &links,
            125_000_000,
        );
        net.add_flow(
            SimTime::ZERO,
            FlowId(2),
            hosts[0],
            hosts[1],
            &links,
            125_000_000,
        );
        assert_eq!(net.flow_rate_bps(FlowId(1)), Some(5e8));
        assert_eq!(net.flow_rate_bps(FlowId(2)), Some(5e8));
        assert!((net.link_utilization(links[0]) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn departure_releases_bandwidth() {
        let (topo, hosts, mut router) = two_host_net();
        let mut net = FlowNet::new(&topo);
        let links = route_links(&topo, &mut router, hosts[0], hosts[1], 0);
        // Flow 1: 125 MB, flow 2: 250 MB, admitted together.
        net.add_flow(
            SimTime::ZERO,
            FlowId(1),
            hosts[0],
            hosts[1],
            &links,
            125_000_000,
        );
        net.add_flow(
            SimTime::ZERO,
            FlowId(2),
            hosts[0],
            hosts[1],
            &links,
            250_000_000,
        );
        // At 0.5 Gb/s each, flow 1 finishes at t=2 s.
        let (gen, t1) = net.next_completion(SimTime::ZERO).unwrap();
        assert_eq!(gen, net.generation());
        assert!((t1.as_secs_f64() - 2.0).abs() < 1e-6, "t1 {t1}");
        net.advance(t1);
        let done = net.take_completed();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].id, FlowId(1));
        // Flow 2 now gets the full link: 1 Gb of its 2 Gb remain.
        let rate = net.flow_rate_bps(FlowId(2)).unwrap();
        assert!((rate - 1e9).abs() < 1.0, "rate {rate}");
        let (_, t2) = net.next_completion(t1).unwrap();
        assert!((t2.as_secs_f64() - 3.0).abs() < 1e-6, "t2 {t2}");
    }

    #[test]
    fn max_min_gives_unbottlenecked_flow_the_slack() {
        // Star with 3 hosts: flows A->C and B->C share C's link; flow A->B
        // only contends with A's portion.
        let built = star(3, LinkSpec::gigabit());
        let topo = built.topology;
        let h = built.hosts;
        let mut router = Router::new();
        let mut net = FlowNet::new(&topo);
        let ac = route_links(&topo, &mut router, h[0], h[2], 0);
        let bc = route_links(&topo, &mut router, h[1], h[2], 0);
        let ab = route_links(&topo, &mut router, h[0], h[1], 0);
        net.add_flow(SimTime::ZERO, FlowId(1), h[0], h[2], &ac, 1_000_000);
        net.add_flow(SimTime::ZERO, FlowId(2), h[1], h[2], &bc, 1_000_000);
        net.add_flow(SimTime::ZERO, FlowId(3), h[0], h[1], &ab, 1_000_000);
        // C's downlink is the bottleneck: flows 1 and 2 get 0.5 Gb/s.
        assert!((net.flow_rate_bps(FlowId(1)).unwrap() - 5e8).abs() < 1.0);
        assert!((net.flow_rate_bps(FlowId(2)).unwrap() - 5e8).abs() < 1.0);
        // Flow 3 then fills A's uplink to capacity: 0.5 Gb/s used by flow 1,
        // so it gets the remaining 0.5 Gb/s of A's uplink... but B's uplink
        // also carries flow 2 at 0.5, leaving 0.5 for flow 3's second hop;
        // max-min gives flow 3 min(0.5, 0.5) = 0.5 Gb/s.
        assert!((net.flow_rate_bps(FlowId(3)).unwrap() - 5e8).abs() < 1.0);
    }

    #[test]
    fn generation_bumps_on_changes() {
        let (topo, hosts, mut router) = two_host_net();
        let mut net = FlowNet::new(&topo);
        let links = route_links(&topo, &mut router, hosts[0], hosts[1], 0);
        let g0 = net.generation();
        let g1 = net.add_flow(SimTime::ZERO, FlowId(1), hosts[0], hosts[1], &links, 1000);
        assert!(g1 > g0);
        let (gen, t) = net.next_completion(SimTime::ZERO).unwrap();
        assert_eq!(gen, g1);
        let g2 = net.advance(t);
        assert!(g2 > g1);
        assert_eq!(net.active_flows(), 0);
        assert_eq!(net.total_admitted(), 1);
    }

    #[test]
    fn advance_without_completions_keeps_generation() {
        let (topo, hosts, mut router) = two_host_net();
        let mut net = FlowNet::new(&topo);
        let links = route_links(&topo, &mut router, hosts[0], hosts[1], 0);
        let g1 = net.add_flow(
            SimTime::ZERO,
            FlowId(1),
            hosts[0],
            hosts[1],
            &links,
            125_000_000,
        );
        let g = net.advance(SimTime::from_millis(100));
        assert_eq!(g, g1);
        assert_eq!(net.active_flows(), 1);
    }

    #[test]
    #[should_panic(expected = "empty route")]
    fn empty_route_rejected() {
        let (topo, hosts, _) = two_host_net();
        let mut net = FlowNet::new(&topo);
        net.add_flow(SimTime::ZERO, FlowId(1), hosts[0], hosts[1], &[], 10);
    }

    #[test]
    #[should_panic(expected = "reused while active")]
    fn duplicate_flow_id_rejected() {
        let (topo, hosts, mut router) = two_host_net();
        let mut net = FlowNet::new(&topo);
        let links = route_links(&topo, &mut router, hosts[0], hosts[1], 0);
        net.add_flow(SimTime::ZERO, FlowId(1), hosts[0], hosts[1], &links, 10);
        net.add_flow(SimTime::ZERO, FlowId(1), hosts[0], hosts[1], &links, 10);
    }

    #[test]
    fn many_flows_conserve_capacity() {
        let built = star(8, LinkSpec::gigabit());
        let topo = built.topology;
        let h = built.hosts;
        let mut router = Router::new();
        let mut net = FlowNet::new(&topo);
        let mut id = 0;
        for i in 0..8 {
            for j in 0..8 {
                if i != j {
                    let links = route_links(&topo, &mut router, h[i], h[j], id);
                    net.add_flow(SimTime::ZERO, FlowId(id), h[i], h[j], &links, 1_000_000);
                    id += 1;
                }
            }
        }
        // No link may be allocated beyond capacity.
        for l in 0..topo.links().len() {
            let u = net.link_utilization(LinkId(l as u32));
            assert!(u <= 1.0 + 1e-9, "link {l} over-allocated: {u}");
        }
        // Total goodput is positive and bounded by 8 links' capacity.
        let total: f64 = (0..id).filter_map(|k| net.flow_rate_bps(FlowId(k))).sum();
        assert!(total > 0.0 && total <= 8.0 * GBE as f64 + 1.0);
    }
}
