//! Flow-level communication: max-min fair bandwidth sharing (§III-B:
//! "Multiple flows ... can simultaneously travel along a link if it has not
//! yet been saturated").
//!
//! [`FlowNet`] tracks active flows and assigns each the max-min fair rate
//! over its route via progressive filling. Rates are recomputed on every
//! flow arrival/departure by a [`FlowSolver`]:
//!
//! * [`FlowSolverKind::Reference`] — the textbook global solve: reset
//!   every link, scan the used-link working set for the bottleneck each
//!   round. O(used links × bottleneck rounds) per change.
//! * [`FlowSolverKind::Incremental`] — the production solver: only the
//!   *dirty set* is re-solved. Every flow remembers the link that fixed
//!   it (its bottleneck); a change pulls in exactly the flows whose
//!   bottleneck link is affected, charges every untouched flow crossing a
//!   dirty link as a fixed reservation against that link's capacity, and
//!   re-runs progressive filling on the small sub-problem with bottleneck
//!   selection driven by a lazy-deletion min-heap ([`LazyHeap`]) over
//!   link fair shares. A post-solve audit expands the set and re-solves
//!   in the (rare) case a dirty link's new fair level undercuts a
//!   reserved rate. Flows outside the dirty set keep their rates — and,
//!   downstream, their pending completion entries. On a fabric whose hot
//!   spots are the access links this touches tens of flows where the
//!   global solve touches thousands.
//!
//! Fair shares are computed in exact fixed-point integer arithmetic
//! (2⁻²⁰ bits/second units, floor division), so capacity reservations
//! are order-independent — the exactness the incremental budget sums
//! rely on. Both arms pick bottlenecks by the canonical `(fair share,
//! link index)` order; at exact floor ties the (non-unique) quantized
//! max-min solution may assign shares that differ by one 2⁻²⁰ bps
//! quantum between the arms, ~10⁻¹⁵ relative at gigabit rates — far
//! below the 1 ns event resolution, so the A/B arms of the driving
//! simulation produce identical event trajectories.
//!
//! Completion scheduling is *delta-driven*: [`FlowNet`] keeps one entry
//! per rated flow in a position-indexed min-heap of projected
//! completions. A re-solve updates, in place, only the entries of flows
//! whose rate actually changed (O(log F) each); flows with unchanged
//! rates are never settled and keep their entry. The driving simulation
//! keeps a *single* calendar event armed at [`FlowNet::next_due`] and
//! calls [`FlowNet::advance_due`] when it fires — the event calendar
//! sees roughly one event per completion instead of a cancel/reinsert
//! per flow per rate change (which is quadratic when a saturated fabric
//! re-shares rates on every admission). Admissions landing in the same
//! event are batched into one re-solve ([`FlowNet::add_flow_batched`] +
//! [`FlowNet::flush`]) — exact under max-min, whose rates depend only on
//! the final flow set at an instant.
//!
//! Flow states live in a [`SlotWindow`] (no hash probe per lookup), and
//! all solver working sets are persistent scratch — steady-state admission
//! and completion perform no allocation (flow states, including their
//! route vectors, are recycled through a pool).

use holdcsim_des::lazy_heap::LazyHeap;
use holdcsim_des::slot_window::SlotWindow;
use holdcsim_des::time::{SimDuration, SimTime};

use crate::flow_cohort::CohortNet;
use crate::ids::{FlowId, LinkId, NodeId};
use crate::topology::Topology;

/// Sentinel bottleneck index for flows not currently fixed by any link
/// (just admitted, or fixed at rate 0 by the route-less fallback).
pub(crate) const NO_BOTTLENECK: u32 = u32::MAX;

/// Fair-share fixed-point scale: rates and link budgets are integers in
/// units of 2⁻²⁰ bits/second. Integer arithmetic keeps capacity
/// reservations order-independent (the incremental solver's correctness
/// hinges on exact sums), while the sub-micro-bps quantum keeps both
/// solver arms' rates equal to ~10⁻¹⁵ relative — far below the 1 ns
/// event resolution, so the arms produce identical trajectories.
const RATE_FRAC_BITS: u32 = 20;

/// One bit/second in rate units.
pub(crate) const RATE_UNIT_PER_BPS: u64 = 1 << RATE_FRAC_BITS;

/// One byte of payload in *progress units*: the exact-integer scale on
/// which flow progress is tracked. A flow at `r` rate units drains
/// exactly `r` progress units per nanosecond (rate units × ns), so a
/// payload of `bytes` spans `bytes · 8 · 2²⁰ · 10⁹` progress units.
/// Settling is an exact integer multiply-subtract, completion instants
/// are exact ceiling divisions, and — because integer sums are
/// associative — *any* schedule of partial settles lands on the same
/// remainder bitwise. That associativity is what lets the cohort arm
/// account progress on a shared per-cell virtual clock and still
/// reproduce the per-flow arms' completion instants exactly.
pub(crate) const PROGRESS_PER_BYTE: u128 = 8 * RATE_UNIT_PER_BPS as u128 * 1_000_000_000;

/// `bytes` of payload in progress units.
#[inline]
pub(crate) fn progress_units(bytes: u64) -> u128 {
    bytes as u128 * PROGRESS_PER_BYTE
}

/// Exact progress drained over `dt_ns` at `rate_units`.
#[inline]
pub(crate) fn drained_units(rate_units: u64, dt_ns: u64) -> u128 {
    rate_units as u128 * dt_ns as u128
}

/// The exact time to drain `remaining` progress units at `rate_units`:
/// ceil(remaining / rate), saturating at the far end of sim time for
/// degenerate rates (a sub-bps trickle on a huge payload never fires
/// within any horizon).
#[inline]
pub(crate) fn due_after(remaining: u128, rate_units: u64) -> SimDuration {
    debug_assert!(rate_units > 0);
    let ns = remaining.div_ceil(rate_units as u128);
    SimDuration::from_nanos(u64::try_from(ns).unwrap_or(u64::MAX))
}

/// Route links stored inline in a [`FlowState`] (covers every fat-tree
/// route; longer routes spill to the heap).
const INLINE_LINKS: usize = 8;

/// A flow's route links, inline up to [`INLINE_LINKS`] with heap spill —
/// the solver iterates a flow's links several times per re-solve, and
/// keeping them in the flow's own cache lines avoids a pointer chase per
/// touch.
#[derive(Debug, Clone)]
pub(crate) struct RouteLinks {
    inline: [LinkId; INLINE_LINKS],
    len: u8,
    spill: Vec<LinkId>,
}

impl Default for RouteLinks {
    fn default() -> Self {
        RouteLinks {
            inline: [LinkId(0); INLINE_LINKS],
            len: 0,
            spill: Vec::new(),
        }
    }
}

impl RouteLinks {
    pub(crate) fn set(&mut self, links: &[LinkId]) {
        self.spill.clear();
        if links.len() <= INLINE_LINKS {
            self.inline[..links.len()].copy_from_slice(links);
            self.len = links.len() as u8;
        } else {
            self.spill.extend_from_slice(links);
            self.len = 0;
        }
    }

    #[inline]
    pub(crate) fn as_slice(&self) -> &[LinkId] {
        if self.spill.is_empty() {
            &self.inline[..self.len as usize]
        } else {
            &self.spill
        }
    }
}

/// One active flow's state.
#[derive(Debug, Clone)]
struct FlowState {
    /// The caller's flow id, echoed back in [`CompletedFlow`].
    id: FlowId,
    links: RouteLinks,
    /// Undelivered payload in exact progress units (see
    /// [`PROGRESS_PER_BYTE`]); `0` ⇔ the flow is done.
    remaining: u128,
    /// The current fair rate in fixed-point units of 2⁻²⁰ bits/second
    /// (fair shares are computed with exact integer arithmetic).
    rate_units: u64,
    /// The rate the in-progress solve assigned (promoted to `rate_bps` by
    /// the post-solve diff pass only if it actually changed).
    new_rate: u64,
    /// The link whose progressive-filling round fixed this flow — the
    /// incremental solver's pull condition: a change can only move this
    /// flow's rate by going through its bottleneck link.
    bottleneck: u32,
    /// The bottleneck the in-progress solve assigned (promoted by the
    /// post-solve diff pass alongside `new_rate`).
    new_bottleneck: u32,
    /// When `remaining` was last settled. Only flows whose rate
    /// changes are settled; an untouched flow's progress is implied by
    /// `(last_update, rate_units)`.
    last_update: SimTime,
    src: NodeId,
    dst: NodeId,
    started: SimTime,
    total: u128,
    /// Position of this flow's entry in the due-heap (`NO_HEAP` when the
    /// flow has no projected completion, i.e. rate 0).
    heap_pos: u32,
    /// Outside a solve: `true` (rate is settled). During a solve: flows
    /// pulled into the dirty set flip to `false` until re-fixed.
    fixed: bool,
}

impl FlowState {
    /// The current rate in bits/second.
    fn rate_bps(&self) -> f64 {
        self.rate_units as f64 / RATE_UNIT_PER_BPS as f64
    }

    /// Advances progress to `now` at the current rate — an exact
    /// integer multiply-subtract, so any settle schedule yields the
    /// same remainder.
    fn settle(&mut self, now: SimTime) {
        let dt = now.saturating_duration_since(self.last_update).as_nanos();
        if dt > 0 {
            self.remaining = self
                .remaining
                .saturating_sub(drained_units(self.rate_units, dt));
        }
        self.last_update = now;
    }

    /// The exact instant this flow's completion event should fire: the
    /// ceiling of remaining/rate lands the event on the first whole
    /// nanosecond at which the payload has fully drained.
    fn due(&self, now: SimTime) -> SimTime {
        debug_assert!(self.rate_units > 0);
        debug_assert_eq!(self.last_update, now);
        now.saturating_add(due_after(self.remaining, self.rate_units))
    }
}

/// A completed flow, as reported by [`FlowNet::take_completed`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompletedFlow {
    /// The flow that finished.
    pub id: FlowId,
    /// Source host.
    pub src: NodeId,
    /// Destination host.
    pub dst: NodeId,
    /// When the flow was admitted.
    pub started: SimTime,
}

/// Sentinel due-heap position for flows without a pending completion.
const NO_HEAP: u32 = u32::MAX;

/// Selects the fair-share solver implementation of a [`FlowNet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FlowSolverKind {
    /// Global progressive filling over the whole used-link working set on
    /// every change (the reference arm).
    Reference,
    /// Bottleneck-aware dirty-set re-solve with heap-driven bottleneck
    /// selection (the per-flow production arm).
    #[default]
    Incremental,
    /// Cohort-level rate cells with per-cell virtual-time clocks: every
    /// bottleneck cohort (the flows fixed at one link's fair share) is
    /// one cell, so a rate-level shift is O(1) per affected *link*
    /// instead of per flow, and completion instants are read off
    /// accumulated virtual time instead of being retimed per flow. The
    /// fastest arm on overloaded/incast fabrics; byte-identical
    /// trajectories to the other two arms.
    Cohort,
}

impl FlowSolverKind {
    /// The CLI/report label of this solver arm.
    pub fn label(self) -> &'static str {
        match self {
            FlowSolverKind::Reference => "reference",
            FlowSolverKind::Incremental => "incremental",
            FlowSolverKind::Cohort => "cohort",
        }
    }
}

/// The solver's view of the network during one re-solve: capacities, the
/// flow table, per-link flow lists, the used-link working set, and the
/// seed links whose flow membership just changed.
///
/// Constructed by [`FlowNet`] only; the concrete solvers live in this
/// module, and the trait is public for documentation and testing rather
/// than external implementation.
#[derive(Debug)]
pub struct SolveCtx<'a> {
    capacity_bps: &'a [u64],
    flows: &'a mut SlotWindow<FlowState>,
    flows_per_link: &'a [Vec<u64>],
    used_links: &'a mut Vec<usize>,
    used_mask: &'a mut [bool],
    /// Link indices whose flow set changed since the last solve.
    seeds: &'a [usize],
    /// Flows that must be re-rated regardless of bottleneck state (the
    /// just-admitted flow).
    seed_flows: &'a [u64],
    /// Σ rate of all flows crossing each link, maintained incrementally
    /// by the diff pass — the incremental solver derives link budgets
    /// from this instead of scanning per-link flow lists.
    reserved_units: &'a [u64],
}

/// A max-min fair-share solver: recomputes fair rates after flows were
/// added to or removed from the seed links.
///
/// Implementations write each affected flow's tentative rate into its
/// `new_rate` slot and append the affected flow keys to `touched`; the
/// [`FlowNet`] diff pass then settles and retimes only the flows whose
/// rate actually changed.
pub trait FlowSolver: std::fmt::Debug + Send {
    /// Re-solves after a change seeded at `ctx.seeds`, appending every
    /// flow whose rate was (re)computed to `touched`.
    fn solve(&mut self, ctx: SolveCtx<'_>, touched: &mut Vec<u64>);
}

/// The reference arm: global progressive filling with linear bottleneck
/// scans, bottlenecks picked by the canonical `(share, link index)`
/// order.
#[derive(Debug, Default)]
struct ReferenceSolver {
    /// Residual capacity per link (persistent scratch, refreshed only for
    /// used links).
    cap: Vec<u64>,
    /// Unfixed-flow count per link.
    cnt: Vec<usize>,
    /// Flows fixed at the current bottleneck.
    fixing: Vec<u64>,
}

impl ReferenceSolver {
    fn new(n_links: usize) -> Self {
        ReferenceSolver {
            cap: vec![0; n_links],
            cnt: vec![0; n_links],
            fixing: Vec::new(),
        }
    }
}

impl FlowSolver for ReferenceSolver {
    fn solve(&mut self, ctx: SolveCtx<'_>, touched: &mut Vec<u64>) {
        let SolveCtx {
            capacity_bps,
            flows,
            flows_per_link,
            used_links,
            used_mask,
            ..
        } = ctx;
        if flows.is_empty() {
            return;
        }
        // Prune links that stopped carrying flows; refresh the residual
        // capacity and unfixed count of the rest.
        let (cap, cnt) = (&mut self.cap, &mut self.cnt);
        used_links.retain(|&li| {
            if flows_per_link[li].is_empty() {
                used_mask[li] = false;
                false
            } else {
                cap[li] = capacity_bps[li];
                cnt[li] = flows_per_link[li].len();
                true
            }
        });
        let mut unfixed = flows.len();
        for (k, f) in flows.iter_mut() {
            f.fixed = false;
            touched.push(k);
        }
        while unfixed > 0 {
            // Bottleneck: minimal (fair share, link index) among loaded
            // links — the canonical order both solver arms share.
            let mut bottleneck: Option<(usize, u64)> = None;
            for &li in used_links.iter() {
                if cnt[li] == 0 {
                    continue;
                }
                let share = cap[li] / cnt[li] as u64;
                let better = match bottleneck {
                    None => true,
                    Some((bl, s)) => share < s || (share == s && li < bl),
                };
                if better {
                    bottleneck = Some((li, share));
                }
            }
            let Some((bl, share)) = bottleneck else {
                // No loaded links left: remaining flows are route-less
                // (cannot happen given add_flow's assertion) — fix at 0.
                for (_, f) in flows.iter_mut() {
                    if !f.fixed {
                        f.fixed = true;
                        f.new_rate = 0;
                        f.new_bottleneck = NO_BOTTLENECK;
                    }
                }
                break;
            };
            // Fix every unfixed flow crossing the bottleneck at the share.
            self.fixing.clear();
            self.fixing.extend(
                flows_per_link[bl]
                    .iter()
                    .copied()
                    .filter(|&k| !flows.get(k).expect("indexed flow exists").fixed),
            );
            debug_assert!(!self.fixing.is_empty());
            for &key in &self.fixing {
                let f = flows.get_mut(key).expect("flow exists");
                f.fixed = true;
                f.new_rate = share;
                f.new_bottleneck = bl as u32;
                unfixed -= 1;
                for &l in f.links.as_slice() {
                    let li = l.0 as usize;
                    cap[li] -= share;
                    cnt[li] -= 1;
                }
            }
        }
    }
}

/// The production arm: bottleneck-aware incremental re-solve.
///
/// A change seeded at some links can only move the rate of flows whose
/// *bottleneck* is transitively affected. The solver pulls exactly those
/// flows into a dirty set (plus, via a post-solve audit, any flow whose
/// reserved rate a dirty link can no longer honor), charges every
/// untouched flow crossing a dirty link as a fixed capacity reservation,
/// and re-runs progressive filling on the sub-problem with bottleneck
/// selection driven by a [`LazyHeap`] over link fair shares. Because
/// shares are exact integers, the reservation sums are order-independent
/// and the sub-problem reproduces the global solve's rates bitwise.
#[derive(Debug, Default)]
struct IncrementalSolver {
    /// Residual capacity per link (valid for dirty links during a solve).
    cap: Vec<u64>,
    /// Unfixed-flow count per link.
    cnt: Vec<usize>,
    /// Bottleneck selector over dirty links, keyed by fair share with
    /// deterministic (share, link) tie-breaking. Entries are refreshed
    /// lazily: a popped entry whose share is stale (fair shares only rise
    /// within a fill) is re-pushed at its current value, which preserves
    /// the canonical pop order without per-(flow × link) heap updates.
    heap: LazyHeap<u64>,
    /// The dirty link set of the current solve (doubles as a worklist).
    dirty_links: Vec<usize>,
    /// `dirty_mask[li]` ⇔ `li ∈ dirty_links` (cleared after each solve).
    dirty_mask: Vec<bool>,
    /// The flows being re-solved.
    dirty_flows: Vec<u64>,
    /// Dirty flows crossing each dirty link (the fill phase's fixing
    /// candidates; valid for dirty links during a solve).
    dirty_list: Vec<Vec<u64>>,
    /// Σ rate of the dirty flows crossing each dirty link: subtracted
    /// from the link's reserved-rate aggregate to get the sub-problem
    /// budget without scanning the full per-link flow list.
    dirty_units: Vec<u64>,
    /// Flows bottlenecked at each link — the pull index. Entries are
    /// lazy (dead or re-bottlenecked flows are dropped when their link's
    /// list is drained); every solve re-registers its dirty flows.
    cohort: Vec<Vec<u64>>,
    /// The fair level each popped bottleneck imposed, for the audit:
    /// `(link, level)` per progressive-filling round.
    levels: Vec<(usize, u64)>,
    /// A persistent upper bound on the rate of any flow crossing each
    /// link (ratcheted up at fix time, tightened by clean audit scans).
    /// Gates the audit: a popped level at or above the bound cannot have
    /// undercut any reservation, so the per-flow scan is skipped —
    /// which is the common case when completions *raise* levels.
    res_max: Vec<u64>,
}

impl IncrementalSolver {
    fn new(n_links: usize) -> Self {
        IncrementalSolver {
            cap: vec![0; n_links],
            cnt: vec![0; n_links],
            heap: LazyHeap::new(),
            dirty_links: Vec::new(),
            dirty_mask: vec![false; n_links],
            dirty_flows: Vec::new(),
            dirty_list: vec![Vec::new(); n_links],
            dirty_units: vec![0; n_links],
            cohort: vec![Vec::new(); n_links],
            levels: Vec::new(),
            res_max: vec![0; n_links],
        }
    }

    /// Marks `li` dirty (idempotent), resetting its per-solve dirty-flow
    /// accumulators. Flows it can re-rate are pulled by the worklist pass
    /// in [`solve`](FlowSolver::solve).
    fn mark_link(&mut self, li: usize) {
        if self.dirty_mask[li] {
            return;
        }
        self.dirty_mask[li] = true;
        self.dirty_links.push(li);
        self.dirty_list[li].clear();
        self.dirty_units[li] = 0;
    }

    /// Pulls `fk` into the dirty set (idempotent), dirtying its links and
    /// crediting its current rate back to their budgets.
    fn pull_flow(&mut self, fk: u64, flows: &mut SlotWindow<FlowState>) {
        let f = flows.get_mut(fk).expect("indexed flow exists");
        if !f.fixed {
            return;
        }
        f.fixed = false;
        self.dirty_flows.push(fk);
        let rate = f.rate_units;
        for &l in f.links.as_slice() {
            let li = l.0 as usize;
            self.mark_link(li);
            self.dirty_list[li].push(fk);
            self.dirty_units[li] += rate;
        }
    }
}

impl FlowSolver for IncrementalSolver {
    fn solve(&mut self, ctx: SolveCtx<'_>, touched: &mut Vec<u64>) {
        let SolveCtx {
            capacity_bps,
            flows,
            flows_per_link,
            seeds,
            seed_flows,
            reserved_units,
            ..
        } = ctx;
        // Seed the dirty set; flows whose bottleneck is (or becomes) a
        // dirty link are pulled in via the cohort worklist below.
        self.dirty_links.clear();
        self.dirty_flows.clear();
        for &li in seeds {
            self.mark_link(li);
        }
        for &fk in seed_flows {
            self.pull_flow(fk, flows);
        }
        loop {
            // Pull phase: drain every dirty link's cohort — the flows
            // whose defining constraint is being re-solved. Pulled flows
            // dirty their links, which may expose further cohorts; every
            // dirty flow re-registers at the end of the solve, so drained
            // lists lose nothing.
            let mut i = 0;
            while i < self.dirty_links.len() {
                let li = self.dirty_links[i];
                i += 1;
                let mut list = std::mem::take(&mut self.cohort[li]);
                for fk in list.drain(..) {
                    // Lazy entries: skip flows that died or moved their
                    // bottleneck elsewhere since registration.
                    if flows.get(fk).is_some_and(|f| f.bottleneck == li as u32) {
                        self.pull_flow(fk, flows);
                    }
                }
                self.cohort[li] = list;
            }
            // Budget phase: a dirty link's sub-problem budget is its
            // capacity minus the reserved rates of untouched flows
            // crossing it — derived from the incrementally-maintained
            // per-link rate aggregate, O(1) per link. Exact integers make
            // the residual equal what the global solve would carry into
            // this link's bottleneck round.
            let (cap, cnt) = (&mut self.cap, &mut self.cnt);
            self.heap.clear();
            for &li in &self.dirty_links {
                let reserved = reserved_units[li] - self.dirty_units[li];
                let budget = capacity_bps[li]
                    .checked_sub(reserved)
                    .expect("reservations never exceed capacity");
                let c = self.dirty_list[li].len();
                cap[li] = budget;
                cnt[li] = c;
                if c > 0 {
                    self.heap.update(li, budget / c as u64);
                }
            }
            // Fill phase: progressive filling over the sub-problem.
            self.levels.clear();
            let mut unfixed = self.dirty_flows.len();
            while unfixed > 0 {
                let Some((bl, stale_share)) = self.heap.pop() else {
                    // Defensive: every dirty flow crosses a dirty link
                    // with itself counted, so the heap cannot run dry
                    // while flows are unfixed. Fix stragglers at zero,
                    // parked on their first link so a later change there
                    // re-rates them.
                    for &fk in &self.dirty_flows {
                        let f = flows.get_mut(fk).expect("dirty flow exists");
                        if !f.fixed {
                            f.fixed = true;
                            f.new_rate = 0;
                            f.new_bottleneck =
                                f.links.as_slice().first().map_or(NO_BOTTLENECK, |l| l.0);
                        }
                    }
                    break;
                };
                if cnt[bl] == 0 {
                    continue; // emptied passively since its last push
                }
                // Lazy revalidation: shares only rise as flows fix, so a
                // stale entry is an optimistic lower bound — re-push the
                // current share and keep popping. The first validated pop
                // is exactly the canonical (share, link) minimum.
                let share = cap[bl] / cnt[bl] as u64;
                if share != stale_share {
                    self.heap.update(bl, share);
                    continue;
                }
                self.levels.push((bl, share));
                // Fix every unfixed dirty flow crossing the bottleneck
                // at the share (one pass; the list is taken out so the
                // per-link residuals can be updated while iterating).
                let list = std::mem::take(&mut self.dirty_list[bl]);
                let mut fixed_any = false;
                for &key in &list {
                    let f = flows.get_mut(key).expect("flow exists");
                    if f.fixed {
                        continue;
                    }
                    f.fixed = true;
                    f.new_rate = share;
                    f.new_bottleneck = bl as u32;
                    fixed_any = true;
                    unfixed -= 1;
                    for &l in f.links.as_slice() {
                        let li = l.0 as usize;
                        cap[li] -= share;
                        cnt[li] -= 1;
                        self.res_max[li] = self.res_max[li].max(share);
                    }
                }
                self.dirty_list[bl] = list;
                debug_assert!(fixed_any);
            }
            // Audit phase: a reservation is only valid while its flow
            // stays bottlenecked elsewhere at or below every dirty
            // link's new level. If a popped bottleneck's level fell
            // below a reserved rate, that flow must be re-rated here —
            // pull it and re-solve the grown sub-problem (rare: it
            // means the change shifted which link constrains the flow).
            let mut grew = false;
            for level_idx in 0..self.levels.len() {
                let (li, level) = self.levels[level_idx];
                // No flow on `li` exceeds `res_max[li]`: a level at or
                // above it cannot have undercut any reservation.
                if self.res_max[li] <= level {
                    continue;
                }
                let mut seen_max = 0u64;
                let mut pulled_here = false;
                for &fk in &flows_per_link[li] {
                    let f = flows.get(fk).expect("indexed flow exists");
                    seen_max = seen_max.max(f.rate_units.max(f.new_rate));
                    // Dirty flows (just re-rated here) are recognized by
                    // their pre-solve bottleneck being a dirty link;
                    // reservations keep a non-dirty bottleneck.
                    let reserved =
                        f.bottleneck != NO_BOTTLENECK && !self.dirty_mask[f.bottleneck as usize];
                    if reserved && f.rate_units > level {
                        self.pull_flow(fk, flows);
                        grew = true;
                        pulled_here = true;
                    }
                }
                if !pulled_here {
                    // Clean scan: tighten the bound to what is actually
                    // on the link right now.
                    self.res_max[li] = seen_max;
                }
            }
            if !grew {
                break;
            }
            // Undo tentative fixes so the next iteration re-solves every
            // dirty flow from scratch.
            for &fk in &self.dirty_flows {
                flows.get_mut(fk).expect("dirty flow exists").fixed = false;
            }
        }
        // Re-register every dirty flow under its (possibly new)
        // bottleneck — the pull index the next solve will consult.
        for &fk in &self.dirty_flows {
            let b = flows.get(fk).expect("dirty flow exists").new_bottleneck;
            if b != NO_BOTTLENECK {
                self.cohort[b as usize].push(fk);
            }
        }
        for &li in &self.dirty_links {
            self.dirty_mask[li] = false;
        }
        touched.extend_from_slice(&self.dirty_flows);
    }
}

/// The per-flow backend shared by the [`Reference`] and [`Incremental`]
/// arms: every flow carries its own rate, progress remainder, and
/// position-indexed due-heap entry; a [`FlowSolver`] recomputes rates
/// and the diff pass settles/retimes exactly the flows whose rate
/// changed. (The [`Cohort`] arm replaces this whole engine with
/// cell-level accounting — see the `flow_cohort` module.)
///
/// [`Reference`]: FlowSolverKind::Reference
/// [`Incremental`]: FlowSolverKind::Incremental
/// [`Cohort`]: FlowSolverKind::Cohort
#[derive(Debug)]
pub(crate) struct PerFlowNet {
    capacity_bps: Vec<u64>,
    /// Active flows, keyed by admission order (internal keys — callers
    /// address flows by their [`FlowId`], carried inside the state).
    flows: SlotWindow<FlowState>,
    flows_per_link: Vec<Vec<u64>>,
    /// Link indices that may carry flows, lazily pruned by the reference
    /// solver (the incremental solver works from the dirty set instead).
    used_links: Vec<usize>,
    used_mask: Vec<bool>,
    solver: Box<dyn FlowSolver>,
    completed: Vec<CompletedFlow>,
    total_admitted: u64,
    /// Recycled flow states: completed flows return here so admissions
    /// reuse their route-vector allocations.
    pool: Vec<FlowState>,
    /// Seed links of the pending re-solve (flow membership changed).
    seed_links: Vec<usize>,
    /// Seed flows of the pending re-solve (just admitted; must be rated).
    seed_flows: Vec<u64>,
    /// Sim time of the pending admission batch (batches never span two
    /// instants; debug-asserted).
    pending_since: SimTime,
    /// Σ rate of all flows crossing each link, maintained by the diff
    /// pass — the incremental solver's O(1) budget source.
    reserved_units: Vec<u64>,
    /// Flows the current solve touched (diff-pass input).
    scratch_touched: Vec<u64>,
    /// Size of the most recent solve's touched (dirty) flow set — an
    /// observability stat for the incremental solver's locality.
    last_solve_touched: usize,
    /// Flows detected complete during the diff pass.
    scratch_done: Vec<u64>,
    /// Projected completions: a position-indexed min-heap over `(due,
    /// key)` with exactly one entry per rated flow (flows track their
    /// slot in `heap_pos`), so rate deltas update entries in place —
    /// no stale entries, no generation churn, O(1) peek.
    due_heap: Vec<(SimTime, u64)>,
}

/// `topo`'s link capacities in rate units (2⁻²⁰ bps).
pub(crate) fn link_capacities(topo: &Topology) -> Vec<u64> {
    topo.links()
        .iter()
        .map(|l| {
            l.rate_bps
                .checked_mul(RATE_UNIT_PER_BPS)
                .expect("link rate fits the fixed-point range (< ~17 Tb/s)")
        })
        .collect()
}

impl PerFlowNet {
    /// Creates a per-flow network over `topo`'s links with the given
    /// (per-flow) solver arm.
    fn with_solver(topo: &Topology, kind: FlowSolverKind) -> Self {
        let capacity_bps = link_capacities(topo);
        let n = capacity_bps.len();
        let solver: Box<dyn FlowSolver> = match kind {
            FlowSolverKind::Reference => Box::new(ReferenceSolver::new(n)),
            FlowSolverKind::Incremental => Box::new(IncrementalSolver::new(n)),
            FlowSolverKind::Cohort => unreachable!("cohort uses the cell backend"),
        };
        PerFlowNet {
            capacity_bps,
            flows: SlotWindow::new(),
            flows_per_link: vec![Vec::new(); n],
            used_links: Vec::new(),
            used_mask: vec![false; n],
            solver,
            completed: Vec::new(),
            total_admitted: 0,
            pool: Vec::new(),
            seed_links: Vec::new(),
            seed_flows: Vec::new(),
            pending_since: SimTime::ZERO,
            reserved_units: vec![0; n],
            scratch_touched: Vec::new(),
            last_solve_touched: 0,
            scratch_done: Vec::new(),
            due_heap: Vec::new(),
        }
    }

    /// Admits a flow of `bytes` over `links` at `now`, re-solves the
    /// affected component, and returns the flow's key. Reschedule the
    /// completion check if [`next_due`](Self::next_due) moved earlier.
    ///
    /// # Panics
    ///
    /// Panics if the flow id is already active, the route is empty (same-
    /// host transfers never reach the network), or `bytes == 0`.
    pub fn add_flow(
        &mut self,
        now: SimTime,
        id: FlowId,
        src: NodeId,
        dst: NodeId,
        links: &[LinkId],
        bytes: u64,
    ) -> u64 {
        let key = self.add_flow_batched(now, id, src, dst, links, bytes);
        self.flush(now);
        key
    }

    /// Like [`add_flow`](Self::add_flow) but defers the re-solve,
    /// accumulating seeds until [`flush`](Self::flush) (or any reading
    /// call that flushes) runs. Admissions that land in the same event —
    /// a task's inbound transfer fan-in — share one re-solve this way;
    /// with max-min fairness the final rates only depend on the final
    /// flow set, so batching at one instant is exact.
    ///
    /// # Panics
    ///
    /// As [`add_flow`](Self::add_flow); additionally (debug) if a batch
    /// spans two distinct sim times without an intervening flush.
    pub fn add_flow_batched(
        &mut self,
        now: SimTime,
        id: FlowId,
        src: NodeId,
        dst: NodeId,
        links: &[LinkId],
        bytes: u64,
    ) -> u64 {
        assert!(!links.is_empty(), "flow with empty route");
        assert!(bytes > 0, "flow with no data");
        debug_assert!(
            self.flows.iter().all(|(_, f)| f.id != id),
            "flow id {id} reused while active"
        );
        let mut st = self.pool.pop().unwrap_or_else(|| FlowState {
            id,
            links: RouteLinks::default(),
            remaining: 0,
            rate_units: 0,
            new_rate: 0,
            bottleneck: NO_BOTTLENECK,
            new_bottleneck: NO_BOTTLENECK,
            last_update: now,
            src,
            dst,
            started: now,
            total: 0,
            heap_pos: NO_HEAP,
            fixed: true,
        });
        st.id = id;
        st.links.set(links);
        st.remaining = progress_units(bytes);
        st.rate_units = 0;
        st.new_rate = 0;
        st.bottleneck = NO_BOTTLENECK;
        st.last_update = now;
        st.src = src;
        st.dst = dst;
        st.started = now;
        st.total = st.remaining;
        debug_assert_eq!(st.heap_pos, NO_HEAP, "recycled state left in heap");
        st.fixed = true;
        st.new_bottleneck = NO_BOTTLENECK;
        let key = self.flows.insert(st);
        debug_assert!(
            self.seed_flows.is_empty() || self.pending_since == now,
            "a batch must not span sim times; flush first"
        );
        self.pending_since = now;
        for &l in links {
            let li = l.0 as usize;
            if !self.used_mask[li] {
                self.used_mask[li] = true;
                self.used_links.push(li);
            }
            self.flows_per_link[li].push(key);
            self.seed_links.push(li);
        }
        self.seed_flows.push(key);
        self.total_admitted += 1;
        key
    }

    /// Re-solves any batched admissions. A no-op when none are pending.
    pub fn flush(&mut self, now: SimTime) {
        if self.seed_flows.is_empty() && self.seed_links.is_empty() {
            return;
        }
        debug_assert_eq!(self.pending_since, now, "batch flushed at a later instant");
        self.resolve(now);
    }

    // --------------------------------------------------------------
    // The due-heap: a position-indexed binary min-heap over
    // `(due, key)`. One entry per rated flow; `FlowState::heap_pos`
    // tracks the slot so a rate delta updates the entry in place.
    // Associated functions (not `&mut self`) so callers can borrow
    // `flows` and `due_heap` out of a destructured `FlowNet`.
    // --------------------------------------------------------------

    /// Sets (inserting if absent) `key`'s projected completion.
    fn due_update(
        flows: &mut SlotWindow<FlowState>,
        heap: &mut Vec<(SimTime, u64)>,
        key: u64,
        due: SimTime,
    ) {
        let f = flows.get_mut(key).expect("rated flow exists");
        let pos = f.heap_pos;
        if pos == NO_HEAP {
            let i = heap.len();
            f.heap_pos = i as u32;
            heap.push((due, key));
            Self::due_sift_up(flows, heap, i);
        } else {
            let i = pos as usize;
            let rose = due > heap[i].0;
            heap[i].0 = due;
            if rose {
                Self::due_sift_down(flows, heap, i);
            } else {
                Self::due_sift_up(flows, heap, i);
            }
        }
    }

    /// Drops `key`'s entry, if any.
    fn due_remove(flows: &mut SlotWindow<FlowState>, heap: &mut Vec<(SimTime, u64)>, key: u64) {
        let pos = flows.get(key).expect("flow exists").heap_pos;
        if pos == NO_HEAP {
            return;
        }
        flows.get_mut(key).expect("still live").heap_pos = NO_HEAP;
        let i = pos as usize;
        let last = heap.len() - 1;
        if i != last {
            heap.swap(i, last);
            heap.pop();
            let moved = heap[i].1;
            flows.get_mut(moved).expect("heap entry is live").heap_pos = i as u32;
            // The moved entry may need to travel either way.
            Self::due_sift_down(flows, heap, i);
            Self::due_sift_up(flows, heap, i);
        } else {
            heap.pop();
        }
    }

    fn due_sift_up(flows: &mut SlotWindow<FlowState>, heap: &mut [(SimTime, u64)], mut i: usize) {
        let start = i;
        while i > 0 {
            let parent = (i - 1) / 2;
            if heap[i] < heap[parent] {
                heap.swap(i, parent);
                flows.get_mut(heap[i].1).expect("live").heap_pos = i as u32;
                i = parent;
            } else {
                break;
            }
        }
        if i != start {
            flows.get_mut(heap[i].1).expect("live").heap_pos = i as u32;
        }
    }

    fn due_sift_down(flows: &mut SlotWindow<FlowState>, heap: &mut [(SimTime, u64)], mut i: usize) {
        let start = i;
        let n = heap.len();
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            if l >= n {
                break;
            }
            let m = if r < n && heap[r] < heap[l] { r } else { l };
            if heap[m] < heap[i] {
                heap.swap(i, m);
                flows.get_mut(heap[i].1).expect("live").heap_pos = i as u32;
                i = m;
            } else {
                break;
            }
        }
        if i != start {
            flows.get_mut(heap[i].1).expect("live").heap_pos = i as u32;
        }
    }

    /// The earliest projected completion among active flows (exact — the
    /// indexed heap holds no stale entries, and O(1)). Arm one calendar
    /// event at this instant. Batched admissions must be flushed first.
    pub fn next_due(&mut self) -> Option<SimTime> {
        debug_assert!(
            self.seed_flows.is_empty() && self.seed_links.is_empty(),
            "flush batched admissions before reading completions"
        );
        self.due_heap.first().map(|&(due, _)| due)
    }

    /// Completes every flow whose projection is due at or before `now`
    /// (they land in [`take_completed`](Self::take_completed) in
    /// deterministic `(due, key)` order), then re-solves the freed
    /// component(s) in one batch, retiming neighbors whose rate changed.
    /// A no-op when nothing is due.
    pub fn advance_due(&mut self, now: SimTime) {
        self.flush(now);
        self.advance_due_inner(now);
    }

    fn advance_due_inner(&mut self, now: SimTime) {
        self.seed_links.clear();
        self.seed_flows.clear();
        let mut any = false;
        while let Some(&(due, key)) = self.due_heap.first() {
            if due > now {
                break;
            }
            let f = self.flows.get_mut(key).expect("heap entry is live");
            f.settle(now);
            if f.remaining > 0 {
                // Unreachable under exact progress accounting (an
                // entry's due *is* the first instant the payload has
                // drained); kept as a defensive re-push so a projection
                // bug degrades to a late completion, not a stuck loop.
                debug_assert!(false, "flow past due with progress left");
                let corrected = f.due(now);
                let PerFlowNet {
                    flows, due_heap, ..
                } = self;
                Self::due_update(flows, due_heap, key, corrected);
                continue;
            }
            self.unlink(key, true);
            any = true;
        }
        if any {
            self.resolve(now);
        }
    }

    /// Cancels a live flow (no completion is reported), re-solving the
    /// freed component. Returns `false` if the key is not live.
    pub fn remove_flow(&mut self, now: SimTime, flow: u64) -> bool {
        self.flush(now);
        if !self.flows.contains(flow) {
            return false;
        }
        self.seed_links.clear();
        self.seed_flows.clear();
        self.unlink(flow, false);
        self.resolve(now);
        true
    }

    /// Removes `flow` from the tables, extending `seed_links` with its
    /// links and optionally reporting it completed.
    fn unlink(&mut self, flow: u64, completed: bool) {
        {
            let PerFlowNet {
                flows, due_heap, ..
            } = self;
            Self::due_remove(flows, due_heap, flow);
        }
        let f = self.flows.remove(flow).expect("live flow");
        for &l in f.links.as_slice() {
            let li = l.0 as usize;
            self.flows_per_link[li].retain(|&x| x != flow);
            self.seed_links.push(li);
            self.reserved_units[li] -= f.rate_units;
        }
        if completed {
            self.completed.push(CompletedFlow {
                id: f.id,
                src: f.src,
                dst: f.dst,
                started: f.started,
            });
        }
        self.pool.push(f);
    }

    /// Re-solves from the current `seed_links`, settles and retimes the
    /// flows whose rate changed, and completes (then cascades over) flows
    /// that turn out to be already done at `now`.
    fn resolve(&mut self, now: SimTime) {
        loop {
            let mut touched = std::mem::take(&mut self.scratch_touched);
            let mut done = std::mem::take(&mut self.scratch_done);
            touched.clear();
            done.clear();
            {
                let PerFlowNet {
                    capacity_bps,
                    flows,
                    flows_per_link,
                    used_links,
                    used_mask,
                    solver,
                    seed_links,
                    seed_flows,
                    reserved_units,
                    ..
                } = self;
                solver.solve(
                    SolveCtx {
                        capacity_bps,
                        flows,
                        flows_per_link,
                        used_links,
                        used_mask,
                        seeds: seed_links,
                        seed_flows,
                        reserved_units,
                    },
                    &mut touched,
                );
            }
            self.seed_flows.clear();
            self.last_solve_touched = touched.len();
            // Diff order does not matter: reserved-sum updates commute,
            // the indexed due-heap pops by `(due, key)` regardless of
            // update order, and the completion batch is sorted below —
            // every observable is canonical without sorting `touched`.
            {
                let PerFlowNet {
                    flows,
                    reserved_units,
                    due_heap,
                    ..
                } = self;
                for &key in &touched {
                    let f = flows.get_mut(key).expect("touched flow exists");
                    debug_assert!(f.fixed, "solver left a flow unfixed");
                    // The bottleneck assignment can shift even at an
                    // unchanged rate (ties); promote it unconditionally.
                    f.bottleneck = f.new_bottleneck;
                    if f.new_rate == f.rate_units {
                        continue;
                    }
                    f.settle(now);
                    if f.remaining == 0 {
                        // Already finished under its old rate: complete
                        // it now instead of retiming (its own event may
                        // be stale).
                        done.push(key);
                        continue;
                    }
                    for &l in f.links.as_slice() {
                        let li = l.0 as usize;
                        reserved_units[li] = reserved_units[li] - f.rate_units + f.new_rate;
                    }
                    f.rate_units = f.new_rate;
                    if f.rate_units > 0 {
                        let due = f.due(now);
                        Self::due_update(flows, due_heap, key, due);
                    } else {
                        Self::due_remove(flows, due_heap, key);
                    }
                }
            }
            self.seed_links.clear();
            let finished = done.is_empty();
            // Completions must reach the caller in canonical (admission)
            // order whatever order the diff visited them in.
            done.sort_unstable();
            for &key in &done {
                self.unlink(key, true);
            }
            self.scratch_touched = touched;
            self.scratch_done = done;
            if finished {
                return;
            }
            // Completions freed capacity: cascade a re-solve seeded at
            // their links.
        }
    }

    /// Drains the flows that have completed since the last call.
    pub fn take_completed(&mut self) -> Vec<CompletedFlow> {
        std::mem::take(&mut self.completed)
    }

    /// Drains the completed flows without surrendering the buffer
    /// (allocation-free on the driving simulation's hot path).
    pub fn drain_completed(&mut self) -> std::vec::Drain<'_, CompletedFlow> {
        self.completed.drain(..)
    }

    /// The projected completion of a live flow with a positive rate (an
    /// observer for tests and tools — the driving simulation arms a
    /// single event at [`next_due`](Self::next_due) instead).
    pub fn completion_of(&self, flow: u64) -> Option<SimTime> {
        let f = self.flows.get(flow)?;
        if f.rate_units == 0 {
            return None;
        }
        Some(
            f.last_update
                .saturating_add(due_after(f.remaining, f.rate_units)),
        )
    }

    /// Number of active flows.
    pub fn active_flows(&self) -> usize {
        self.flows.len()
    }

    /// Total flows ever admitted.
    pub fn total_admitted(&self) -> u64 {
        self.total_admitted
    }

    /// Size of the most recent re-solve's dirty flow set (the flows whose
    /// rate the solver recomputed) — 0 before any solve. A locality
    /// observable for the incremental solver, sampled by the metrics
    /// probes.
    pub fn last_solve_touched(&self) -> usize {
        self.last_solve_touched
    }

    /// The current fair rate of `id` in bits/second, if active (a linear
    /// scan — an observer for tests and reports, not the event hot path).
    pub fn flow_rate_bps(&self, id: FlowId) -> Option<f64> {
        self.find(id).map(|f| f.rate_bps())
    }

    /// Fraction of `id`'s bytes delivered by `now` (in `[0, 1]`), if
    /// active (a linear scan — an observer, not the event hot path).
    pub fn flow_progress(&self, id: FlowId, now: SimTime) -> Option<f64> {
        self.find(id).map(|f| {
            let dt = now.saturating_duration_since(f.last_update).as_nanos();
            let rem = f.remaining.saturating_sub(drained_units(f.rate_units, dt));
            1.0 - (rem as f64 / f.total as f64).clamp(0.0, 1.0)
        })
    }

    fn find(&self, id: FlowId) -> Option<&FlowState> {
        self.flows.iter().find(|(_, f)| f.id == id).map(|(_, f)| f)
    }

    /// Test-only state dump: `(id, rate, bottleneck link, route)` per live
    /// flow, sorted by id.
    #[cfg(test)]
    fn dump(&self) -> Vec<(u64, u64, u32, Vec<u32>)> {
        let mut v: Vec<_> = self
            .flows
            .iter()
            .map(|(_, f)| {
                (
                    f.id.0,
                    f.rate_units,
                    f.bottleneck,
                    f.links.as_slice().iter().map(|l| l.0).collect(),
                )
            })
            .collect();
        v.sort();
        v
    }

    /// Fraction of `link`'s capacity currently allocated.
    pub fn link_utilization(&self, link: LinkId) -> f64 {
        let cap = self.capacity_bps[link.0 as usize];
        if cap == 0 {
            return 0.0;
        }
        let used: u64 = self.flows_per_link[link.0 as usize]
            .iter()
            .filter_map(|&k| self.flows.get(k))
            .map(|f| f.rate_units)
            .sum();
        used as f64 / cap as f64
    }

    /// Number of active flows crossing `link`.
    pub fn flows_on_link(&self, link: LinkId) -> usize {
        self.flows_per_link[link.0 as usize].len()
    }
}

/// Max-min fair flow-level network model with incremental re-solve and
/// delta-driven completion retiming, behind one of three solver arms
/// (see [`FlowSolverKind`]): the per-flow `reference` and `incremental`
/// oracle arms, and the cohort-cell `cohort` arm for overloaded
/// fabrics. All three retrace byte-identical trajectories on the same
/// admission sequence.
///
/// # Examples
///
/// ```
/// use holdcsim_network::flow::FlowNet;
/// use holdcsim_network::ids::FlowId;
/// use holdcsim_network::routing::Router;
/// use holdcsim_network::topologies::{star, LinkSpec};
/// use holdcsim_des::time::SimTime;
///
/// let built = star(4, LinkSpec::gigabit());
/// let mut router = Router::new();
/// let mut net = FlowNet::new(&built.topology);
/// let route = router
///     .route(&built.topology, built.hosts[0], built.hosts[1], 0)
///     .unwrap();
/// let t0 = SimTime::ZERO;
/// net.add_flow(t0, FlowId(1), built.hosts[0], built.hosts[1], &route.links, 125_000_000);
/// // Alone on 1 GbE: 1 Gbit = 125 MB takes exactly 1 s.
/// let due = net.next_due().unwrap();
/// assert!((due.as_secs_f64() - 1.0).abs() < 1e-6);
/// net.advance_due(due);
/// assert_eq!(net.take_completed().len(), 1);
/// ```
#[derive(Debug)]
pub struct FlowNet {
    inner: NetImpl,
}

/// The backend selected by [`FlowNet::with_solver`]: the per-flow
/// engine (reference/incremental solvers) or the cohort-cell engine.
// One instance lives per simulation (inside NetState), so the variant
// size gap costs nothing; boxing would add a pointer chase to every
// solver call.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
enum NetImpl {
    PerFlow(PerFlowNet),
    Cohort(CohortNet),
}

/// Forwards a method through both backends.
macro_rules! forward {
    ($self:ident, $net:ident => $body:expr) => {
        match &$self.inner {
            NetImpl::PerFlow($net) => $body,
            NetImpl::Cohort($net) => $body,
        }
    };
    (mut $self:ident, $net:ident => $body:expr) => {
        match &mut $self.inner {
            NetImpl::PerFlow($net) => $body,
            NetImpl::Cohort($net) => $body,
        }
    };
}

impl FlowNet {
    /// Creates a flow network over `topo`'s links with the default
    /// (incremental) solver.
    pub fn new(topo: &Topology) -> Self {
        Self::with_solver(topo, FlowSolverKind::default())
    }

    /// Creates a flow network over `topo`'s links with the given solver
    /// arm.
    pub fn with_solver(topo: &Topology, kind: FlowSolverKind) -> Self {
        let inner = match kind {
            FlowSolverKind::Cohort => NetImpl::Cohort(CohortNet::new(topo)),
            _ => NetImpl::PerFlow(PerFlowNet::with_solver(topo, kind)),
        };
        FlowNet { inner }
    }

    /// Admits a flow of `bytes` over `links` at `now`, re-solves the
    /// affected component, and returns the flow's key. Reschedule the
    /// completion check if [`next_due`](Self::next_due) moved earlier.
    ///
    /// # Panics
    ///
    /// Panics if the flow id is already active, the route is empty (same-
    /// host transfers never reach the network), or `bytes == 0`.
    pub fn add_flow(
        &mut self,
        now: SimTime,
        id: FlowId,
        src: NodeId,
        dst: NodeId,
        links: &[LinkId],
        bytes: u64,
    ) -> u64 {
        forward!(mut self, n => n.add_flow(now, id, src, dst, links, bytes))
    }

    /// Like [`add_flow`](Self::add_flow) but defers the re-solve,
    /// accumulating seeds until [`flush`](Self::flush) (or any reading
    /// call that flushes) runs. Admissions that land in the same event —
    /// a task's inbound transfer fan-in — share one re-solve this way;
    /// with max-min fairness the final rates only depend on the final
    /// flow set, so batching at one instant is exact.
    ///
    /// # Panics
    ///
    /// As [`add_flow`](Self::add_flow); additionally (debug) if a batch
    /// spans two distinct sim times without an intervening flush.
    pub fn add_flow_batched(
        &mut self,
        now: SimTime,
        id: FlowId,
        src: NodeId,
        dst: NodeId,
        links: &[LinkId],
        bytes: u64,
    ) -> u64 {
        forward!(mut self, n => n.add_flow_batched(now, id, src, dst, links, bytes))
    }

    /// Re-solves any batched admissions. A no-op when none are pending.
    pub fn flush(&mut self, now: SimTime) {
        forward!(mut self, n => n.flush(now))
    }

    /// The earliest projected completion among active flows (exact in
    /// both backends — no stale entries are ever reported). Arm one
    /// calendar event at this instant. Batched admissions must be
    /// flushed first.
    pub fn next_due(&mut self) -> Option<SimTime> {
        forward!(mut self, n => n.next_due())
    }

    /// Completes every flow whose projection is due at or before `now`
    /// (they land in [`take_completed`](Self::take_completed) in
    /// deterministic `(due, key)` order), then re-solves the freed
    /// component(s) in one batch, retiming neighbors whose rate changed.
    /// A no-op when nothing is due.
    pub fn advance_due(&mut self, now: SimTime) {
        forward!(mut self, n => n.advance_due(now))
    }

    /// Cancels a live flow (no completion is reported), re-solving the
    /// freed component. Returns `false` if the key is not live.
    pub fn remove_flow(&mut self, now: SimTime, flow: u64) -> bool {
        forward!(mut self, n => n.remove_flow(now, flow))
    }

    /// Drains the flows that have completed since the last call.
    pub fn take_completed(&mut self) -> Vec<CompletedFlow> {
        forward!(mut self, n => n.take_completed())
    }

    /// Drains the completed flows without surrendering the buffer
    /// (allocation-free on the driving simulation's hot path).
    pub fn drain_completed(&mut self) -> std::vec::Drain<'_, CompletedFlow> {
        forward!(mut self, n => n.drain_completed())
    }

    /// The projected completion of a live flow with a positive rate (an
    /// observer for tests and tools — the driving simulation arms a
    /// single event at [`next_due`](Self::next_due) instead).
    pub fn completion_of(&self, flow: u64) -> Option<SimTime> {
        forward!(self, n => n.completion_of(flow))
    }

    /// Number of active flows.
    pub fn active_flows(&self) -> usize {
        forward!(self, n => n.active_flows())
    }

    /// Total flows ever admitted.
    pub fn total_admitted(&self) -> u64 {
        forward!(self, n => n.total_admitted())
    }

    /// Size of the most recent re-solve's dirty set, in flows (the flows
    /// whose rate the solver recomputed) — 0 before any solve. A
    /// locality observable sampled by the metrics probes.
    pub fn last_solve_touched(&self) -> usize {
        forward!(self, n => n.last_solve_touched())
    }

    /// The current fair rate of `id` in bits/second, if active (a linear
    /// scan — an observer for tests and reports, not the event hot path).
    pub fn flow_rate_bps(&self, id: FlowId) -> Option<f64> {
        forward!(self, n => n.flow_rate_bps(id))
    }

    /// Fraction of `id`'s bytes delivered by `now` (in `[0, 1]`), if
    /// active (a linear scan — an observer, not the event hot path).
    pub fn flow_progress(&self, id: FlowId, now: SimTime) -> Option<f64> {
        forward!(self, n => n.flow_progress(id, now))
    }

    /// Fraction of `link`'s capacity currently allocated.
    pub fn link_utilization(&self, link: LinkId) -> f64 {
        forward!(self, n => n.link_utilization(link))
    }

    /// Number of active flows crossing `link`.
    pub fn flows_on_link(&self, link: LinkId) -> usize {
        forward!(self, n => n.flows_on_link(link))
    }

    /// Test-only state dump: `(id, rate, bottleneck link, route)` per
    /// live flow, sorted by id.
    #[cfg(test)]
    pub(crate) fn dump(&self) -> Vec<(u64, u64, u32, Vec<u32>)> {
        forward!(self, n => n.dump())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::Router;
    use crate::topologies::{star, LinkSpec};
    use crate::topology::Topology;

    const GBE: u64 = 1_000_000_000;

    /// Two hosts joined by a single link through a switch.
    fn two_host_net() -> (Topology, Vec<NodeId>, Router) {
        let built = star(2, LinkSpec::gigabit());
        (built.topology, built.hosts, Router::new())
    }

    fn route_links(
        topo: &Topology,
        router: &mut Router,
        a: NodeId,
        b: NodeId,
        seed: u64,
    ) -> Vec<LinkId> {
        router.route(topo, a, b, seed).unwrap().links
    }

    /// Test driver: advances to and fires the earliest pending completion,
    /// returning the instant it fired at.
    fn fire_next(net: &mut FlowNet) -> Option<SimTime> {
        let due = net.next_due()?;
        net.advance_due(due);
        Some(due)
    }

    fn solver_kinds() -> [FlowSolverKind; 3] {
        [
            FlowSolverKind::Reference,
            FlowSolverKind::Incremental,
            FlowSolverKind::Cohort,
        ]
    }

    #[test]
    fn single_flow_gets_full_rate() {
        for kind in solver_kinds() {
            let (topo, hosts, mut router) = two_host_net();
            let mut net = FlowNet::with_solver(&topo, kind);
            let links = route_links(&topo, &mut router, hosts[0], hosts[1], 0);
            let key = net.add_flow(
                SimTime::ZERO,
                FlowId(1),
                hosts[0],
                hosts[1],
                &links,
                125_000_000,
            );
            assert_eq!(net.flow_rate_bps(FlowId(1)), Some(1e9));
            let t = net.completion_of(key).unwrap();
            assert!(
                (t.as_secs_f64() - 1.0).abs() < 1e-6,
                "finish {t} ({kind:?})"
            );
        }
    }

    #[test]
    fn two_flows_share_the_bottleneck_evenly() {
        for kind in solver_kinds() {
            let (topo, hosts, mut router) = two_host_net();
            let mut net = FlowNet::with_solver(&topo, kind);
            let links = route_links(&topo, &mut router, hosts[0], hosts[1], 0);
            net.add_flow(
                SimTime::ZERO,
                FlowId(1),
                hosts[0],
                hosts[1],
                &links,
                125_000_000,
            );
            net.add_flow(
                SimTime::ZERO,
                FlowId(2),
                hosts[0],
                hosts[1],
                &links,
                125_000_000,
            );
            assert_eq!(net.flow_rate_bps(FlowId(1)), Some(5e8));
            assert_eq!(net.flow_rate_bps(FlowId(2)), Some(5e8));
            assert!((net.link_utilization(links[0]) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn departure_releases_bandwidth_and_retimes_survivor() {
        for kind in solver_kinds() {
            let (topo, hosts, mut router) = two_host_net();
            let mut net = FlowNet::with_solver(&topo, kind);
            let links = route_links(&topo, &mut router, hosts[0], hosts[1], 0);
            // Flow 1: 125 MB, flow 2: 250 MB, admitted together.
            net.add_flow(
                SimTime::ZERO,
                FlowId(1),
                hosts[0],
                hosts[1],
                &links,
                125_000_000,
            );
            net.add_flow(
                SimTime::ZERO,
                FlowId(2),
                hosts[0],
                hosts[1],
                &links,
                250_000_000,
            );
            // At 0.5 Gb/s each, flow 1 finishes at t=2 s.
            let t1 = fire_next(&mut net).unwrap();
            assert!((t1.as_secs_f64() - 2.0).abs() < 1e-6, "t1 {t1}");
            let done = net.take_completed();
            assert_eq!(done.len(), 1);
            assert_eq!(done[0].id, FlowId(1));
            // Flow 2 now gets the full link: 1 Gb of its 2 Gb remain.
            let rate = net.flow_rate_bps(FlowId(2)).unwrap();
            assert!((rate - 1e9).abs() < 1.0, "rate {rate}");
            let t2 = fire_next(&mut net).unwrap();
            assert!((t2.as_secs_f64() - 3.0).abs() < 1e-6, "t2 {t2}");
            assert_eq!(net.take_completed()[0].id, FlowId(2));
            assert_eq!(net.active_flows(), 0);
        }
    }

    #[test]
    fn max_min_gives_unbottlenecked_flow_the_slack() {
        // Star with 3 hosts: flows A->C and B->C share C's link; flow A->B
        // only contends with A's portion.
        for kind in solver_kinds() {
            let built = star(3, LinkSpec::gigabit());
            let topo = built.topology;
            let h = built.hosts.clone();
            let mut router = Router::new();
            let mut net = FlowNet::with_solver(&topo, kind);
            let ac = route_links(&topo, &mut router, h[0], h[2], 0);
            let bc = route_links(&topo, &mut router, h[1], h[2], 0);
            let ab = route_links(&topo, &mut router, h[0], h[1], 0);
            net.add_flow(SimTime::ZERO, FlowId(1), h[0], h[2], &ac, 1_000_000);
            net.add_flow(SimTime::ZERO, FlowId(2), h[1], h[2], &bc, 1_000_000);
            net.add_flow(SimTime::ZERO, FlowId(3), h[0], h[1], &ab, 1_000_000);
            // C's downlink is the bottleneck: flows 1 and 2 get 0.5 Gb/s,
            // and max-min gives flow 3 min(0.5, 0.5) = 0.5 Gb/s of slack.
            assert!((net.flow_rate_bps(FlowId(1)).unwrap() - 5e8).abs() < 1.0);
            assert!((net.flow_rate_bps(FlowId(2)).unwrap() - 5e8).abs() < 1.0);
            assert!((net.flow_rate_bps(FlowId(3)).unwrap() - 5e8).abs() < 1.0);
        }
    }

    #[test]
    fn unchanged_rates_are_not_retimed() {
        // Two disjoint host pairs on a star share no links, so admitting
        // the second flow must leave the first's generation (and its
        // pending completion entry) untouched.
        let built = star(4, LinkSpec::gigabit());
        let topo = built.topology;
        let h = built.hosts.clone();
        let mut router = Router::new();
        let mut net = FlowNet::new(&topo);
        let ab = route_links(&topo, &mut router, h[0], h[1], 0);
        let cd = route_links(&topo, &mut router, h[2], h[3], 0);
        let k1 = net.add_flow(SimTime::ZERO, FlowId(1), h[0], h[1], &ab, 1_000_000);
        let before = net.completion_of(k1).unwrap();
        net.add_flow(
            SimTime::from_millis(1),
            FlowId(2),
            h[2],
            h[3],
            &cd,
            1_000_000,
        );
        assert_eq!(
            net.completion_of(k1).unwrap(),
            before,
            "disjoint admission must not settle or retime flow 1"
        );
        // Sharing the link *does* retime it (rate halves).
        net.add_flow(
            SimTime::from_millis(2),
            FlowId(3),
            h[0],
            h[1],
            &ab,
            1_000_000,
        );
        let after = net.completion_of(k1).unwrap();
        assert!(after > before, "halved rate pushes completion out");
    }

    #[test]
    fn superseded_projections_are_retimed_in_place() {
        let (topo, hosts, mut router) = two_host_net();
        let mut net = FlowNet::new(&topo);
        let links = route_links(&topo, &mut router, hosts[0], hosts[1], 0);
        net.add_flow(
            SimTime::ZERO,
            FlowId(1),
            hosts[0],
            hosts[1],
            &links,
            125_000_000,
        );
        let solo = net.next_due().unwrap();
        // A second flow on the same link halves flow 1's rate: the old
        // 1-second projection is superseded by the 2-second one.
        net.add_flow(
            SimTime::ZERO,
            FlowId(2),
            hosts[0],
            hosts[1],
            &links,
            125_000_000,
        );
        let shared = net.next_due().unwrap();
        assert!(shared > solo, "the due entry must move with the rate");
        // Advancing to the superseded (earlier) instant completes nothing.
        net.advance_due(solo);
        assert!(net.take_completed().is_empty());
        assert_eq!(net.active_flows(), 2);
    }

    #[test]
    fn remove_flow_releases_bandwidth_without_completion() {
        for kind in solver_kinds() {
            let (topo, hosts, mut router) = two_host_net();
            let mut net = FlowNet::with_solver(&topo, kind);
            let links = route_links(&topo, &mut router, hosts[0], hosts[1], 0);
            let k1 = net.add_flow(SimTime::ZERO, FlowId(1), hosts[0], hosts[1], &links, 1_000);
            net.add_flow(SimTime::ZERO, FlowId(2), hosts[0], hosts[1], &links, 1_000);
            assert!(net.remove_flow(SimTime::ZERO, k1));
            assert!(!net.remove_flow(SimTime::ZERO, k1), "already gone");
            assert!(net.take_completed().is_empty());
            assert_eq!(net.flow_rate_bps(FlowId(2)), Some(1e9));
        }
    }

    #[test]
    fn simultaneous_completions_cascade() {
        // Two identical flows finish at the same instant; completing the
        // first must sweep the second (settled to zero remaining by the
        // re-solve) into the same completion batch.
        let (topo, hosts, mut router) = two_host_net();
        let mut net = FlowNet::new(&topo);
        let links = route_links(&topo, &mut router, hosts[0], hosts[1], 0);
        net.add_flow(
            SimTime::ZERO,
            FlowId(1),
            hosts[0],
            hosts[1],
            &links,
            125_000_000,
        );
        net.add_flow(
            SimTime::ZERO,
            FlowId(2),
            hosts[0],
            hosts[1],
            &links,
            125_000_000,
        );
        fire_next(&mut net).unwrap();
        let done = net.take_completed();
        assert_eq!(done.len(), 2, "both identical flows complete together");
        assert_eq!(done[0].id, FlowId(1));
        assert_eq!(done[1].id, FlowId(2));
        assert_eq!(net.active_flows(), 0);
    }

    #[test]
    #[should_panic(expected = "empty route")]
    fn empty_route_rejected() {
        let (topo, hosts, _) = two_host_net();
        let mut net = FlowNet::new(&topo);
        net.add_flow(SimTime::ZERO, FlowId(1), hosts[0], hosts[1], &[], 10);
    }

    #[test]
    #[should_panic(expected = "reused while active")]
    fn duplicate_flow_id_rejected() {
        let (topo, hosts, mut router) = two_host_net();
        let mut net = FlowNet::new(&topo);
        let links = route_links(&topo, &mut router, hosts[0], hosts[1], 0);
        net.add_flow(SimTime::ZERO, FlowId(1), hosts[0], hosts[1], &links, 10);
        net.add_flow(SimTime::ZERO, FlowId(1), hosts[0], hosts[1], &links, 10);
    }

    #[test]
    fn many_flows_conserve_capacity() {
        for kind in solver_kinds() {
            let built = star(8, LinkSpec::gigabit());
            let topo = built.topology;
            let h = built.hosts.clone();
            let mut router = Router::new();
            let mut net = FlowNet::with_solver(&topo, kind);
            let mut id = 0;
            for i in 0..8 {
                for j in 0..8 {
                    if i != j {
                        let links = route_links(&topo, &mut router, h[i], h[j], id);
                        net.add_flow(SimTime::ZERO, FlowId(id), h[i], h[j], &links, 1_000_000);
                        id += 1;
                    }
                }
            }
            // No link may be allocated beyond capacity.
            for l in 0..topo.links().len() {
                let u = net.link_utilization(LinkId(l as u32));
                assert!(u <= 1.0 + 1e-9, "link {l} over-allocated: {u}");
            }
            // Total goodput is positive and bounded by 8 links' capacity.
            let total: f64 = (0..id).filter_map(|k| net.flow_rate_bps(FlowId(k))).sum();
            assert!(total > 0.0 && total <= 8.0 * GBE as f64 + 1.0);
        }
    }

    /// `true` if two rates agree within 1e-9 relative or a few
    /// fixed-point quanta absolute (the quantized max-min solution is
    /// non-unique at exact floor ties; see the module docs).
    fn rates_close(a: f64, b: f64) -> bool {
        let quantum = 1.0 / (1u64 << 20) as f64;
        (a - b).abs() <= (1e-9 * a.max(b)).max(4.0 * quantum)
    }

    /// The decisive equivalence check: drive both solver arms through the
    /// same randomized add/remove/complete sequence on a fat tree and a
    /// star, comparing every flow's rate after every operation. This is
    /// what licenses the incremental solver's bottleneck-aware pull set.
    #[test]
    fn random_add_remove_matches_reference() {
        use crate::topologies::fat_tree;
        use holdcsim_des::rng::SimRng;

        let root = SimRng::seed_from(0xFA1235);
        for trial in 0..12u64 {
            let mut rng = root.substream(trial);
            let built = if trial % 2 == 0 {
                fat_tree(4, LinkSpec::gigabit())
            } else {
                star(8, LinkSpec::gigabit())
            };
            let topo = built.topology;
            let hosts = built.hosts.clone();
            let mut router = Router::new();
            let mut nets: Vec<FlowNet> = solver_kinds()
                .iter()
                .map(|&k| FlowNet::with_solver(&topo, k))
                .collect();
            let mut live: Vec<(Vec<u64>, FlowId)> = Vec::new(); // (key per net, id)
            let mut next_id = 0u64;
            let mut now = SimTime::ZERO;
            for step in 0..400u64 {
                now += SimDuration::from_micros(1 + rng.below(50));
                let op = rng.below(10);
                if live.is_empty() || op < 5 {
                    // Admit a random-pair flow.
                    let i = rng.below(hosts.len() as u64) as usize;
                    let j = (i + 1 + rng.below(hosts.len() as u64 - 1) as usize) % hosts.len();
                    let links = route_links(&topo, &mut router, hosts[i], hosts[j], next_id);
                    let bytes = 1_000 + rng.below(5_000_000);
                    let id = FlowId(next_id);
                    next_id += 1;
                    let keys = nets
                        .iter_mut()
                        .map(|n| n.add_flow(now, id, hosts[i], hosts[j], &links, bytes))
                        .collect();
                    live.push((keys, id));
                } else if op < 8 {
                    // Cancel a random live flow.
                    let i = rng.below(live.len() as u64) as usize;
                    let (keys, _) = live.swap_remove(i);
                    for (n, &k) in nets.iter_mut().zip(&keys) {
                        assert!(n.remove_flow(now, k));
                    }
                } else {
                    // Run every net to its next completion, if any
                    // (each at its own due instant; the heads agree to
                    // well below the nanosecond event resolution).
                    let dues: Vec<_> = nets.iter_mut().map(|n| n.next_due()).collect();
                    for d in &dues[1..] {
                        assert_eq!(dues[0].is_some(), d.is_some(), "trial {trial} step {step}");
                    }
                    if dues[0].is_some() {
                        let dues: Vec<SimTime> = dues.into_iter().flatten().collect();
                        let (lo, hi) = (*dues.iter().min().unwrap(), *dues.iter().max().unwrap());
                        let gap = hi.saturating_duration_since(lo);
                        assert!(
                            gap <= SimDuration::from_nanos(1),
                            "trial {trial} step {step}: due heads {lo} vs {hi}"
                        );
                        now = now.max(hi);
                        for (n, d) in nets.iter_mut().zip(dues) {
                            n.advance_due(d);
                        }
                    }
                }
                // Any op can complete flows (a rate change may settle a
                // flow to zero remaining): reconcile after every step.
                let done: Vec<_> = nets.iter_mut().map(|n| n.take_completed()).collect();
                for d in &done[1..] {
                    assert_eq!(&done[0], d, "trial {trial} step {step}");
                }
                live.retain(|(_, id)| !done[0].iter().any(|c| c.id == *id));
                // Every live flow's rate must match within tolerance.
                for &(_, id) in &live {
                    let ra = nets[0].flow_rate_bps(id).unwrap();
                    for n in &nets[1..] {
                        let rb = n.flow_rate_bps(id).unwrap();
                        assert!(
                            rates_close(ra, rb),
                            "trial {trial} step {step} flow {id}: {ra} vs {rb}\nref: {:?}\nother: {:?}",
                            nets[0].dump(),
                            n.dump()
                        );
                    }
                }
                for n in &nets[1..] {
                    assert_eq!(nets[0].active_flows(), n.active_flows());
                }
            }
        }
    }

    #[test]
    fn solver_arms_assign_bitwise_identical_rates() {
        // The same admission sequence through both arms must produce
        // bitwise-identical rates (the canonical bottleneck order makes
        // the floating-point op sequences per link identical).
        let built = star(6, LinkSpec::gigabit());
        let topo = built.topology;
        let h = built.hosts.clone();
        let mut router = Router::new();
        let mut nets: Vec<FlowNet> = solver_kinds()
            .iter()
            .map(|&k| FlowNet::with_solver(&topo, k))
            .collect();
        let mut id = 0u64;
        for i in 0..6 {
            for j in 0..6 {
                if i == j {
                    continue;
                }
                let links = route_links(&topo, &mut router, h[i], h[j], id);
                for n in nets.iter_mut() {
                    n.add_flow(SimTime::ZERO, FlowId(id), h[i], h[j], &links, 3_000_000);
                }
                id += 1;
            }
        }
        for k in 0..id {
            let ra = nets[0].flow_rate_bps(FlowId(k));
            for n in &nets[1..] {
                let rb = n.flow_rate_bps(FlowId(k));
                assert_eq!(
                    ra.map(f64::to_bits),
                    rb.map(f64::to_bits),
                    "flow {k}: {ra:?} vs {rb:?}"
                );
            }
        }
    }
}
